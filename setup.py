"""Setup shim for environments without the `wheel` package (offline),
enabling legacy `pip install -e . --no-use-pep517`. Configuration lives
in pyproject.toml."""
from setuptools import setup

setup()
