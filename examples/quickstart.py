"""Quickstart: match a handful of ride requests with kinetic trees.

Builds a small synthetic city, runs three requests through the
dispatcher, and prints each assignment and the winning vehicle's
schedule — the 30-second tour of the public API.

Run:  python examples/quickstart.py
"""

from repro import (
    Dispatcher,
    KineticAgent,
    Vehicle,
    grid_city,
    make_engine,
)


def main() -> None:
    # 1. A road network and a shortest-path engine over it.
    city = grid_city(20, 20, seed=7)
    engine = make_engine(city)  # precomputed all-pairs for a small city
    print(f"city: {city}")

    # 2. Two vehicles with kinetic trees — few enough that riders with
    #    similar routes end up sharing.
    agents = [
        KineticAgent(Vehicle(vid, start_vertex=vid * 157 % city.num_vertices,
                             capacity=4, seed=vid), engine)
        for vid in range(2)
    ]
    dispatcher = Dispatcher(engine, agents)

    # 3. Ride requests: origin, destination, request time, waiting-time
    #    budget w (seconds) and detour tolerance eps. The first three all
    #    head down the same corridor.
    trips = [(5, 210, 0.0), (8, 230, 20.0), (27, 250, 40.0), (140, 395, 60.0)]
    for origin, destination, t in trips:
        request = dispatcher.make_request(
            origin, destination, t, max_wait=600.0, detour_epsilon=0.6
        )
        result = dispatcher.submit(request, t)
        if not result.assigned:
            print(f"request {request.request_id}: no vehicle can serve it")
            continue
        agent = result.winner
        cost, stops = agent.tree.best_schedule()
        print(
            f"request {request.request_id} ({origin}->{destination}) -> "
            f"vehicle {agent.vehicle.vehicle_id}, schedule cost {cost:.0f}s, "
            f"plan: {' '.join(repr(s) for s in stops)}"
        )

    # 4. The winning trees keep every alternative schedule materialized.
    for agent in agents:
        if agent.num_active_trips:
            print(
                f"vehicle {agent.vehicle.vehicle_id}: "
                f"{agent.tree.num_schedules()} valid schedule(s), "
                f"{agent.tree.size()} tree nodes"
            )


if __name__ == "__main__":
    main()
