"""Head-to-head: kinetic tree vs brute force vs branch & bound vs MIP.

Runs the same scaled simulation once per matching algorithm (Fig. 6's
setup in miniature) and prints ACRT, service rate, and ART at the
deepest shared bucket — the paper's headline comparison.

Run:  python examples/algorithm_comparison.py [--trips N]
"""

import argparse
import time

from repro import (
    ShanghaiLikeWorkload,
    SimulationConfig,
    grid_city,
    make_engine,
    simulate,
)

ALGORITHMS = ("kinetic", "brute_force", "branch_and_bound", "mip")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trips", type=int, default=60)
    parser.add_argument("--vehicles", type=int, default=12)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    city = grid_city(24, 24, seed=args.seed)
    engine = make_engine(city)
    trips = ShanghaiLikeWorkload(
        city, seed=args.seed, min_trip_meters=1200.0
    ).generate(num_trips=args.trips, duration_seconds=3600.0)

    print(
        f"{len(trips)} requests | {args.vehicles} vehicles | capacity 4 | "
        "constraints 10 min / 20%\n"
    )
    print(f"{'algorithm':18s} {'ACRT ms':>9s} {'rate':>6s} {'wall s':>7s}")
    baseline = None
    for algorithm in ALGORITHMS:
        started = time.perf_counter()
        report = simulate(
            engine,
            SimulationConfig(
                num_vehicles=args.vehicles, algorithm=algorithm, seed=args.seed
            ),
            trips,
        )
        wall = time.perf_counter() - started
        acrt = report.acrt_ms
        if algorithm == "kinetic":
            baseline = acrt
        rel = f"({acrt / baseline:4.1f}x tree)" if baseline else ""
        print(
            f"{algorithm:18s} {acrt:9.3f} {report.service_rate:6.2f} "
            f"{wall:7.1f}  {rel}"
        )
        violations = report.verify_service_guarantees()
        assert not violations, violations
    print(
        "\npaper shape: tree fastest; brute force ~ branch & bound; "
        "MIP an order of magnitude slower."
    )


if __name__ == "__main__":
    main()
