"""Trace a rush-hour flush pipeline and read where the time went.

Runs one batched LAP simulation on a bimodal workload (a lull, then a
surge) with tracing on, then analyzes the collected spans in-process:
the per-stage time breakdown (where does flush time go?) and the
slowest flushes decomposed into their quote/solve/commit children —
exactly what ``tools/trace_report.py`` prints from a trace file, plus
the registry's p50/p99 assignment latency.

Run:  python examples/trace_flush.py [--vehicles N] [--peak-trips N]
      python examples/trace_flush.py --trace-out trace.jsonl   # then
      open the file at https://ui.perfetto.dev
"""

import argparse

from repro import SimulationConfig, grid_city, make_engine, simulate
from repro.bench.adaptive import bimodal_trips
from repro.core.constraints import ConstraintConfig
from repro.obs.export import chrome_trace_events, write_chrome_trace
from repro.obs.report import (
    render_slowest,
    render_stage_table,
    slowest_flushes,
    stage_breakdown,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=10)
    parser.add_argument("--offpeak-trips", type=int, default=30)
    parser.add_argument("--peak-trips", type=int, default=120)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="also write the spans as Perfetto-loadable JSONL",
    )
    args = parser.parse_args()

    city = grid_city(24, 24, seed=args.seed)
    trips, split = bimodal_trips(
        city,
        seed=args.seed,
        offpeak_s=1200.0,
        peak_s=600.0,
        offpeak_trips=args.offpeak_trips,
        peak_trips=args.peak_trips,
        min_trip_meters=1200.0,
    )
    config = SimulationConfig(
        num_vehicles=args.vehicles,
        algorithm="kinetic",
        constraints=ConstraintConfig.from_minutes(6, 20),
        dispatch_policy="lap",
        batch_window_s=12.0,
        seed=args.seed,
        trace=True,
    )
    print(
        f"city {city.num_vertices} vertices | fleet {args.vehicles} | "
        f"{len(trips)} requests (lull then surge at {split:.0f}s) | "
        f"tracing on"
    )
    report = simulate(make_engine(city), config, trips)
    violations = report.verify_service_guarantees()
    print(
        f"assigned {report.num_assigned}/{report.num_requests} | "
        f"service-guarantee audit: {len(violations)} violations"
    )

    events = chrome_trace_events(report.tracer.records())
    print(f"\n{len(events)} spans collected — where flush time goes:\n")
    print(render_stage_table(stage_breakdown(events)))

    print("\nslowest flushes (quote/solve/commit decomposition):")
    print(render_slowest(slowest_flushes(events, top=3)))

    latency = report.registry.histogram("assign.latency_s")
    print(
        f"\nassignment latency: p50 {latency.quantile(0.50):.2f}s  "
        f"p99 {latency.quantile(0.99):.2f}s  "
        f"(request time -> commit, over {latency.count} assignments)"
    )

    if args.trace_out:
        count = write_chrome_trace(report.tracer.records(), args.trace_out)
        print(
            f"\n{count} events written to {args.trace_out} — open it at "
            f"https://ui.perfetto.dev"
        )


if __name__ == "__main__":
    main()
