"""Sharded batch dispatch on a Shanghai-like workload.

Runs the same fleet and request stream under the global ``lap`` policy
and the ``sharded`` policy (the lap solve federated over grid-region
shards, :mod:`repro.dispatch.sharding`), showing that sharding keeps the
matching quality of the global solve while splitting each flush's
Hungarian solve into concurrent regional blocks — plus the new
per-shard metrics (shard sizes, in-worker solve times, boundary
conflicts) the report exposes.

Run:  python examples/sharded_dispatch.py [--vehicles N] [--hours H]
      [--shards K] [--backend serial|thread|process]
"""

import argparse

from repro import (
    ShanghaiLikeWorkload,
    SimulationConfig,
    grid_city,
    make_engine,
    simulate,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=12)
    parser.add_argument("--hours", type=float, default=1.0)
    parser.add_argument("--window", type=float, default=15.0)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--backend", default="thread",
        choices=("serial", "thread", "process"),
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    city = grid_city(30, 30, seed=args.seed)
    engine = make_engine(city)
    workload = ShanghaiLikeWorkload(city, seed=args.seed, min_trip_meters=1500.0)
    trips = workload.generate(
        num_trips=int(30 * args.vehicles * args.hours),
        duration_seconds=args.hours * 3600.0,
    )
    print(
        f"city {city.num_vertices} vertices | fleet {args.vehicles} | "
        f"{len(trips)} requests over {args.hours:.1f}h | "
        f"window {args.window:.0f}s | {args.shards} shards "
        f"({args.backend} backend)"
    )

    cells = [
        ("lap (global solve)", {"dispatch_policy": "lap"}),
        (
            f"sharded x{args.shards}",
            {
                "dispatch_policy": "sharded",
                "num_shards": args.shards,
                "shard_backend": args.backend,
            },
        ),
    ]
    reports = {}
    for label, overrides in cells:
        config = SimulationConfig(
            num_vehicles=args.vehicles,
            algorithm="kinetic",
            seed=args.seed,
            batch_window_s=args.window,
            **overrides,
        )
        report = simulate(engine, config, trips)
        reports[label] = report
        violations = report.verify_service_guarantees()
        assert not violations, violations[:3]
        print(
            f"\n{label}: service_rate {report.service_rate:.3f} | "
            f"assigned {report.num_assigned} | "
            f"solver_ms mean {report.solver_seconds.mean * 1000:.3f}"
        )

    print("\nboth policies passed the service-guarantee audit")
    sharded = reports[f"sharded x{args.shards}"]
    print("\nfull report for the sharded policy:")
    print(sharded.text_summary())


if __name__ == "__main__":
    main()
