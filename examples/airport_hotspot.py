"""The airport burst: why hotspot clustering exists (Section V).

Eight passengers request rides from the same terminal within seconds,
all heading downtown. Any permutation of the pickups (and of the
dropoffs) is a valid schedule, so the basic kinetic tree materializes a
factorially exploding set — the paper's "8! = 40,320 possibilities"
scenario. Hotspot clustering merges co-located stops into group nodes
and keeps one representative order, with the Theorem 2 cost bound.

This example feeds the identical burst to one vehicle per variant and
compares tree size, insertion effort, and best-schedule cost.

Run:  python examples/airport_hotspot.py
"""

from repro import KineticTree, TripRequest, grid_city, make_engine
from repro.exceptions import TreeBudgetExceeded
from repro.sim.workload import burst_workload

#: Stand-in for the paper's "reasonable time / 3 GB" cutoff.
BUDGET = 300_000


def build_tree(engine, variant, theta, specs):
    mode = "basic" if variant == "basic" else "slack"
    hotspot = theta if variant == "hotspot" else None
    tree = KineticTree(
        engine,
        start_vertex=0,
        capacity=None,
        mode=mode,
        hotspot_theta=hotspot,
        expansion_budget=BUDGET,
    )
    effort = 0
    accepted = 0
    for rid, spec in enumerate(specs):
        request = TripRequest(
            rid,
            spec.origin,
            spec.destination,
            spec.request_time,
            max_wait=1200.0,
            detour_epsilon=1.0,
            direct_cost=engine.distance(spec.origin, spec.destination),
        )
        trial = tree.try_insert(request, tree.root_vertex, spec.request_time)
        if trial is None:
            continue
        effort += trial.expansions
        tree.commit(trial)
        accepted += 1
    return tree, effort, accepted


def main() -> None:
    city = grid_city(25, 25, seed=3)
    engine = make_engine(city)
    terminal = city.num_vertices // 2          # the "airport"
    downtown = 3                               # the shared destination zone
    specs = burst_workload(
        city,
        center_vertex=terminal,
        num_trips=8,
        request_time=0.0,
        dest_center_vertex=downtown,
        seed=1,
    )
    print(f"burst: {len(specs)} co-located requests at vertex {terminal}\n")
    theta = 45.0  # seconds of travel ~ 630 m

    print(f"{'variant':10s} {'accepted':>8s} {'tree nodes':>10s} "
          f"{'schedules':>10s} {'expansions':>10s} {'best cost':>10s}")
    results = {}
    for variant in ("basic", "slack", "hotspot"):
        try:
            tree, effort, accepted = build_tree(engine, variant, theta, specs)
        except TreeBudgetExceeded:
            # The paper's Fig. 9(c): basic/slack "break off" on exactly
            # this workload — the factorial blowup in action.
            print(f"{variant:10s} {'DNF: exceeded':>20s} {BUDGET:,} expansions")
            continue
        best = tree.best_schedule()
        cost = best[0] if best else float("nan")
        results[variant] = cost
        print(
            f"{variant:10s} {accepted:8d} {tree.size():10d} "
            f"{tree.num_schedules():10d} {effort:10d} {cost:10.0f}"
        )

    if "basic" in results and "hotspot" in results:
        gap = results["hotspot"] - results["basic"]
        print(
            f"\nhotspot optimality gap: +{gap:.0f}s "
            f"(Theorem 2 bound: 2(m+1)*theta = {2 * (len(specs) + 1) * theta:.0f}s)"
        )
    elif "hotspot" in results:
        print(
            "\nonly hotspot clustering completed — the paper's headline "
            "result for high-capacity / co-located workloads."
        )


if __name__ == "__main__":
    main()
