"""A scaled Shanghai-like service day, end to end.

Reproduces the paper's experimental setup in miniature: a street-grid
city, a rush-hour request stream calibrated to the paper's
trips-per-taxi ratio, a fleet of kinetic-tree vehicles behind the grid
index, and the ACRT / ART / occupancy metrics of Section VI — plus the
service-guarantee audit.

Run:  python examples/shanghai_day.py [--vehicles N] [--hours H]
"""

import argparse

from repro import (
    ConstraintConfig,
    ShanghaiLikeWorkload,
    SimulationConfig,
    grid_city,
    make_engine,
    simulate,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=40)
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--capacity", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    city = grid_city(32, 32, seed=args.seed)
    engine = make_engine(city)
    workload = ShanghaiLikeWorkload(city, seed=args.seed, min_trip_meters=1200.0)
    trips = workload.generate_for_fleet(
        num_vehicles=args.vehicles,
        duration_seconds=args.hours * 3600.0,
    )
    print(
        f"city {city.num_vertices} vertices | fleet {args.vehicles} | "
        f"{len(trips)} requests over {args.hours:.1f}h (paper ratio)"
    )

    config = SimulationConfig(
        num_vehicles=args.vehicles,
        capacity=args.capacity,
        constraints=ConstraintConfig.from_minutes(10, 20),
        algorithm="kinetic",
        seed=args.seed,
    )
    report = simulate(engine, config, trips)

    print("\n--- service day report ---")
    for key, value in report.summary().items():
        print(f"{key:24s} {value}")

    print("\nART by active requests (ms):")
    for bucket, stats in report.art.as_dict().items():
        print(f"  {bucket:2d} active: {stats['mean'] * 1000:8.3f} ms "
              f"({stats['count']} quotes)")

    violations = report.verify_service_guarantees()
    print(f"\nservice-guarantee audit: {len(violations)} violations")
    for line in violations[:5]:
        print("  " + line)


if __name__ == "__main__":
    main()
