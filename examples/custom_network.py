"""Bring your own road network.

Shows the full substrate surface: build a network from raw edge data,
save/load it, choose among the three shortest-path engines (APSP matrix,
cached Dijkstra — the paper's configuration for the full Shanghai graph —
and hub labeling), and inspect cache effectiveness on a skewed query
stream.

Run:  python examples/custom_network.py
"""

import tempfile
import time

import numpy as np

from repro import (
    DijkstraEngine,
    HubLabelEngine,
    MatrixEngine,
    RoadNetwork,
    ring_radial_city,
)
from repro.roadnet.io import load_npz, save_npz


def build_manual_network() -> RoadNetwork:
    """A tiny hand-made district: two avenues joined by side streets.

    Edge weights are travel times in seconds.
    """
    edges = [
        (0, 1, 20.0), (1, 2, 25.0), (2, 3, 20.0),          # north avenue
        (4, 5, 22.0), (5, 6, 18.0), (6, 7, 24.0),          # south avenue
        (0, 4, 30.0), (1, 5, 28.0), (2, 6, 35.0), (3, 7, 30.0),  # side streets
    ]
    coords = np.array(
        [[0, 0], [300, 0], [650, 0], [950, 0],
         [0, 400], [310, 400], [580, 400], [930, 400]],
        dtype=float,
    )
    return RoadNetwork(8, edges, coords=coords)


def main() -> None:
    district = build_manual_network()
    print(f"manual district: {district}")
    print(f"  d(0, 7) via Dijkstra engine: "
          f"{DijkstraEngine(district).distance(0, 7):.0f}s")

    with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
        save_npz(district, handle.name)
        reloaded = load_npz(handle.name)
        print(f"  saved + reloaded: {reloaded.num_edges} edges intact\n")

    # A bigger generated city for the engine comparison.
    city = ring_radial_city(rings=12, spokes=24, seed=1)
    print(f"ring-radial city: {city}")
    rng = np.random.default_rng(0)
    hot = rng.integers(0, city.num_vertices, size=40)
    queries = [
        (int(rng.choice(hot)), int(rng.choice(hot)))
        if rng.random() < 0.8
        else tuple(int(x) for x in rng.integers(0, city.num_vertices, 2))
        for _ in range(4000)
    ]

    engines = {
        "matrix (APSP)": MatrixEngine(city),
        "dijkstra + dual LRU": DijkstraEngine(city),
        "hub labels": HubLabelEngine(city),
    }
    print(f"\n{'engine':22s} {'queries/s':>12s} {'notes'}")
    for name, engine in engines.items():
        started = time.perf_counter()
        for s, e in queries:
            engine.distance(s, e)
        rate = len(queries) / (time.perf_counter() - started)
        notes = ""
        stats = engine.stats()
        if "distance_hit_rate" in stats:
            notes = f"cache hit rate {stats['distance_hit_rate']:.2f}"
        if "average_label_size" in stats:
            notes = f"avg label size {stats['average_label_size']:.1f}"
        print(f"{name:22s} {rate:12,.0f} {notes}")

    # Exactness cross-check, the invariant everything above relies on.
    reference = engines["matrix (APSP)"]
    for s, e in queries[:200]:
        assert abs(engines["hub labels"].distance(s, e) - reference.distance(s, e)) < 1e-6
    print("\nall engines agree on every checked query.")


if __name__ == "__main__":
    main()
