"""Batched dispatch policies on a Shanghai-like workload.

Compares the paper's immediate per-request dispatch against the
rolling-window policies of :mod:`repro.dispatch` — greedy (sequential
cheapest quote), lap (one global request x vehicle linear assignment per
window) and iterative (repeated assignment rounds) — on the same fleet
and request stream: service rate, assignment cost, batch sizes, and the
wall time spent in the Hungarian solver.

Each batched run flushes through the staged quote → solve → commit
pipeline (here in its degenerate synchronous form: no quote workers, a
zero overlap window — add ``quote_workers``/``quote_overlap_s`` to the
config to overlap quoting with event execution, see
``examples/sharded_dispatch.py`` and :mod:`repro.dispatch.quoting`).
The window length is fixed for the whole run; see
``examples/adaptive_window.py`` for load-driven window autotuning and
carry-over.

Run:  python examples/batched_dispatch.py [--vehicles N] [--hours H]
      [--window SECONDS]
"""

import argparse

from repro import (
    ShanghaiLikeWorkload,
    SimulationConfig,
    grid_city,
    make_engine,
    simulate,
)

POLICIES = [
    ("greedy  (immediate)", "greedy", 0.0),
    ("greedy  (batched)", "greedy", None),
    ("lap", "lap", None),
    ("iterative", "iterative", None),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=12)
    parser.add_argument("--hours", type=float, default=1.0)
    parser.add_argument("--window", type=float, default=15.0,
                        help="batch window in seconds (batched policies)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    city = grid_city(30, 30, seed=args.seed)
    engine = make_engine(city)
    workload = ShanghaiLikeWorkload(city, seed=args.seed, min_trip_meters=1500.0)
    trips = workload.generate(
        num_trips=int(30 * args.vehicles * args.hours),
        duration_seconds=args.hours * 3600.0,
    )
    print(
        f"city {city.num_vertices} vertices | fleet {args.vehicles} | "
        f"{len(trips)} requests over {args.hours:.1f}h | "
        f"window {args.window:.0f}s"
    )

    header = (
        f"{'policy':22s} {'rate':>6s} {'assigned':>8s} {'cost_s':>10s} "
        f"{'batch':>6s} {'solver_ms':>9s}"
    )
    print("\n" + header)
    print("-" * len(header))
    reports = {}
    for label, policy, window in POLICIES:
        config = SimulationConfig(
            num_vehicles=args.vehicles,
            algorithm="kinetic",
            seed=args.seed,
            dispatch_policy=policy,
            batch_window_s=args.window if window is None else window,
        )
        report = simulate(engine, config, trips)
        reports[label] = report
        violations = report.verify_service_guarantees()
        assert not violations, violations[:3]
        print(
            f"{label:22s} {report.service_rate:6.3f} "
            f"{report.num_assigned:8d} "
            f"{report.total_assignment_cost:10,.0f} "
            f"{report.batch_sizes.mean:6.2f} "
            f"{report.solver_seconds.mean * 1000:9.3f}"
        )

    print("\nall policies passed the service-guarantee audit")
    best = max(reports, key=lambda k: reports[k].service_rate)
    print(f"best service rate: {best.strip()} "
          f"({reports[best].service_rate:.3f})")
    print("\nfull report for the lap policy:")
    print(reports["lap"].text_summary())


if __name__ == "__main__":
    main()
