"""Adaptive batch windows riding out a rush hour.

Builds a bimodal request stream — a quiet spell, then a surge that
oversubscribes the fleet — and dispatches it three ways on the same
city: a short fixed window, a long fixed window, and the adaptive
controller with carry-over (:mod:`repro.dispatch.adaptive`). Prints the
phase-split latency/service numbers and the adaptive run's window
trajectory, which should hug the band floor during the lull and open to
the ceiling when the surge hits.

Run:  python examples/adaptive_window.py [--vehicles N] [--peak-trips N]
"""

import argparse

from repro import SimulationConfig, grid_city, make_engine, simulate
from repro.bench.adaptive import bimodal_trips, phase_metrics
from repro.core.constraints import ConstraintConfig

WINDOW_MIN, WINDOW_MAX = 3.0, 30.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=10)
    parser.add_argument("--offpeak-trips", type=int, default=40)
    parser.add_argument("--peak-trips", type=int, default=180)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    city = grid_city(28, 28, seed=args.seed)
    trips, split = bimodal_trips(
        city,
        seed=args.seed,
        offpeak_s=1400.0,
        peak_s=700.0,
        offpeak_trips=args.offpeak_trips,
        peak_trips=args.peak_trips,
        min_trip_meters=1500.0,
    )
    constraints = ConstraintConfig.from_minutes(6, 20)
    print(
        f"city {city.num_vertices} vertices | fleet {args.vehicles} | "
        f"{len(trips)} requests (lull then surge, boundary at {split:.0f}s)"
    )

    cells = [
        ("fixed short", dict(batch_window_s=WINDOW_MIN)),
        ("fixed long", dict(batch_window_s=WINDOW_MAX)),
        (
            "adaptive",
            dict(
                batch_window_s=WINDOW_MIN,
                adaptive_window=True,
                window_min_s=WINDOW_MIN,
                window_max_s=WINDOW_MAX,
                adaptive_target_batch=6.0,
                carry_over=True,
            ),
        ),
    ]
    header = (
        f"{'run':14s} {'off_lat_s':>9s} {'off_rate':>8s} "
        f"{'peak_lat_s':>10s} {'peak_rate':>9s} {'carried':>7s}"
    )
    print("\n" + header)
    print("-" * len(header))
    adaptive_report = None
    for label, overrides in cells:
        engine = make_engine(city)
        config = SimulationConfig(
            num_vehicles=args.vehicles,
            algorithm="kinetic",
            constraints=constraints,
            dispatch_policy="lap",
            seed=args.seed,
            **overrides,
        )
        report = simulate(engine, config, trips)
        violations = report.verify_service_guarantees()
        assert not violations, violations[:3]
        phases = phase_metrics(report, trips, split)
        print(
            f"{label:14s} {phases['offpeak_latency_s']:9.2f} "
            f"{phases['offpeak_service_rate']:8.3f} "
            f"{phases['peak_latency_s']:10.2f} "
            f"{phases['peak_service_rate']:9.3f} "
            f"{report.carry_events:7d}"
        )
        if label == "adaptive":
            adaptive_report = report

    print("\nall runs passed the service-guarantee audit")
    print(
        f"\nadaptive window trajectory (band [{WINDOW_MIN:g}, "
        f"{WINDOW_MAX:g}]s, surge begins at {split:.0f}s):"
    )
    trajectory = adaptive_report.window_trajectory
    step = max(1, len(trajectory) // 24)
    scale = 40.0 / WINDOW_MAX
    for t, window, _overlap in trajectory[::step]:
        bar = "#" * max(1, int(window * scale))
        phase = "surge" if t >= split else "lull"
        print(f"  t={t:7.1f}s [{phase:5s}] {window:5.1f}s |{bar}")
    print("\nfull report for the adaptive run:")
    print(adaptive_report.text_summary())


if __name__ == "__main__":
    main()
