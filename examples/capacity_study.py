"""How large do shared vehicles need to be? (Fig. 9(c) + Section VI.B)

Sweeps vehicle capacity from 3 seats to unlimited with the hotspot
kinetic tree and reports, per capacity: ACRT, service rate, and the
occupancy statistics the paper closes with (max passengers, fleet mean,
top-20% mean) — the numbers behind its conclusion that "the majority of
vehicles in a server fleet should be five-person cars (...) but for some
requests larger vehicles are needed".

Run:  python examples/capacity_study.py
"""

from repro import (
    ShanghaiLikeWorkload,
    SimulationConfig,
    burst_workload,
    grid_city,
    make_engine,
    simulate,
)

CAPACITIES = (3, 4, 6, 8, 12, None)


def main() -> None:
    city = grid_city(28, 28, seed=11)
    engine = make_engine(city)
    workload = ShanghaiLikeWorkload(city, seed=11, min_trip_meters=1500.0)
    trips = workload.generate(num_trips=240, duration_seconds=3600.0)
    # Airport-style bursts: the pattern that actually needs big vehicles.
    for b, when in enumerate((900.0, 1800.0, 2700.0)):
        trips.extend(
            burst_workload(
                city,
                int(workload.hotspots[b]),
                8,
                trips[0].request_time + when,
                dest_center_vertex=int(workload.hotspots[b + 1]),
                seed=b,
            )
        )
    trips.sort(key=lambda t: t.request_time)

    print(f"{len(trips)} requests | 8 vehicles | hotspot kinetic tree\n")
    print(
        f"{'capacity':>8s} {'ACRT ms':>9s} {'rate':>6s} {'max occ':>8s} "
        f"{'mean max':>9s} {'top-20%':>8s}"
    )
    for capacity in CAPACITIES:
        config = SimulationConfig(
            num_vehicles=8,
            capacity=capacity,
            algorithm="kinetic",
            hotspot_theta=40.0,
            tree_expansion_budget=300_000,
            seed=11,
        )
        report = simulate(engine, config, trips)
        occ = report.occupancy
        label = "unlim" if capacity is None else str(capacity)
        print(
            f"{label:>8s} {report.acrt_ms:9.3f} {report.service_rate:6.2f} "
            f"{occ.max_passengers:8d} {occ.mean_max_per_vehicle:9.2f} "
            f"{occ.top20_mean:8.2f}"
        )
        assert report.verify_service_guarantees() == []
    print(
        "\npaper analogue: max 17 / fleet mean 1.7 / top-20% 3.9 at city "
        "scale — most rides fit a 5-seater, a few need minibuses."
    )


if __name__ == "__main__":
    main()
