"""Watch a rush hour arrive: the live-ops telemetry plane in action.

Runs one batched LAP simulation over a bimodal workload (a lull, then
a surge) with every live feature on — windowed time series, rolling
quantiles, the SLO engine, the resource monitor, the ``[live]``
console reporter — then renders the written JSONL rows as a rolling
dashboard and prints the service-guarantee verdict, burn alerts
included. The surge is the point: watch ``service`` dip and the
``wait_p99`` burn rate spike as the fleet saturates, then recover.

Run:  python examples/live_metrics.py [--vehicles N] [--peak-trips N]
      python examples/live_metrics.py --out ts.jsonl --slo-out slo.json
"""

import argparse
import json
import os
import tempfile

from repro import SimulationConfig, grid_city, make_engine, simulate
from repro.bench.adaptive import bimodal_trips
from repro.core.constraints import ConstraintConfig

SLO = "service_rate>=0.6,wait_compliance>=0.6,wait_p99<=600"


def bar(fraction: float, width: int = 20) -> str:
    """A terminal bar: ``##########----------``."""
    filled = max(0, min(width, round(fraction * width)))
    return "#" * filled + "-" * (width - filled)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=10)
    parser.add_argument("--offpeak-trips", type=int, default=30)
    parser.add_argument("--peak-trips", type=int, default=120)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--window", type=float, default=120.0)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="keep the time-series JSONL here (default: temp file)",
    )
    parser.add_argument(
        "--slo-out", default=None, metavar="PATH",
        help="also keep the machine-readable slo.json",
    )
    args = parser.parse_args()

    ts_path = args.out or os.path.join(
        tempfile.mkdtemp(prefix="live_metrics_"), "ts.jsonl"
    )
    city = grid_city(24, 24, seed=args.seed)
    trips, split = bimodal_trips(
        city,
        seed=args.seed,
        offpeak_s=1200.0,
        peak_s=600.0,
        offpeak_trips=args.offpeak_trips,
        peak_trips=args.peak_trips,
        min_trip_meters=1200.0,
    )
    config = SimulationConfig(
        num_vehicles=args.vehicles,
        algorithm="kinetic",
        constraints=ConstraintConfig.from_minutes(6, 20),
        dispatch_policy="lap",
        batch_window_s=12.0,
        seed=args.seed,
        timeseries_out=ts_path,
        timeseries_window_s=args.window,
        timeseries_ring=3,
        slo=SLO,
        slo_out=args.slo_out,
        live_report_every=1,
        resource_monitor=True,
    )
    print(
        f"city {city.num_vertices} vertices | fleet {args.vehicles} | "
        f"{len(trips)} requests (lull then surge at {split:.0f}s) | "
        f"SLO {SLO}"
    )
    print("live console feed (one line per window):")
    report = simulate(make_engine(city), config, trips)

    with open(ts_path, encoding="utf-8") as handle:
        rows = [json.loads(line) for line in handle if line.strip()]

    print(f"\nrolling dashboard ({len(rows)} windows of {args.window:.0f}s):")
    print(
        f"{'win':>4} {'t':>11} {'settled':>7}  "
        f"{'service rate':<27} {'roll p99':>9}  rss"
    )
    for row in rows:
        counters = row["counters"]
        settled = counters.get("requests.settled", 0)
        assigned = counters.get("requests.assigned", 0)
        rate = assigned / settled if settled else None
        rolling = row["rolling"].get("assign.latency_s")
        p99 = f"{rolling['p99']:8.1f}s" if rolling else f"{'--':>9}"
        rss = row["gauges"].get("resource.rss_bytes")
        rss_part = f"{rss / 2 ** 20:5.0f}MiB" if rss else "     --"
        rate_part = (
            f"{bar(rate)} {rate:5.0%}" if rate is not None else f"{'--':>26}"
        )
        print(
            f"{row['window']:>4} {row['t_start']:5.0f}..{row['t_end']:5.0f} "
            f"{settled:>7}  {rate_part} {p99}  {rss_part}"
        )

    slo = report.extra["slo"]
    verdict = "PASS" if slo["pass"] else "FAIL"
    print(
        f"\nSLO verdict: {verdict} over {slo['num_windows']} windows "
        f"({slo['alert_windows']} burn-alert windows)"
    )
    for objective in slo["objectives"]:
        state = {True: "pass", False: "FAIL", None: "no data"}[
            objective["overall_pass"]
        ]
        worst = objective["worst_fast_burn"]
        print(
            f"  {objective['label']:<24} overall "
            f"{objective['overall_value']} -> {state:7} | "
            f"windows {objective['windows']['pass']}p/"
            f"{objective['windows']['fail']}f/"
            f"{objective['windows']['no_data']}n | "
            f"burn alerts {objective['burn_alerts']} "
            f"(worst fast burn {worst})"
        )
    if args.slo_out:
        print(f"\nslo verdict written to {args.slo_out}")
    print(f"time series written to {ts_path}")


if __name__ == "__main__":
    main()
