#!/usr/bin/env python
"""Markdown link checker for the repo's documentation (stdlib only).

Scans ``README.md`` and ``docs/**/*.md`` for inline markdown links and
verifies every non-HTTP target resolves:

* relative paths must exist on disk (relative to the linking file);
* ``#anchors`` (same-file or ``path.md#anchor``) must match a heading
  in the target file, using GitHub's slugification.

HTTP(S) links are recorded but not fetched (CI has no network
guarantee). Exit code 0 = all links resolve; 1 = at least one broken
link, each printed as ``file:line: message``.

Run:  python tools/check_links.py [root]
"""

from __future__ import annotations

import os
import re
import sys

#: Inline markdown links: [text](target) — images share the syntax.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub-style heading -> anchor slug."""
    text = heading.strip().lower()
    # Inline code/emphasis markers vanish (underscores stay — GitHub
    # keeps them), then everything that is not a word character, space
    # or hyphen.
    text = re.sub(r"[`*]", "", text)
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text.strip())


def markdown_files(root: str) -> list[str]:
    """The documentation surface this checker owns."""
    files = []
    readme = os.path.join(root, "README.md")
    if os.path.exists(readme):
        files.append(readme)
    docs = os.path.join(root, "docs")
    for dirpath, _dirnames, filenames in os.walk(docs):
        for name in sorted(filenames):
            if name.endswith(".md"):
                files.append(os.path.join(dirpath, name))
    return files


def heading_slugs(path: str) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                slugs.add(slugify(match.group(1)))
    return slugs


def iter_links(path: str):
    """Yield ``(line_number, target)`` for every inline link, skipping
    fenced code blocks and inline code spans."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            stripped = re.sub(r"`[^`]*`", "", line)  # drop inline code
            for match in LINK_RE.finditer(stripped):
                yield lineno, match.group(1)


def check_links(root: str) -> list[str]:
    """Return a list of ``file:line: message`` strings (empty = clean)."""
    errors: list[str] = []
    for md_path in markdown_files(root):
        rel_md = os.path.relpath(md_path, root)
        base_dir = os.path.dirname(md_path)
        for lineno, target in iter_links(md_path):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = os.path.normpath(os.path.join(base_dir, path_part))
                if not os.path.exists(resolved):
                    errors.append(
                        f"{rel_md}:{lineno}: broken path {target!r} "
                        f"(no such file {os.path.relpath(resolved, root)!r})"
                    )
                    continue
                anchor_file = resolved
            else:
                anchor_file = md_path
            if anchor:
                if not anchor_file.endswith(".md") or os.path.isdir(anchor_file):
                    continue  # anchors into non-markdown: not checkable
                if anchor.lower() not in heading_slugs(anchor_file):
                    errors.append(
                        f"{rel_md}:{lineno}: broken anchor {target!r} "
                        f"(no heading slug {anchor!r} in "
                        f"{os.path.relpath(anchor_file, root)!r})"
                    )
    return errors


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = os.path.abspath(
        args[0]
        if args
        else os.path.join(os.path.dirname(__file__), "..")
    )
    files = markdown_files(root)
    if not files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 1
    errors = check_links(root)
    for error in errors:
        print(error, file=sys.stderr)
    checked = ", ".join(os.path.relpath(f, root) for f in files)
    print(f"checked {len(files)} file(s): {checked} — "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
