#!/usr/bin/env python
"""Summarize a flush-pipeline trace from the command line.

Loads a Chrome trace-event file written by ``--trace-out`` (JSONL or a
strict JSON array) and prints the two views ``repro.obs.report``
computes:

* the per-stage breakdown — where flush time goes, aggregated by span
  name (count, total/mean/p50/p99/max ms), sorted by total time;
* the top-N slowest ``flush`` spans, each decomposed into its direct
  children (quote.collect / solve / commit / cleanup).

Run:  PYTHONPATH=src python tools/trace_report.py trace.jsonl [--top 5]

The script also works without PYTHONPATH from a repo checkout — it
falls back to the sibling ``src/`` layout.
"""

from __future__ import annotations

import argparse
import os
import sys

try:
    from repro.obs.export import read_chrome_trace
    from repro.obs.report import (
        render_slowest,
        render_stage_table,
        slowest_flushes,
        stage_breakdown,
    )
except ImportError:  # repo-checkout fallback: tools/ sits next to src/
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )
    from repro.obs.export import read_chrome_trace
    from repro.obs.report import (
        render_slowest,
        render_stage_table,
        slowest_flushes,
        stage_breakdown,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/trace_report.py",
        description="Per-stage breakdown and slowest-flush drilldown of a "
        "Chrome trace written by python -m repro.sim --trace-out.",
    )
    parser.add_argument("trace", help="trace path (JSONL or JSON array)")
    parser.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="how many slowest flushes to drill into (default 5)",
    )
    args = parser.parse_args(argv)
    events = read_chrome_trace(args.trace)
    if not events:
        print(f"no events in {args.trace}")
        return 1
    print(f"{len(events)} events from {args.trace}\n")
    print(render_stage_table(stage_breakdown(events)))
    print(f"\nslowest flushes (top {args.top}):")
    print(render_slowest(slowest_flushes(events, top=args.top)))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `trace_report.py t.jsonl | head`
        sys.exit(0)
