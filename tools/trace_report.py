#!/usr/bin/env python
"""Summarize a flush-pipeline trace from the command line.

Loads a Chrome trace-event file written by ``--trace-out`` (JSONL or a
strict JSON array) and prints the two views ``repro.obs.report``
computes:

* the per-stage breakdown — where flush time goes, aggregated by span
  name (count, total/mean/p50/p99/max ms), sorted by total time;
* the top-N slowest ``flush`` spans, each decomposed into its direct
  children (quote.collect / solve / commit / cleanup).

``--json`` emits the same two views as one machine-readable document
instead of text tables. A missing, unreadable, malformed or empty
trace exits non-zero with a one-line message on stderr.

Run:  PYTHONPATH=src python tools/trace_report.py trace.jsonl [--top 5]

The script also works without PYTHONPATH from a repo checkout — it
falls back to the sibling ``src/`` layout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

try:
    from repro.obs.export import read_chrome_trace
    from repro.obs.report import (
        render_slowest,
        render_stage_table,
        slowest_flushes,
        stage_breakdown,
    )
except ImportError:  # repo-checkout fallback: tools/ sits next to src/
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )
    from repro.obs.export import read_chrome_trace
    from repro.obs.report import (
        render_slowest,
        render_stage_table,
        slowest_flushes,
        stage_breakdown,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/trace_report.py",
        description="Per-stage breakdown and slowest-flush drilldown of a "
        "Chrome trace written by python -m repro.sim --trace-out.",
    )
    parser.add_argument("trace", help="trace path (JSONL or JSON array)")
    parser.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="how many slowest flushes to drill into (default 5)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the breakdown and drilldown as one JSON document",
    )
    args = parser.parse_args(argv)
    try:
        events = read_chrome_trace(args.trace)
    except OSError as error:
        print(
            f"error: cannot read trace {args.trace!r}: {error.strerror}",
            file=sys.stderr,
        )
        return 2
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        print(
            f"error: {args.trace!r} is not a Chrome trace "
            f"(JSONL or JSON array): {error}",
            file=sys.stderr,
        )
        return 2
    if not events:
        print(
            f"error: no trace events in {args.trace!r} — was the run "
            "traced? (python -m repro.sim --trace-out PATH)",
            file=sys.stderr,
        )
        return 1
    if not all(isinstance(e, dict) and "name" in e for e in events):
        print(
            f"error: {args.trace!r} parses as JSON but its rows are not "
            "trace events (no 'name' field) — a --timeseries-out file? "
            "This tool reads --trace-out files.",
            file=sys.stderr,
        )
        return 1
    stages = stage_breakdown(events)
    slowest = slowest_flushes(events, top=args.top)
    if args.json:
        print(
            json.dumps(
                {
                    "trace": args.trace,
                    "events": len(events),
                    "stages": stages,
                    "slowest_flushes": slowest,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"{len(events)} events from {args.trace}\n")
    print(render_stage_table(stages))
    print(f"\nslowest flushes (top {args.top}):")
    print(render_slowest(slowest))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `trace_report.py t.jsonl | head`
        sys.exit(0)
