#!/usr/bin/env python
"""Diff current ``BENCH_*.json`` documents against the committed trend
history and flag regressions.

Each benchmark document names a handful of *trend series* (solver
throughput, per-flush seconds, overlap ratio, service rates — see
:mod:`repro.bench.trend`). This tool extracts them from the documents
in the repo root and compares against the committed history file
(``benchmarks/results/trend.json``), reporting any series that moved
more than ``--threshold`` percent in its worse direction.

Modes:

* default — gating: exit 1 when any tracked series regressed;
* ``--report`` — non-gating: print the same comparison, always exit 0
  (what CI's live-smoke job runs — bench numbers from shared runners
  are too noisy to gate on);
* ``--update`` — rewrite the history file from the current documents
  (run after an intentional perf change, commit the result);
* ``--json`` — machine-readable comparison document on stdout.

Run:  PYTHONPATH=src python tools/bench_trend.py [--threshold 10]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_REPO = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")

try:
    from repro.bench.trend import (
        collect_bench_documents,
        compare_series,
        extract_series,
    )
except ImportError:  # repo-checkout fallback: tools/ sits next to src/
    sys.path.insert(0, os.path.join(_REPO, "src"))
    from repro.bench.trend import (
        collect_bench_documents,
        compare_series,
        extract_series,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench_trend.py",
        description="Compare current BENCH_*.json trend series against "
        "the committed history and flag regressions.",
    )
    parser.add_argument(
        "--root", default=os.path.normpath(_REPO), metavar="DIR",
        help="directory holding the BENCH_*.json documents "
        "(default: the repo root)",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="trend history file (default: "
        "<root>/benchmarks/results/trend.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="regression threshold in percent, measured in each "
        "series' worse direction (default 10)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="non-gating mode: print the comparison but always exit 0",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the history file from the current documents",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the comparison as one JSON document",
    )
    args = parser.parse_args(argv)
    history_path = args.history or os.path.join(
        args.root, "benchmarks", "results", "trend.json"
    )

    documents = collect_bench_documents(args.root)
    if not documents:
        print(f"error: no BENCH_*.json under {args.root!r}", file=sys.stderr)
        return 2
    current = {
        name: extract_series(doc) for name, doc in documents.items()
    }

    if args.update:
        os.makedirs(os.path.dirname(history_path), exist_ok=True)
        with open(history_path, "w", encoding="utf-8") as handle:
            json.dump({"series": current}, handle, indent=2, sort_keys=True)
            handle.write("\n")
        total = sum(len(series) for series in current.values())
        print(
            f"wrote {total} series from {len(current)} documents "
            f"to {history_path}"
        )
        return 0

    try:
        with open(history_path, encoding="utf-8") as handle:
            history = json.load(handle)["series"]
    except OSError:
        print(
            f"error: no trend history at {history_path!r} — seed it with "
            "--update and commit the result",
            file=sys.stderr,
        )
        return 0 if args.report else 2

    comparison: dict[str, list] = {}
    regressions = 0
    for name, series in sorted(current.items()):
        records = compare_series(
            series, history.get(name, {}), args.threshold
        )
        comparison[name] = records
        regressions += sum(r["regressed"] for r in records)

    if args.json:
        print(
            json.dumps(
                {
                    "threshold_pct": args.threshold,
                    "regressions": regressions,
                    "documents": comparison,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for name, records in comparison.items():
            if not records:
                print(f"{name}: no tracked series in common with history")
                continue
            worst = records[0]
            print(
                f"{name}: {len(records)} series, "
                f"{sum(r['regressed'] for r in records)} regressed"
            )
            for record in records:
                if record["regressed"] or record is worst:
                    pct = record["regression_pct"]
                    flag = "REGRESSED" if record["regressed"] else "worst"
                    print(
                        f"  [{flag}] {record['series']} "
                        f"({record['direction']}-is-better): "
                        f"{record['baseline']:.6g} -> "
                        f"{record['current']:.6g} "
                        f"({pct:+.1f}% worse)"
                        if pct is not None
                        else f"  [{flag}] {record['series']}: zero baseline"
                    )
        verdict = (
            f"{regressions} regression(s) beyond {args.threshold:g}%"
            if regressions
            else f"no regressions beyond {args.threshold:g}%"
        )
        print(verdict)
    if regressions and not args.report:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
