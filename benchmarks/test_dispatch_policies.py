"""Batched dispatch: service rate and dispatch latency by policy.

Regenerates ``benchmarks/results/dispatch_policies.txt`` and checks the
subsystem's headline claim: windowed linear-assignment dispatch serves at
least as many requests as the paper's greedy immediate baseline at this
fleet/workload, at per-window solver cost in the low milliseconds.
"""


def _by_policy(table):
    return {row[0]: row for row in table.rows}


def _num(cell):
    return None if cell in ("-", "DNF") else float(cell.replace(",", ""))


def test_dispatch_policies(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("dispatch_policies",), iterations=1, rounds=1
    )
    rows = _by_policy(table)
    assert set(rows) == {
        "greedy_immediate",
        "greedy_batched",
        "lap",
        "iterative",
        "sharded",
    }

    greedy_rate = _num(rows["greedy_immediate"][1])
    lap_rate = _num(rows["lap"][1])
    assert greedy_rate is not None and lap_rate is not None
    # The subsystem's acceptance bar: global assignment over a window
    # serves no fewer requests than per-request greedy dispatch. The
    # default-scale workload is deterministic given its seed, so this is
    # a stable pin, not a flaky heuristic ordering (at REPRO_SCALE != 1
    # the ordering is not guaranteed).
    assert lap_rate >= greedy_rate, (lap_rate, greedy_rate)

    # Dispatch latency (ACRT) stays the same order of magnitude: the
    # batch solve amortises, it doesn't blow up the response time.
    greedy_acrt = _num(rows["greedy_immediate"][2])
    for policy in ("greedy_batched", "lap", "iterative", "sharded"):
        acrt = _num(rows[policy][2])
        assert acrt is not None and acrt <= 10 * greedy_acrt, (policy, acrt)

    # Batching happened (mean batch size > 1) and the solver was timed.
    for policy in ("lap", "iterative", "sharded"):
        assert _num(rows[policy][3]) > 1.0
        assert _num(rows[policy][4]) is not None

    # Sharding federates the same lap solve; boundary reconciliation may
    # trade individual matches but the service rate must stay in the lap
    # policy's neighborhood (iterative shows the same small wobble).
    sharded_rate = _num(rows["sharded"][1])
    assert sharded_rate is not None
    assert sharded_rate >= 0.95 * lap_rate, (sharded_rate, lap_rate)
