"""The zero-copy scaling gate over the committed ``BENCH_shard.json``.

Unlike ``test_sharded_dispatch`` (which *regenerates* the document and
gates the serial work-cut), this gate reads the committed benchmark
artifact — the number a PR actually ships — so it is deterministic in
CI: the headline claim is that with the zero-copy transport on, the
process-backend 4-shard per-flush solve beats the global solve by at
least 2.5x.

Collection order matters and is guaranteed by file naming:
``test_shard_scaling.py`` sorts before ``test_sharded_dispatch.py``, so
in a full benchmark run this gate always sees the committed document,
never a mid-session regeneration.
"""

import json
import os

import pytest

DOC_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_shard.json")

#: The zero-copy A/B labels ``repro.bench.shard`` records on the
#: process backend (pickle baseline + the three arena/worker modes).
PROCESS_MODES = (
    "process",
    "process+zero_copy",
    "process+persistent",
    "process+zero_copy+persistent",
)

ZERO_COPY_MODES = ("process+zero_copy", "process+zero_copy+persistent")


@pytest.fixture(scope="module")
def doc():
    assert os.path.exists(DOC_PATH), (
        "BENCH_shard.json missing — run `PYTHONPATH=src python -m "
        "repro.bench.shard` and commit the document"
    )
    with open(DOC_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def test_document_carries_every_process_mode(doc):
    for mode in PROCESS_MODES:
        assert mode in doc["runs"], f"{mode} missing from BENCH_shard.json"
        for count in ("1", "2", "4", "8"):
            assert count in doc["runs"][mode], (mode, count)


def test_zero_copy_process_4_shards_beats_global_2_5x(doc):
    """The tentpole claim: zero-copy + 4 shards ≥ 2.5x over the global
    solve on the process backend. Gated on the best zero-copy cell —
    arena-only vs arena+persistent trade overheads differently under
    load, but at least one must clear the bar."""
    best = max(
        doc["runs"][mode]["4"]["speedup_vs_global"]
        for mode in ZERO_COPY_MODES
    )
    assert best >= 2.5, (
        f"best zero-copy 4-shard speedup {best:.2f}x < 2.5x "
        "(regenerate BENCH_shard.json on an idle machine)"
    )


def test_transport_modes_never_change_the_assignment(doc):
    """Determinism contract 11 in the committed artifact: at every
    shard count, every transport mode matched as many pairs as the
    pickle baseline, and the single-shard cells are bit-identical to
    the global solve."""
    baseline = doc["runs"]["process"]
    for mode in PROCESS_MODES:
        cells = doc["runs"][mode]
        assert cells["1"]["matches_global"] is True, mode
        for count, cell in cells.items():
            assert cell["pairs_matched"] == (
                baseline[count]["pairs_matched"]
            ), (mode, count)
            assert cell["boundary_conflicts"] == (
                baseline[count]["boundary_conflicts"]
            ), (mode, count)


def test_zero_copy_cells_record_solved_shards(doc):
    """The gate cell really sharded: 4 shards solved, conflicts seen by
    the reconciler, and a pair count within the documented 5% band of
    the global solve."""
    pairs_global = doc["global_solve"]["pairs_matched"]
    for mode in ZERO_COPY_MODES:
        cell = doc["runs"][mode]["4"]
        assert cell["num_shards_solved"] == 4, mode
        assert cell["boundary_conflicts"] > 0, mode
        assert cell["pairs_matched"] >= 0.95 * pairs_global, mode
