"""Supporting microbenchmarks: shortest-path engines, the dual LRU cache,
the grid index, and raw kinetic-tree insertion throughput.

These measure the substrate costs discussed in Section VI ("the shortest
path algorithm is called very frequently and can be the bottleneck if not
implemented efficiently").
"""

import os

import numpy as np
import pytest

from repro.bench import micro
from repro.core.kinetic.tree import KineticTree
from repro.core.request import TripRequest
from repro.roadnet.contraction import CHEngine
from repro.roadnet.engine import DijkstraEngine
from repro.roadnet.generators import grid_city
from repro.roadnet.hub_labeling import HubLabelEngine
from repro.roadnet.matrix import MatrixEngine
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid_index import GridIndex


@pytest.fixture(scope="module")
def city():
    return grid_city(20, 20, seed=3)


@pytest.fixture(scope="module")
def queries(city):
    rng = np.random.default_rng(3)
    return [
        (int(rng.integers(0, city.num_vertices)), int(rng.integers(0, city.num_vertices)))
        for _ in range(500)
    ]


def test_matrix_engine_distance(benchmark, city, queries):
    engine = MatrixEngine(city)

    def run():
        for s, e in queries:
            engine.distance(s, e)

    benchmark(run)


def test_dijkstra_engine_distance_cached(benchmark, city, queries):
    engine = DijkstraEngine(city)
    for s, e in queries:  # warm the LRU
        engine.distance(s, e)

    def run():
        for s, e in queries:
            engine.distance(s, e)

    benchmark(run)


def test_hub_label_distance(benchmark, city, queries):
    engine = HubLabelEngine(city)

    def run():
        for s, e in queries:
            engine.distance(s, e)

    benchmark(run)


def test_ch_distance(benchmark, city, queries):
    engine = CHEngine(city)

    def run():
        for s, e in queries:
            engine.distance(s, e)

    benchmark(run)


def test_batched_distance_plane(benchmark):
    """Scalar vs batched ``distance_many`` per engine on fan-out
    workloads; writes the ``BENCH_micro.json`` perf-regression artifact
    at the repo root and gates the headline win: the Dijkstra engine must
    answer batched fan-outs at >= 5x its scalar throughput."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out_path = os.path.join(repo_root, "BENCH_micro.json")
    result = benchmark.pedantic(
        micro.run_micro, kwargs={"out_path": out_path}, iterations=1, rounds=1
    )
    assert os.path.exists(out_path)
    assert set(result["engines"]) == set(micro.ENGINE_KINDS)
    assert result["engines"]["dijkstra"]["speedup"] >= 5.0
    # The batched plane's cache effectiveness ships with the artifact:
    # the Dijkstra engine reports its SourceRowCache hit/miss counters.
    cache = result["engines"]["dijkstra"]["cache_stats"]
    for key in ("row_hits", "row_misses", "row_hit_rate"):
        assert key in cache
    assert cache["row_misses"] > 0  # every fresh fan-out source misses once


def test_grid_index_query(benchmark, city):
    bounds = BoundingBox(0, 0, 5000, 5000)
    index = GridIndex(bounds, cell_meters=400)
    rng = np.random.default_rng(0)
    for vid in range(500):
        index.update(vid, float(rng.uniform(0, 5000)), float(rng.uniform(0, 5000)))

    def run():
        for _ in range(200):
            index.query_radius(2500.0, 2500.0, 900.0)

    benchmark(run)


def test_kinetic_insertion_throughput(benchmark, city):
    """Trial insertions per second at a realistic tree depth."""
    engine = MatrixEngine(city)
    rng = np.random.default_rng(1)

    def fresh_tree():
        tree = KineticTree(engine, start_vertex=0, capacity=6, mode="slack")
        t = 0.0
        rid = 0
        while tree.num_active_trips < 4:
            o, d = rng.integers(0, city.num_vertices, 2)
            if o == d:
                continue
            request = TripRequest(
                rid, int(o), int(d), t, 1800.0, 0.5, engine.distance(int(o), int(d))
            )
            rid += 1
            trial = tree.try_insert(request, tree.root_vertex, t)
            if trial is not None:
                tree.commit(trial)
        return tree, rid

    tree, rid = fresh_tree()
    probes = []
    while len(probes) < 50:
        o, d = rng.integers(0, city.num_vertices, 2)
        if o != d:
            probes.append(
                TripRequest(
                    rid + len(probes), int(o), int(d), 0.0, 1800.0, 0.5,
                    engine.distance(int(o), int(d)),
                )
            )

    def run():
        for request in probes:
            tree.try_insert(request, tree.root_vertex, 0.0)

    benchmark(run)
