"""Adaptive batching: the window-autotuning + carry-over headline
claims, gated.

Regenerates ``benchmarks/results/adaptive_window.txt`` (and
``BENCH_adaptive.json`` at the repo root) and checks, on the bimodal
off-peak/rush-hour workload:

* the adaptive run yields *shorter* mean request-to-assignment latency
  off-peak than the best fixed window (best = highest peak service
  rate) — autotuning stops charging quiet hours for rush-hour batching;
* its peak service rate is *no worse* than that best fixed window's —
  longer windows plus carry-over retries hold the line where demand
  oversubscribes the fleet;
* the window trajectory is recorded, stays clamped to the configured
  band, and actually visits both regimes (min near the floor off-peak,
  the ceiling during the surge);
* carry-over did real work and a same-seed rerun is bit-identical (the
  controller's intensity channel reads only simulated facts).
"""

import json
import os

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def test_adaptive_window(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("adaptive_window",), iterations=1, rounds=1
    )
    rows = {row[0] for row in table.rows}
    assert "adaptive" in rows and any(r.startswith("fixed_") for r in rows)

    doc_path = os.path.join(REPO_ROOT, "BENCH_adaptive.json")
    assert os.path.exists(doc_path)
    with open(doc_path, encoding="utf-8") as handle:
        doc = json.load(handle)
    runs = doc["runs"]
    adaptive = runs["adaptive"]
    best_fixed = runs[doc["best_fixed"]]

    # Headline: strictly faster off-peak, no worse at peak, than the
    # fixed window that serves the rush hour best.
    assert (
        adaptive["offpeak_latency_s"] < best_fixed["offpeak_latency_s"]
    ), (adaptive["offpeak_latency_s"], best_fixed["offpeak_latency_s"])
    assert (
        adaptive["peak_service_rate"] >= best_fixed["peak_service_rate"]
    ), (adaptive["peak_service_rate"], best_fixed["peak_service_rate"])

    # The trajectory is recorded, clamped to the band, and visits both
    # regimes: the floor during the lull, the ceiling during the surge.
    w = doc["workload"]
    trajectory = adaptive["window_trajectory"]
    assert trajectory, "no window trajectory recorded"
    windows = [entry[1] for entry in trajectory]
    assert min(windows) >= w["window_min_s"] - 1e-9
    assert max(windows) <= w["window_max_s"] + 1e-9
    assert adaptive["window_s_min"] <= w["window_min_s"] + 1.0
    assert adaptive["window_s_max"] >= w["window_max_s"] - 1.0

    # Carry-over actually exercised itself, bounded by the wait budget.
    assert adaptive["carry_events"] > 0
    assert adaptive["carry_age_s_mean"] <= w["wait_minutes"] * 60.0

    # Determinism: the controller has no effective wall-clock input at
    # simulation scale — a same-seed rerun reproduces every assignment
    # and the full trajectory.
    assert adaptive["deterministic_rerun"] is True

    # Nothing ever leaks past the service guarantee.
    for cell in runs.values():
        assert cell["guarantee_violations"] == 0
