"""Fault tolerance: the chaos-benchmark headline claims, gated.

Regenerates ``benchmarks/results/chaos.txt`` (and ``BENCH_chaos.json``
at the repo root) and checks, on the mixed-fault sweep:

* the degradation ladder holds the line — at the 5% mixed fault rate
  the service rate stays within 10% of the fault-free run on both the
  thread and process shard backends;
* every cell accounts for every request (assigned + rejected ==
  requests): faults degrade service, they never lose riders;
* the ladder actually ran — faults were injected, retries happened,
  and the deliberate over-deadline delay degraded (at least) one flush
  to greedy on every faulted cell, after which the run recovered;
* determinism contract 10: the serial cell at the gate rate replays
  bit-identically, fault counters included.
"""

import json
import os

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def test_chaos(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("chaos",), iterations=1, rounds=1
    )
    assert {row[0] for row in table.rows} == {"thread", "process", "serial"}

    doc_path = os.path.join(REPO_ROOT, "BENCH_chaos.json")
    assert os.path.exists(doc_path)
    with open(doc_path, encoding="utf-8") as handle:
        doc = json.load(handle)
    runs = doc["runs"]
    gate = f"{doc['workload']['gate_rate']:g}"

    # Headline gate: 5%-fault service within 10% of fault-free.
    for backend in ("thread", "process"):
        fault_free = runs[backend]["0"]["service_rate"]
        at_gate = runs[backend][gate]["service_rate"]
        assert at_gate >= 0.9 * fault_free, (backend, at_gate, fault_free)

    # No cell, at any intensity, loses a request or breaks a guarantee.
    for backend, cells in runs.items():
        for rate, cell in cells.items():
            assert cell["accounting_ok"], (backend, rate)
            assert cell["guarantee_violations"] == 0, (backend, rate)

    # The ladder was actually exercised in every faulted cell: faults
    # landed, retries absorbed most, and the deliberate over-deadline
    # delay downgraded at least one flush to greedy.
    for backend, cells in runs.items():
        for rate, cell in cells.items():
            if rate == "0":
                assert cell["faults_injected"] == 0
                assert cell["flushes_degraded"] == 0
                continue
            assert cell["faults_injected"] > 0, (backend, rate)
            assert cell["retries"] > 0, (backend, rate)
            assert cell["flushes_degraded"] >= 1, (backend, rate)

    # Determinism contract 10 at the gate rate on the serial backend.
    assert runs["serial"][gate]["deterministic_rerun"] is True
