"""Sharded dispatch: the subsystem's two headline claims, gated.

Regenerates ``benchmarks/results/sharded_dispatch.txt`` (and
``BENCH_shard.json`` at the repo root) and checks:

* ``shards=1`` on the serial backend reproduces the global solve's
  pairs exactly — the bit-identical fallback;
* per-flush solve wall time improves with shard count on the large
  synthetic flush (serial backend, so the win is the O(n^3) -> k
  blocks work cut, not thread scheduling luck).
"""

import json
import os

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def _rows_by_key(table):
    return {(row[0], row[1]): row for row in table.rows}


def test_sharded_dispatch(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("sharded_dispatch",), iterations=1, rounds=1
    )
    rows = _rows_by_key(table)

    # Bit-identical fallback: one serial shard returns the global pairs.
    assert rows[("serial", "1")][6] == "yes"

    # Wall time improves with shard count: the 4-shard serial solve beats
    # the 1-shard (global) solve with margin. Best-of-N timing on a
    # ~200x200 flush keeps this stable across machines.
    doc_path = os.path.join(REPO_ROOT, "BENCH_shard.json")
    assert os.path.exists(doc_path)
    with open(doc_path, encoding="utf-8") as handle:
        doc = json.load(handle)
    serial = doc["runs"]["serial"]
    assert serial["1"]["matches_global"] is True
    assert serial["1"]["boundary_conflicts"] == 0
    t1 = serial["1"]["per_flush_seconds"]
    t4 = serial["4"]["per_flush_seconds"]
    assert t4 <= 0.8 * t1, (t4, t1)
    # Monotone trend at the coarse level: more shards never costs more
    # than the global solve.
    for count in ("2", "4", "8"):
        assert serial[count]["per_flush_seconds"] <= t1, count

    # Sharding trades at most a handful of boundary matches before the
    # policy's sequential cleanup re-quotes them.
    pairs_global = doc["global_solve"]["pairs_matched"]
    for count in ("2", "4", "8"):
        assert serial[count]["pairs_matched"] >= 0.95 * pairs_global
        assert serial[count]["boundary_conflicts"] > 0
