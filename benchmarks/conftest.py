"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper artifact via
:mod:`repro.bench.experiments` and saves the rendered table under
``benchmarks/results/`` so a full ``pytest benchmarks/ --benchmark-only``
run leaves every table on disk.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def run_and_save(results_dir):
    """Run an experiment by id, save its table, return it."""
    from repro.bench.experiments import run_experiment

    def runner(experiment_id: str):
        table = run_experiment(experiment_id)
        table.save(results_dir)
        return table

    return runner
