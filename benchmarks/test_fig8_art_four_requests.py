"""Figure 8: ART at four active requests, four algorithms, as constraints
and fleet size vary."""


def test_fig8a_by_constraints(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig8a",), iterations=1, rounds=1
    )
    assert len(table.rows) == 5
    populated = [
        row for row in table.rows if any(v not in ("-", "DNF") for v in row[1:])
    ]
    assert populated, "no populated ART bucket in any constraint cell"


def test_fig8b_by_servers(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig8b",), iterations=1, rounds=1
    )
    assert len(table.rows) == 5
    populated = [
        row for row in table.rows if any(v not in ("-", "DNF") for v in row[1:])
    ]
    assert populated, "no populated ART bucket in any fleet cell"
