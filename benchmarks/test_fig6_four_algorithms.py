"""Figure 6: four-algorithm comparison (kinetic tree, brute force,
branch & bound, MIP) — ART by request count, ACRT vs constraints, ACRT
vs fleet size."""


def _cell(table, row, col):
    value = table.rows[row][col]
    return None if value in ("-", "DNF") else float(value)


def test_fig6a_art_by_requests(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig6a",), iterations=1, rounds=1
    )
    assert table.rows, "no ART buckets observed"
    # Paper shape: the kinetic tree is not slower than the baselines in
    # the deepest bucket where the tree itself was observed.
    deepest_row = max(
        (r for r in range(len(table.rows)) if _cell(table, r, 1) is not None),
        default=None,
    )
    assert deepest_row is not None, "tree never quoted in any bucket"
    tree = _cell(table, deepest_row, 1)
    others = [
        _cell(table, deepest_row, c)
        for c in (2, 3, 4)
        if _cell(table, deepest_row, c) is not None
    ]
    assert all(tree <= v * 1.5 for v in others), (
        "kinetic tree should not be slower than baselines in the deepest "
        f"bucket: {table.rows[deepest_row]}"
    )


def test_fig6b_acrt_by_constraints(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig6b",), iterations=1, rounds=1
    )
    assert len(table.rows) == 5  # the five constraint settings
    for row_index in range(len(table.rows)):
        tree = _cell(table, row_index, 1)
        mip = _cell(table, row_index, 4)
        # Paper shape: MIP is an order of magnitude+ slower than the tree.
        assert tree is not None and mip is not None
        assert mip > 3 * tree, (table.rows[row_index],)


def test_fig6c_acrt_by_servers(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig6c",), iterations=1, rounds=1
    )
    assert len(table.rows) == 5  # five fleet sizes
    for row_index in range(len(table.rows)):
        tree = _cell(table, row_index, 1)
        bf = _cell(table, row_index, 2)
        assert tree is not None and bf is not None
