"""Design-choice ablations called out in DESIGN.md: the assignment
objective (total vs delta cost) and the tree invalidation policy
(eager vs lazy)."""


def test_ablation_objective(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("ablation_objective",), iterations=1, rounds=1
    )
    assert [row[0] for row in table.rows] == ["total", "delta"]
    for row in table.rows:
        assert row[1] != "DNF"


def test_ablation_invalidation(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("ablation_invalidation",), iterations=1, rounds=1
    )
    assert [row[0] for row in table.rows] == ["lazy", "eager"]
    # Invalidation policy changes upkeep cost, never assignments.
    lazy_rate, eager_rate = table.rows[0][2], table.rows[1][2]
    assert lazy_rate == eager_rate


def test_ablation_beam(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("ablation_beam",), iterations=1, rounds=1
    )
    labels = [row[0] for row in table.rows]
    assert labels == ["exact", "32", "8", "2"]
    # Beams bound the tree, so no cell may DNF.
    for row in table.rows:
        assert row[1] != "DNF"


def test_engine_cache_table(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("micro_engine",), iterations=1, rounds=1
    )
    assert [row[0] for row in table.rows] == [
        "matrix",
        "dijkstra+lru",
        "hub_label",
        "ch",
    ]
