"""Tables I and II: parameter grids of both experiment suites (paper
values side by side with the scaled values actually used here)."""


def test_table1_parameters(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("table1",), iterations=1, rounds=1
    )
    assert table.headers == ["parameter", "paper", "this reproduction"]
    assert any("Capacity" in row[0] for row in table.rows)


def test_table2_parameters(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("table2",), iterations=1, rounds=1
    )
    capacity_row = next(row for row in table.rows if row[0] == "Capacity")
    assert "unlim" in capacity_row[2]
