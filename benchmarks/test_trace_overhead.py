"""Tracing overhead gates.

Two claims from ``repro.obs.trace``'s module docstring, measured:

* **enabled is cheap** — across a reference flush (quote the batch
  through ``QuoteService``, solve the LAP) the tracer's seams account
  for at most 3 % of the flush, seam-timed min-over-repeats;
* **disabled is free** — with tracing off the same flush never
  constructs a single ``Span`` (constructor poisoned), so the hot path
  pays one attribute load and one branch, not an allocation.
"""

import pytest

from repro.core.matching import Dispatcher
from repro.dispatch.quoting import QuoteService
from repro.dispatch.solver import solve_assignment
from repro.obs.trace import NULL_TRACER, Span, Tracer, clock
from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.fleet import build_fleet
from repro.sim.workload import ShanghaiLikeWorkload


@pytest.fixture(scope="module")
def flush_scenario():
    """One real flush's worth of work: a kinetic fleet and a batch of
    requests sized so quote+solve takes milliseconds (so the 3 % band
    is far above timer noise)."""
    city = grid_city(22, 22, seed=9)
    engine = MatrixEngine(city)
    config = SimulationConfig(num_vehicles=24, algorithm="kinetic", seed=9)
    agents = build_fleet(engine, config, start_time=0.0)
    specs = ShanghaiLikeWorkload(city, seed=9, min_trip_meters=800.0).generate(
        num_trips=40, duration_seconds=60.0
    )
    dispatcher = Dispatcher(engine, agents)
    requests = [
        request
        for spec in specs
        if (
            request := dispatcher.make_request(
                spec.origin, spec.destination, 100.0, 600.0, 0.2
            )
        )
        is not None
    ]
    return dispatcher, requests


def reference_flush(dispatcher, requests, tracer):
    """Quote + solve one batch exactly as the pipeline stages do."""
    dispatcher.tracer = tracer
    service = QuoteService(workers=0, tracer=tracer)
    with tracer.span("flush", requests=len(requests)):
        with tracer.span("quote.collect", cat="quote"):
            quote_set = service.begin(dispatcher, requests, 120.0).collect()
        matrix = quote_set.matrix
        with tracer.span(
            "solve",
            cat="solve",
            rows=int(matrix.keys.shape[0]),
            cols=int(matrix.keys.shape[1]),
        ):
            pairs = solve_assignment(matrix.keys)
    return pairs


def test_traced_flush_within_3_percent_of_untraced(
    flush_scenario, monkeypatch
):
    dispatcher, requests = flush_scenario
    traced = Tracer(enabled=True)

    # Warm every cache (engine rows, decision points), and pin the
    # standing contract: tracing never changes the assignment.
    baseline_pairs = reference_flush(dispatcher, requests, NULL_TRACER)
    assert reference_flush(dispatcher, requests, traced) == baseline_pairs

    # Seam-timing, same design as the live-layer gate below: tracing
    # touches the flush only through ``Tracer.span`` / ``Tracer.emit``
    # and ``Span.__enter__`` / ``__exit__``, so its cost is summed at
    # those seams and compared to the *rest of the same run*. A/B
    # differencing of two whole flushes cannot resolve 3 % on shared
    # machines — identical ~20 ms flushes drift far more than that
    # with neighbor load — but a within-run ratio holds steady because
    # interference inflates numerator and denominator together.
    spent = {"trace": 0.0}

    def timed(method):
        def wrapper(*args, **kwargs):
            t0 = clock()
            result = method(*args, **kwargs)
            spent["trace"] += clock() - t0
            return result

        return wrapper

    monkeypatch.setattr(Tracer, "span", timed(Tracer.span))
    monkeypatch.setattr(Tracer, "emit", timed(Tracer.emit))
    monkeypatch.setattr(Span, "__enter__", timed(Span.__enter__))
    monkeypatch.setattr(Span, "__exit__", timed(Span.__exit__))

    ratios = []
    for _ in range(7):
        spent["trace"] = 0.0
        t0 = clock()
        pairs = reference_flush(dispatcher, requests, traced)
        total = clock() - t0
        ratios.append(spent["trace"] / (total - spent["trace"]))

    assert pairs == baseline_pairs  # telemetry never steers dispatch
    ratio = min(ratios)  # min-over-repeats: the stable floor
    assert ratio <= 0.03, (
        f"tracing spent {ratio * 100:.2f} % of flush time "
        f"(samples: {[f'{r * 100:.2f}%' for r in ratios]}, gate is 3 %)"
    )


def test_disabled_trace_allocates_no_spans(flush_scenario, monkeypatch):
    dispatcher, requests = flush_scenario

    def explode(*args, **kwargs):
        raise AssertionError("span allocated with tracing disabled")

    monkeypatch.setattr(Span, "__init__", explode)
    pairs = reference_flush(dispatcher, requests, NULL_TRACER)
    assert pairs  # the flush really ran, without one Span.__init__
    assert NULL_TRACER.records() == []


# ----------------------------------------------------------------------
# Live-telemetry layer (PR 8): the rolling-window plane rides the same
# budget discipline — a fully enabled live layer (time series + SLO +
# resource monitor) stays within 5 % of the disabled run, full-sim A/B.
# ----------------------------------------------------------------------
def test_live_layer_within_5_percent_of_disabled(tmp_path, monkeypatch):
    from repro.obs.live import LiveTelemetry
    from repro.sim.simulator import simulate

    # Measurement design: the live layer enters the simulation through
    # exactly two seams — ``LiveTelemetry.advance`` (per event) and
    # ``LiveTelemetry.finish`` (end of run) — so its cost is timed *at
    # those seams* and compared against the same run's remaining sim
    # time. A/B differencing of two whole-run timings cannot resolve
    # 5 % on shared CI machines (identical runs drift ±30 % there);
    # the within-run ratio is stable because interference inflates
    # numerator and denominator together.
    #
    # Window density matters too: live cost scales with *window
    # rolls*, sim cost with *dispatch work*, so the gate uses a
    # request rate dense enough that each 60 s window holds real
    # flush work (~7 requests/min — still far below the paper's
    # city-scale rates; a sparser-than-production workload would
    # overstate the ratio).
    city = grid_city(12, 12, seed=5)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=5, min_trip_meters=500.0).generate(
        num_trips=100, duration_seconds=900
    )
    base = dict(
        num_vehicles=8,
        algorithm="kinetic",
        seed=2,
        dispatch_policy="lap",
        batch_window_s=15.0,
    )
    live = dict(
        base,
        timeseries_out=str(tmp_path / "ts.jsonl"),
        timeseries_window_s=60.0,
        slo="service_rate>=0.5,wait_p99<=600",
        slo_out=str(tmp_path / "slo.json"),
        resource_monitor=True,
    )

    def run(params):
        return simulate(engine, SimulationConfig(**params), trips)

    # Warm caches, and pin the contract while we are at it.
    off_report = run(base)
    on_report = run(live)
    assert on_report.num_assigned == off_report.num_assigned
    assert (
        on_report.total_assignment_cost == off_report.total_assignment_cost
    )

    spent = {"live": 0.0}
    real_advance = LiveTelemetry.advance
    real_finish = LiveTelemetry.finish

    def timed_advance(self, now):
        t0 = clock()
        real_advance(self, now)
        spent["live"] += clock() - t0

    def timed_finish(self, now):
        t0 = clock()
        result = real_finish(self, now)
        spent["live"] += clock() - t0
        return result

    monkeypatch.setattr(LiveTelemetry, "advance", timed_advance)
    monkeypatch.setattr(LiveTelemetry, "finish", timed_finish)

    ratios = []
    for _ in range(3):
        spent["live"] = 0.0
        t0 = clock()
        run(live)
        total = clock() - t0
        ratios.append(spent["live"] / (total - spent["live"]))

    ratio = min(ratios)  # min-over-repeats, as for the trace gates
    assert ratio <= 0.05, (
        f"live layer spent {ratio * 100:.2f} % of sim time "
        f"(samples: {[f'{r * 100:.2f}%' for r in ratios]}, gate is 5 %)"
    )
