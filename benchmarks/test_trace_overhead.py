"""Tracing overhead gates.

Two claims from ``repro.obs.trace``'s module docstring, measured:

* **enabled is cheap** — a traced reference flush (quote the batch
  through ``QuoteService``, solve the LAP) stays within 3 % of the
  untraced flush, min-over-repeats with interleaved A/B sampling;
* **disabled is free** — with tracing off the same flush never
  constructs a single ``Span`` (constructor poisoned), so the hot path
  pays one attribute load and one branch, not an allocation.
"""

import pytest

from repro.core.matching import Dispatcher
from repro.dispatch.quoting import QuoteService
from repro.dispatch.solver import solve_assignment
from repro.obs.trace import NULL_TRACER, Span, Tracer, clock
from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.fleet import build_fleet
from repro.sim.workload import ShanghaiLikeWorkload


@pytest.fixture(scope="module")
def flush_scenario():
    """One real flush's worth of work: a kinetic fleet and a batch of
    requests sized so quote+solve takes milliseconds (so the 3 % band
    is far above timer noise)."""
    city = grid_city(22, 22, seed=9)
    engine = MatrixEngine(city)
    config = SimulationConfig(num_vehicles=24, algorithm="kinetic", seed=9)
    agents = build_fleet(engine, config, start_time=0.0)
    specs = ShanghaiLikeWorkload(city, seed=9, min_trip_meters=800.0).generate(
        num_trips=40, duration_seconds=60.0
    )
    dispatcher = Dispatcher(engine, agents)
    requests = [
        request
        for spec in specs
        if (
            request := dispatcher.make_request(
                spec.origin, spec.destination, 100.0, 600.0, 0.2
            )
        )
        is not None
    ]
    return dispatcher, requests


def reference_flush(dispatcher, requests, tracer):
    """Quote + solve one batch exactly as the pipeline stages do."""
    dispatcher.tracer = tracer
    service = QuoteService(workers=0, tracer=tracer)
    with tracer.span("flush", requests=len(requests)):
        with tracer.span("quote.collect", cat="quote"):
            quote_set = service.begin(dispatcher, requests, 120.0).collect()
        matrix = quote_set.matrix
        with tracer.span(
            "solve",
            cat="solve",
            rows=int(matrix.keys.shape[0]),
            cols=int(matrix.keys.shape[1]),
        ):
            pairs = solve_assignment(matrix.keys)
    return pairs


def test_traced_flush_within_3_percent_of_untraced(flush_scenario):
    dispatcher, requests = flush_scenario
    traced = Tracer(enabled=True)

    # Warm every cache (engine rows, decision points) before timing.
    baseline_pairs = reference_flush(dispatcher, requests, NULL_TRACER)
    reference_flush(dispatcher, requests, traced)

    off_samples, on_samples = [], []
    for _ in range(7):  # interleave A/B so drift hits both equally
        t0 = clock()
        reference_flush(dispatcher, requests, NULL_TRACER)
        off_samples.append(clock() - t0)
        t0 = clock()
        pairs = reference_flush(dispatcher, requests, traced)
        on_samples.append(clock() - t0)

    assert pairs == baseline_pairs  # telemetry never steers dispatch
    off, on = min(off_samples), min(on_samples)
    # min-over-repeats of identical pure work: the stable floor of each
    # configuration. A tiny absolute floor keeps sub-ms noise honest.
    assert on <= off * 1.03 + 2e-4, (
        f"traced flush {on * 1e3:.3f} ms vs untraced {off * 1e3:.3f} ms "
        f"({(on / off - 1) * 100:.2f} % overhead, gate is 3 %)"
    )


def test_disabled_trace_allocates_no_spans(flush_scenario, monkeypatch):
    dispatcher, requests = flush_scenario

    def explode(*args, **kwargs):
        raise AssertionError("span allocated with tracing disabled")

    monkeypatch.setattr(Span, "__init__", explode)
    pairs = reference_flush(dispatcher, requests, NULL_TRACER)
    assert pairs  # the flush really ran, without one Span.__init__
    assert NULL_TRACER.records() == []
