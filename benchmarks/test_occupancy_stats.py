"""Section VI.B closing statistics: occupancy at unlimited capacity
(paper: max 17 passengers, fleet mean 1.7, top-20% mean ~3.9)."""


def test_occupancy_statistics(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("occupancy",), iterations=1, rounds=1
    )
    stats = {row[0]: row[2] for row in table.rows}
    max_passengers = stats.get("max passengers in any server")
    assert max_passengers not in (None, "-", "DNF")
    # Paper shape: a small number of rides need large vehicles (max well
    # above the typical 4-seater) while typical occupancy stays low.
    assert int(max_passengers) >= 5
