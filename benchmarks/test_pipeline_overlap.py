"""Staged dispatch pipeline: the async quote stage's two headline
claims, gated.

Regenerates ``benchmarks/results/pipeline_overlap.txt`` (and
``BENCH_pipeline.json`` at the repo root) and checks:

* the thread-backend quote stage overlaps >= 30% of its wall time with
  event execution on the large synthetic workload — async quoting
  genuinely hides quote work behind the simulation;
* its assignments are identical to the deferred synchronous stage
  (staleness epochs + deterministic re-quotes make worker timing
  invisible), and staleness repair actually exercised itself.
"""

import json
import os

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def test_pipeline_overlap(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("pipeline_overlap",), iterations=1, rounds=1
    )
    rows = {row[0]: row for row in table.rows}
    assert set(rows) == {"sync", "deferred", "async_thread"}

    doc_path = os.path.join(REPO_ROOT, "BENCH_pipeline.json")
    assert os.path.exists(doc_path)
    with open(doc_path, encoding="utf-8") as handle:
        doc = json.load(handle)
    runs = doc["runs"]

    # Headline: >= 30% of quote wall time ran while the simulator was
    # still executing the overlap window's events.
    ratio = runs["async_thread"]["overlap_ratio_mean"]
    assert ratio >= 0.30, ratio

    # Determinism: worker timing is invisible — async matches deferred
    # bit-for-bit on every assignment, pickup and dropoff.
    assert runs["async_thread"]["matches_deferred"] is True

    # The staleness machinery was actually exercised (vehicles moved
    # between quote and commit and were re-quoted), and nothing leaked
    # past the service guarantee.
    assert runs["async_thread"]["staleness_requotes"] > 0
    for label in ("sync", "deferred", "async_thread"):
        assert runs[label]["guarantee_violations"] == 0
        assert runs[label]["pipeline_flushes"] > 0

    # The synchronous stages never overlap anything by construction.
    assert runs["sync"]["overlap_ratio_mean"] == 0.0
    assert runs["deferred"]["overlap_ratio_mean"] == 0.0
