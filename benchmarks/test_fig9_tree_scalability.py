"""Figure 9: tree scalability — ART at six active requests vs
constraints/servers, and the capacity sweep up to unlimited where only
hotspot clustering stays flat."""


def _cell(table, row, col):
    value = table.rows[row][col]
    return None if value in ("-", "DNF") else float(value)


def test_fig9a_by_constraints(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig9a",), iterations=1, rounds=1
    )
    assert len(table.rows) == 5


def test_fig9b_by_servers(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig9b",), iterations=1, rounds=1
    )
    assert len(table.rows) == 5


def test_fig9c_by_capacity(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig9c",), iterations=1, rounds=1
    )
    assert len(table.rows) == 9  # 3,4,5,6,7,8,12,16,unlim
    # Paper shape 1: the hotspot variant completes every capacity
    # including unlimited.
    hotspot_values = [_cell(table, r, 3) for r in range(len(table.rows))]
    assert all(v is not None for v in hotspot_values)
    # Paper shape 2: basic/slack blow up (or DNF) at high capacity while
    # hotspot stays flat: compare growth from the smallest capacity row.
    basic_small, basic_large = _cell(table, 0, 1), table.rows[-1][1]
    hot_small, hot_large = hotspot_values[0], hotspot_values[-1]
    assert hot_large < hot_small * 3, "hotspot ACRT should stay flat"
    if basic_large != "DNF":
        assert float(basic_large) > basic_small, (
            "basic tree ACRT should grow with capacity"
        )
