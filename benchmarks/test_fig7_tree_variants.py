"""Figure 7: tree-variant comparison (basic / slack-time / hotspot) —
ART by request count, ACRT vs constraints, ACRT vs fleet size."""


def _cell(table, row, col):
    value = table.rows[row][col]
    return None if value in ("-", "DNF") else float(value)


def test_fig7a_art_by_requests(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig7a",), iterations=1, rounds=1
    )
    assert table.rows
    # ART grows with the number of active requests (paper shape): the
    # deepest bucket should be slower than the idle bucket for the basic
    # tree.
    first = _cell(table, 0, 1)
    deepest = next(
        (_cell(table, r, 1) for r in range(len(table.rows) - 1, 0, -1)
         if _cell(table, r, 1) is not None),
        None,
    )
    assert first is not None and deepest is not None
    assert deepest > first


def test_fig7b_acrt_by_constraints(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig7b",), iterations=1, rounds=1
    )
    assert len(table.rows) == 5
    for row in table.rows:
        assert all(value != "DNF" for value in row[1:])


def test_fig7c_acrt_by_servers(benchmark, run_and_save):
    table = benchmark.pedantic(
        run_and_save, args=("fig7c",), iterations=1, rounds=1
    )
    assert len(table.rows) == 5
    for row in table.rows:
        assert all(value != "DNF" for value in row[1:])
