"""The documentation front door stays truthful.

Three families: every markdown link in README/docs resolves (the same
check CI's link-check job runs), the README documents every CLI flag
the simulator exposes, and every experiment id in the bench registry is
mapped in the README's reproduction tables.
"""

import os
import re
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from check_links import check_links, markdown_files, slugify  # noqa: E402


def _read_readme() -> str:
    with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as f:
        return f.read()


def test_docs_exist():
    assert os.path.exists(os.path.join(REPO_ROOT, "README.md"))
    assert os.path.exists(os.path.join(REPO_ROOT, "docs", "architecture.md"))
    assert os.path.exists(os.path.join(REPO_ROOT, "docs", "determinism.md"))


def test_markdown_links_resolve():
    files = markdown_files(REPO_ROOT)
    assert len(files) >= 3  # README + the two docs pages
    errors = check_links(REPO_ROOT)
    assert not errors, "\n".join(errors)


def test_slugify_matches_github_style():
    assert slugify("Scaling-layer benchmarks (`BENCH_*.json`)") == (
        "scaling-layer-benchmarks-bench_json"
    )
    assert slugify("## Install") == "install"


def test_readme_documents_every_cli_flag():
    """The full CLI table: every flag the sim parser exposes appears in
    the README (and vice versa nothing phantom is documented)."""
    from repro.sim.__main__ import build_parser

    readme = _read_readme()
    flags = {
        option
        for action in build_parser()._actions
        for option in action.option_strings
        if option.startswith("--")
    }
    flags.discard("--help")  # argparse built-in
    missing = {flag for flag in flags if f"`{flag}" not in readme}
    assert not missing, f"CLI flags undocumented in README: {sorted(missing)}"


def test_readme_documents_every_simulation_config_field():
    """Every SimulationConfig field is named in the README — either in
    the CLI table or in the library-only list."""
    from repro.sim.config import SimulationConfig

    readme = _read_readme()
    fields = set(SimulationConfig.__dataclass_fields__)
    fields.discard("seed")  # documented as --seed
    missing = {
        field
        for field in fields
        if f"`{field}`" not in readme and f"({field})" not in readme
    }
    assert not missing, f"config fields undocumented in README: {sorted(missing)}"


def test_readme_maps_every_experiment_id():
    from repro.bench.experiments import ALL_EXPERIMENTS

    readme = _read_readme()
    missing = {
        exp_id for exp_id in ALL_EXPERIMENTS if f"`{exp_id}`" not in readme
    }
    assert not missing, f"experiment ids unmapped in README: {sorted(missing)}"


def test_readme_names_every_bench_json():
    readme = _read_readme()
    for name in (
        "BENCH_micro.json",
        "BENCH_shard.json",
        "BENCH_pipeline.json",
        "BENCH_adaptive.json",
        "BENCH_chaos.json",
    ):
        assert name in readme, f"{name} not described in README"


def test_determinism_contracts_point_at_real_tests():
    """Every test path named in docs/determinism.md exists."""
    path = os.path.join(REPO_ROOT, "docs", "determinism.md")
    with open(path, encoding="utf-8") as f:
        text = f.read()
    for match in re.finditer(r"`(tests/[\w/]+\.py)`", text):
        assert os.path.exists(
            os.path.join(REPO_ROOT, match.group(1))
        ), f"determinism.md references missing {match.group(1)}"
