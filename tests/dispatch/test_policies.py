"""Assignment policies over scripted agents with known quote costs."""

import math

import pytest

from repro.core.matching import Dispatcher, Quote, VehicleAgent
from repro.core.request import TripRequest
from repro.core.vehicle import Vehicle
from repro.dispatch.costs import build_cost_matrix
from repro.dispatch.policies import (
    GreedyPolicy,
    IterativePolicy,
    LapPolicy,
    POLICY_REGISTRY,
    make_policy,
)


class ScriptedAgent(VehicleAgent):
    """Agent quoting scripted costs; each commit inflates later quotes by
    ``commit_penalty`` (``inf`` = refuses a second request outright)."""

    def __init__(self, vehicle_id, costs, commit_penalty=float("inf"), plan_cost=0.0):
        super().__init__(Vehicle(vehicle_id, start_vertex=0), engine=None)
        self.costs = dict(costs)
        self.commit_penalty = commit_penalty
        self.plan_cost = plan_cost
        self.committed = []

    def quote(self, request, now):
        if request.request_id not in self.costs:
            return None
        cost = self.costs[request.request_id]
        if self.committed:
            cost += len(self.committed) * self.commit_penalty
        if not math.isfinite(cost):
            return None
        return Quote(
            agent=self, request=request, cost=cost,
            decision_vertex=0, decision_time=now,
        )

    def commit(self, quote):
        self.committed.append(quote.request)

    def next_stop(self):
        return None

    def arrive_next(self):
        raise NotImplementedError

    @property
    def num_active_trips(self):
        return len(self.committed)

    @property
    def load(self):
        return 0

    def current_plan_cost(self):
        return self.plan_cost


def _request(rid):
    return TripRequest(rid, 0, 5, 100.0, 600.0, 0.2, 100.0)


def _setup(agent_costs, objective="total", **agent_kwargs):
    agents = [
        ScriptedAgent(vid, costs, **agent_kwargs)
        for vid, costs in enumerate(agent_costs)
    ]
    return Dispatcher(None, agents, objective=objective), agents


# The canonical greedy trap: arrival order gives request 0 the shared
# cheap vehicle, forcing request 1 onto the expensive one.
TRAP = [{0: 10.0, 1: 5.0}, {0: 12.0, 1: 20.0}]


def test_greedy_follows_arrival_order():
    dispatcher, agents = _setup(TRAP)
    batch = GreedyPolicy().assign(dispatcher, [_request(0), _request(1)], 100.0)
    assert [r.winner.vehicle.vehicle_id for r in batch.results] == [0, 1]
    assert [r.cost for r in batch.results] == [10.0, 20.0]
    assert batch.rounds == 0 and batch.solver_seconds == 0.0


def test_lap_finds_global_optimum():
    dispatcher, agents = _setup(TRAP)
    batch = LapPolicy().assign(dispatcher, [_request(0), _request(1)], 100.0)
    assert [r.winner.vehicle.vehicle_id for r in batch.results] == [1, 0]
    assert [r.cost for r in batch.results] == [12.0, 5.0]
    assert sum(r.cost for r in batch.results) < 30.0  # greedy's total
    assert batch.rounds == 1


def test_results_keep_request_order():
    dispatcher, _ = _setup(TRAP)
    batch = LapPolicy().assign(dispatcher, [_request(1), _request(0)], 100.0)
    assert [r.request.request_id for r in batch.results] == [1, 0]


def test_tie_breaks_to_lowest_vehicle_id():
    for policy in (GreedyPolicy(), LapPolicy()):
        dispatcher, _ = _setup([{0: 7.0}, {0: 7.0}])
        batch = policy.assign(dispatcher, [_request(0)], 100.0)
        assert batch.results[0].winner.vehicle.vehicle_id == 0


def test_infeasible_request_rejected():
    dispatcher, _ = _setup([{0: 3.0}, {0: 4.0}])  # nobody quotes request 1
    batch = LapPolicy().assign(dispatcher, [_request(0), _request(1)], 100.0)
    assert batch.results[0].assigned
    assert not batch.results[1].assigned
    assert batch.results[1].cost == float("inf")
    assert batch.num_assigned == 1 and batch.num_rejected == 1


def test_lap_cleanup_pools_leftovers():
    """A request that loses the assignment round still gets a vehicle via
    the sequential cleanup pass (second commit on the same agent)."""
    dispatcher, agents = _setup(
        [{0: 10.0, 1: 5.0}], commit_penalty=100.0
    )
    batch = LapPolicy().assign(dispatcher, [_request(0), _request(1)], 100.0)
    assert batch.num_assigned == 2
    assert len(agents[0].committed) == 2
    # The loser re-quoted against the updated (penalised) schedule.
    costs = sorted(r.cost for r in batch.results)
    assert costs == [5.0, 110.0]


def test_iterative_runs_extra_rounds():
    costs = [{0: 10.0, 1: 5.0, 2: 6.0}, {0: 12.0, 1: 20.0, 2: 30.0}]
    dispatcher, _ = _setup(costs, commit_penalty=100.0)
    requests = [_request(0), _request(1), _request(2)]
    batch = IterativePolicy(rounds=3).assign(dispatcher, requests, 100.0)
    assert batch.num_assigned == 3
    assert batch.rounds == 2  # round 1 assigns two, round 2 the third
    # ART samples accumulate across rounds: the round-2 winner was also
    # quoted (by both agents) in round 1.
    round2_winner = next(
        r for r in batch.results if r.request.request_id == 2
    )
    assert len(round2_winner.quote_timings) == 4

    dispatcher, _ = _setup(costs, commit_penalty=100.0)
    lap = LapPolicy().assign(dispatcher, requests, 100.0)
    assert lap.rounds == 1
    assert lap.num_assigned == 3  # cleanup pass covers the leftover


def test_delta_objective_uses_incremental_cost():
    # Agent 0 quotes cheaper in absolute cost but its plan already costs
    # 9, so its *incremental* cost (1) still wins under "delta"; agent 1
    # would win if the objective ignored the existing plan... flip it:
    # agent 0 total 10 (delta 1), agent 1 total 8 (delta 8) — "total"
    # picks agent 1, "delta" picks agent 0.
    for objective, want in (("total", 1), ("delta", 0)):
        agents = [
            ScriptedAgent(0, {0: 10.0}, plan_cost=9.0),
            ScriptedAgent(1, {0: 8.0}, plan_cost=0.0),
        ]
        dispatcher = Dispatcher(None, agents, objective=objective)
        batch = LapPolicy().assign(dispatcher, [_request(0)], 100.0)
        assert batch.results[0].winner.vehicle.vehicle_id == want, objective


def test_build_cost_matrix_shape_and_keys():
    dispatcher, agents = _setup(TRAP)
    requests = [_request(0), _request(1)]
    matrix = build_cost_matrix(dispatcher, requests, 100.0)
    assert matrix.shape == (2, 2)
    assert matrix.keys[0, 0] == 10.0 and matrix.keys[1, 1] == 20.0
    assert matrix.candidate_counts == [2, 2]
    assert all(len(matrix.row_timings(i)) == 2 for i in range(2))
    quote = matrix.quotes[0][1]
    assert quote.agent is agents[1] and quote.cost == 12.0


def test_empty_batch():
    dispatcher, _ = _setup(TRAP)
    for policy in (GreedyPolicy(), LapPolicy(), IterativePolicy()):
        batch = policy.assign(dispatcher, [], 100.0)
        assert batch.results == [] and batch.batch_size == 0


def test_make_policy_registry():
    assert set(POLICY_REGISTRY) == {"greedy", "lap", "iterative", "sharded"}
    assert isinstance(make_policy("greedy"), GreedyPolicy)
    assert isinstance(make_policy("lap"), LapPolicy)
    iterative = make_policy("iterative", assignment_rounds=5)
    assert isinstance(iterative, IterativePolicy) and iterative.rounds == 5
    sharded = make_policy(
        "sharded", num_shards=4, shard_backend="thread",
        shard_boundary_cells=2,
    )
    assert sharded.partitioner.num_shards == 4
    assert sharded.partitioner.boundary_cells == 2
    assert sharded.executor.backend == "thread"
    sharded.close()
    with pytest.raises(ValueError, match="unknown dispatch policy"):
        make_policy("simulated_annealing")
    with pytest.raises(ValueError):
        IterativePolicy(rounds=0)
    with pytest.raises(ValueError, match="backend"):
        make_policy("sharded", shard_backend="gpu")


def test_near_tie_resolves_to_lowest_vehicle_id_like_submit():
    """Costs within submit's 1e-9 tie tolerance: the snapped solver keys
    compare equal, so lap picks the lowest vehicle id — exactly what
    Dispatcher.submit does on the same quotes (previously the solver saw
    the raw floats and handed the request to the nominally-cheaper,
    higher-id vehicle)."""
    agent_costs = [{0: 100.0 + 4e-10}, {0: 100.0}]

    dispatcher, agents = _setup(agent_costs)
    matrix = build_cost_matrix(dispatcher, [_request(0)], 100.0)
    assert matrix.keys[0, 0] == matrix.keys[0, 1]
    # Quotes keep the exact (unsnapped) costs.
    assert matrix.quotes[0][0].cost == 100.0 + 4e-10

    batch = LapPolicy().assign(dispatcher, [_request(0)], 100.0)
    assert batch.results[0].winner is agents[0]

    reference, ref_agents = _setup(agent_costs)
    assert reference.submit(_request(0), 100.0).winner is ref_agents[0]


def test_clear_cost_gap_still_wins_over_tie_break():
    """Gaps beyond the snap grid keep strict cost order: the cheaper,
    higher-id vehicle wins as before."""
    dispatcher, agents = _setup([{0: 100.0}, {0: 99.0}])
    batch = LapPolicy().assign(dispatcher, [_request(0)], 100.0)
    assert batch.results[0].winner is agents[1]
