"""The batched subsystem at window 0 IS the seed's immediate dispatcher.

``batch_window_s=0`` + the ``greedy`` policy must reproduce the
pre-subsystem behavior *exactly*: same winners, same costs, same pickup
and dropoff times, same rejection set — byte-identical on every
deterministic metric. The reference below re-implements the seed
simulator's per-request ``_handle_request`` verbatim against the plain
:class:`~repro.core.matching.Dispatcher`, bypassing the batch layer.
"""

import pytest

from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import Simulation, simulate
from repro.sim.workload import ShanghaiLikeWorkload


class ImmediateReferenceSimulation(Simulation):
    """The seed's request handler: quote-all, commit cheapest, inline."""

    def _handle_request(self, spec, now, queue):
        request = self.dispatcher.make_request(
            spec.origin,
            spec.destination,
            now,
            self.config.constraints.max_wait_seconds,
            self.config.constraints.detour_epsilon,
        )
        if request is None:
            return
        result = self.dispatcher.submit(request, now)
        self.report.record_assignment(result)
        if result.assigned:
            self.report.service_log[request.request_id] = {
                "request": request,
                "vehicle": result.winner.vehicle.vehicle_id,
                "assigned_cost": result.cost,
            }
            agent = result.winner
            self._schedule_next_stop(agent, queue)
            if self.grid_index is not None:
                self._report_location(agent, now)


@pytest.fixture(scope="module")
def scenario():
    city = grid_city(14, 14, seed=11)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=11, min_trip_meters=600.0).generate(
        num_trips=70, duration_seconds=1500
    )
    return engine, trips


def _deterministic_state(report):
    """Everything a run produces except wall-clock timings."""
    return {
        "num_requests": report.num_requests,
        "num_assigned": report.num_assigned,
        "num_rejected": report.num_rejected,
        "total_cost": report.total_assignment_cost,
        "candidates": (report.candidate_counts.count, report.candidate_counts.total),
        "art_counts": {k: v.count for k, v in report.art.buckets.items()},
        "occupancy": dict(report.occupancy._max_by_vehicle),
        "service_log": {
            rid: {
                "vehicle": entry.get("vehicle"),
                "assigned_cost": entry.get("assigned_cost"),
                "pickup": entry.get("pickup"),
                "dropoff": entry.get("dropoff"),
            }
            for rid, entry in report.service_log.items()
        },
    }


@pytest.mark.parametrize("algorithm", ["kinetic", "insertion"])
def test_window_zero_greedy_equals_immediate_dispatcher(scenario, algorithm):
    engine, trips = scenario
    config = SimulationConfig(
        num_vehicles=10,
        algorithm=algorithm,
        seed=3,
        dispatch_policy="greedy",
        batch_window_s=0.0,
    )
    batched = Simulation(engine, config, trips).run()
    reference = ImmediateReferenceSimulation(engine, config, trips).run()
    assert _deterministic_state(batched) == _deterministic_state(reference)


def test_window_zero_lap_equals_greedy(scenario):
    """Singleton batches leave nothing to optimise: lap at window 0 picks
    the same cheapest vehicle (and breaks exact-cost ties the same way)
    as greedy. (Quotes within greedy's 1e-9 tie tolerance but not exactly
    equal could in principle diverge; this workload has none.)"""
    engine, trips = scenario
    reports = {}
    for policy in ("greedy", "lap"):
        config = SimulationConfig(
            num_vehicles=10,
            algorithm="kinetic",
            seed=3,
            dispatch_policy=policy,
            batch_window_s=0.0,
        )
        reports[policy] = simulate(engine, config, trips)
    assert _deterministic_state(reports["greedy"]) == _deterministic_state(
        reports["lap"]
    )


def test_batch_metrics_recorded_at_window_zero(scenario):
    """Immediate mode still reports its (singleton) batches."""
    engine, trips = scenario
    report = simulate(
        engine,
        SimulationConfig(num_vehicles=10, algorithm="kinetic", seed=3),
        trips,
    )
    assert report.num_batches == report.num_requests
    assert report.batch_sizes.max == 1
