"""BatchWindow accumulator semantics."""

import pytest

from repro.core.request import TripRequest
from repro.dispatch.window import BatchWindow


def _request(rid: int) -> TripRequest:
    return TripRequest(rid, 0, 5, 100.0, 600.0, 0.2, 100.0)


def test_accumulates_in_arrival_order():
    window = BatchWindow(30.0)
    for rid in (3, 1, 2):
        window.add(_request(rid))
    assert len(window) == 3
    assert [r.request_id for r in window.flush()] == [3, 1, 2]


def test_flush_drains():
    window = BatchWindow(10.0)
    window.add(_request(0))
    assert window.flush()
    assert len(window) == 0
    assert window.flush() == []
    assert window.num_flushes == 2


def test_bool_reflects_pending():
    window = BatchWindow(10.0)
    assert not window
    window.add(_request(0))
    assert window


def test_zero_window_allowed():
    assert BatchWindow(0.0).window_s == 0.0


def test_negative_window_rejected():
    with pytest.raises(ValueError):
        BatchWindow(-1.0)
