"""The staged quote -> solve -> commit pipeline.

Three guarantee families:

* **degeneration** — with ``quote_workers=0`` and a zero overlap window
  the pipeline is bit-identical to the pre-pipeline synchronous order
  (pinned against a reference simulation that re-implements the old
  single-event flush verbatim), for both the global ``lap`` solve and
  the ``sharded`` policy;
* **worker invisibility** — at a fixed overlap window, assignments are
  identical across the deferred stage (``workers=0``), the eager
  ``serial`` backend and ``thread`` pools of any size: staleness epochs
  plus deterministic re-quotes erase worker timing;
* **staleness edges** — a vehicle that re-plans between quote and
  commit, finishes its schedule mid-solve, or invalidates *every*
  quote is detected by its schedule epoch and repaired by a
  deterministic re-quote, even when the racing worker quote raised.
"""

import pytest

from repro.core.matching import Dispatcher
from repro.dispatch import quoting as quoting_module
from repro.dispatch.costs import build_cost_matrix
from repro.dispatch.quoting import QuoteService
from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.events import Event, EventKind
from repro.sim.fleet import build_fleet
from repro.sim.simulator import Simulation, simulate
from repro.sim.workload import ShanghaiLikeWorkload


@pytest.fixture(scope="module")
def scenario():
    city = grid_city(16, 16, seed=9)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=9, min_trip_meters=800.0).generate(
        num_trips=90, duration_seconds=1500
    )
    return engine, trips


def _deterministic_state(report):
    """Everything a run produces except wall-clock timings."""
    return {
        "num_requests": report.num_requests,
        "num_assigned": report.num_assigned,
        "num_rejected": report.num_rejected,
        "total_cost": report.total_assignment_cost,
        "art_counts": {k: v.count for k, v in report.art.buckets.items()},
        "occupancy": dict(report.occupancy._max_by_vehicle),
        "service_log": {
            rid: {
                "vehicle": entry.get("vehicle"),
                "assigned_cost": entry.get("assigned_cost"),
                "pickup": entry.get("pickup"),
                "dropoff": entry.get("dropoff"),
            }
            for rid, entry in report.service_log.items()
        },
    }


def _run(scenario, policy, **overrides):
    engine, trips = scenario
    config = SimulationConfig(
        num_vehicles=10,
        algorithm="kinetic",
        seed=5,
        dispatch_policy=policy,
        batch_window_s=20.0,
        **overrides,
    )
    return simulate(engine, config, trips)


# ----------------------------------------------------------------------
# Degeneration: workers=0 / overlap=0 is the old synchronous order
# ----------------------------------------------------------------------
class SynchronousReferenceSimulation(Simulation):
    """The pre-pipeline flush handler, verbatim: quote+solve+commit as
    one blob inside ``BATCH_DISPATCH``, old chain-end condition."""

    def _handle_batch_flush(self, now, queue):
        requests = self.batch_window.flush()
        if requests:
            self._dispatch_batch(requests, now, queue)
        next_time = now + self.config.batch_window_s
        if next_time <= self.horizon + self.config.batch_window_s:
            queue.push(Event(next_time, EventKind.BATCH_DISPATCH))


@pytest.mark.parametrize(
    "policy,overrides",
    [("lap", {}), ("sharded", {"num_shards": 3}), ("iterative", {})],
)
def test_workers_zero_pipeline_is_bit_identical_to_synchronous(
    scenario, policy, overrides
):
    engine, trips = scenario
    config = SimulationConfig(
        num_vehicles=10,
        algorithm="kinetic",
        seed=5,
        dispatch_policy=policy,
        batch_window_s=20.0,
        quote_workers=0,
        quote_overlap_s=0.0,
        **overrides,
    )
    pipelined = Simulation(engine, config, trips).run()
    reference = SynchronousReferenceSimulation(engine, config, trips).run()
    assert _deterministic_state(pipelined) == _deterministic_state(reference)
    # The degenerate stage records itself but never overlaps anything.
    assert pipelined.quote_seconds.count == pipelined.num_batches
    assert pipelined.staleness_requotes.total == 0
    assert pipelined.overlap_ratio.mean == 0.0


def test_greedy_pipeline_skips_quote_stage(scenario):
    """The greedy policy quotes inline, so the pipeline must not spend
    workers on a matrix it would ignore — and still dispatch."""
    report = _run(
        scenario, "greedy", quote_workers=2, quote_overlap_s=10.0
    )
    assert report.quote_seconds.count == 0
    assert report.num_assigned > 0
    assert report.verify_service_guarantees() == []


# ----------------------------------------------------------------------
# Worker invisibility at a fixed overlap window
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["lap", "sharded"])
@pytest.mark.parametrize(
    "workers,backend", [(1, "serial"), (1, "thread"), (4, "thread")]
)
def test_workers_and_backends_agree_with_deferred(
    scenario, policy, workers, backend
):
    overrides = {"num_shards": 3} if policy == "sharded" else {}
    deferred = _run(
        scenario, policy, quote_workers=0, quote_overlap_s=10.0, **overrides
    )
    serial_eager = _run(
        scenario,
        policy,
        quote_workers=1,
        quote_backend="serial",
        quote_overlap_s=10.0,
        **overrides,
    )
    eager = _run(
        scenario,
        policy,
        quote_workers=workers,
        quote_backend=backend,
        quote_overlap_s=10.0,
        **overrides,
    )
    assert _deterministic_state(eager) == _deterministic_state(deferred)
    # Requote counts are simulated-time facts (which vehicles mutated
    # inside the overlap window), so every eager run agrees — deferred
    # quoting (workers=0) quotes at the solve instant and never requotes.
    assert (
        eager.staleness_requotes.total == serial_eager.staleness_requotes.total
    )
    assert deferred.staleness_requotes.total == 0


def test_overlap_window_requotes_replanned_vehicles(scenario):
    """With a positive overlap window some vehicle reaches a stop or
    wins a commit between quote and commit — the epoch check must catch
    it (requotes > 0) without ever leaking a guarantee violation."""
    report = _run(scenario, "lap", quote_workers=1, quote_overlap_s=10.0)
    assert int(report.staleness_requotes.total) > 0
    assert report.verify_service_guarantees() == []
    for rid, entry in report.service_log.items():
        assert "pickup" in entry, f"request {rid} assigned but never picked up"
        assert "dropoff" in entry, f"request {rid} never dropped off"


# ----------------------------------------------------------------------
# Staleness edges on the QuoteService itself
# ----------------------------------------------------------------------
def _flush_fixture(num_vehicles=8, num_requests=10, seed=3):
    city = grid_city(12, 12, seed=seed)
    engine = MatrixEngine(city)
    config = SimulationConfig(num_vehicles=num_vehicles, seed=seed)
    agents = build_fleet(engine, config, start_time=0.0)
    dispatcher = Dispatcher(engine, agents)
    specs = ShanghaiLikeWorkload(city, seed=seed, min_trip_meters=400.0).generate(
        num_trips=num_requests * 2, duration_seconds=600
    )
    requests = []
    for spec in specs:
        request = dispatcher.make_request(
            spec.origin, spec.destination, 0.0, 600.0, 0.2
        )
        if request is not None:
            requests.append(request)
        if len(requests) >= num_requests:
            break
    return engine, dispatcher, requests


def _matrices_equal(a, b):
    import numpy as np

    if a.shape != b.shape:
        return False
    same = (a.keys == b.keys) | (np.isinf(a.keys) & np.isinf(b.keys))
    return bool(same.all())


def test_peek_decision_point_leaves_past_positions_intact():
    """Resolving a decision point at the future commit instant must not
    advance the vehicle's waypoint cursor: position queries at earlier
    times inside the overlap window still interpolate correctly."""
    from repro.core.vehicle import Vehicle

    engine, _, _ = _flush_fixture()
    graph = engine.graph
    # Twin idle vehicles: identical ids, start vertices and cruise RNGs.
    probe = Vehicle(0, start_vertex=5, start_time=0.0, seed=123)
    twin = Vehicle(0, start_vertex=5, start_time=0.0, seed=123)
    future = 120.0
    peeked = probe.peek_decision_point(future, graph)
    advanced = twin.decision_point(future, graph)
    assert peeked == advanced  # same value...
    # ...but the peeking vehicle's position at an *earlier* time matches
    # a vehicle that never looked ahead (the cursor did not move).
    control = Vehicle(0, start_vertex=5, start_time=0.0, seed=123)
    for t in (3.0, 17.0, 60.0, 119.0):
        assert probe.position_at(t, graph) == control.position_at(t, graph)


def test_epoch_bumps_on_commit_and_arrival():
    engine, dispatcher, requests = _flush_fixture()
    agent = dispatcher.agents[0]
    before = agent.schedule_epoch
    quote = agent.quote(requests[0], 0.0)
    assert agent.schedule_epoch == before  # quoting never mutates
    assert quote is not None
    agent.commit(quote)
    assert agent.schedule_epoch == before + 1
    agent.arrive_next()
    assert agent.schedule_epoch == before + 2


def test_vehicle_finishing_schedule_mid_solve_is_requoted():
    """A vehicle that executes its whole schedule between quote and
    commit (arrive_next + idle) must be detected and re-quoted."""
    engine, dispatcher, requests = _flush_fixture()
    agent = dispatcher.agents[0]
    quote = agent.quote(requests[0], 0.0)
    agent.commit(quote)

    with QuoteService(workers=1, backend="serial") as service:
        pending = service.begin(dispatcher, requests[1:], 5.0)
        # The vehicle reaches (and finishes) its committed stops
        # mid-solve; each arrival bumps the epoch.
        while agent.next_stop() is not None:
            arrivals = agent.arrive_next()
        agent.vehicle.set_idle(arrivals[-1][1].vertex, arrivals[-1][0])
        quote_set = pending.collect()

    assert quote_set.requotes >= 1
    fresh = build_cost_matrix(dispatcher, requests[1:], 5.0)
    assert _matrices_equal(quote_set.matrix, fresh)


def test_all_quotes_stale_falls_back_deterministically():
    """Every candidate mutates between quote and commit: collect must
    rebuild every column and agree with a fresh synchronous build."""
    engine, dispatcher, requests = _flush_fixture()
    with QuoteService(workers=2, backend="thread") as service:
        pending = service.begin(dispatcher, requests, 0.0)
        for agent in dispatcher.agents:
            agent.schedule_epoch += 1  # every schedule "moved"
        quote_set = pending.collect()
    assert quote_set.requotes == len(quote_set.matrix.agents)
    fresh = build_cost_matrix(dispatcher, requests, 0.0)
    assert _matrices_equal(quote_set.matrix, fresh)


def test_worker_failure_is_repaired_by_requote(monkeypatch):
    """A worker quote that raises (a schedule mutation tearing the read
    mid-flight) is recorded as a failure and repaired like any stale
    column — the assembled matrix never sees the wreckage."""
    engine, dispatcher, requests = _flush_fixture()
    poisoned = dispatcher.agents[2]
    real_task = quoting_module._quote_task

    def exploding_task(agent, reqs, now, objective, decision, tracer, parent,
                       *fault_args, **fault_kwargs):
        if agent is poisoned:
            raise RuntimeError("schedule mutated mid-quote")
        return real_task(agent, reqs, now, objective, decision, tracer, parent,
                         *fault_args, **fault_kwargs)

    monkeypatch.setattr(quoting_module, "_quote_task", exploding_task)
    with QuoteService(workers=2, backend="thread") as service:
        quote_set = service.begin(dispatcher, requests, 0.0).collect()
    assert quote_set.failures == 1
    assert quote_set.requotes == 1
    fresh = build_cost_matrix(dispatcher, requests, 0.0)
    assert _matrices_equal(quote_set.matrix, fresh)


def test_quote_service_sync_build_matches_build_cost_matrix():
    engine, dispatcher, requests = _flush_fixture()
    quote_set = QuoteService(workers=0).build(dispatcher, requests, 0.0)
    fresh = build_cost_matrix(dispatcher, requests, 0.0)
    assert _matrices_equal(quote_set.matrix, fresh)
    assert quote_set.requotes == 0 and quote_set.failures == 0
    assert quote_set.inline is True


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_process_backend_is_rejected():
    with pytest.raises(ValueError, match="process boundary"):
        SimulationConfig(
            batch_window_s=10.0, quote_workers=2, quote_backend="process"
        )


def test_pipeline_requires_batched_dispatch():
    with pytest.raises(ValueError, match="batch_window_s > 0"):
        SimulationConfig(quote_workers=2)
    with pytest.raises(ValueError, match="batch_window_s > 0"):
        SimulationConfig(quote_overlap_s=5.0)


def test_overlap_must_fit_inside_the_window():
    with pytest.raises(ValueError, match="shorter than batch_window_s"):
        SimulationConfig(batch_window_s=10.0, quote_overlap_s=10.0)


def test_window_plus_overlap_must_respect_wait_budget():
    from repro.core.constraints import ConstraintConfig

    with pytest.raises(ValueError, match="waiting-time guarantee"):
        SimulationConfig(
            batch_window_s=80.0,
            quote_overlap_s=50.0,
            constraints=ConstraintConfig.from_minutes(2, 20),
        )
