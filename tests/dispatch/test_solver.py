"""The pure-numpy Hungarian solver against brute-force optimal assignment."""

import itertools

import numpy as np
import pytest

from repro.dispatch.solver import assignment_cost, solve_assignment
from repro.exceptions import AssignmentInfeasibleError, ReproError


def brute_force_best(costs: np.ndarray) -> tuple[int, float]:
    """(max feasible cardinality, min total cost at that cardinality)."""
    m, n = costs.shape
    best_card, best_cost = 0, 0.0
    for r in range(1, min(m, n) + 1):
        for rows in itertools.combinations(range(m), r):
            for cols in itertools.permutations(range(n), r):
                if all(np.isfinite(costs[i, j]) for i, j in zip(rows, cols)):
                    total = sum(costs[i, j] for i, j in zip(rows, cols))
                    if r > best_card or (r == best_card and total < best_cost):
                        best_card, best_cost = r, total
    return best_card, best_cost


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("infeasible_fraction", [0.0, 0.3, 0.7])
def test_matches_brute_force_on_random_matrices(seed, infeasible_fraction):
    rng = np.random.default_rng(seed)
    m, n = int(rng.integers(1, 6)), int(rng.integers(1, 6))
    costs = rng.uniform(0.0, 100.0, size=(m, n))
    costs[rng.random((m, n)) < infeasible_fraction] = np.inf
    pairs = solve_assignment(costs)
    card, cost = brute_force_best(costs)
    assert len(pairs) == card
    assert assignment_cost(costs, pairs) == pytest.approx(cost)
    # One-to-one: no row or column used twice.
    assert len({i for i, _ in pairs}) == len(pairs)
    assert len({j for _, j in pairs}) == len(pairs)


def test_square_exact():
    costs = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
    pairs = solve_assignment(costs)
    assert pairs == [(0, 1), (1, 0), (2, 2)]
    assert assignment_cost(costs, pairs) == pytest.approx(5.0)


def test_rectangular_more_rows_than_columns():
    costs = np.array([[1.0], [2.0], [0.5]])
    pairs = solve_assignment(costs)
    assert pairs == [(2, 0)]


def test_rectangular_more_columns_than_rows():
    costs = np.array([[9.0, 1.0, 5.0]])
    assert solve_assignment(costs) == [(0, 1)]


def test_infeasible_cells_never_assigned():
    costs = np.array([[np.inf, 3.0], [np.inf, 1.0]])
    pairs = solve_assignment(costs)
    # Only column 1 is usable: exactly one row can be served, the cheaper.
    assert pairs == [(1, 1)]


def test_maximizes_cardinality_before_cost():
    # Serving both rows costs 100 + 100; serving only row 0 would cost 1.
    # Cardinality must win.
    costs = np.array([[1.0, 100.0], [np.inf, 100.0]])
    pairs = solve_assignment(costs)
    assert pairs == [(0, 0), (1, 1)]


def test_all_infeasible():
    assert solve_assignment(np.full((3, 2), np.inf)) == []


def test_empty_dimensions():
    assert solve_assignment(np.zeros((0, 4))) == []
    assert solve_assignment(np.zeros((4, 0))) == []


def test_nan_treated_as_infeasible():
    costs = np.array([[np.nan, 2.0]])
    assert solve_assignment(costs) == [(0, 1)]


def test_non_2d_raises():
    with pytest.raises(ValueError):
        solve_assignment(np.zeros(3))


def test_deterministic():
    rng = np.random.default_rng(11)
    costs = rng.uniform(0, 10, size=(6, 6))
    assert solve_assignment(costs) == solve_assignment(costs.copy())


# ----------------------------------------------------------------------
# Rectangular edge cases and typed infeasibility errors
# ----------------------------------------------------------------------
def test_tall_matrix_with_infeasible_column_rows_compete():
    """rows > cols with infeasibility: only the cheapest rows per column
    survive, and no row is ever silently paired to an inf cell."""
    costs = np.array(
        [[3.0, np.inf], [1.0, np.inf], [np.inf, 7.0], [2.0, 5.0]]
    )
    pairs = solve_assignment(costs)
    # Exact optimum: row 1 takes col 0 (1.0); col 1 goes to the cheaper
    # of rows 2 (7.0) and 3 (5.0) -> row 3.
    assert pairs == [(1, 0), (3, 1)]
    assert assignment_cost(costs, pairs) == pytest.approx(6.0)


def test_single_row_is_argmin_over_finite_cells():
    costs = np.array([[np.inf, 4.0, np.inf, 2.0, 9.0]])
    assert solve_assignment(costs) == [(0, 3)]


def test_single_row_all_infeasible():
    assert solve_assignment(np.array([[np.inf, np.nan, np.inf]])) == []


def test_require_assignment_raises_typed_error_on_all_infeasible():
    with pytest.raises(AssignmentInfeasibleError) as excinfo:
        solve_assignment(np.full((3, 2), np.inf), require_assignment=True)
    assert excinfo.value.rows == (0, 1, 2)
    # Part of the library hierarchy, catchable as ReproError.
    assert isinstance(excinfo.value, ReproError)


def test_require_assignment_names_only_unmatched_rows():
    costs = np.array([[1.0, 2.0], [np.inf, np.inf], [3.0, np.inf]])
    with pytest.raises(AssignmentInfeasibleError) as excinfo:
        solve_assignment(costs, require_assignment=True)
    assert excinfo.value.rows == (1,)
    assert "1" in str(excinfo.value)


def test_require_assignment_raises_when_rows_exceed_columns():
    # All-feasible but more rows than columns: someone must lose.
    costs = np.ones((3, 2))
    with pytest.raises(AssignmentInfeasibleError) as excinfo:
        solve_assignment(costs, require_assignment=True)
    assert len(excinfo.value.rows) == 1


def test_require_assignment_passes_when_complete():
    costs = np.array([[1.0, 5.0], [5.0, 1.0]])
    assert solve_assignment(costs, require_assignment=True) == [
        (0, 0),
        (1, 1),
    ]


def test_assignment_cost_raises_on_infeasible_pair():
    costs = np.array([[1.0, np.inf]])
    with pytest.raises(AssignmentInfeasibleError) as excinfo:
        assignment_cost(costs, [(0, 1)])
    assert excinfo.value.rows == (0,)


# ----------------------------------------------------------------------
# The _SMALL_COLS dispatch: pure-Python and vectorized paths bit-identical
# ----------------------------------------------------------------------
def test_small_and_vectorized_paths_are_bit_identical(monkeypatch):
    """_hungarian_rect dispatches to a pure-Python inner loop below
    _SMALL_COLS columns. Both loops must perform the identical float
    ops in the identical order, so the crossover is pure tuning — this
    drives adversarial matrices (heavy ties, big-M-style cells) through
    both paths and demands identical column potentials, not merely
    equally-good assignments."""
    import repro.dispatch.solver as solver_module
    from repro.dispatch.solver import _hungarian_rect, _hungarian_rect_small

    rng = np.random.default_rng(99)
    for trial in range(120):
        m = int(rng.integers(1, 30))
        n = int(rng.integers(m, 45))
        cost = rng.random((m, n)) * 10
        if trial % 3 == 0:
            cost = np.round(cost, 1)  # heavy ties
        if trial % 4 == 0:
            cost[rng.random((m, n)) < 0.4] = 1e6  # big-M regime
        small = _hungarian_rect_small(np.asarray(cost, dtype=float))
        monkeypatch.setattr(solver_module, "_SMALL_COLS", 0)
        vectorized = _hungarian_rect(np.asarray(cost, dtype=float))
        monkeypatch.undo()
        assert np.array_equal(
            small, np.asarray(vectorized, dtype=np.int64)
        ), f"paths diverged on trial {trial} ({m}x{n})"


def test_solve_assignment_identical_across_the_crossover(monkeypatch):
    """End to end: forcing every matrix through the vectorized path
    changes no solve_assignment result."""
    import repro.dispatch.solver as solver_module

    rng = np.random.default_rng(7)
    matrices = []
    for _ in range(30):
        m, n = int(rng.integers(1, 25)), int(rng.integers(1, 25))
        keys = rng.uniform(1.0, 50.0, size=(m, n))
        keys[rng.random((m, n)) < 0.35] = np.inf
        matrices.append(keys)
    with_dispatch = [solve_assignment(k) for k in matrices]
    monkeypatch.setattr(solver_module, "_SMALL_COLS", 0)
    vectorized_only = [solve_assignment(k) for k in matrices]
    assert with_dispatch == vectorized_only
