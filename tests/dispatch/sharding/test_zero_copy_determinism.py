"""Determinism contract 11: zero-copy ≡ pickle ≡ serial.

The zero-copy transport (shared-memory arena) and the persistent worker
group change *how* shard matrices reach workers — never *what* the
workers compute. These tests pin that across every backend, every worker
count, mid-run pool recreation, arena-generation cycling, injected
faults riding the shm path, and a full simulation: flipping
``zero_copy`` / ``persistent_workers`` can never change a single pair.
"""

import numpy as np
import pytest

from repro.dispatch.sharding import (
    ShardExecutor,
    solve_sharded,
)
from repro.dispatch.sharding.partitioner import Shard, ShardPlan
from repro.faults import (
    FaultInjector,
    RetryPolicy,
    TaskFailure,
    parse_fault_spec,
)
from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload

#: The zero-copy A/B axes on the process backend: pickle baseline,
#: arena only, persistent workers only, both. Every cell must match the
#: serial reference exactly.
MODES = {
    "pickle": {},
    "zero_copy": {"zero_copy": True},
    "persistent": {"persistent_workers": True},
    "zero_copy+persistent": {"zero_copy": True, "persistent_workers": True},
}

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0, backoff_cap_s=0.0)


def _keys(seed=17, m=36, n=28, infeasible=0.4):
    rng = np.random.default_rng(seed)
    keys = rng.uniform(1.0, 100.0, size=(m, n))
    keys[rng.random((m, n)) < infeasible] = np.inf
    return keys


def _plan(keys, num_shards=4):
    """A hand-rolled row-split plan over the raw matrix (no grid)."""
    rows = np.array_split(np.arange(keys.shape[0]), num_shards)
    return ShardPlan(
        shards=[
            Shard(i, tuple(int(r) for r in rs), tuple(range(keys.shape[1])))
            for i, rs in enumerate(rows)
        ],
        num_shards_requested=num_shards,
    )


@pytest.fixture(scope="module")
def keys():
    return _keys()


@pytest.fixture(scope="module")
def plan(keys):
    return _plan(keys)


@pytest.fixture(scope="module")
def reference(keys, plan):
    """The serial-backend outcome every transport mode must reproduce."""
    with ShardExecutor("serial") as executor:
        return solve_sharded(keys, plan, executor)


# ----------------------------------------------------------------------
# Mode x worker-count grid vs the serial reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4, 8])
@pytest.mark.parametrize("mode", sorted(MODES))
def test_process_modes_match_serial(keys, plan, reference, mode, workers):
    with ShardExecutor(
        "process", max_workers=workers, **MODES[mode]
    ) as executor:
        outcome = solve_sharded(keys, plan, executor)
    assert outcome.pairs == reference.pairs
    assert outcome.boundary_conflicts == reference.boundary_conflicts
    assert outcome.shard_sizes == reference.shard_sizes
    assert outcome.serial_rescues == 0


@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_flags_are_inert_off_the_process_backend(keys, plan, reference, backend):
    """``zero_copy`` / ``persistent_workers`` are accepted on serial and
    thread backends (so config grids stay uniform) but change nothing:
    those workers already share the parent's address space."""
    with ShardExecutor(
        backend, zero_copy=True, persistent_workers=True
    ) as executor:
        assert executor.zero_copy is False
        assert executor.pool.persistent_workers is False
        outcome = solve_sharded(keys, plan, executor)
    assert outcome.pairs == reference.pairs


# ----------------------------------------------------------------------
# Lifecycle events mid-run
# ----------------------------------------------------------------------
def test_pool_recreation_between_flushes_changes_nothing(keys, plan, reference):
    """Killing and lazily rebuilding the persistent worker group between
    flushes (the degradation ladder's recovery move) must be invisible
    in the results — fresh workers re-attach the arena and solve the
    same bytes."""
    with ShardExecutor(
        "process", max_workers=2, zero_copy=True, persistent_workers=True
    ) as executor:
        first = solve_sharded(keys, plan, executor)
        executor.pool.recreate()
        second = solve_sharded(keys, plan, executor)
    assert first.pairs == reference.pairs
    assert second.pairs == reference.pairs


def test_repeated_flushes_cycle_arena_generations(keys, plan, reference):
    """Many flushes through one executor alternate the arena's two
    slots and bump the generation each publish; every flush still
    returns the reference pairs (no stale block is ever read)."""
    with ShardExecutor(
        "process", max_workers=2, zero_copy=True, persistent_workers=True
    ) as executor:
        for _ in range(6):
            outcome = solve_sharded(keys, plan, executor)
            assert outcome.pairs == reference.pairs
        assert executor._arena is not None
        assert executor._arena.generation == 6


def test_varying_flush_shapes_through_one_arena(reference):
    """Interleaving differently-sized flushes forces segment regrowth
    mid-stream; each flush still matches its own serial reference."""
    small, big = _keys(seed=3, m=12, n=10), _keys(seed=4, m=48, n=40)
    cases = [
        (small, _plan(small, 2)),
        (big, _plan(big, 4)),
        (small, _plan(small, 2)),
    ]
    with ShardExecutor("serial") as serial_ex:
        expected = [
            solve_sharded(k, p, serial_ex).pairs for k, p in cases
        ]
    with ShardExecutor(
        "process", max_workers=2, zero_copy=True, persistent_workers=True
    ) as executor:
        got = [solve_sharded(k, p, executor).pairs for k, p in cases]
    assert got == expected


# ----------------------------------------------------------------------
# Faults riding the zero-copy path
# ----------------------------------------------------------------------
def test_injected_crash_retries_over_shm_to_reference(keys, plan, reference):
    """A one-shot in-worker crash on the zero-copy path is retried over
    the same arena ticket; results are identical to a fault-free run."""
    injector = FaultInjector(parse_fault_spec("shard.solve:crash:@1"), seed=0)
    with ShardExecutor(
        "process",
        max_workers=2,
        zero_copy=True,
        persistent_workers=True,
        injector=injector,
        retry=FAST_RETRY,
    ) as executor:
        outcome = solve_sharded(keys, plan, executor)
    assert outcome.pairs == reference.pairs
    assert outcome.serial_rescues == 0


def test_pool_death_during_batched_submission_recovers(keys, plan, reference):
    """``pool.submit:pool_death`` under ``submit_all`` kills the
    persistent group mid-fan-out; already-accepted calls are flushed to
    the dying pool, the group is recreated, and the flush completes
    with the reference pairs."""
    injector = FaultInjector(
        parse_fault_spec("pool.submit:pool_death:@2"), seed=0
    )
    with ShardExecutor(
        "process",
        max_workers=2,
        zero_copy=True,
        persistent_workers=True,
        injector=injector,
        retry=FAST_RETRY,
    ) as executor:
        outcome = solve_sharded(keys, plan, executor)
    assert outcome.pairs == reference.pairs


def test_exhausted_retries_fall_back_to_serial_rescue(keys, plan, reference):
    """Every attempt of every task crashing turns the whole flush into
    parent-side serial rescues — and the pairs are *still* identical to
    the reference (a rescue solves the same submatrix)."""
    injector = FaultInjector(parse_fault_spec("shard.solve:crash:%1"), seed=0)
    with ShardExecutor(
        "process",
        max_workers=2,
        zero_copy=True,
        persistent_workers=True,
        injector=injector,
        retry=RetryPolicy(max_attempts=2, backoff_s=0.0, backoff_cap_s=0.0),
    ) as executor:
        outcome = solve_sharded(keys, plan, executor)
    assert outcome.pairs == reference.pairs
    assert outcome.serial_rescues == len(plan.shards)


def test_submit_all_fault_order_matches_per_call_path():
    """Fault draws during batched submission happen per call in call
    order, so an injection plan produces the same failed-call pattern
    whether or not batching is active."""
    calls = 6

    def outcomes(persistent):
        injector = FaultInjector(
            parse_fault_spec("pool.submit:crash:@2,pool.submit:crash:@5"),
            seed=0,
        )
        from repro.dispatch.sharding.executor import WorkerPool

        with WorkerPool(
            "process", max_workers=2, injector=injector,
            persistent_workers=persistent,
        ) as pool:
            futures = pool.submit_all([(int, (i,)) for i in range(calls)])
            out = []
            for future in futures:
                try:
                    out.append(("ok", future.result(timeout=30)))
                except Exception as error:
                    out.append(("err", type(error).__name__))
        return out

    assert outcomes(True) == outcomes(False)


# ----------------------------------------------------------------------
# Full simulation: transport flags never change a simulation
# ----------------------------------------------------------------------
def test_simulation_identical_with_and_without_zero_copy():
    city = grid_city(12, 12, seed=9)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=9, min_trip_meters=600.0).generate(
        num_trips=40, duration_seconds=900
    )

    def run(**overrides):
        config = SimulationConfig(
            num_vehicles=8,
            algorithm="kinetic",
            seed=5,
            dispatch_policy="sharded",
            num_shards=3,
            shard_backend="process",
            batch_window_s=20.0,
            **overrides,
        )
        report = simulate(engine, config, trips)
        return {
            "assigned": report.num_assigned,
            "rejected": report.num_rejected,
            "cost": report.total_assignment_cost,
            "service_log": {
                rid: (entry.get("vehicle"), entry.get("assigned_cost"))
                for rid, entry in report.service_log.items()
            },
        }

    baseline = run()
    zero_copy = run(shard_zero_copy=True, shard_persistent_workers=True)
    assert zero_copy == baseline
