"""ShardPartitioner: cell grouping, balancing, halos and fallbacks."""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.dispatch.sharding import ShardPartitioner
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid_index import GridIndex


@dataclass
class FakeVehicle:
    vehicle_id: int


@dataclass
class FakeAgent:
    vehicle: FakeVehicle


@dataclass
class FakeRequest:
    origin: int


@dataclass
class FakeMatrix:
    """Just enough of :class:`repro.dispatch.costs.CostMatrix`."""

    requests: list = field(default_factory=list)
    agents: list = field(default_factory=list)
    keys: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))

    @property
    def shape(self):
        return self.keys.shape


def make_grid(size=4000.0, cell=1000.0) -> GridIndex:
    return GridIndex(BoundingBox(0.0, 0.0, size, size), cell_meters=cell)


def scenario(num_requests=8, num_vehicles=6, seed=0):
    """Requests in the four grid quadrants, vehicles scattered, all
    pairs feasible. Vertex v sits at coords[v]."""
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, 4000.0, size=(64, 2))
    grid = make_grid()
    requests = [FakeRequest(origin=i) for i in range(num_requests)]
    agents = [FakeAgent(FakeVehicle(v)) for v in range(num_vehicles)]
    for v, agent in enumerate(agents):
        x, y = coords[32 + v]
        grid.update(agent.vehicle.vehicle_id, float(x), float(y))
    keys = rng.uniform(1.0, 10.0, size=(num_requests, num_vehicles))
    return FakeMatrix(requests, agents, keys), grid, coords


def test_single_shard_covers_everything():
    matrix, grid, coords = scenario()
    plan = ShardPartitioner(1).plan(matrix, grid_index=grid, coords=coords)
    assert plan.num_shards == 1
    (shard,) = plan.shards
    assert shard.rows == tuple(range(matrix.shape[0]))
    assert shard.cols == tuple(range(matrix.shape[1]))
    assert plan.fallback_reason is None


@pytest.mark.parametrize(
    "grid,coords,reason",
    [
        (None, np.zeros((4, 2)), "no grid index"),
        (make_grid(), None, "graph has no coordinates"),
    ],
)
def test_fallback_to_one_shard(grid, coords, reason):
    matrix, real_grid, real_coords = scenario()
    plan = ShardPartitioner(4).plan(matrix, grid_index=grid, coords=coords)
    assert plan.num_shards == 1
    assert plan.fallback_reason == reason
    assert plan.shards[0].rows == tuple(range(matrix.shape[0]))


def test_rows_partitioned_exactly_once():
    matrix, grid, coords = scenario(num_requests=20, seed=3)
    plan = ShardPartitioner(4).plan(matrix, grid_index=grid, coords=coords)
    assert 1 < plan.num_shards <= 4
    seen = sorted(r for s in plan.shards for r in s.rows)
    assert seen == list(range(20))
    for shard in plan.shards:
        assert shard.rows == tuple(sorted(shard.rows))
        assert shard.cols == tuple(sorted(shard.cols))


def test_never_more_shards_than_occupied_cells():
    """All requests in one cell -> one shard no matter how many asked."""
    matrix, grid, _ = scenario(num_requests=5)
    coords = np.full((64, 2), 100.0)  # every origin in cell (0, 0)
    plan = ShardPartitioner(8).plan(matrix, grid_index=grid, coords=coords)
    assert plan.num_shards == 1
    assert plan.shards[0].cells == {(0, 0)}


def test_balancing_is_deterministic_and_even():
    matrix, grid, coords = scenario(num_requests=30, seed=5)
    p = ShardPartitioner(3)
    plan_a = p.plan(matrix, grid_index=grid, coords=coords)
    plan_b = ShardPartitioner(3).plan(matrix, grid_index=grid, coords=coords)
    assert [s.rows for s in plan_a.shards] == [s.rows for s in plan_b.shards]
    loads = [len(s.rows) for s in plan_a.shards]
    # Greedy heaviest-first balancing keeps the spread below the whole
    # batch landing on one shard.
    assert max(loads) < 30


def test_columns_are_feasible_union():
    """Without a halo, a shard's columns are exactly the vehicles with a
    finite key for at least one of its rows."""
    matrix, grid, coords = scenario(num_requests=10, num_vehicles=6, seed=2)
    matrix.keys[:, 4] = np.inf  # vehicle 4 infeasible everywhere
    plan = ShardPartitioner(3).plan(matrix, grid_index=grid, coords=coords)
    for shard in plan.shards:
        expected = np.nonzero(
            np.isfinite(matrix.keys[list(shard.rows)]).any(axis=0)
        )[0]
        assert shard.cols == tuple(int(c) for c in expected)
        assert 4 not in shard.cols


def test_boundary_halo_filters_far_vehicles():
    """With a 0-cell halo, only vehicles reported inside the shard's own
    cells survive; unreported vehicles always stay eligible."""
    grid = make_grid()
    coords = np.array([[500.0, 500.0], [3500.0, 3500.0]])
    requests = [FakeRequest(0), FakeRequest(1)]
    agents = [FakeAgent(FakeVehicle(v)) for v in range(3)]
    grid.update(0, 500.0, 500.0)     # cell (0,0), near request 0
    grid.update(1, 3500.0, 3500.0)   # cell (3,3), near request 1
    # vehicle 2 never reports: eligible everywhere.
    keys = np.ones((2, 3))
    matrix = FakeMatrix(requests, agents, keys)

    plan = ShardPartitioner(2, boundary_cells=0).plan(
        matrix, grid_index=grid, coords=coords
    )
    assert plan.num_shards == 2
    by_rows = {shard.rows: shard for shard in plan.shards}
    near = by_rows[(0,)]
    far = by_rows[(1,)]
    assert near.cols == (0, 2)
    assert far.cols == (1, 2)

    # A halo wide enough to span the grid keeps everything.
    plan_wide = ShardPartitioner(2, boundary_cells=4).plan(
        matrix, grid_index=grid, coords=coords
    )
    for shard in plan_wide.shards:
        assert shard.cols == (0, 1, 2)


def test_balance_yields_exact_shard_count_with_skewed_loads():
    """Skewed cell loads must not collapse shards: with at least as many
    occupied cells as requested shards, the plan has exactly
    ``num_shards`` non-empty shards (one heavy cell can't swallow the
    fair-share cut for its neighbors)."""
    grid = make_grid()
    # Serpentine cells (0,0), (0,1), (0,2), (0,3) with loads 1, 1, 1, 10.
    points = [(500.0, 500.0), (1500.0, 500.0), (2500.0, 500.0)]
    points += [(3500.0, 500.0)] * 10
    coords = np.array(points)
    requests = [FakeRequest(i) for i in range(len(points))]
    agents = [FakeAgent(FakeVehicle(0))]
    matrix = FakeMatrix(requests, agents, np.ones((len(points), 1)))
    plan = ShardPartitioner(4).plan(matrix, grid_index=grid, coords=coords)
    assert plan.num_shards == 4
    assert sorted(len(s.rows) for s in plan.shards) == [1, 1, 1, 10]
    # And with the skew up front instead.
    coords_rev = np.array(points[::-1])
    plan_rev = ShardPartitioner(4).plan(
        matrix, grid_index=grid, coords=coords_rev
    )
    assert plan_rev.num_shards == 4


def test_invalid_parameters():
    with pytest.raises(ValueError):
        ShardPartitioner(0)
    with pytest.raises(ValueError):
        ShardPartitioner(2, boundary_cells=-1)
