"""Sharded dispatch determinism guarantees.

Three pins:

* ``sharded`` with ``num_shards=1`` (serial backend) is byte-identical
  to the unsharded global ``lap`` solve on every deterministic metric;
* for a fixed seed, assignments are identical across the ``serial``,
  ``thread`` and ``process`` backends;
* worker count never changes the result (completion order is sorted
  away before reconciliation).
"""

import numpy as np
import pytest

from repro.dispatch.sharding import (
    ShardExecutor,
    ShardPartitioner,
    solve_sharded,
)
from repro.dispatch.solver import solve_assignment
from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload


@pytest.fixture(scope="module")
def scenario():
    city = grid_city(16, 16, seed=9)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=9, min_trip_meters=800.0).generate(
        num_trips=90, duration_seconds=1500
    )
    return engine, trips


def _deterministic_state(report):
    """Everything a run produces except wall-clock timings."""
    return {
        "num_requests": report.num_requests,
        "num_assigned": report.num_assigned,
        "num_rejected": report.num_rejected,
        "total_cost": report.total_assignment_cost,
        "art_counts": {k: v.count for k, v in report.art.buckets.items()},
        "occupancy": dict(report.occupancy._max_by_vehicle),
        "service_log": {
            rid: {
                "vehicle": entry.get("vehicle"),
                "assigned_cost": entry.get("assigned_cost"),
                "pickup": entry.get("pickup"),
                "dropoff": entry.get("dropoff"),
            }
            for rid, entry in report.service_log.items()
        },
    }


def _run(scenario, policy, **overrides):
    engine, trips = scenario
    config = SimulationConfig(
        num_vehicles=10,
        algorithm="kinetic",
        seed=5,
        dispatch_policy=policy,
        batch_window_s=20.0,
        **overrides,
    )
    return simulate(engine, config, trips)


def test_one_shard_serial_equals_global_lap(scenario):
    lap = _run(scenario, "lap")
    sharded = _run(scenario, "sharded", num_shards=1)
    assert _deterministic_state(sharded) == _deterministic_state(lap)
    # No sharded run records zero-shard batches.
    assert sharded.shard_sizes.count == sharded.num_batches
    assert int(sharded.boundary_conflicts.total) == 0


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backends_agree_with_serial(scenario, backend):
    serial = _run(scenario, "sharded", num_shards=3)
    other = _run(
        scenario, "sharded", num_shards=3, shard_backend=backend
    )
    assert _deterministic_state(other) == _deterministic_state(serial)


def test_boundary_cells_zero_still_serves_every_request(scenario):
    """An aggressive halo may push matches into the sequential cleanup
    but must never lose requests outright."""
    unlimited = _run(scenario, "sharded", num_shards=3)
    tight = _run(
        scenario, "sharded", num_shards=3, shard_boundary_cells=0
    )
    assert tight.num_requests == unlimited.num_requests
    assert tight.num_assigned >= 0.9 * unlimited.num_assigned


# ----------------------------------------------------------------------
# Matrix-level: worker counts and shard counts on the numeric plane
# ----------------------------------------------------------------------
def _random_keys(seed, m=40, n=30, infeasible=0.4):
    rng = np.random.default_rng(seed)
    keys = rng.uniform(1.0, 100.0, size=(m, n))
    keys[rng.random((m, n)) < infeasible] = np.inf
    return keys


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_worker_count_never_changes_pairs(backend, workers):
    keys = _random_keys(21)
    # A hand-rolled 4-shard plan over the raw matrix (no grid needed).
    from repro.dispatch.sharding.partitioner import Shard, ShardPlan

    rows = np.array_split(np.arange(keys.shape[0]), 4)
    plan = ShardPlan(
        shards=[
            Shard(i, tuple(int(r) for r in rs), tuple(range(keys.shape[1])))
            for i, rs in enumerate(rows)
        ],
        num_shards_requested=4,
    )
    with ShardExecutor("serial") as serial_ex:
        reference = solve_sharded(keys, plan, serial_ex)
    with ShardExecutor(backend, max_workers=workers) as ex:
        outcome = solve_sharded(keys, plan, ex)
    assert outcome.pairs == reference.pairs
    assert outcome.boundary_conflicts == reference.boundary_conflicts
    assert outcome.shard_sizes == reference.shard_sizes


def test_sharded_without_grid_index_is_rejected_by_config():
    with pytest.raises(ValueError, match="grid index"):
        SimulationConfig(
            dispatch_policy="sharded", num_shards=2, use_grid_index=False
        )


def test_fallback_reason_surfaces_in_outcome():
    """A degenerate plan must say so: the outcome (and through it the
    batch metrics) records why the flush was solved globally."""
    keys = _random_keys(5, m=6, n=5)
    plan = ShardPartitioner(3).plan(
        _MatrixShim(keys), grid_index=None, coords=None
    )
    with ShardExecutor("serial") as ex:
        outcome = solve_sharded(keys, plan, ex)
    assert outcome.fallback_reason == "no grid index"
    assert outcome.num_shards == 1
    assert outcome.pairs == solve_assignment(keys)


def test_single_shard_plan_is_bitwise_global():
    keys = _random_keys(33, m=25, n=25)
    plan = ShardPartitioner(1).plan(_MatrixShim(keys))
    with ShardExecutor("serial") as ex:
        outcome = solve_sharded(keys, plan, ex)
    assert outcome.pairs == solve_assignment(keys)
    assert outcome.boundary_conflicts == 0
    assert outcome.num_shards == 1


class _MatrixShim:
    """Duck-typed stand-in for CostMatrix in single-shard plans."""

    def __init__(self, keys):
        self.keys = keys
        self.requests = [None] * keys.shape[0]
        self.agents = [None] * keys.shape[1]

    @property
    def shape(self):
        return self.keys.shape
