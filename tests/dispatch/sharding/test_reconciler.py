"""BoundaryReconciler: conflict-free merge of per-shard proposals."""

import numpy as np
import pytest

from repro.dispatch.sharding import BoundaryReconciler


@pytest.fixture
def reconciler():
    return BoundaryReconciler()


def test_no_conflicts_passthrough(reconciler):
    keys = np.arange(12.0).reshape(3, 4)
    proposals = [[(0, 1), (1, 2)], [(2, 3)]]
    outcome = reconciler.reconcile(keys, proposals)
    assert outcome.pairs == [(0, 1), (1, 2), (2, 3)]
    assert outcome.boundary_conflicts == 0
    assert outcome.conflict_rows == ()


def test_contested_vehicle_goes_to_cheaper_request(reconciler):
    # Both shards claim column 0; row 1 is cheaper there and row 0 has a
    # decent fallback in column 1 -> both stay matched.
    keys = np.array([[5.0, 6.0], [1.0, np.inf]])
    outcome = reconciler.reconcile(keys, [[(0, 0)], [(1, 0)]])
    assert outcome.pairs == [(0, 1), (1, 0)]
    assert outcome.boundary_conflicts == 1
    assert outcome.conflict_rows == (0, 1)


def test_loser_without_alternative_stays_unmatched(reconciler):
    keys = np.array([[2.0], [1.0]])
    outcome = reconciler.reconcile(keys, [[(0, 0)], [(1, 0)]])
    assert outcome.pairs == [(1, 0)]
    assert outcome.boundary_conflicts == 1


def test_second_stage_minimizes_total_cost(reconciler):
    # Giving the contested column 0 to row 0 (cost 1) forces row 1 onto
    # column 1 (cost 1): total 2. The greedy per-row alternative (row 1
    # keeps 0 at cost 2, row 0 falls to 1 at cost 10) would cost 12.
    keys = np.array([[1.0, 10.0], [2.0, 1.0]])
    outcome = reconciler.reconcile(keys, [[(0, 0)], [(1, 0)]])
    assert outcome.pairs == [(0, 0), (1, 1)]


def test_unclaimed_columns_are_available_to_losers(reconciler):
    # Column 2 was claimed by nobody; the conflict loser picks it up
    # instead of being dropped ("no feasible boundary match is lost").
    keys = np.array(
        [[1.0, np.inf, 4.0], [1.5, np.inf, 2.0], [np.inf, 2.0, np.inf]]
    )
    proposals = [[(0, 0)], [(1, 0)], [(2, 1)]]
    outcome = reconciler.reconcile(keys, proposals)
    assert outcome.pairs == [(0, 0), (1, 2), (2, 1)]
    assert outcome.boundary_conflicts == 1


def test_accepted_columns_are_off_limits_in_stage_two(reconciler):
    # Row 2's uncontested win of column 1 must survive even though a
    # conflict loser would love that column.
    keys = np.array([[1.0, 1.0], [1.1, np.inf], [np.inf, 5.0]])
    proposals = [[(0, 0)], [(1, 0)], [(2, 1)]]
    outcome = reconciler.reconcile(keys, proposals)
    assert (2, 1) in outcome.pairs
    # One of rows 0/1 gets column 0; the other has no remaining option.
    assert len(outcome.pairs) == 2


def test_deterministic(reconciler):
    rng = np.random.default_rng(4)
    keys = rng.uniform(0, 10, size=(6, 5))
    proposals = [[(0, 2), (1, 0)], [(2, 2), (3, 4)], [(4, 0), (5, 1)]]
    first = reconciler.reconcile(keys, proposals)
    second = BoundaryReconciler().reconcile(keys.copy(), proposals)
    assert first.pairs == second.pairs
    assert first.boundary_conflicts == second.boundary_conflicts == 2
