"""Shared-memory arena lifecycle: publish, attach, stale, leak, crash.

Lifecycle is the hard part of shared memory, so every path that can
create or release a segment is pinned here: publish round-trips,
double-buffer staleness, idempotent teardown from ``close()`` /
``__del__`` / context exit / ``atexit``, segment regrowth, the worker
attach cache, pool death, and the stale-ticket → ``TaskFailure`` →
serial-rescue ladder. The suite-wide ``assert_no_leaked_segments``
fixture (``tests/conftest.py``) additionally checks every single test
for /dev/shm residue.
"""

import gc
import os
import subprocess
import sys
from concurrent.futures import BrokenExecutor
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.dispatch.sharding import ShardExecutor, solve_sharded
from repro.dispatch.sharding.executor import WorkerPool, _solve_shard_task_shm
from repro.dispatch.sharding.partitioner import Shard, ShardPlan
from repro.dispatch.sharding.shm import (
    ArenaTicket,
    PersistentWorkerGroup,
    SharedMatrixArena,
    active_segment_names,
    attach_segment,
    detach_segments,
    leaked_segment_files,
    ticket_view,
)
from repro.exceptions import ArenaAttachError
from repro.faults import FaultInjector, TaskFailure, parse_fault_spec

SRC = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, os.pardir, "src"
)


def _blocks(*shapes, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random(shape) for shape in shapes]


@pytest.fixture
def clean_attach_cache():
    """Parent-side attach cache must not hold segments past a test."""
    yield
    detach_segments()


# ----------------------------------------------------------------------
# Publish / attach round trips
# ----------------------------------------------------------------------
def test_publish_round_trip(clean_attach_cache):
    blocks = _blocks((5, 7), (3, 2))
    with SharedMatrixArena() as arena:
        tickets = arena.publish(blocks)
        assert [t.index for t in tickets] == [0, 1]
        assert arena.last_bytes == sum(b.nbytes for b in blocks)
        for ticket, block in zip(tickets, blocks):
            handle, _reused, _secs = attach_segment(ticket.segment)
            view = ticket_view(handle, ticket)
            np.testing.assert_array_equal(view, block)
            del view


def test_attach_cache_reuses_the_mapping(clean_attach_cache):
    with SharedMatrixArena() as arena:
        (ticket,) = arena.publish(_blocks((4, 4)))
        _handle, reused_first, _ = attach_segment(ticket.segment)
        handle, reused_second, _ = attach_segment(ticket.segment)
        assert (reused_first, reused_second) == (False, True)
        detach_segments()
        _handle, reused_after_detach, _ = attach_segment(ticket.segment)
        assert reused_after_detach is False
        del handle


def test_double_buffering_keeps_previous_flush_readable(clean_attach_cache):
    """A ticket survives exactly one further publish (the straggler
    window), then its slot is republished and the generation check
    refuses it."""
    with SharedMatrixArena() as arena:
        (gen1,) = arena.publish(_blocks((4, 4), seed=1))
        (gen2,) = arena.publish(_blocks((4, 4), seed=2))
        # gen1 lives in the other slot: still attachable after gen2.
        handle, _, _ = attach_segment(gen1.segment)
        assert ticket_view(handle, gen1).shape == (4, 4)
        # Third publish reclaims gen1's slot.
        arena.publish(_blocks((4, 4), seed=3))
        handle, _, _ = attach_segment(gen1.segment)
        with pytest.raises(ArenaAttachError, match="stale arena ticket"):
            ticket_view(handle, gen1)
        # gen2 is the previous flush now — still fine.
        handle, _, _ = attach_segment(gen2.segment)
        assert ticket_view(handle, gen2).shape == (4, 4)


def test_missing_segment_raises_attach_error():
    with pytest.raises(ArenaAttachError, match="not attachable"):
        attach_segment("repro_shm_never_published")


def test_foreign_segment_fails_the_magic_check(clean_attach_cache):
    """A shared-memory segment that was never an arena publish must be
    rejected by header magic, not read as matrix bytes."""
    segment = shared_memory.SharedMemory(create=True, size=256)
    try:
        ticket = ArenaTicket(
            segment=segment.name, generation=1, index=0,
            offset=16, rows=2, cols=2,
        )
        handle, _, _ = attach_segment(segment.name)
        with pytest.raises(ArenaAttachError, match="no arena header"):
            ticket_view(handle, ticket)
        detach_segments()
    finally:
        segment.close()
        segment.unlink()


def test_block_overrunning_segment_is_rejected(clean_attach_cache):
    with SharedMatrixArena() as arena:
        (ticket,) = arena.publish(_blocks((2, 2)))
        oversized = ArenaTicket(
            segment=ticket.segment, generation=ticket.generation,
            index=0, offset=ticket.offset, rows=10_000, cols=10_000,
        )
        handle, _, _ = attach_segment(ticket.segment)
        with pytest.raises(ArenaAttachError, match="overruns"):
            ticket_view(handle, oversized)


# ----------------------------------------------------------------------
# Teardown paths
# ----------------------------------------------------------------------
def test_close_is_idempotent_and_releases_segments():
    arena = SharedMatrixArena()
    arena.publish(_blocks((8, 8)))
    names = arena.segment_names()
    assert names and all(n in active_segment_names() for n in names)
    arena.close()
    arena.close()
    assert not arena.segment_names()
    assert all(n not in active_segment_names() for n in names)
    assert all(n not in leaked_segment_files() for n in names)


def test_del_releases_segments():
    arena = SharedMatrixArena()
    arena.publish(_blocks((8, 8)))
    names = arena.segment_names()
    del arena
    gc.collect()
    assert all(n not in active_segment_names() for n in names)
    assert all(n not in leaked_segment_files() for n in names)


def test_segment_growth_releases_the_small_segment():
    """Regrowing a slot for a bigger flush must unlink the old segment
    at the moment of replacement — an arena never owns more than one
    segment per slot."""
    with SharedMatrixArena() as arena:
        arena.publish(_blocks((2, 2)))   # slot 0, tiny
        arena.publish(_blocks((2, 2)))   # slot 1, tiny
        small = set(arena.segment_names())
        arena.publish(_blocks((64, 64)))  # slot 0 regrows
        arena.publish(_blocks((64, 64)))  # slot 1 regrows
        assert len(arena.segment_names()) == 2
        assert not (small & set(arena.segment_names()))
        assert all(n not in active_segment_names() for n in small)


def test_atexit_sweep_backstops_an_unclosed_arena():
    """An arena never closed before interpreter exit must still leave
    /dev/shm clean (the module's atexit sweep)."""
    code = (
        "import numpy as np\n"
        "from repro.dispatch.sharding.shm import SharedMatrixArena\n"
        "arena = SharedMatrixArena()\n"
        "tickets = arena.publish([np.zeros((16, 16))])\n"
        "print(tickets[0].segment)\n"
        # Deliberately no close(): atexit must sweep it.
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, timeout=60,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    assert proc.returncode == 0, proc.stderr
    name = proc.stdout.strip()
    assert name.startswith("repro_shm_")
    assert name not in leaked_segment_files()


# ----------------------------------------------------------------------
# Persistent worker group lifecycle
# ----------------------------------------------------------------------
def test_group_shutdown_is_idempotent_and_fails_pending():
    group = PersistentWorkerGroup(max_workers=1)
    assert group.submit(int, 5).result(timeout=30) == 5
    group.shutdown()
    group.shutdown()
    with pytest.raises(BrokenExecutor):
        group.submit(int, 1)
    with pytest.raises(BrokenExecutor):
        group.submit_many([(int, (1,), {})])


def test_worker_pool_close_and_del_with_persistent_group():
    pool = WorkerPool("process", max_workers=1, persistent_workers=True)
    assert pool.submit(int, 7).result(timeout=30) == 7
    pool.close()
    pool.close()
    assert pool._pool is None
    # A fresh submission after close lazily builds a new group.
    assert pool.submit(int, 8).result(timeout=30) == 8
    pool.__del__()
    assert pool._pool is None


def test_executor_close_releases_the_arena():
    keys = np.random.default_rng(0).random((8, 6))
    plan = ShardPlan(
        shards=[Shard(0, tuple(range(8)), tuple(range(6)))],
        num_shards_requested=1,
    )
    executor = ShardExecutor(
        "process", max_workers=1, zero_copy=True, persistent_workers=True
    )
    try:
        solve_sharded(keys, plan, executor)
        assert executor._arena is not None
        names = executor._arena.segment_names()
        assert names
    finally:
        executor.close()
    assert executor._arena is None
    assert all(n not in active_segment_names() for n in names)
    executor.close()  # idempotent


def test_pool_death_leaves_no_orphan_segments():
    """An injected pool death mid-flush (workers killed, group rebuilt)
    must not orphan the arena segments the dying workers had mapped —
    the parent owns them and the parent is fine."""
    keys = np.random.default_rng(1).random((12, 9))
    plan = ShardPlan(
        shards=[
            Shard(i, tuple(range(i * 4, i * 4 + 4)), tuple(range(9)))
            for i in range(3)
        ],
        num_shards_requested=3,
    )
    injector = FaultInjector(
        parse_fault_spec("pool.submit:pool_death:@1"), seed=0
    )
    with ShardExecutor(
        "process", max_workers=2, zero_copy=True, persistent_workers=True,
        injector=injector,
    ) as executor:
        outcome = solve_sharded(keys, plan, executor)
        assert len(outcome.pairs) > 0
    assert not active_segment_names()


# ----------------------------------------------------------------------
# Stale ticket -> TaskFailure -> serial rescue
# ----------------------------------------------------------------------
def test_stale_ticket_task_raises_attach_error(clean_attach_cache):
    with SharedMatrixArena() as arena:
        (stale,) = arena.publish(_blocks((4, 4), seed=5))
        arena.publish(_blocks((4, 4), seed=6))
        arena.publish(_blocks((4, 4), seed=7))  # reclaims stale's slot
        with pytest.raises(ArenaAttachError):
            _solve_shard_task_shm(None, False, None, 0, stale)


def test_attach_error_fails_fast_into_serial_rescue(clean_attach_cache):
    """An ``ArenaAttachError`` surfacing from the fan-out is *not*
    retried (the ticket can only get staler); the executor fails the
    task immediately and ``solve_sharded`` re-solves it in the parent —
    with pairs identical to a healthy flush."""
    rng = np.random.default_rng(2)
    keys = rng.random((10, 8))
    plan = ShardPlan(
        shards=[
            Shard(0, tuple(range(5)), tuple(range(8))),
            Shard(1, tuple(range(5, 10)), tuple(range(8))),
        ],
        num_shards_requested=2,
    )
    with ShardExecutor("serial") as serial_ex:
        reference = solve_sharded(keys, plan, serial_ex)

    class OneAttachFailureExecutor(ShardExecutor):
        """First shard's result is forged into an ArenaAttachError as if
        its ticket had gone stale in-flight."""

        def run(self, tasks, tracer=None):
            results = super().run(tasks)
            failed = results[0]
            forged = TaskFailure(
                site="shard.solve", task_id=failed[0], attempts=1,
                error=ArenaAttachError("stale arena ticket (forged)"),
            )
            return [forged] + results[1:]

    with OneAttachFailureExecutor("serial") as executor:
        outcome = solve_sharded(keys, plan, executor)
    assert outcome.pairs == reference.pairs
    assert outcome.serial_rescues == 1
