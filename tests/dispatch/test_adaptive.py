"""The window controllers: retune law, clamping, guard, construction."""

import pytest

from repro.dispatch.adaptive import (
    AdaptiveWindowController,
    FixedWindowController,
    make_window_controller,
)
from repro.sim.config import SimulationConfig


def _controller(**overrides):
    params = dict(
        initial_window_s=10.0,
        window_min_s=5.0,
        window_max_s=30.0,
        overlap_fraction=0.0,
        ewma_alpha=0.5,
        target_batch=12.0,
    )
    params.update(overrides)
    return AdaptiveWindowController(**params)


# ----------------------------------------------------------------------
# Fixed controller: the degenerate, bit-identical cadence
# ----------------------------------------------------------------------
def test_fixed_controller_echoes_config_floats():
    """The fixed controller must hand back the *same float objects* the
    config carries: flush arithmetic is then literally the pre-controller
    expression ``now + config.batch_window_s``."""
    config = SimulationConfig(batch_window_s=17.0, quote_overlap_s=3.0)
    controller = make_window_controller(config)
    assert isinstance(controller, FixedWindowController)
    assert controller.window_s == config.batch_window_s
    assert controller.overlap_s == config.quote_overlap_s
    for i in range(5):
        controller.on_flush(i * 17.0, new_arrivals=i)
        controller.observe_quote_stage(123.0)
    assert controller.window_s == 17.0
    assert controller.overlap_s == 3.0
    assert controller.retunes == 5


def test_make_controller_returns_none_for_immediate_dispatch():
    assert make_window_controller(SimulationConfig()) is None


def test_make_controller_builds_adaptive_from_config():
    config = SimulationConfig(
        batch_window_s=10.0,
        quote_overlap_s=2.0,
        adaptive_window=True,
        window_min_s=5.0,
        window_max_s=30.0,
    )
    controller = make_window_controller(config)
    assert isinstance(controller, AdaptiveWindowController)
    assert controller.window_s == 10.0
    assert controller.overlap_fraction == pytest.approx(0.2)
    assert controller.overlap_s == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Adaptive law: intensity EWMA -> window, clamped
# ----------------------------------------------------------------------
def test_first_flush_holds_initial_window():
    c = _controller()
    c.on_flush(0.0, new_arrivals=3)
    # One flush = no elapsed interval yet, so no intensity sample.
    assert c.intensity_ewma is None
    assert c.window_s == 10.0


def test_window_shrinks_off_peak_and_grows_at_peak():
    c = _controller(ewma_alpha=1.0)  # no smoothing: direct response
    c.on_flush(0.0, new_arrivals=0)
    # Dead quiet: the window collapses to the band floor.
    c.on_flush(10.0, new_arrivals=0)
    assert c.window_s == 5.0
    # Mid load: 1 request per 10 s vs saturation 12/30 = 0.4 req/s —
    # a quarter of the way up the ramp.
    c.on_flush(20.0, new_arrivals=1)
    assert c.window_s == pytest.approx(5.0 + 25.0 * (0.1 / 0.4))
    # Rush hour: arrivals at/above saturation pin the window at max.
    c.on_flush(c.window_s + 20.0, new_arrivals=1000)
    assert c.window_s == 30.0


def test_window_is_clamped_to_the_band_under_burst_and_silence():
    c = _controller(ewma_alpha=1.0)
    c.on_flush(0.0, new_arrivals=0)
    c.on_flush(10.0, new_arrivals=10_000)  # extreme burst
    assert c.window_s == 30.0  # never above max
    c.on_flush(40.0, new_arrivals=0)  # dead silence
    assert c.window_s == 5.0  # never below min
    assert 5.0 <= c.window_s <= 30.0


def test_ewma_smooths_the_intensity_signal():
    direct = _controller(ewma_alpha=1.0)
    smooth = _controller(ewma_alpha=0.2)
    for c in (direct, smooth):
        c.on_flush(0.0, new_arrivals=0)
        c.on_flush(10.0, new_arrivals=1)  # low intensity baseline
    for c in (direct, smooth):
        c.on_flush(20.0, new_arrivals=6)  # sudden burst (0.6 req/s)
    # The smoothed controller reacts, but less than the direct one.
    assert smooth.window_s < direct.window_s
    assert smooth.window_s > 5.0


def test_overlap_scales_proportionally_and_fits_inside_window():
    c = _controller(overlap_fraction=0.4, ewma_alpha=1.0)
    assert c.overlap_s == pytest.approx(4.0)
    c.on_flush(0.0, new_arrivals=0)
    c.on_flush(10.0, new_arrivals=0)
    assert c.window_s == 5.0
    assert c.overlap_s == pytest.approx(2.0)
    c.on_flush(15.0, new_arrivals=500)
    assert c.window_s == 30.0
    assert c.overlap_s == pytest.approx(12.0)
    assert c.overlap_s < c.window_s


def test_controller_is_deterministic_given_the_same_inputs():
    """Same flush history -> same trajectory: the controller keeps no
    hidden wall-clock or RNG state on the intensity channel."""
    history = [(0.0, 2), (10.0, 7), (16.0, 1), (21.0, 40), (51.0, 3)]
    a, b = _controller(), _controller()
    trajectory_a, trajectory_b = [], []
    for now, arrivals in history:
        a.on_flush(now, arrivals)
        trajectory_a.append((a.window_s, a.overlap_s))
        b.on_flush(now, arrivals)
        trajectory_b.append((b.window_s, b.overlap_s))
    assert trajectory_a == trajectory_b


# ----------------------------------------------------------------------
# Real-time guard (the measured wall-clock channel)
# ----------------------------------------------------------------------
def test_latency_guard_is_dormant_at_simulation_scale():
    c = _controller(ewma_alpha=1.0, latency_headroom=0.5)
    c.on_flush(0.0, new_arrivals=0)
    c.observe_quote_stage(0.002)  # milliseconds of quote work
    c.on_flush(10.0, new_arrivals=0)
    assert c.window_s == 5.0
    assert c.guard_engagements == 0


def test_latency_guard_raises_the_window_floor():
    """If measured quote wall time approaches the window's real-time
    budget, the floor rises so a deployment can keep up."""
    c = _controller(ewma_alpha=1.0, latency_headroom=0.5)
    c.on_flush(0.0, new_arrivals=0)
    c.observe_quote_stage(6.0)  # 6 s of quoting vs a 5 s target window
    c.on_flush(10.0, new_arrivals=0)
    assert c.guard_engagements == 1
    assert c.window_s == pytest.approx(12.0)  # 6.0 / 0.5
    # The guard never pushes past the band's ceiling.
    c.observe_quote_stage(1000.0)
    c.on_flush(22.0, new_arrivals=0)
    assert c.window_s == 30.0


# ----------------------------------------------------------------------
# Construction and config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "overrides",
    [
        {"window_min_s": 0.0},
        {"window_min_s": 40.0},  # min > max
        {"initial_window_s": 2.0},  # outside the band
        {"initial_window_s": 31.0},
        {"overlap_fraction": 1.0},
        {"ewma_alpha": 0.0},
        {"target_batch": 0.0},
        {"latency_headroom": 0.0},
    ],
)
def test_controller_rejects_bad_parameters(overrides):
    with pytest.raises(ValueError):
        _controller(**overrides)


def test_config_adaptive_requires_batched_dispatch():
    with pytest.raises(ValueError, match="batch_window_s > 0"):
        SimulationConfig(
            adaptive_window=True, window_min_s=5.0, window_max_s=30.0
        )


def test_config_adaptive_requires_the_band():
    with pytest.raises(ValueError, match="window_min_s and"):
        SimulationConfig(batch_window_s=10.0, adaptive_window=True)


def test_config_initial_window_must_lie_inside_the_band():
    with pytest.raises(ValueError, match="must lie inside"):
        SimulationConfig(
            batch_window_s=40.0,
            adaptive_window=True,
            window_min_s=5.0,
            window_max_s=30.0,
        )


def test_config_band_without_adaptive_is_rejected():
    with pytest.raises(ValueError, match="adaptive_window=True"):
        SimulationConfig(batch_window_s=10.0, window_min_s=5.0)


def test_config_max_window_must_respect_wait_budget():
    from repro.core.constraints import ConstraintConfig

    with pytest.raises(ValueError, match="waiting-time guarantee"):
        SimulationConfig(
            batch_window_s=10.0,
            adaptive_window=True,
            window_min_s=5.0,
            window_max_s=130.0,
            constraints=ConstraintConfig.from_minutes(2, 20),
        )


def test_config_carry_over_requires_batched_dispatch():
    with pytest.raises(ValueError, match="carry_over requires"):
        SimulationConfig(carry_over=True)
