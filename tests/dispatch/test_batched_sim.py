"""End-to-end simulation under batched dispatch.

The batch layer must preserve the paper's service guarantee for every
policy — windowed waiting eats into each request's ``w`` budget, never
past it — and the new batch metrics must describe the flush stream.
"""

import pytest

from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload

POLICIES = ["greedy", "lap", "iterative"]


@pytest.fixture(scope="module")
def batch_city():
    return grid_city(15, 15, seed=4)


@pytest.fixture(scope="module")
def batch_engine(batch_city):
    return MatrixEngine(batch_city)


@pytest.fixture(scope="module")
def batch_trips(batch_city):
    return ShanghaiLikeWorkload(batch_city, seed=4, min_trip_meters=600.0).generate(
        num_trips=80, duration_seconds=1200
    )


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("algorithm", ["kinetic", "insertion"])
def test_guarantees_hold_under_batching(batch_engine, batch_trips, policy, algorithm):
    config = SimulationConfig(
        num_vehicles=12,
        algorithm=algorithm,
        seed=1,
        dispatch_policy=policy,
        batch_window_s=20.0,
    )
    report = simulate(batch_engine, config, batch_trips)
    assert report.num_requests == len(batch_trips)
    assert report.verify_service_guarantees() == []
    # Every assigned request is fully serviced once the queue runs dry.
    for rid, entry in report.service_log.items():
        assert "pickup" in entry, f"request {rid} assigned but never picked up"
        assert "dropoff" in entry, f"request {rid} never dropped off"


@pytest.mark.parametrize("policy", POLICIES)
def test_batched_deterministic_given_seed(batch_engine, batch_trips, policy):
    config = SimulationConfig(
        num_vehicles=10,
        algorithm="kinetic",
        seed=9,
        dispatch_policy=policy,
        batch_window_s=30.0,
    )
    a = simulate(batch_engine, config, batch_trips)
    b = simulate(batch_engine, config, batch_trips)
    assert a.num_assigned == b.num_assigned
    assert a.total_assignment_cost == pytest.approx(b.total_assignment_cost)
    for rid in a.service_log:
        assert a.service_log[rid].get("vehicle") == b.service_log[rid].get("vehicle")


def test_windows_actually_batch(batch_engine, batch_trips):
    report = simulate(
        batch_engine,
        SimulationConfig(
            num_vehicles=12,
            algorithm="kinetic",
            seed=1,
            dispatch_policy="lap",
            batch_window_s=30.0,
        ),
        batch_trips,
    )
    assert report.num_batches < report.num_requests
    assert report.batch_sizes.mean > 1.0
    assert report.batch_sizes.max >= 2
    assert report.solver_seconds.count == report.num_batches
    summary = report.summary()
    assert summary["batches"] == report.num_batches
    assert summary["mean_batch_size"] > 1.0
    text = report.text_summary()
    assert "batched dispatch" in text and "solver_ms" in text


def test_batching_delay_respects_wait_budget(batch_engine, batch_trips):
    """Pickup deadlines are anchored at request time, not flush time: no
    assigned rider is picked up later than request_time + w even though
    dispatch happened up to a window later."""
    report = simulate(
        batch_engine,
        SimulationConfig(
            num_vehicles=12,
            algorithm="kinetic",
            seed=1,
            dispatch_policy="iterative",
            batch_window_s=45.0,
        ),
        batch_trips,
    )
    for entry in report.service_log.values():
        request, picked = entry.get("request"), entry.get("pickup")
        if request is not None and picked is not None:
            assert picked <= request.pickup_deadline + 1e-6


def test_empty_stream_with_window(batch_engine):
    report = simulate(
        batch_engine,
        SimulationConfig(num_vehicles=3, seed=0, batch_window_s=30.0),
        [],
    )
    assert report.num_requests == 0 and report.num_batches == 0


def test_config_validation():
    with pytest.raises(ValueError, match="dispatch_policy"):
        SimulationConfig(dispatch_policy="nope")
    with pytest.raises(ValueError, match="batch_window_s"):
        SimulationConfig(batch_window_s=-1.0)
    with pytest.raises(ValueError, match="assignment_rounds"):
        SimulationConfig(assignment_rounds=0)
    # A window at least as long as the wait budget starves every request.
    with pytest.raises(ValueError, match="waiting-time guarantee"):
        SimulationConfig(batch_window_s=600.0)
    assert SimulationConfig(batch_window_s=599.0).batch_window_s == 599.0
