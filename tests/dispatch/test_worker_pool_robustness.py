"""WorkerPool / ShardExecutor hardening: pool death, retries, teardown.

Covers the robustness satellite work: ``close()`` must be idempotent and
safe after pool breakage (including the ``__del__`` interpreter-shutdown
path), a broken process pool must be recreated transparently, and the
executor's retry loop must turn persistent task failure into a
structured :class:`~repro.faults.TaskFailure` instead of an escaped
exception.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.dispatch.sharding.executor import ShardExecutor, WorkerPool
from repro.exceptions import ShardSolveError
from repro.faults import (
    FaultInjector,
    RetryPolicy,
    TaskFailure,
    parse_fault_spec,
)
from repro.obs.metrics import MetricsRegistry

SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def _keys(n=3):
    rng = np.random.default_rng(0)
    return rng.random((n, n))


def _die():  # pragma: no cover - runs in a worker process
    os._exit(1)


# ----------------------------------------------------------------------
# close() idempotence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_close_is_idempotent(backend):
    pool = WorkerPool(backend, max_workers=1)
    if backend != "serial":
        assert pool.submit(int, 3).result() == 3
    pool.close()
    pool.close()  # second close: nothing left to shut down
    assert pool._pool is None


def test_close_after_breakage_is_safe():
    from concurrent.futures.process import BrokenProcessPool

    pool = WorkerPool("process", max_workers=1)
    with pytest.raises(BrokenProcessPool):
        pool.submit(_die).result()
    pool.close()
    pool.close()


def test_close_never_resurrects_a_pool():
    pool = WorkerPool("thread", max_workers=1)
    pool.submit(int, 1).result()
    pool.close()
    assert pool._pool is None
    # A fresh submission after close lazily builds a new pool.
    assert pool.submit(int, 2).result() == 2
    pool.close()


def test_del_interpreter_shutdown_path():
    """A WorkerPool alive at interpreter exit must not raise or hang:
    the ``__del__`` → ``close()`` path has to survive teardown order.
    Run in a subprocess so we exercise the real interpreter shutdown."""
    code = (
        "from repro.dispatch.sharding.executor import WorkerPool\n"
        "pool = WorkerPool('thread', max_workers=1)\n"
        "pool.submit(int, 1).result()\n"
        "broken = WorkerPool('process', max_workers=1)\n"
        "broken.submit(int, 2).result()\n"
        "broken._pool.shutdown(wait=False)\n"
        "print('alive')\n"
        # pool and broken deliberately NOT closed: __del__ must cope.
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=60,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    assert proc.returncode == 0, proc.stderr
    assert "alive" in proc.stdout
    assert "Traceback" not in proc.stderr


# ----------------------------------------------------------------------
# Pool recreation
# ----------------------------------------------------------------------
def test_recreate_drops_the_pool_and_counts():
    registry = MetricsRegistry()
    injector = FaultInjector(registry=registry)
    pool = WorkerPool("thread", max_workers=1, injector=injector)
    pool.submit(int, 1).result()
    first = pool._pool
    pool.recreate()
    assert pool._pool is None
    assert registry.counter("pool.recreated").value == 1
    assert pool.submit(int, 2).result() == 2
    assert pool._pool is not first
    pool.close()


def test_executor_recovers_from_real_broken_process_pool():
    """A genuinely dead worker process (os._exit) breaks the pool; the
    executor's retry loop recreates it and the re-submitted solve
    succeeds — the caller sees only correct results."""
    registry = MetricsRegistry()
    injector = FaultInjector(registry=registry)
    executor = ShardExecutor(
        "process",
        max_workers=1,
        injector=injector,
        retry=RetryPolicy(max_attempts=3, backoff_s=0.0, backoff_cap_s=0.0),
    )
    try:
        # Break the pool out-of-band, then ask for a real solve.
        with pytest.raises(Exception):
            executor.pool.submit(_die).result()
        keys = _keys()
        results = executor.run([(0, keys)])
        assert len(results) == 1
        assert not isinstance(results[0], TaskFailure)
        sid, pairs, _secs = results[0]
        assert sid == 0 and len(pairs) == keys.shape[0]
    finally:
        executor.close()


def test_injected_pool_death_takes_the_recovery_path():
    """``pool.submit:pool_death`` kills the pool under the submission;
    the executor retries on a fresh pool and the flush still completes,
    with the recreation counted."""
    registry = MetricsRegistry()
    injector = FaultInjector(
        parse_fault_spec("pool.submit:pool_death:@1"),
        seed=0,
        registry=registry,
    )
    executor = ShardExecutor(
        "thread",
        max_workers=1,
        injector=injector,
        retry=RetryPolicy(max_attempts=3, backoff_s=0.0, backoff_cap_s=0.0),
    )
    try:
        keys = _keys()
        results = executor.run([(0, keys)])
        assert not isinstance(results[0], TaskFailure)
        assert registry.counter("pool.recreated").value >= 1
        assert registry.counter("retry.count").value >= 1
    finally:
        executor.close()


# ----------------------------------------------------------------------
# Retry exhaustion -> TaskFailure
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_persistent_crash_becomes_task_failure(backend):
    """A shard whose every attempt crashes comes back as a structured
    TaskFailure wrapping ShardSolveError — never an escaped exception,
    never a silent swallow."""
    injector = FaultInjector(parse_fault_spec("shard.solve:crash:%1"), seed=0)
    retry = RetryPolicy(max_attempts=2, backoff_s=0.0, backoff_cap_s=0.0)
    executor = ShardExecutor(backend, max_workers=1, injector=injector, retry=retry)
    try:
        results = executor.run([(0, _keys()), (1, _keys())])
        assert all(isinstance(r, TaskFailure) for r in results)
        assert [r.task_id for r in results] == [0, 1]
        for failure in results:
            assert failure.site == "shard.solve"
            assert failure.attempts == 2
            assert isinstance(failure.error, ShardSolveError)
    finally:
        executor.close()


def test_transient_crash_is_retried_to_success():
    """A one-shot crash costs one retry and nothing else: the results
    are identical to a fault-free run's."""
    registry = MetricsRegistry()
    injector = FaultInjector(
        parse_fault_spec("shard.solve:crash:@1"), seed=0, registry=registry
    )
    retry = RetryPolicy(max_attempts=3, backoff_s=0.0, backoff_cap_s=0.0)
    executor = ShardExecutor("serial", injector=injector, retry=retry)
    clean = ShardExecutor("serial")
    keys = _keys(4)
    faulted = executor.run([(0, keys)])
    reference = clean.run([(0, keys)])
    assert faulted[0][0] == reference[0][0]
    assert faulted[0][1] == reference[0][1]
    assert registry.counter("retry.count").value == 1
    assert registry.counter("fault.injected").value == 1


def test_results_stay_sorted_with_mixed_failures():
    injector = FaultInjector(parse_fault_spec("shard.solve:crash:@2"), seed=0)
    retry = RetryPolicy(max_attempts=1)
    executor = ShardExecutor("serial", injector=injector, retry=retry)
    results = executor.run([(2, _keys()), (0, _keys()), (1, _keys())])
    ids = [r.task_id if isinstance(r, TaskFailure) else r[0] for r in results]
    assert ids == [0, 1, 2]
    assert sum(isinstance(r, TaskFailure) for r in results) == 1
