"""SchedulingProblem assembly."""

from repro.core.problem import SchedulingProblem
from repro.core.stop import StopKind


def make_problem(make_request, with_new=True):
    onboard_request = make_request(0, 5)
    pending_request = make_request(10, 15)
    new_request = make_request(20, 25) if with_new else None
    return SchedulingProblem(
        start_vertex=0,
        start_time=50.0,
        onboard={onboard_request: 10.0},
        pending=(pending_request,),
        new_request=new_request,
        capacity=4,
    )


def test_stops_to_schedule_composition(make_request):
    problem = make_problem(make_request)
    stops = problem.stops_to_schedule
    kinds = [(s.request_id, s.kind) for s in stops]
    # onboard dropoff + pending pickup/dropoff + new pickup/dropoff
    assert kinds == [
        (0, StopKind.DROPOFF),
        (1, StopKind.PICKUP),
        (1, StopKind.DROPOFF),
        (2, StopKind.PICKUP),
        (2, StopKind.DROPOFF),
    ]


def test_stops_without_new_request(make_request):
    problem = make_problem(make_request, with_new=False)
    assert len(problem.stops_to_schedule) == 3


def test_num_active_trips_excludes_new(make_request):
    problem = make_problem(make_request)
    assert problem.num_active_trips == 2


def test_onboard_pickup_times(make_request):
    problem = make_problem(make_request)
    assert problem.onboard_pickup_times == {0: 10.0}


def test_evaluate_delegates(city_engine, make_request):
    r = make_request(0, 9)
    problem = SchedulingProblem(0, 0.0, {}, (), r, 4)
    from repro.core.stop import dropoff, pickup

    evaluation = problem.evaluate(city_engine, (pickup(r), dropoff(r)))
    assert evaluation is not None
    assert evaluation.cost > 0
