"""TripRequest invariants."""

import pytest

from repro.core.request import TripRequest
from repro.exceptions import ScheduleError


def make(**overrides):
    params = dict(
        request_id=1,
        origin=0,
        destination=5,
        request_time=100.0,
        max_wait=600.0,
        detour_epsilon=0.2,
        direct_cost=300.0,
    )
    params.update(overrides)
    return TripRequest(**params)


def test_pickup_deadline():
    assert make().pickup_deadline == 700.0


def test_max_ride_cost():
    assert make().max_ride_cost == pytest.approx(360.0)


def test_latest_dropoff_bound():
    assert make().latest_dropoff_bound == pytest.approx(700.0 + 360.0)


def test_zero_epsilon_allows_only_direct():
    request = make(detour_epsilon=0.0)
    assert request.max_ride_cost == request.direct_cost


def test_same_origin_destination_rejected():
    with pytest.raises(ScheduleError):
        make(destination=0)


def test_negative_wait_rejected():
    with pytest.raises(ScheduleError):
        make(max_wait=-1.0)


def test_negative_epsilon_rejected():
    with pytest.raises(ScheduleError):
        make(detour_epsilon=-0.1)


def test_nonpositive_direct_cost_rejected():
    with pytest.raises(ScheduleError):
        make(direct_cost=0.0)


def test_frozen():
    request = make()
    with pytest.raises(Exception):
        request.origin = 3


def test_repr():
    assert "TripRequest" in repr(make())
