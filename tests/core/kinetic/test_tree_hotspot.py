"""Hotspot clustering (Section V): merging, load shedding, and the
Theorem 2 cost bound."""

import numpy as np
import pytest

from repro.core.kinetic.tree import KineticTree
from repro.core.request import TripRequest


def cluster_requests(engine, center, count, rng, eps=5.0, wait=3000.0):
    """Requests whose pickups all sit within a tiny ball around
    ``center`` (same or adjacent vertices) and whose dropoffs cluster
    around another point — the airport-to-downtown burst."""
    graph = engine.graph
    near = [center] + [int(v) for v in graph.neighbors(center)]
    row = engine.distances_from(center)
    far = int(np.argmax(row))  # the vertex farthest from the cluster
    far_near = [far] + [int(v) for v in graph.neighbors(far)]
    requests = []
    for rid in range(count):
        o = near[rid % len(near)]
        d = far_near[rid % len(far_near)]
        requests.append(
            TripRequest(rid, o, d, 0.0, wait, eps, engine.distance(o, d))
        )
    return requests


def insert_all(tree, requests):
    accepted = []
    for request in requests:
        trial = tree.try_insert(request, tree.root_vertex, 0.0)
        if trial is not None:
            tree.commit(trial)
            accepted.append(request)
    return accepted


@pytest.fixture
def theta():
    return 60.0  # seconds of travel (~840 m): covers adjacent vertices


def test_merging_creates_group_nodes(city_engine, rng, theta):
    requests = cluster_requests(city_engine, center=45, count=4, rng=rng)
    tree = KineticTree(
        city_engine, 0, capacity=None, mode="slack", hotspot_theta=theta
    )
    insert_all(tree, requests)
    assert any(node.is_group for child in tree.children for node in child.iter_nodes()), (
        "no hotspot group formed for co-located stops"
    )


def test_hotspot_tree_much_smaller(city_engine, rng, theta):
    requests = cluster_requests(city_engine, center=45, count=5, rng=rng)
    basic = KineticTree(city_engine, 0, capacity=None, mode="basic")
    hotspot = KineticTree(
        city_engine, 0, capacity=None, mode="slack", hotspot_theta=theta
    )
    insert_all(basic, requests)
    insert_all(hotspot, requests)
    assert hotspot.size() < basic.size() / 2, (
        f"hotspot {hotspot.size()} nodes vs basic {basic.size()}"
    )


def test_hotspot_schedules_remain_valid(city_engine, rng, theta):
    requests = cluster_requests(city_engine, center=45, count=5, rng=rng)
    tree = KineticTree(
        city_engine, 0, capacity=None, mode="slack", hotspot_theta=theta
    )
    accepted = insert_all(tree, requests)
    assert accepted, "hotspot tree accepted nothing"
    tree.validate()  # exact validity of every materialized schedule


def test_theorem2_cost_bound(city_engine, rng, theta):
    """cost(hotspot best) <= cost(optimal) + 2(m+1)θ with loose
    constraints (Theorem 2)."""
    requests = cluster_requests(
        city_engine, center=45, count=4, rng=rng, eps=10.0, wait=10_000.0
    )
    basic = KineticTree(city_engine, 0, capacity=None, mode="basic")
    hotspot = KineticTree(
        city_engine, 0, capacity=None, mode="slack", hotspot_theta=theta
    )
    accepted_b = insert_all(basic, requests)
    accepted_h = insert_all(hotspot, requests)
    assert len(accepted_b) == len(accepted_h) == len(requests)
    best_basic = basic.best_schedule()[0]
    best_hotspot = hotspot.best_schedule()[0]
    m = max(
        len(node.stops)
        for child in hotspot.children
        for node in child.iter_nodes()
    )
    bound = best_basic + 2 * (m + 1) * theta
    assert best_hotspot <= bound + 1e-6
    assert best_hotspot >= best_basic - 1e-6  # approximation never wins


def test_theta_zero_merges_only_colocated(city_engine, make_request):
    tree = KineticTree(
        city_engine, 0, capacity=None, mode="slack", hotspot_theta=0.0
    )
    # Two pickups at the same vertex, dropoffs elsewhere.
    r1 = make_request(40, 70, epsilon=4.0, max_wait=4000.0)
    r2 = make_request(40, 71, epsilon=4.0, max_wait=4000.0)
    tree.commit(tree.try_insert(r1, 0, 0.0))
    tree.commit(tree.try_insert(r2, 0, 0.0))
    groups = [
        node
        for child in tree.children
        for node in child.iter_nodes()
        if node.is_group
    ]
    assert groups, "same-vertex stops should merge at theta=0"
    for node in groups:
        vertices = {stop.vertex for stop in node.stops}
        assert len(vertices) == 1


def test_advance_through_group_applies_all_stops(city_engine, make_request):
    tree = KineticTree(
        city_engine, 0, capacity=None, mode="slack", hotspot_theta=0.0
    )
    r1 = make_request(40, 70, epsilon=4.0, max_wait=4000.0)
    r2 = make_request(40, 71, epsilon=4.0, max_wait=4000.0)
    tree.commit(tree.try_insert(r1, 0, 0.0))
    tree.commit(tree.try_insert(r2, 0, 0.0))
    # Advance until both riders are onboard; group nodes apply all their
    # stops in one advance.
    while tree.committed and tree.load < 2:
        tree.advance()
    assert tree.load == 2


def test_no_merge_when_far_apart(city_engine, make_request):
    tree = KineticTree(
        city_engine, 0, capacity=None, mode="slack", hotspot_theta=1.0
    )
    r1 = make_request(5, 90, epsilon=4.0, max_wait=4000.0)
    r2 = make_request(60, 30, epsilon=4.0, max_wait=4000.0)
    tree.commit(tree.try_insert(r1, 0, 0.0))
    tree.commit(tree.try_insert(r2, 0, 0.0))
    assert not any(
        node.is_group for child in tree.children for node in child.iter_nodes()
    )
