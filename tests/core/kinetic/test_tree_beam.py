"""Schedule-cap (beam) load shedding and the tree renderer."""

import pytest

from repro.core.kinetic.tree import KineticTree, render_tree


def grow(tree, make_request, specs):
    accepted = 0
    for origin, destination in specs:
        request = make_request(
            origin, destination, epsilon=2.5, max_wait=2500.0
        )
        trial = tree.try_insert(request, tree.root_vertex, tree.root_time)
        if trial is not None:
            tree.commit(trial)
            accepted += 1
    return accepted


SPECS = [(5, 60), (7, 62), (15, 70), (17, 72)]


def test_cap_limits_schedule_count(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=None, schedule_cap=3)
    grow(tree, make_request, SPECS)
    assert tree.num_schedules() <= 3


def test_capped_tree_schedules_remain_valid(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=None, schedule_cap=2)
    grow(tree, make_request, SPECS)
    tree.validate()


def test_cap_keeps_the_best_schedule(city_engine, make_request):
    """The beam keeps the cheapest schedules, so per-insertion best cost
    matches the uncapped tree's best on the kept-set-compatible stream."""
    exact = KineticTree(city_engine, 0, capacity=None)
    capped = KineticTree(city_engine, 0, capacity=None, schedule_cap=4)
    factory_a = [make_request(o, d, epsilon=2.5, max_wait=2500.0) for o, d in SPECS]
    for request in factory_a:
        trial_e = exact.try_insert(request, exact.root_vertex, 0.0)
        trial_c = capped.try_insert(request, capped.root_vertex, 0.0)
        if trial_e is None:
            assert trial_c is None
            continue
        assert trial_c is not None
        # The capped tree searched a subset, so it can never be cheaper.
        assert trial_c.best_cost >= trial_e.best_cost - 1e-9
        exact.commit(trial_e)
        capped.commit(trial_c)
    # Both committed paths exist and the capped one is executable.
    capped.validate()


def test_cap_one_degenerates_to_single_schedule(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=None, schedule_cap=1)
    accepted = grow(tree, make_request, SPECS)
    assert accepted >= 2
    assert tree.num_schedules() == 1
    tree.validate()


def test_cap_validation():
    with pytest.raises(ValueError):
        KineticTree(None, 0, schedule_cap=0)


def test_render_tree(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=4)
    grow(tree, make_request, SPECS[:2])
    text = render_tree(tree)
    assert "root @v0" in text
    assert "P0" in text and "D0" in text
    assert "Δ=" in text
    # Committed nodes are starred.
    assert "*" in text


def test_render_empty_tree(city_engine):
    tree = KineticTree(city_engine, 0)
    text = render_tree(tree)
    assert "trips=0" in text
