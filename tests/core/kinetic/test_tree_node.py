"""TreeNode structure and the per-stop latest-arrival computation."""

import pytest

from repro.core.kinetic.node import TreeNode, stop_latest_arrival
from repro.core.request import TripRequest
from repro.core.stop import dropoff, pickup


def request(rid=1, t=100.0, wait=600.0, eps=0.2, direct=200.0):
    return TripRequest(rid, 10, 20, t, wait, eps, direct)


def test_pickup_lat_is_deadline():
    r = request()
    assert stop_latest_arrival(pickup(r), {}) == r.pickup_deadline


def test_onboard_dropoff_lat_uses_actual_pickup():
    r = request()
    lat = stop_latest_arrival(dropoff(r), {1: 150.0})
    assert lat == pytest.approx(150.0 + r.max_ride_cost)


def test_pending_dropoff_lat_is_worst_case_bound():
    r = request()
    lat = stop_latest_arrival(dropoff(r), {})
    assert lat == pytest.approx(r.pickup_deadline + r.max_ride_cost)
    # The bound dominates any achievable dropoff LAT: pickup can never
    # happen later than the deadline.
    assert lat >= stop_latest_arrival(dropoff(r), {1: r.pickup_deadline})


def test_node_requires_aligned_stops_arrivals():
    r = request()
    with pytest.raises(ValueError):
        TreeNode((pickup(r),), (1.0, 2.0))
    with pytest.raises(ValueError):
        TreeNode((), ())


def test_node_accessors():
    r = request()
    node = TreeNode((pickup(r), dropoff(r)), (10.0, 40.0))
    assert node.first_vertex == 10
    assert node.last_vertex == 20
    assert node.last_arrival == 40.0
    assert node.is_group
    assert node.internal_cost == pytest.approx(30.0)


def test_singleton_node_internal_cost_zero():
    r = request()
    node = TreeNode((pickup(r),), (10.0,))
    assert node.internal_cost == 0.0
    assert not node.is_group
    assert node.is_leaf


def test_iter_and_counts():
    r1, r2 = request(1), request(2)
    leaf_a = TreeNode((dropoff(r1),), (30.0,))
    leaf_b = TreeNode((dropoff(r2),), (35.0,))
    root = TreeNode((pickup(r1),), (10.0,), [leaf_a, leaf_b])
    assert root.count_nodes() == 3
    assert root.count_leaves() == 2
    assert {id(n) for n in root.iter_nodes()} == {
        id(root), id(leaf_a), id(leaf_b)
    }


def test_repr():
    r = request()
    assert "TreeNode" in repr(TreeNode((pickup(r),), (10.0,)))
