"""The tree materializes exactly the valid schedules, and its best
schedule matches brute force — the paper's core correctness claims."""

import itertools

import numpy as np
import pytest

from repro.algorithms.brute_force import BruteForce
from repro.core.kinetic.tree import KineticTree
from repro.core.problem import SchedulingProblem
from repro.core.schedule import evaluate_schedule
from repro.core.stop import dropoff, pickup


def enumerate_valid_orders(engine, problem):
    """Reference: all valid stop orderings by raw permutation filtering."""
    stops = list(problem.stops_to_schedule)
    valid = []
    for perm in itertools.permutations(stops):
        seen = set(problem.onboard_pickup_times)
        ok = True
        for stop in perm:
            if stop.is_pickup:
                seen.add(stop.request_id)
            elif stop.request_id not in seen:
                ok = False
                break
        if not ok:
            continue
        evaluation = evaluate_schedule(
            engine,
            problem.start_vertex,
            problem.start_time,
            perm,
            problem.onboard_pickup_times,
            capacity=problem.capacity,
            initial_load=len(problem.onboard),
        )
        if evaluation is not None:
            valid.append(perm)
    return valid


def random_problem(engine, rng, num_pending=2, with_onboard=False):
    n = engine.graph.num_vertices
    requests = []
    rid = 0
    while len(requests) < num_pending:
        o, d = (int(x) for x in rng.integers(0, n, 2))
        if o == d:
            continue
        from repro.core.request import TripRequest

        requests.append(
            TripRequest(rid, o, d, 0.0, 900.0, 1.0, engine.distance(o, d))
        )
        rid += 1
    onboard = {}
    if with_onboard:
        while True:
            o, d = (int(x) for x in rng.integers(0, n, 2))
            if o != d:
                break
        from repro.core.request import TripRequest

        onboard = {
            TripRequest(99, o, d, 0.0, 900.0, 2.0, engine.distance(o, d)): 0.0
        }
    start = int(rng.integers(0, n))
    return SchedulingProblem(start, 0.0, onboard, tuple(requests), None, 4)


@pytest.mark.parametrize("seed", range(8))
def test_tree_materializes_exactly_the_valid_schedules(city_engine, seed):
    rng = np.random.default_rng(seed)
    problem = random_problem(city_engine, rng, num_pending=2, with_onboard=(seed % 2 == 0))
    tree = KineticTree.from_problem(city_engine, problem, mode="basic")
    expected = {perm for perm in enumerate_valid_orders(city_engine, problem)}
    if tree is None:
        assert not expected
        return
    actual = {stops for stops, _ in tree.all_schedules()}
    assert actual == expected


@pytest.mark.parametrize("seed", range(10))
def test_incremental_insertion_matches_bruteforce_best(city_engine, seed):
    """Insert requests one by one; after each commit the tree's best
    schedule cost equals a from-scratch brute-force solve."""
    rng = np.random.default_rng(100 + seed)
    n = city_engine.graph.num_vertices
    tree = KineticTree(city_engine, 0, capacity=4, mode="basic")
    accepted = []
    t = 0.0
    from repro.core.request import TripRequest

    for rid in range(4):
        o, d = (int(x) for x in rng.integers(0, n, 2))
        if o == d:
            continue
        request = TripRequest(
            rid, o, d, t, 600.0, 0.8, city_engine.distance(o, d)
        )
        trial = tree.try_insert(request, tree.root_vertex, t)
        problem = SchedulingProblem(
            tree.root_vertex, t, {}, tuple(accepted + [request]), None, 4
        )
        reference = BruteForce(city_engine).solve(problem)
        if trial is None:
            assert reference is None
            continue
        assert reference is not None
        assert trial.best_cost == pytest.approx(reference.cost, rel=1e-9)
        tree.commit(trial)
        accepted.append(request)
        tree.validate()


def test_insertion_after_pickup_respects_onboard(city_engine, make_request):
    """Once a rider is onboard, new insertions must honor their remaining
    ride budget measured from the actual pickup time."""
    tree = KineticTree(city_engine, 0, capacity=4, mode="basic")
    first = make_request(5, 20, epsilon=0.0)  # zero detour tolerance
    tree.commit(tree.try_insert(first, 0, 0.0))
    tree.advance()  # pick the rider up
    # Any request that would detour the onboard rider must be rejected or
    # scheduled entirely after their dropoff.
    second = make_request(50, 60, epsilon=2.0, max_wait=3000.0)
    trial = tree.try_insert(second, tree.root_vertex, tree.root_time)
    if trial is not None:
        tree.commit(trial)
        tree.validate()
        cost, stops = tree.best_schedule()
        assert stops[0].request_id == first.request_id  # dropoff first
