"""Kinetic trees under vehicle movement: drift, mid-route insertion, and
the quiescence of ∆ (Section IV, "Updating ∆ and Tree")."""

import pytest

from repro.core.kinetic.tree import KineticTree
from repro.core.schedule import evaluate_schedule


def committed_route(engine, tree):
    """Vertices along the committed schedule from the root."""
    stops = []
    for node in tree.committed:
        stops.extend(node.stops)
    route = [tree.root_vertex]
    for stop in stops:
        path = engine.path(route[-1], stop.vertex)
        route.extend(path[1:])
    return route, stops


def test_insertion_from_midroute_vertex(city_engine, make_request):
    """A request arriving while the vehicle drives toward its first stop
    must be evaluated from the vehicle's decision vertex, not the root
    where the last commit happened."""
    tree = KineticTree(city_engine, 0, capacity=4, mode="slack")
    tree.commit(tree.try_insert(make_request(55, 20, epsilon=2.0), 0, 0.0))
    route, _stops = committed_route(city_engine, tree)
    assert len(route) > 2
    # Vehicle is now at the second vertex of its route.
    midpoint = route[1]
    arrival_mid = city_engine.graph.edge_weight(route[0], midpoint)
    second = make_request(8, 30, epsilon=2.0, max_wait=1500.0)
    trial = tree.try_insert(second, midpoint, arrival_mid)
    if trial is None:
        pytest.skip("no feasible augmentation from this midpoint")
    tree.commit(trial)
    assert tree.root_vertex == midpoint
    tree.validate()
    # The committed schedule is executable from the midpoint: re-evaluate
    # with the reference validator.
    cost, stops = tree.best_schedule()
    evaluation = evaluate_schedule(
        city_engine, midpoint, arrival_mid, stops, dict(tree.onboard),
        capacity=4,
    )
    assert evaluation is not None
    assert evaluation.cost == pytest.approx(cost)


def test_deltas_quiescent_under_movement(city_engine, make_request):
    """Vehicle movement alone must not change stored ∆ values (the paper:
    "the ∆ values are quiescent to server movement")."""
    tree = KineticTree(city_engine, 0, capacity=4, mode="slack")
    tree.commit(tree.try_insert(make_request(55, 20, epsilon=2.0), 0, 0.0))
    tree.commit(
        tree.try_insert(make_request(60, 30, epsilon=2.0), tree.root_vertex, 0.0)
    )
    deltas_before = [node.delta for child in tree.children for node in child.iter_nodes()]
    # No tree API is invoked while the vehicle physically moves; stored
    # deltas are untouched by design. (This documents the invariant the
    # drift-aware insertion relies on.)
    deltas_after = [node.delta for child in tree.children for node in child.iter_nodes()]
    assert deltas_before == deltas_after


def test_stale_branch_pruned_lazily_on_next_insert(city_engine, make_request):
    """Branches whose deadlines expired while the vehicle drove elsewhere
    disappear during the next insertion (lazy invalidation)."""
    tree = KineticTree(city_engine, 0, capacity=4, mode="slack")
    tight = make_request(50, 90, epsilon=2.0, max_wait=400.0)
    tree.commit(tree.try_insert(tight, 0, 0.0))
    # Time passes far beyond the pickup deadline without the vehicle
    # moving toward the pickup: rerooting at a late time must fail.
    late = tree.reroot(0, 10_000.0)
    assert late is None


def test_advance_then_insert_sequence(city_engine, make_request):
    """Interleave insertions and stop executions, validating throughout."""
    tree = KineticTree(city_engine, 0, capacity=4, mode="slack")
    requests = [
        make_request(5, 60, epsilon=1.5, max_wait=1200.0),
        make_request(7, 62, epsilon=1.5, max_wait=1200.0),
        make_request(30, 90, epsilon=1.5, max_wait=1800.0),
    ]
    accepted = 0
    for request in requests:
        trial = tree.try_insert(request, tree.root_vertex, tree.root_time)
        if trial is not None:
            tree.commit(trial)
            accepted += 1
        if tree.committed:
            node = tree.advance()
            assert node.last_arrival >= tree.root_time - 1e-9
            tree.validate()
    assert accepted >= 2
    # Drain the remaining schedule.
    while tree.committed:
        tree.advance()
    assert tree.num_active_trips == 0
    assert tree.load == 0


def test_onboard_budget_shrinks_with_detours(city_engine, make_request):
    """Probes whose tight waits force a pickup *before* the onboard
    rider's dropoff must be refused once they would blow the rider's
    ride budget; probes with loose waits may be appended afterwards."""
    tree = KineticTree(city_engine, 0, capacity=None, mode="slack")
    rider = make_request(1, 99, epsilon=0.2)
    tree.commit(tree.try_insert(rider, 0, 0.0))
    tree.advance()  # rider onboard, ride budget = 1.2x direct
    refusals = 0
    accepted = 0
    for i in range(6):
        # Short wait: the probe must be picked up almost immediately,
        # i.e. during the rider's trip, consuming their slim budget.
        probe = make_request(
            9 + i * 13, 97 - i * 11, epsilon=3.0, max_wait=120.0
        )
        trial = tree.try_insert(probe, tree.root_vertex, tree.root_time)
        if trial is None:
            refusals += 1
        else:
            tree.commit(trial)
            tree.validate()
            accepted += 1
    assert refusals >= 3, f"accepted={accepted}, refusals={refusals}"
