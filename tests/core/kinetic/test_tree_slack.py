"""Slack-time filtering (Theorem 1) must be a pure speedup: identical
trees, identical best schedules, never over-pruning."""

import numpy as np
import pytest

from repro.core.kinetic.node import stop_latest_arrival
from repro.core.kinetic.tree import KineticTree
from repro.core.request import TripRequest


def drive_both(engine, seed, steps=5, capacity=4, wait=600.0, eps=0.5):
    """Feed the same request stream to a basic and a slack tree."""
    rng = np.random.default_rng(seed)
    n = engine.graph.num_vertices
    basic = KineticTree(engine, 0, capacity=capacity, mode="basic")
    slack = KineticTree(engine, 0, capacity=capacity, mode="slack")
    t = 0.0
    for rid in range(steps):
        o, d = (int(x) for x in rng.integers(0, n, 2))
        if o == d:
            continue
        request = TripRequest(rid, o, d, t, wait, eps, engine.distance(o, d))
        trial_b = basic.try_insert(request, basic.root_vertex, t)
        trial_s = slack.try_insert(request, slack.root_vertex, t)
        # Acceptance decisions must agree.
        assert (trial_b is None) == (trial_s is None), (
            f"slack filter changed feasibility for request {rid}"
        )
        if trial_b is None:
            continue
        assert trial_s.best_cost == pytest.approx(trial_b.best_cost, rel=1e-9)
        basic.commit(trial_b)
        slack.commit(trial_s)
        # Occasionally execute a stop so onboard state diversifies.
        if rid % 2 == 1 and basic.committed:
            basic.advance()
            slack.advance()
        t += 60.0
    return basic, slack


@pytest.mark.parametrize("seed", range(10))
def test_slack_equals_basic_costs(city_engine, seed):
    basic, slack = drive_both(city_engine, seed)
    assert basic.num_schedules() == slack.num_schedules()
    basic_set = {stops for stops, _ in basic.all_schedules()}
    slack_set = {stops for stops, _ in slack.all_schedules()}
    assert basic_set == slack_set


@pytest.mark.parametrize("seed", range(5))
def test_slack_equals_basic_tight_constraints(city_engine, seed):
    # Tight constraints are where the filter prunes most (paper: ~32%
    # savings at 5 min / 10%) and where over-pruning would show.
    basic, slack = drive_both(
        city_engine, seed, steps=6, wait=240.0, eps=0.15
    )
    assert {s for s, _ in basic.all_schedules()} == {
        s for s, _ in slack.all_schedules()
    }


def test_slack_filter_reduces_expansions(city_engine):
    """With tight constraints the filter should cut search work."""
    rng = np.random.default_rng(3)
    n = city_engine.graph.num_vertices
    total = {"basic": 0, "slack": 0}
    for mode in ("basic", "slack"):
        rng = np.random.default_rng(3)
        tree = KineticTree(city_engine, 0, capacity=6, mode=mode)
        t = 0.0
        for rid in range(8):
            o, d = (int(x) for x in rng.integers(0, n, 2))
            if o == d:
                continue
            request = TripRequest(
                rid, o, d, t, 300.0, 0.3, city_engine.distance(o, d)
            )
            trial = tree.try_insert(request, tree.root_vertex, t)
            if trial is not None:
                total[mode] += trial.expansions
                tree.commit(trial)
            t += 30.0
    assert total["slack"] <= total["basic"]


def test_deltas_satisfy_recurrence(city_engine, make_request):
    """∆ = min(own slack, max over children ∆) after every commit."""
    tree = KineticTree(city_engine, 0, capacity=4, mode="slack")
    for i, (o, d) in enumerate([(5, 20), (8, 30), (40, 60)]):
        trial = tree.try_insert(
            make_request(o, d, epsilon=1.5, max_wait=1500.0), tree.root_vertex, 0.0
        )
        if trial is not None:
            tree.commit(trial)

    def check(node):
        own = min(
            stop_latest_arrival(stop, tree.onboard) - arrival
            for stop, arrival in zip(node.stops, node.arrivals)
        )
        if node.children:
            expected = min(own, max(check(c) for c in node.children))
        else:
            expected = own
        assert node.delta == pytest.approx(expected)
        return node.delta

    for child in tree.children:
        check(child)


def test_slack_never_negative_on_committed_path(city_engine, make_request):
    """Every committed node must have non-negative slack — otherwise the
    tree admitted a schedule violating some constraint."""
    tree = KineticTree(city_engine, 0, capacity=4, mode="slack")
    for o, d in [(5, 20), (8, 30)]:
        trial = tree.try_insert(
            make_request(o, d, epsilon=1.0), tree.root_vertex, 0.0
        )
        if trial is not None:
            tree.commit(trial)
    for node in tree.committed:
        for stop, arrival in zip(node.stops, node.arrivals):
            assert stop_latest_arrival(stop, tree.onboard) - arrival >= -1e-6
