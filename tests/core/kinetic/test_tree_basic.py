"""Kinetic tree: construction, insertion, commitment, movement."""

import pytest

from repro.core.kinetic.tree import KineticTree
from repro.exceptions import ScheduleError, TreeBudgetExceeded


def test_empty_tree(city_engine):
    tree = KineticTree(city_engine, start_vertex=0)
    assert tree.num_active_trips == 0
    assert tree.size() == 0
    assert tree.num_schedules() == 0
    assert tree.best_schedule() is None


def test_first_insert_creates_chain(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=4)
    request = make_request(5, 20)
    trial = tree.try_insert(request, 0, 0.0)
    assert trial is not None
    assert trial.best_cost == pytest.approx(
        city_engine.distance(0, 5) + city_engine.distance(5, 20)
    )
    tree.commit(trial)
    assert tree.num_active_trips == 1
    assert tree.num_schedules() == 1
    cost, stops = tree.best_schedule()
    assert [s.kind.value for s in stops] == ["pickup", "dropoff"]
    tree.validate()


def test_insert_infeasible_wait(city_engine, make_request):
    tree = KineticTree(city_engine, 0)
    # Waiting time 1 second: the pickup is unreachable in time.
    request = make_request(99, 0, max_wait=1.0)
    assert tree.try_insert(request, 0, 0.0) is None


def test_insert_does_not_mutate_tree(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=4)
    first = tree.try_insert(make_request(5, 20), 0, 0.0)
    tree.commit(first)
    size_before = tree.size()
    trial = tree.try_insert(make_request(6, 21), tree.root_vertex, 0.0)
    assert trial is not None
    assert tree.size() == size_before  # trial untouched until commit
    tree.validate()


def test_double_insert_same_request_rejected(city_engine, make_request):
    tree = KineticTree(city_engine, 0)
    request = make_request(5, 20)
    tree.commit(tree.try_insert(request, 0, 0.0))
    with pytest.raises(ScheduleError):
        tree.try_insert(request, 0, 1.0)


def test_second_insert_materializes_alternatives(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=4)
    tree.commit(tree.try_insert(make_request(5, 20, epsilon=3.0, max_wait=2000.0), 0, 0.0))
    trial = tree.try_insert(
        make_request(6, 21, epsilon=3.0, max_wait=2000.0), 0, 0.0
    )
    assert trial is not None
    tree.commit(trial)
    # With loose constraints several interleavings must survive.
    assert tree.num_schedules() >= 2
    tree.validate()


def test_advance_moves_root_and_prunes(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=4)
    tree.commit(tree.try_insert(make_request(5, 20), 0, 0.0))
    node = tree.advance()
    assert node.stops[0].is_pickup
    assert tree.root_vertex == 5
    assert tree.load == 1
    assert 0 in tree.onboard
    node = tree.advance()
    assert node.stops[0].is_dropoff
    assert tree.num_active_trips == 0
    assert tree.load == 0


def test_advance_applies_lemma1(city_engine, make_request):
    """After reaching a stop, only schedules sharing that prefix remain."""
    tree = KineticTree(city_engine, 0, capacity=4)
    tree.commit(tree.try_insert(make_request(5, 20, epsilon=3.0, max_wait=2000.0), 0, 0.0))
    trial = tree.try_insert(make_request(6, 21, epsilon=3.0, max_wait=2000.0), 0, 0.0)
    tree.commit(trial)
    schedules_before = tree.num_schedules()
    first_committed = tree.committed[0]
    tree.advance()
    # All surviving schedules start with the executed node's stops.
    assert tree.children == first_committed.children
    assert tree.num_schedules() <= schedules_before
    tree.validate()


def test_advance_without_commitment_raises(city_engine):
    tree = KineticTree(city_engine, 0)
    with pytest.raises(ScheduleError):
        tree.advance()


def test_committed_path_remains_best(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=4)
    tree.commit(tree.try_insert(make_request(5, 20, epsilon=2.0), 0, 0.0))
    tree.commit(tree.try_insert(make_request(8, 30, epsilon=2.0), tree.root_vertex, 0.0))
    cost, stops = tree.best_schedule()
    # The committed path is the min-cost leaf of the tree.
    all_costs = [arr[-1] for _, arr in tree.all_schedules()]
    assert min(all_costs) == pytest.approx(tree.root_time + cost)


def test_reroot_moves_decision_point(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=4)
    tree.commit(tree.try_insert(make_request(5, 20), 0, 0.0))
    trial = tree.reroot(5, 100.0)
    assert trial is not None
    tree.commit(trial)
    assert tree.root_vertex == 5
    tree.validate()


def test_reroot_empty_tree(city_engine):
    tree = KineticTree(city_engine, 0)
    trial = tree.reroot(7, 50.0)
    tree.commit(trial)
    assert tree.root_vertex == 7
    assert tree.root_time == 50.0


def test_expansion_budget(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=None)
    tree.commit(
        tree.try_insert(make_request(5, 20, epsilon=3.0, max_wait=2000.0), 0, 0.0)
    )
    tree.expansion_budget = 2
    with pytest.raises(TreeBudgetExceeded):
        tree.try_insert(make_request(6, 21, epsilon=3.0, max_wait=2000.0), 0, 0.0)


def test_invalid_mode():
    with pytest.raises(ValueError):
        KineticTree(None, 0, mode="quantum")


def test_invalid_theta():
    with pytest.raises(ValueError):
        KineticTree(None, 0, hotspot_theta=-1.0)


def test_invalid_budget():
    with pytest.raises(ValueError):
        KineticTree(None, 0, expansion_budget=0)


def test_repr(city_engine):
    assert "KineticTree" in repr(KineticTree(city_engine, 0))


def test_eager_invalidation_prunes_stale(city_engine, make_request):
    tree = KineticTree(city_engine, 0, capacity=4, eager_invalidation=True)
    # Tight wait: alternatives die as time passes.
    tree.commit(tree.try_insert(make_request(5, 20, max_wait=120.0), 0, 0.0))
    tree.commit(
        tree.try_insert(
            make_request(6, 21, max_wait=120.0, epsilon=2.0), tree.root_vertex, 0.0
        )
    )
    tree.advance()  # eager mode revalidates and prunes in place
    tree.validate()
