"""Constraint configuration."""

import pytest

from repro.core.constraints import (
    DEFAULT_CONSTRAINTS,
    PAPER_CONSTRAINT_SWEEP,
    ConstraintConfig,
)


def test_from_minutes():
    config = ConstraintConfig.from_minutes(10, 20)
    assert config.max_wait_seconds == 600.0
    assert config.detour_epsilon == 0.2


def test_label():
    assert ConstraintConfig.from_minutes(5, 10).label == "5 min / 10%"


def test_paper_sweep_has_five_settings():
    assert len(PAPER_CONSTRAINT_SWEEP) == 5
    labels = [c.label for c in PAPER_CONSTRAINT_SWEEP]
    assert labels[0] == "5 min / 10%"
    assert labels[-1] == "25 min / 50%"


def test_default_is_ten_twenty():
    assert DEFAULT_CONSTRAINTS.max_wait_seconds == 600.0
    assert DEFAULT_CONSTRAINTS.detour_epsilon == pytest.approx(0.2)


def test_validation():
    with pytest.raises(ValueError):
        ConstraintConfig(0.0, 0.2)
    with pytest.raises(ValueError):
        ConstraintConfig(600.0, -0.5)


def test_hashable():
    assert len({DEFAULT_CONSTRAINTS, ConstraintConfig.from_minutes(10, 20)}) == 1
