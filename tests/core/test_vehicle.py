"""Vehicle kinematics: cruising, decision points, routes."""

import pytest

from repro.core.vehicle import Vehicle
from repro.exceptions import SimulationError


def test_initial_decision_point(small_city):
    vehicle = Vehicle(1, start_vertex=0, start_time=0.0)
    vertex, time = vehicle.decision_point(0.0, small_city)
    assert vertex == 0
    assert time == 0.0


def test_idle_cruise_advances(small_city):
    vehicle = Vehicle(1, start_vertex=0, start_time=0.0)
    vertex, time = vehicle.decision_point(100.0, small_city)
    assert time >= 100.0
    assert 0 <= vertex < small_city.num_vertices
    # The cruise is a real walk: consecutive waypoints are adjacent.
    for (t1, v1), (t2, v2) in zip(vehicle.waypoints, vehicle.waypoints[1:]):
        assert small_city.has_edge(v1, v2)
        assert t2 > t1


def test_idle_cruise_deterministic_per_seed(small_city):
    a = Vehicle(1, 0, seed=7)
    b = Vehicle(1, 0, seed=7)
    assert a.decision_point(500.0, small_city) == b.decision_point(500.0, small_city)


def test_idle_cruise_differs_across_seeds(small_city):
    a = Vehicle(1, 0, seed=1)
    b = Vehicle(1, 0, seed=2)
    a.decision_point(2000.0, small_city)
    b.decision_point(2000.0, small_city)
    assert a.waypoints != b.waypoints


def test_set_route_and_decision_point(small_city):
    vehicle = Vehicle(1, 0)
    vehicle.set_route([(0.0, 0), (10.0, 1), (25.0, 2)])
    assert vehicle.busy
    assert vehicle.decision_point(5.0, small_city) == (1, 10.0)
    assert vehicle.decision_point(10.0, small_city) == (1, 10.0)
    assert vehicle.decision_point(12.0, small_city) == (2, 25.0)


def test_decision_point_past_route_end(small_city):
    vehicle = Vehicle(1, 0)
    vehicle.set_route([(0.0, 0), (10.0, 1)])
    vertex, time = vehicle.decision_point(50.0, small_city)
    assert (vertex, time) == (1, 50.0)


def test_set_route_validation():
    vehicle = Vehicle(1, 0)
    with pytest.raises(SimulationError):
        vehicle.set_route([])
    with pytest.raises(SimulationError):
        vehicle.set_route([(10.0, 0), (5.0, 1)])


def test_plan_version_bumps(small_city):
    vehicle = Vehicle(1, 0)
    v0 = vehicle.plan_version
    vehicle.set_route([(0.0, 0), (1.0, 1)])
    vehicle.set_idle(1, 1.0)
    assert vehicle.plan_version == v0 + 2


def test_position_at_interpolates(small_city):
    vehicle = Vehicle(1, 0)
    vehicle.set_route([(0.0, 0), (10.0, 1)])
    x0, y0 = small_city.coords[0]
    x1, y1 = small_city.coords[1]
    x, y = vehicle.position_at(5.0, small_city)
    assert x == pytest.approx((x0 + x1) / 2, abs=1e-6)
    assert y == pytest.approx((y0 + y1) / 2, abs=1e-6)


def test_position_at_vertex(small_city):
    vehicle = Vehicle(1, 0)
    vehicle.set_route([(0.0, 0), (10.0, 1)])
    x, y = vehicle.position_at(10.0, small_city)
    assert (x, y) == tuple(small_city.coords[1])


def test_current_vertex(small_city):
    vehicle = Vehicle(1, 0)
    vehicle.set_route([(0.0, 0), (10.0, 1), (20.0, 2)])
    assert vehicle.current_vertex(0.0, small_city) == 0
    assert vehicle.current_vertex(15.0, small_city) == 1
    assert vehicle.current_vertex(25.0, small_city) == 2


def test_waypoint_compaction(small_city):
    vehicle = Vehicle(1, 0)
    vehicle.decision_point(20000.0, small_city)  # long cruise
    before = len(vehicle.waypoints)
    vehicle.decision_point(40000.0, small_city)
    # History is compacted; the list does not grow unboundedly beyond the
    # compaction threshold plus the new extension.
    assert len(vehicle.waypoints) < before + 2000


def test_repr(small_city):
    assert "idle" in repr(Vehicle(1, 0))
