"""Stop identity and helpers."""

from repro.core.request import TripRequest
from repro.core.stop import Stop, StopKind, dropoff, pickup


def make_request(rid=1):
    return TripRequest(rid, 10, 20, 0.0, 600.0, 0.2, 100.0)


def test_pickup_vertex_is_origin():
    assert pickup(make_request()).vertex == 10


def test_dropoff_vertex_is_destination():
    assert dropoff(make_request()).vertex == 20


def test_kind_flags():
    assert pickup(make_request()).is_pickup
    assert not pickup(make_request()).is_dropoff
    assert dropoff(make_request()).is_dropoff


def test_identity_by_request_and_kind():
    r = make_request()
    assert pickup(r) == pickup(r)
    assert pickup(r) != dropoff(r)
    assert hash(pickup(r)) == hash(Stop(r, StopKind.PICKUP))


def test_identity_across_equal_requests():
    # Two equal request objects produce interchangeable stops.
    assert pickup(make_request(5)) == pickup(make_request(5))
    assert pickup(make_request(5)) != pickup(make_request(6))


def test_usable_in_sets():
    r = make_request()
    stops = {pickup(r), dropoff(r), pickup(r)}
    assert len(stops) == 2


def test_eq_other_type():
    assert pickup(make_request()) != "not a stop"


def test_repr_tags():
    r = make_request()
    assert repr(pickup(r)).startswith("P")
    assert repr(dropoff(r)).startswith("D")


def test_request_id_property():
    assert pickup(make_request(9)).request_id == 9
