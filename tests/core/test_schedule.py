"""The reference schedule validator (Definition 2)."""

import pytest

from repro.core.request import TripRequest
from repro.core.schedule import check_structure, evaluate_schedule, schedule_cost
from repro.core.stop import dropoff, pickup
from repro.exceptions import ScheduleError


class StraightLineEngine:
    """Engine over the integer line: d(u, v) = |u - v| seconds."""

    def distance(self, u, v):
        return float(abs(u - v))


ENGINE = StraightLineEngine()


def request(rid, origin, destination, t=0.0, wait=100.0, eps=0.5):
    return TripRequest(
        rid, origin, destination, t, wait, eps, ENGINE.distance(origin, destination)
    )


def test_single_trip_valid():
    r = request(1, 10, 20)
    evaluation = evaluate_schedule(ENGINE, 0, 0.0, [pickup(r), dropoff(r)], {})
    assert evaluation is not None
    assert evaluation.cost == 20.0
    assert evaluation.arrivals == (10.0, 20.0)
    assert evaluation.completion_time == 20.0


def test_wait_violation():
    r = request(1, 10, 20, wait=5.0)  # pickup at t=10 > deadline 5
    assert evaluate_schedule(ENGINE, 0, 0.0, [pickup(r), dropoff(r)], {}) is None


def test_wait_exactly_at_deadline_ok():
    r = request(1, 10, 20, wait=10.0)
    assert evaluate_schedule(ENGINE, 0, 0.0, [pickup(r), dropoff(r)], {}) is not None


def test_ride_violation_via_detour():
    # Trip 1: 10 -> 20 with eps=0.1 (budget 11); detour to 25 makes the
    # on-road cost 5 + 5 + ... = 20 > 11.
    r1 = request(1, 10, 20, eps=0.1)
    r2 = request(2, 25, 30, wait=1000.0)
    stops = [pickup(r1), pickup(r2), dropoff(r1), dropoff(r2)]
    assert evaluate_schedule(ENGINE, 0, 0.0, stops, {}) is None


def test_ride_within_budget_with_detour():
    r1 = request(1, 10, 20, eps=2.0)  # budget 30
    r2 = request(2, 15, 30, wait=1000.0)
    stops = [pickup(r1), pickup(r2), dropoff(r1), dropoff(r2)]
    evaluation = evaluate_schedule(ENGINE, 0, 0.0, stops, {})
    assert evaluation is not None


def test_onboard_ride_budget_counts_from_actual_pickup():
    r = request(1, 10, 40, eps=0.0)  # budget exactly 30
    # Picked up at t=5; vehicle now at 15 at t=10 (already 5 used... on
    # the line: pickup at vertex 10 at time 5, dropoff deadline 35).
    evaluation = evaluate_schedule(ENGINE, 15, 10.0, [dropoff(r)], {1: 5.0})
    assert evaluation is not None  # arrives at 40 at t=35 == 5 + 30
    late = evaluate_schedule(ENGINE, 15, 11.0, [dropoff(r)], {1: 5.0})
    assert late is None  # arrives at t=36 > 35


def test_capacity_violation():
    r1 = request(1, 10, 30, wait=1000.0)
    r2 = request(2, 11, 31, wait=1000.0, eps=5.0)
    stops = [pickup(r1), pickup(r2), dropoff(r1), dropoff(r2)]
    assert evaluate_schedule(ENGINE, 0, 0.0, stops, {}, capacity=1) is None
    r1_loose = request(1, 10, 30, wait=1000.0, eps=5.0)
    stops_seq = [pickup(r1_loose), dropoff(r1_loose), pickup(r2), dropoff(r2)]
    assert (
        evaluate_schedule(ENGINE, 0, 0.0, stops_seq, {}, capacity=1) is not None
    )


def test_capacity_counts_initial_load():
    r = request(1, 10, 30, wait=1000.0)
    onboard = request(9, 1, 20, wait=1000.0, eps=10.0)
    stops = [pickup(r), dropoff(onboard), dropoff(r)]
    assert (
        evaluate_schedule(ENGINE, 0, 0.0, stops, {9: 0.0}, capacity=1) is None
    )
    assert (
        evaluate_schedule(ENGINE, 0, 0.0, stops, {9: 0.0}, capacity=2) is not None
    )


def test_unlimited_capacity():
    requests = [request(i, 10 + i, 50 + i, wait=1000.0, eps=5.0) for i in range(6)]
    stops = [pickup(r) for r in requests] + [dropoff(r) for r in requests]
    assert evaluate_schedule(ENGINE, 0, 0.0, stops, {}, capacity=None) is not None


def test_dropoff_before_pickup_raises():
    r = request(1, 10, 20)
    with pytest.raises(ScheduleError):
        evaluate_schedule(ENGINE, 0, 0.0, [dropoff(r), pickup(r)], {})


def test_empty_schedule():
    evaluation = evaluate_schedule(ENGINE, 0, 0.0, [], {})
    assert evaluation is not None
    assert evaluation.cost == 0.0
    assert evaluation.completion_time == 0.0


def test_schedule_cost():
    r1 = request(1, 10, 20)
    assert schedule_cost(ENGINE, 0, [pickup(r1), dropoff(r1)]) == 20.0


# ----------------------------------------------------------------------
# check_structure
# ----------------------------------------------------------------------
def test_structure_ok():
    r = request(1, 10, 20)
    check_structure([pickup(r), dropoff(r)], set())


def test_structure_onboard_dropoff_only():
    r = request(1, 10, 20)
    check_structure([dropoff(r)], {1})


def test_structure_dropoff_before_pickup():
    r = request(1, 10, 20)
    with pytest.raises(ScheduleError):
        check_structure([dropoff(r), pickup(r)], set())


def test_structure_double_pickup():
    r = request(1, 10, 20)
    with pytest.raises(ScheduleError):
        check_structure([pickup(r), pickup(r), dropoff(r)], set())


def test_structure_double_dropoff():
    r = request(1, 10, 20)
    with pytest.raises(ScheduleError):
        check_structure([pickup(r), dropoff(r), dropoff(r)], set())


def test_structure_onboard_pickup_rejected():
    r = request(1, 10, 20)
    with pytest.raises(ScheduleError):
        check_structure([pickup(r), dropoff(r)], {1})


def test_structure_missing_dropoff():
    r = request(1, 10, 20)
    with pytest.raises(ScheduleError):
        check_structure([pickup(r)], set())
