"""Dispatcher and vehicle agents."""

import pytest

from repro.core.matching import Dispatcher, KineticAgent, RescheduleAgent
from repro.core.vehicle import Vehicle
from repro.algorithms.brute_force import BruteForce
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid_index import GridIndex


def make_agents(engine, kind="kinetic", count=3, capacity=4):
    agents = []
    for vid in range(count):
        vehicle = Vehicle(vid, start_vertex=vid * 7, capacity=capacity, seed=vid)
        if kind == "kinetic":
            agents.append(KineticAgent(vehicle, engine))
        else:
            agents.append(RescheduleAgent(vehicle, engine, BruteForce(engine)))
    return agents


@pytest.fixture(params=["kinetic", "reschedule"])
def agents(request, city_engine):
    return make_agents(city_engine, kind=request.param)


def test_make_request_stamps_direct_cost(city_engine, agents):
    dispatcher = Dispatcher(city_engine, agents)
    request = dispatcher.make_request(0, 9, 0.0, 600.0, 0.2)
    assert request is not None
    assert request.direct_cost == pytest.approx(city_engine.distance(0, 9))


def test_make_request_rejects_degenerate(city_engine, agents):
    dispatcher = Dispatcher(city_engine, agents)
    assert dispatcher.make_request(5, 5, 0.0, 600.0, 0.2) is None


def test_request_ids_increment(city_engine, agents):
    dispatcher = Dispatcher(city_engine, agents)
    r1 = dispatcher.make_request(0, 9, 0.0, 600.0, 0.2)
    r2 = dispatcher.make_request(1, 9, 0.0, 600.0, 0.2)
    assert r2.request_id == r1.request_id + 1


def test_submit_assigns_cheapest(city_engine, agents):
    dispatcher = Dispatcher(city_engine, agents)
    request = dispatcher.make_request(0, 20, 0.0, 600.0, 0.5)
    result = dispatcher.submit(request, 0.0)
    assert result.assigned
    # The winner's quote must be minimal across all agents' quotes.
    quotes = [
        a.quote(request, 0.0)
        for a in make_agents(city_engine, kind="kinetic")
    ]
    # (fresh agents identical to the fixture's initial state)
    min_cost = min(q.cost for q in quotes if q is not None)
    assert result.cost == pytest.approx(min_cost)


def test_submit_collects_art_timings(city_engine, agents):
    dispatcher = Dispatcher(city_engine, agents)
    request = dispatcher.make_request(0, 20, 0.0, 600.0, 0.5)
    result = dispatcher.submit(request, 0.0)
    assert len(result.quote_timings) == len(agents)
    for active, seconds in result.quote_timings:
        assert active == 0
        assert seconds >= 0.0


def test_commit_updates_winner_state(city_engine, agents):
    dispatcher = Dispatcher(city_engine, agents)
    request = dispatcher.make_request(0, 20, 0.0, 600.0, 0.5)
    result = dispatcher.submit(request, 0.0)
    winner = result.winner
    assert winner.num_active_trips == 1
    assert winner.vehicle.busy
    losers = [a for a in agents if a is not winner]
    assert all(a.num_active_trips == 0 for a in losers)
    assert all(not a.vehicle.busy for a in losers)


def test_agent_executes_committed_stops(city_engine, agents):
    dispatcher = Dispatcher(city_engine, agents)
    request = dispatcher.make_request(0, 20, 0.0, 600.0, 0.5)
    result = dispatcher.submit(request, 0.0)
    agent = result.winner
    arrival, stops = agent.next_stop()
    serviced = agent.arrive_next()
    assert serviced[0][1].is_pickup
    assert agent.load == 1
    serviced = agent.arrive_next()
    assert serviced[-1][1].is_dropoff
    assert agent.load == 0
    assert agent.next_stop() is None


def test_route_waypoints_follow_edges(city_engine, agents):
    dispatcher = Dispatcher(city_engine, agents)
    request = dispatcher.make_request(0, 20, 0.0, 600.0, 0.5)
    result = dispatcher.submit(request, 0.0)
    waypoints = result.winner.vehicle.waypoints
    graph = city_engine.graph
    for (t1, v1), (t2, v2) in zip(waypoints, waypoints[1:]):
        assert graph.has_edge(v1, v2)
        assert t2 - t1 == pytest.approx(graph.edge_weight(v1, v2), rel=1e-9)


def test_infeasible_request_rejected(city_engine, agents):
    dispatcher = Dispatcher(city_engine, agents)
    request = dispatcher.make_request(99, 0, 0.0, 0.5, 0.2)  # 0.5s wait
    result = dispatcher.submit(request, 0.0)
    assert not result.assigned
    assert result.cost == float("inf")


def test_candidate_filter_uses_grid_index(city_engine):
    agents = make_agents(city_engine, count=4)
    coords = city_engine.graph.coords
    bounds = BoundingBox(
        float(coords[:, 0].min()),
        float(coords[:, 1].min()),
        float(coords[:, 0].max()),
        float(coords[:, 1].max()),
    )
    index = GridIndex(bounds, cell_meters=200)
    # Register only vehicles 0 and 1.
    for agent in agents[:2]:
        x, y = coords[agent.vehicle.waypoints[0][1]]
        index.update(agent.vehicle.vehicle_id, float(x), float(y))
    dispatcher = Dispatcher(city_engine, agents, grid_index=index, staleness_seconds=0)
    request = dispatcher.make_request(0, 20, 0.0, 600.0, 0.5)
    candidates = dispatcher.candidates(request)
    assert {a.vehicle.vehicle_id for a in candidates} <= {0, 1}


def test_candidate_filter_radius(city_engine):
    agents = make_agents(city_engine, count=2)
    coords = city_engine.graph.coords
    bounds = BoundingBox(
        float(coords[:, 0].min()),
        float(coords[:, 1].min()),
        float(coords[:, 0].max()),
        float(coords[:, 1].max()),
    )
    index = GridIndex(bounds, cell_meters=100)
    # Vehicle 0 next to the pickup, vehicle 1 registered far away
    # (farther than the wait radius can reach).
    x0, y0 = coords[0]
    index.update(0, float(x0), float(y0))
    index.update(1, float(x0) + 9e5, float(y0) + 9e5)
    dispatcher = Dispatcher(city_engine, agents, grid_index=index, staleness_seconds=0)
    request = dispatcher.make_request(0, 20, 0.0, 60.0, 0.5)  # 1 min wait
    candidates = dispatcher.candidates(request)
    assert [a.vehicle.vehicle_id for a in candidates] == [0]


def test_objective_validation(city_engine, agents):
    with pytest.raises(ValueError):
        Dispatcher(city_engine, agents, objective="fastest")


def test_delta_objective_prefers_smaller_increment(city_engine):
    """total picks the globally cheapest schedule; delta the smallest
    increase. Construct a case where they disagree."""
    agents = make_agents(city_engine, kind="kinetic", count=2)
    dispatcher_total = Dispatcher(city_engine, agents, objective="total")
    # Load agent 0 with a long commitment.
    r0 = dispatcher_total.make_request(0, 99, 0.0, 900.0, 1.0)
    res0 = dispatcher_total.submit(r0, 0.0)
    assert res0.assigned
    loaded = res0.winner
    # Now a request near the loaded vehicle's route: its *delta* is small
    # but its *total* is large.
    r1 = dispatcher_total.make_request(1, 98, 0.0, 900.0, 1.0)
    quote_total = dispatcher_total.submit(r1, 0.0)
    # Rebuild the same scenario for the delta objective.
    agents_d = make_agents(city_engine, kind="kinetic", count=2)
    dispatcher_delta = Dispatcher(city_engine, agents_d, objective="delta")
    r0d = dispatcher_delta.make_request(0, 99, 0.0, 900.0, 1.0)
    dispatcher_delta.submit(r0d, 0.0)
    r1d = dispatcher_delta.make_request(1, 98, 0.0, 900.0, 1.0)
    quote_delta = dispatcher_delta.submit(r1d, 0.0)
    # Both must assign; winners may differ, but delta never picks a
    # vehicle whose increment is larger than the total-winner's increment.
    assert quote_total.assigned and quote_delta.assigned


def test_kinetic_agent_current_plan_cost(city_engine):
    agent = make_agents(city_engine, count=1)[0]
    assert agent.current_plan_cost() == 0.0
    dispatcher = Dispatcher(city_engine, [agent])
    request = dispatcher.make_request(0, 20, 0.0, 600.0, 0.5)
    dispatcher.submit(request, 0.0)
    assert agent.current_plan_cost() > 0.0
