"""Quoting must never mutate committed state — the property the whole
trial/commit protocol rests on ("Only the chosen tree needs to have its
∆ updated")."""

import copy

from repro.core.matching import Dispatcher, KineticAgent, RescheduleAgent
from repro.core.vehicle import Vehicle
from repro.algorithms.brute_force import BruteForce


def snapshot_kinetic(agent):
    return (
        agent.tree.root_vertex,
        agent.tree.root_time,
        agent.tree.size(),
        agent.tree.num_schedules(),
        dict(agent.tree.onboard),
        sorted(agent.tree.active_requests),
        [id(n) for n in agent.tree.committed],
    )


def test_kinetic_quote_is_pure(city_engine):
    agent = KineticAgent(Vehicle(0, 0, capacity=4), city_engine)
    dispatcher = Dispatcher(city_engine, [agent])
    first = dispatcher.make_request(0, 20, 0.0, 600.0, 0.5)
    dispatcher.submit(first, 0.0)
    before = snapshot_kinetic(agent)
    probe = dispatcher.make_request(5, 30, 10.0, 600.0, 0.5)
    for _ in range(3):
        agent.quote(probe, 10.0)
    assert snapshot_kinetic(agent) == before


def test_reschedule_quote_is_pure(city_engine):
    agent = RescheduleAgent(
        Vehicle(0, 0, capacity=4), city_engine, BruteForce(city_engine)
    )
    dispatcher = Dispatcher(city_engine, [agent])
    first = dispatcher.make_request(0, 20, 0.0, 600.0, 0.5)
    dispatcher.submit(first, 0.0)
    before = (
        copy.copy(agent.pending),
        dict(agent.onboard),
        list(agent.committed_stops),
        list(agent.committed_arrivals),
    )
    probe = dispatcher.make_request(5, 30, 10.0, 600.0, 0.5)
    for _ in range(3):
        agent.quote(probe, 10.0)
    after = (
        copy.copy(agent.pending),
        dict(agent.onboard),
        list(agent.committed_stops),
        list(agent.committed_arrivals),
    )
    assert after == before


def test_losing_agents_untouched_by_submit(city_engine):
    agents = [
        KineticAgent(Vehicle(vid, vid * 11, capacity=4), city_engine)
        for vid in range(4)
    ]
    dispatcher = Dispatcher(city_engine, agents)
    request = dispatcher.make_request(0, 25, 0.0, 600.0, 0.5)
    snapshots = {a.vehicle.vehicle_id: snapshot_kinetic(a) for a in agents}
    result = dispatcher.submit(request, 0.0)
    assert result.assigned
    for agent in agents:
        if agent is result.winner:
            assert agent.num_active_trips == 1
        else:
            assert snapshot_kinetic(agent) == snapshots[agent.vehicle.vehicle_id]
