"""Per-request service constraints.

The paper studies a unified (w, eps) but notes the algorithms "can be
easily generalized to individualized waiting time and service
constraints" — which this implementation supports natively: constraints
live on each TripRequest. These tests exercise mixed-constraint
scheduling through the whole stack.
"""

import pytest

from repro.algorithms.brute_force import BruteForce
from repro.core.kinetic.tree import KineticTree
from repro.core.matching import Dispatcher, KineticAgent
from repro.core.problem import SchedulingProblem
from repro.core.vehicle import Vehicle


def test_mixed_constraints_in_one_tree(city_engine, make_request):
    """A premium rider (tight eps) and an economy rider (loose eps)
    coexist; the tree must respect each rider's own tolerance."""
    tree = KineticTree(city_engine, 0, capacity=4, mode="slack")
    premium = make_request(5, 90, epsilon=0.05, max_wait=900.0)
    economy = make_request(7, 92, epsilon=2.0, max_wait=1800.0)
    t1 = tree.try_insert(premium, 0, 0.0)
    assert t1 is not None
    tree.commit(t1)
    t2 = tree.try_insert(economy, 0, 0.0)
    if t2 is not None:
        tree.commit(t2)
        tree.validate()
        # In every materialized schedule, the premium rider's on-road
        # time must stay within their tight 5% budget.
        for stops, arrivals in tree.all_schedules():
            times = {(s.request_id, s.kind.value): a for s, a in zip(stops, arrivals)}
            ride = times[(premium.request_id, "dropoff")] - times[
                (premium.request_id, "pickup")
            ]
            assert ride <= premium.max_ride_cost + 1e-6


def test_tight_rider_blocks_detours_loose_rider_allows(city_engine, make_request):
    """The same probe is refused next to a 0-tolerance rider but accepted
    next to a tolerant one — constraints are genuinely per-request."""

    def build(eps):
        tree = KineticTree(city_engine, 0, capacity=4, mode="slack")
        rider = make_request(1, 99, epsilon=eps)
        tree.commit(tree.try_insert(rider, 0, 0.0))
        tree.advance()  # onboard
        probe = make_request(55, 60, epsilon=2.0, max_wait=150.0)
        return tree.try_insert(probe, tree.root_vertex, tree.root_time)

    assert build(0.0) is None
    assert build(5.0) is not None


def test_dispatcher_stamps_per_request_constraints(city_engine):
    agents = [KineticAgent(Vehicle(0, 0, capacity=4), city_engine)]
    dispatcher = Dispatcher(city_engine, agents)
    a = dispatcher.make_request(0, 20, 0.0, max_wait=300.0, detour_epsilon=0.1)
    b = dispatcher.make_request(1, 21, 0.0, max_wait=1200.0, detour_epsilon=0.8)
    assert a.max_wait == 300.0 and a.detour_epsilon == 0.1
    assert b.max_wait == 1200.0 and b.detour_epsilon == 0.8


def test_bruteforce_honors_mixed_constraints(city_engine, make_request):
    tight = make_request(5, 90, epsilon=0.05, max_wait=900.0)
    loose = make_request(7, 92, epsilon=2.0, max_wait=1800.0)
    problem = SchedulingProblem(0, 0.0, {}, (tight,), loose, 4)
    result = BruteForce(city_engine).solve(problem)
    if result is None:
        pytest.skip("instance infeasible on this city")
    times = {(s.request_id, s.kind.value): a for s, a in zip(result.stops, result.arrivals)}
    ride = times[(tight.request_id, "dropoff")] - times[(tight.request_id, "pickup")]
    assert ride <= tight.max_ride_cost + 1e-6
