"""Property-based test: the grid index radius query is always a superset
of the true within-radius set, under arbitrary update/remove streams."""

from hypothesis import given, settings, strategies as st

from repro.spatial.geometry import BoundingBox, euclidean_distance
from repro.spatial.grid_index import GridIndex

BOUNDS = BoundingBox(0.0, 0.0, 2000.0, 2000.0)

coordinates = st.tuples(
    st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("update"), st.integers(0, 20), coordinates),
        st.tuples(st.just("remove"), st.integers(0, 20), st.none()),
    ),
    max_size=60,
)


@given(
    ops=operations,
    cell=st.sampled_from([50.0, 130.0, 400.0]),
    center=coordinates,
    radius=st.floats(min_value=0.0, max_value=1500.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_query_superset(ops, cell, center, radius):
    index = GridIndex(BOUNDS, cell_meters=cell)
    truth: dict[int, tuple[float, float]] = {}
    for op, vid, pos in ops:
        if op == "update":
            index.update(vid, pos[0], pos[1])
            truth[vid] = pos
        else:
            index.remove(vid)
            truth.pop(vid, None)
    hits = set(index.query_radius(center[0], center[1], radius))
    for vid, pos in truth.items():
        if euclidean_distance(pos, center) <= radius:
            assert vid in hits
    assert len(index) == len(truth)
