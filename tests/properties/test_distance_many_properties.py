"""Property tests of the batched distance plane.

For every engine kind, ``distance_many(s, targets)`` must equal the
elementwise scalar ``distance(s, t)`` on randomized small graphs —
including *disconnected* graphs (the batched plane reports ``inf`` where
the scalar plane raises :class:`~repro.exceptions.DisconnectedError`) and
empty target lists. Repeat calls must agree too (the Dijkstra engine's
row cache and the pair caches may answer the second call).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DisconnectedError
from repro.roadnet.engine import make_engine
from repro.roadnet.graph import RoadNetwork

#: All concrete engine kinds (everything ``make_engine`` accepts except
#: the ``auto`` alias).
KINDS = ("matrix", "dijkstra", "hub_label", "astar", "ch")


@st.composite
def random_graphs(draw):
    """Small random graphs, possibly disconnected (no spanning tree)."""
    n = draw(st.integers(min_value=2, max_value=12))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    num_edges = draw(st.integers(min_value=1, max_value=2 * n))
    edges = {}
    for _ in range(num_edges):
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        edges.setdefault(key, float(rng.uniform(0.5, 20.0)))
    if not edges:
        edges[(0, 1)] = 1.0
    graph = RoadNetwork(n, [(u, v, w) for (u, v), w in edges.items()])
    return graph, rng


def scalar_reference(engine, source, targets):
    """Elementwise scalar distances with inf for unreachable pairs."""
    out = np.empty(len(targets))
    for i, target in enumerate(targets):
        try:
            out[i] = engine.distance(source, int(target))
        except DisconnectedError:
            out[i] = np.inf
    return out


@pytest.mark.parametrize("kind", KINDS)
@given(case=random_graphs())
@settings(max_examples=20, deadline=None)
def test_distance_many_matches_scalar(kind, case):
    graph, rng = case
    engine = make_engine(graph, kind)
    source = int(rng.integers(0, graph.num_vertices))
    targets = rng.integers(0, graph.num_vertices, size=7)
    expected = scalar_reference(engine, source, targets)

    got = engine.distance_many(source, targets)
    assert got.shape == (len(targets),)
    assert got.dtype == np.float64
    np.testing.assert_allclose(got, expected, rtol=1e-12, atol=0.0)
    assert np.array_equal(np.isinf(got), np.isinf(expected))

    # Second call: cached rows/pairs must answer identically.
    again = engine.distance_many(source, targets)
    np.testing.assert_array_equal(again, got)


@pytest.mark.parametrize("kind", KINDS)
def test_distance_many_empty_targets(kind, small_city):
    engine = make_engine(small_city, kind)
    out = engine.distance_many(0, [])
    assert out.shape == (0,)
    assert out.dtype == np.float64


@pytest.mark.parametrize("kind", KINDS)
def test_distance_many_source_in_targets(kind, small_city):
    engine = make_engine(small_city, kind)
    out = engine.distance_many(5, [5, 6, 5])
    assert out[0] == 0.0 and out[2] == 0.0
    assert out[1] == engine.distance(5, 6)
