"""Property-based invariants of the reference schedule validator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.request import TripRequest
from repro.core.schedule import evaluate_schedule, schedule_cost
from repro.core.stop import dropoff, pickup
from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine

CITY = grid_city(7, 7, seed=5)
ENGINE = MatrixEngine(CITY)
N = CITY.num_vertices


@st.composite
def schedules(draw):
    """A random structurally-valid stop sequence over 1-3 requests."""
    seed = draw(st.integers(0, 2**31 - 1))
    count = draw(st.integers(1, 3))
    rng = np.random.default_rng(seed)
    requests = []
    for rid in range(count):
        while True:
            o, d = (int(x) for x in rng.integers(0, N, 2))
            if o != d:
                break
        requests.append(
            TripRequest(rid, o, d, 0.0, 2000.0, 2.0, ENGINE.distance(o, d))
        )
    stops = []
    pending = list(requests)
    onboard = []
    while pending or onboard:
        if pending and (not onboard or rng.random() < 0.5):
            request = pending.pop(int(rng.integers(0, len(pending))))
            stops.append(pickup(request))
            onboard.append(request)
        else:
            request = onboard.pop(int(rng.integers(0, len(onboard))))
            stops.append(dropoff(request))
    start = int(rng.integers(0, N))
    return start, stops


@given(schedules())
@settings(max_examples=50, deadline=None)
def test_arrivals_monotone(case):
    start, stops = case
    evaluation = evaluate_schedule(ENGINE, start, 0.0, stops, {})
    if evaluation is None:
        return
    arrivals = evaluation.arrivals
    assert all(a <= b + 1e-9 for a, b in zip(arrivals, arrivals[1:]))


@given(schedules())
@settings(max_examples=50, deadline=None)
def test_cost_equals_leg_sum(case):
    start, stops = case
    evaluation = evaluate_schedule(ENGINE, start, 0.0, stops, {})
    if evaluation is None:
        return
    assert evaluation.cost == pytest.approx(schedule_cost(ENGINE, start, stops))


@given(schedules())
@settings(max_examples=50, deadline=None)
def test_validity_invariant_under_time_shift(case):
    """Shifting the clock and every request time equally cannot change
    validity or cost (only absolute deadlines matter)."""
    start, stops = case
    base = evaluate_schedule(ENGINE, start, 0.0, stops, {})
    shift = 500.0
    shifted_stops = []
    cache = {}
    for stop in stops:
        request = stop.request
        if request.request_id not in cache:
            cache[request.request_id] = TripRequest(
                request.request_id,
                request.origin,
                request.destination,
                request.request_time + shift,
                request.max_wait,
                request.detour_epsilon,
                request.direct_cost,
            )
        shifted = cache[request.request_id]
        shifted_stops.append(pickup(shifted) if stop.is_pickup else dropoff(shifted))
    moved = evaluate_schedule(ENGINE, start, shift, shifted_stops, {})
    assert (base is None) == (moved is None)
    if base is not None:
        assert moved.cost == pytest.approx(base.cost)


@given(schedules(), st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_capacity_monotone(case, capacity):
    """If a schedule is valid at capacity c, it is valid at c+1."""
    start, stops = case
    tight = evaluate_schedule(ENGINE, start, 0.0, stops, {}, capacity=capacity)
    loose = evaluate_schedule(ENGINE, start, 0.0, stops, {}, capacity=capacity + 1)
    if tight is not None:
        assert loose is not None
        assert loose.cost == pytest.approx(tight.cost)


@given(schedules())
@settings(max_examples=50, deadline=None)
def test_constraint_relaxation_monotone(case):
    """Loosening w and eps never invalidates a valid schedule."""
    start, stops = case
    base = evaluate_schedule(ENGINE, start, 0.0, stops, {})
    if base is None:
        return
    relaxed_cache = {}
    relaxed_stops = []
    for stop in stops:
        request = stop.request
        if request.request_id not in relaxed_cache:
            relaxed_cache[request.request_id] = TripRequest(
                request.request_id,
                request.origin,
                request.destination,
                request.request_time,
                request.max_wait * 2,
                request.detour_epsilon * 2,
                request.direct_cost,
            )
        relaxed = relaxed_cache[request.request_id]
        relaxed_stops.append(
            pickup(relaxed) if stop.is_pickup else dropoff(relaxed)
        )
    assert evaluate_schedule(ENGINE, start, 0.0, relaxed_stops, {}) is not None
