"""All exact schedulers must agree on every instance (property-based).

Brute force, branch & bound and the kinetic tree adapter solve the same
problem exactly; the MIP solves the same model through HiGHS. Agreement
across independently-implemented algorithms is the strongest correctness
signal available without the authors' code.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.base import KineticTreeAlgorithm
from repro.algorithms.branch_and_bound import BranchAndBound
from repro.algorithms.brute_force import BruteForce
from repro.algorithms.insertion import TwoPhaseInsertion
from repro.algorithms.mip import MixedIntegerProgramming
from repro.core.problem import SchedulingProblem
from repro.core.request import TripRequest
from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine

CITY = grid_city(8, 8, seed=21)
ENGINE = MatrixEngine(CITY)
N = CITY.num_vertices


@st.composite
def problems(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    pending_count = draw(st.integers(0, 2))
    with_onboard = draw(st.booleans())
    capacity = draw(st.sampled_from([1, 2, 4, None]))
    tight = draw(st.booleans())
    rng = np.random.default_rng(seed)
    wait = 300.0 if tight else 900.0
    eps = 0.3 if tight else 1.2

    def random_request(rid, eps_scale=1.0):
        while True:
            o, d = (int(x) for x in rng.integers(0, N, 2))
            if o != d:
                return TripRequest(
                    rid, o, d, 0.0, wait, eps * eps_scale, ENGINE.distance(o, d)
                )

    pending = tuple(random_request(rid) for rid in range(pending_count))
    new = random_request(50)
    onboard = {}
    if with_onboard:
        onboard = {random_request(99, eps_scale=3.0): 0.0}
    start = int(rng.integers(0, N))
    return SchedulingProblem(start, 0.0, onboard, pending, new, capacity)


@given(problems())
@settings(max_examples=40, deadline=None)
def test_exact_algorithms_agree(problem):
    results = {
        "bf": BruteForce(ENGINE).solve(problem),
        "bb": BranchAndBound(ENGINE).solve(problem),
        "kinetic": KineticTreeAlgorithm(ENGINE).solve(problem),
    }
    feasible = {name: r is not None for name, r in results.items()}
    assert len(set(feasible.values())) == 1, f"feasibility disagrees: {feasible}"
    if results["bf"] is not None:
        costs = {name: r.cost for name, r in results.items()}
        reference = costs["bf"]
        for name, cost in costs.items():
            assert cost == pytest.approx(reference, rel=1e-9), costs


@given(problems())
@settings(max_examples=12, deadline=None)
def test_mip_agrees(problem):
    mip = MixedIntegerProgramming(ENGINE).solve(problem)
    bf = BruteForce(ENGINE).solve(problem)
    assert (mip is None) == (bf is None)
    if bf is not None:
        assert mip.cost == pytest.approx(bf.cost, rel=1e-4)


@given(problems())
@settings(max_examples=25, deadline=None)
def test_insertion_heuristic_bounded_below_by_optimum(problem):
    ins = TwoPhaseInsertion(ENGINE).solve(problem)
    bf = BruteForce(ENGINE).solve(problem)
    if ins is not None:
        assert bf is not None, "heuristic found a schedule the optimum missed"
        assert ins.cost >= bf.cost - 1e-9
