"""Property-based tests of the shortest-path substrate.

Random connected graphs are built from a random spanning tree plus random
extra edges, so every instance is connected by construction.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.roadnet.dijkstra import (
    bidirectional_distance,
    dijkstra_distance,
    dijkstra_path,
)
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.hub_labeling import HubLabels


@st.composite
def connected_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    edges = {}
    # Random spanning tree: attach vertex i to a random earlier vertex.
    for v in range(1, n):
        u = int(rng.integers(0, v))
        edges[(u, v)] = float(rng.uniform(0.5, 20.0))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        edges.setdefault(key, float(rng.uniform(0.5, 20.0)))
    graph = RoadNetwork(n, [(u, v, w) for (u, v), w in edges.items()])
    return graph, rng


@given(connected_graphs())
@settings(max_examples=40, deadline=None)
def test_distance_symmetry(case):
    graph, rng = case
    s, e = (int(x) for x in rng.integers(0, graph.num_vertices, 2))
    assert dijkstra_distance(graph, s, e) == pytest.approx(
        dijkstra_distance(graph, e, s)
    )


@given(connected_graphs())
@settings(max_examples=40, deadline=None)
def test_triangle_inequality(case):
    graph, rng = case
    a, b, c = (int(x) for x in rng.integers(0, graph.num_vertices, 3))
    assert dijkstra_distance(graph, a, c) <= (
        dijkstra_distance(graph, a, b) + dijkstra_distance(graph, b, c) + 1e-9
    )


@given(connected_graphs())
@settings(max_examples=40, deadline=None)
def test_path_cost_equals_distance(case):
    graph, rng = case
    s, e = (int(x) for x in rng.integers(0, graph.num_vertices, 2))
    path = dijkstra_path(graph, s, e)
    cost = sum(graph.edge_weight(u, v) for u, v in zip(path, path[1:]))
    assert cost == pytest.approx(dijkstra_distance(graph, s, e))
    assert path[0] == s and path[-1] == e


@given(connected_graphs())
@settings(max_examples=40, deadline=None)
def test_path_never_repeats_vertices(case):
    graph, rng = case
    s, e = (int(x) for x in rng.integers(0, graph.num_vertices, 2))
    path = dijkstra_path(graph, s, e)
    assert len(path) == len(set(path))


@given(connected_graphs())
@settings(max_examples=30, deadline=None)
def test_hub_labels_exact(case):
    graph, rng = case
    labels = HubLabels(graph)
    for _ in range(5):
        s, e = (int(x) for x in rng.integers(0, graph.num_vertices, 2))
        assert labels.query(s, e) == pytest.approx(
            dijkstra_distance(graph, s, e)
        )


@given(connected_graphs())
@settings(max_examples=30, deadline=None)
def test_bidirectional_matches(case):
    graph, rng = case
    s, e = (int(x) for x in rng.integers(0, graph.num_vertices, 2))
    assert bidirectional_distance(graph, s, e) == pytest.approx(
        dijkstra_distance(graph, s, e)
    )
