"""Model-based testing of the LRU cache against a reference model."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.roadnet.cache import LRUCache


class ReferenceLRU:
    """Obviously-correct LRU built on OrderedDict."""

    def __init__(self, maxsize):
        self.maxsize = maxsize
        self.data = OrderedDict()

    def get(self, key):
        if key not in self.data:
            return None
        self.data.move_to_end(key)
        return self.data[key]

    def put(self, key, value):
        if key in self.data:
            self.data.move_to_end(key)
        elif len(self.data) >= self.maxsize:
            self.data.popitem(last=False)
        self.data[key] = value


operations = st.lists(
    st.tuples(
        st.sampled_from(["get", "put"]),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=100),
    ),
    max_size=60,
)


@given(size=st.integers(min_value=1, max_value=8), ops=operations)
@settings(max_examples=100, deadline=None)
def test_lru_matches_reference(size, ops):
    ours = LRUCache(size)
    reference = ReferenceLRU(size)
    for op, key, value in ops:
        if op == "put":
            ours.put(key, value)
            reference.put(key, value)
        else:
            assert ours.get(key) == reference.get(key)
    assert dict(ours._data) == dict(reference.data)
    assert list(ours._data) == list(reference.data)  # identical LRU order


@given(size=st.integers(min_value=1, max_value=8), ops=operations)
@settings(max_examples=50, deadline=None)
def test_lru_never_exceeds_capacity(size, ops):
    cache = LRUCache(size)
    for op, key, value in ops:
        if op == "put":
            cache.put(key, value)
        else:
            cache.get(key)
        assert len(cache) <= size
