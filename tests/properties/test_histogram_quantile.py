"""Property tests of the streaming histogram's quantile estimates.

The log-bucket scheme (growth 2**0.25) guarantees a documented error
bound: the quantile walk lands in the bucket containing the exact
order statistic ``sorted[floor(q * (n - 1))]`` and interpolates at
the rank's midpoint offset, which can spill at most half a bucket
past the landing bucket. The estimate therefore always lies within
**< 19 % relative error** (the bucket growth factor is
2**0.25 - 1 ≈ 18.92 %) of the *bracketing pair* of exact order
statistics — ``numpy.percentile(..., method="lower")`` and
``method="higher")`` — with an absolute floor of 1.5 × ``lo``
(1.5 µs) near the underflow bucket, whose width is absolute, not
relative.

The same bound must hold for window *deltas* and for rolling merges
of several snapshots (``merge_snapshots``) — the algebra the live
layer (:mod:`repro.obs.live`) builds its rolling p50/p99 on. Merged
deltas must agree with the one-big-histogram view bucket-for-bucket
(counts are exact; only the min/max clamps differ, by at most one
bucket bound).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry, merge_snapshots

GROWTH = 2 ** 0.25
LO = 1e-6

samples_strategy = st.lists(
    st.floats(min_value=1e-9, max_value=5e3, allow_nan=False),
    min_size=1,
    max_size=200,
)
quantile_strategy = st.sampled_from([0.0, 0.25, 0.5, 0.9, 0.99, 1.0])


def make_histogram(samples):
    hist = MetricsRegistry().histogram("h_s")
    for sample in samples:
        hist.add(sample)
    return hist


def assert_within_bound(estimate, samples, q):
    """The documented bound vs the bracketing exact order statistics."""
    lo_stat = float(np.percentile(samples, q * 100.0, method="lower"))
    hi_stat = float(np.percentile(samples, q * 100.0, method="higher"))
    if estimate < lo_stat:
        reference, error = lo_stat, lo_stat - estimate
    elif estimate > hi_stat:
        reference, error = hi_stat, estimate - hi_stat
    else:
        return  # inside the bracketing interval: exact
    assert error <= max(0.19 * reference, 1.5 * LO), (
        f"q={q}: estimate {estimate} vs [{lo_stat}, {hi_stat}]"
    )


@settings(max_examples=200, deadline=None)
@given(samples=samples_strategy, q=quantile_strategy)
def test_quantile_within_bucket_width_of_numpy(samples, q):
    hist = make_histogram(samples)
    assert_within_bound(hist.quantile(q), samples, q)


@settings(max_examples=100, deadline=None)
@given(samples=samples_strategy, q=quantile_strategy)
def test_snapshot_delta_quantile_covers_only_new_samples(samples, q):
    # Phase 1 records unrelated noise; the delta must answer quantiles
    # of phase 2 alone (this is what per-window p50/p99 relies on).
    hist = make_histogram([0.123, 456.0, 0.000789])
    baseline = hist.snapshot()
    for sample in samples:
        hist.add(sample)
    delta = hist.snapshot().delta(baseline)
    assert delta.count == len(samples)
    assert_within_bound(delta.quantile(q), samples, q)


@settings(max_examples=100, deadline=None)
@given(
    samples=samples_strategy,
    q=quantile_strategy,
    chunks=st.integers(min_value=1, max_value=5),
)
def test_merged_windows_equal_one_big_histogram(samples, q, chunks):
    # Record the same stream in one histogram and, chunked, as window
    # deltas in another; the merged deltas must agree bucket-for-bucket
    # with the single histogram (the rolling-quantile guarantee).
    whole = make_histogram(samples).snapshot()

    windowed = MetricsRegistry().histogram("h_s")
    deltas = []
    previous = windowed.snapshot()
    for start in range(0, len(samples), max(1, len(samples) // chunks)):
        for sample in samples[
            start : start + max(1, len(samples) // chunks)
        ]:
            windowed.add(sample)
        current = windowed.snapshot()
        deltas.append(current.delta(previous))
        previous = current
    merged = merge_snapshots([d for d in deltas if d.count])

    assert merged.counts == whole.counts
    assert merged.count == whole.count == len(samples)
    assert_within_bound(merged.quantile(q), samples, q)


def test_underflow_and_overflow_edges():
    hist = make_histogram([0.0, 1e-9, 1e-8])  # all in the underflow bucket
    assert abs(hist.quantile(0.5) - 1e-9) <= LO
    assert hist.quantile(0.0) >= 0.0
    assert hist.quantile(1.0) <= LO

    big = make_histogram([1e9, 2e9])  # both beyond the bucketed range
    # The overflow bucket is unbounded above; estimates clamp to the
    # exact tracked extremes, so every quantile stays in [min, max].
    for q in (0.0, 0.5, 1.0):
        assert 1e9 <= big.quantile(q) <= 2e9
    snap = big.snapshot()
    assert snap.counts[-1] == 2  # overflow bucket holds both
    assert snap.min == 1e9 and snap.max == 2e9


def test_empty_histogram_quantile_is_none():
    hist = MetricsRegistry().histogram("h_s")
    assert hist.quantile(0.5) is None
    snap = hist.snapshot()
    assert snap.quantile(0.5) is None
