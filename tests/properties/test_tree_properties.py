"""Property-based tests of the kinetic tree — the paper's core claims
as hypothesis invariants.

* the tree's best augmented schedule always equals brute force (the tree
  is exact);
* slack filtering never changes the result (Theorem 1 safety);
* every materialized schedule passes the reference validator;
* hotspot trees, an approximation, never produce *invalid* schedules and
  never beat the exact optimum.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.brute_force import BruteForce
from repro.core.kinetic.tree import KineticTree
from repro.core.problem import SchedulingProblem
from repro.core.request import TripRequest
from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine

CITY = grid_city(8, 8, seed=99)
ENGINE = MatrixEngine(CITY)
N = CITY.num_vertices


@st.composite
def request_streams(draw):
    """A start vertex plus 2-5 requests with varied constraints.

    Request times must be non-decreasing — the simulator only ever
    feeds the tree in event order, and a time-reversed stream asks the
    tree (whose clock has already advanced) a different question than
    a from-scratch reference solver. The stagger step is therefore
    drawn once per stream: either a simultaneous batch (step 0) or a
    30s-staggered arrival sequence.
    """
    seed = draw(st.integers(0, 2**31 - 1))
    count = draw(st.integers(min_value=2, max_value=5))
    tight = draw(st.booleans())
    step = draw(st.sampled_from([0.0, 30.0]))
    rng = np.random.default_rng(seed)
    wait = 240.0 if tight else 900.0
    eps = 0.25 if tight else 1.0
    requests = []
    rid = 0
    while len(requests) < count:
        o, d = (int(x) for x in rng.integers(0, N, 2))
        if o == d:
            continue
        t = len(requests) * step
        requests.append(
            TripRequest(rid, o, d, t, wait, eps, ENGINE.distance(o, d))
        )
        rid += 1
    start = int(rng.integers(0, N))
    return start, requests


@given(request_streams())
@settings(max_examples=40, deadline=None)
def test_tree_insertion_matches_bruteforce(case):
    start, requests = case
    tree = KineticTree(ENGINE, start, capacity=4, mode="basic")
    accepted = []
    for request in requests:
        t = request.request_time
        trial = tree.try_insert(request, tree.root_vertex, t)
        problem = SchedulingProblem(
            tree.root_vertex, t, {}, tuple(accepted + [request]), None, 4
        )
        reference = BruteForce(ENGINE).solve(problem)
        assert (trial is None) == (reference is None)
        if trial is not None:
            assert trial.best_cost == pytest.approx(reference.cost, rel=1e-9)
            tree.commit(trial)
            accepted.append(request)


@given(request_streams())
@settings(max_examples=40, deadline=None)
def test_slack_is_pure_speedup(case):
    start, requests = case
    basic = KineticTree(ENGINE, start, capacity=4, mode="basic")
    slack = KineticTree(ENGINE, start, capacity=4, mode="slack")
    for request in requests:
        t = request.request_time
        trial_b = basic.try_insert(request, basic.root_vertex, t)
        trial_s = slack.try_insert(request, slack.root_vertex, t)
        assert (trial_b is None) == (trial_s is None)
        if trial_b is None:
            continue
        assert trial_s.best_cost == pytest.approx(trial_b.best_cost, rel=1e-9)
        basic.commit(trial_b)
        slack.commit(trial_s)
    assert {s for s, _ in basic.all_schedules()} == {
        s for s, _ in slack.all_schedules()
    }


@given(request_streams())
@settings(max_examples=30, deadline=None)
def test_all_materialized_schedules_valid(case):
    start, requests = case
    tree = KineticTree(ENGINE, start, capacity=4, mode="slack")
    for request in requests:
        trial = tree.try_insert(request, tree.root_vertex, request.request_time)
        if trial is not None:
            tree.commit(trial)
    tree.validate()  # raises on any invalid schedule


@given(request_streams())
@settings(max_examples=30, deadline=None)
def test_validity_preserved_under_movement(case):
    start, requests = case
    tree = KineticTree(ENGINE, start, capacity=4, mode="slack")
    for request in requests:
        trial = tree.try_insert(request, tree.root_vertex, request.request_time)
        if trial is not None:
            tree.commit(trial)
        # Execute one committed stop between insertions.
        if tree.committed:
            tree.advance()
            tree.validate()


@given(request_streams(), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_beam_is_subset_of_exact(case, cap):
    """A schedule-capped tree materializes a subset of the exact tree's
    schedules (never an invalid or novel one), and its best schedule is
    never cheaper than the exact optimum."""
    start, requests = case
    exact = KineticTree(ENGINE, start, capacity=4, mode="basic")
    capped = KineticTree(ENGINE, start, capacity=4, mode="basic", schedule_cap=cap)
    for request in requests:
        t = request.request_time
        trial_e = exact.try_insert(request, exact.root_vertex, t)
        trial_c = capped.try_insert(request, capped.root_vertex, t)
        if trial_c is not None:
            assert trial_e is not None
            assert trial_c.best_cost >= trial_e.best_cost - 1e-9
        if trial_e is not None and trial_c is not None:
            exact.commit(trial_e)
            capped.commit(trial_c)
    capped_set = {s for s, _ in capped.all_schedules()}
    exact_set = {s for s, _ in exact.all_schedules()}
    assert capped_set <= exact_set
    assert len(capped_set) <= max(
        1, cap
    ) or not capped_set  # the cap is respected
    capped.validate()


@given(request_streams(), st.integers(10, 90))
@settings(max_examples=30, deadline=None)
def test_hotspot_valid_and_never_better(case, theta):
    start, requests = case
    exact = KineticTree(ENGINE, start, capacity=4, mode="basic")
    hotspot = KineticTree(
        ENGINE, start, capacity=4, mode="slack", hotspot_theta=float(theta)
    )
    for request in requests:
        t = request.request_time
        trial_e = exact.try_insert(request, exact.root_vertex, t)
        trial_h = hotspot.try_insert(request, hotspot.root_vertex, t)
        # Hotspot schedules form a subset: it can only accept when the
        # exact tree accepts.
        if trial_h is not None:
            assert trial_e is not None
            assert trial_h.best_cost >= trial_e.best_cost - 1e-6
        # Keep the two trees in sync on the accepted set.
        if trial_e is not None and trial_h is not None:
            exact.commit(trial_e)
            hotspot.commit(trial_h)
    hotspot.validate()
