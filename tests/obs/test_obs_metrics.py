"""The metrics registry: counters, gauges, log-bucket histograms.

The histogram's contract is quantiles-without-samples: p50/p90/p99
estimates whose relative error is bounded by the bucket width (< 19 %
at the default ``growth = 2**0.25``), exact at the observed extremes,
``None`` when empty.
"""

import threading

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


# ----------------------------------------------------------------------
# Counter / gauge
# ----------------------------------------------------------------------
def test_counter_increments():
    registry = MetricsRegistry()
    counter = registry.counter("flush.count")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert counter.as_dict() == {"value": 5}


def test_gauge_is_last_write_wins():
    registry = MetricsRegistry()
    gauge = registry.gauge("window.current_s")
    assert gauge.as_dict() == {"value": None}
    gauge.set(15)
    gauge.set(7.5)
    assert gauge.as_dict() == {"value": 7.5}


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_empty_histogram_exports_nulls():
    hist = Histogram()
    assert hist.mean is None
    assert hist.quantile(0.5) is None
    exported = hist.as_dict()
    assert exported["count"] == 0
    for key in ("mean", "min", "max", "p50", "p90", "p99"):
        assert exported[key] is None


def test_single_sample_quantiles_are_exact():
    hist = Histogram()
    hist.add(0.0421)
    for q in (0.0, 0.5, 0.99, 1.0):
        assert hist.quantile(q) == pytest.approx(0.0421)
    assert hist.min == hist.max == 0.0421


def test_quantile_error_is_bounded_by_bucket_width():
    """1000 evenly spread latencies: every estimated quantile must land
    within one bucket width (19 %) of the exact sample quantile."""
    hist = Histogram()
    values = [i / 1000.0 for i in range(1, 1001)]  # 1 ms .. 1 s
    for v in values:
        hist.add(v)
    for q in (0.10, 0.50, 0.90, 0.99):
        exact = values[round(q * (len(values) - 1))]
        estimate = hist.quantile(q)
        assert estimate == pytest.approx(exact, rel=0.19)
    assert hist.quantile(0.0) == pytest.approx(0.001)  # clamped to min
    assert hist.quantile(1.0) == pytest.approx(1.0)  # clamped to max
    assert hist.mean == pytest.approx(sum(values) / len(values))


def test_extremes_are_exact_in_the_export():
    """``min``/``max`` export the exact observed values (not bucket
    bounds), and quantile estimates never escape that range."""
    hist = Histogram()
    hist.add(0.00123)
    hist.add(3.21)
    assert hist.as_dict()["min"] == 0.00123
    assert hist.as_dict()["max"] == 3.21
    for q in (0.0, 0.5, 1.0):
        assert 0.00123 <= hist.quantile(q) <= 3.21
    # q=0 stays in the low sample's bucket (19 % wide), q=1 in the high's.
    assert hist.quantile(0.0) == pytest.approx(0.00123, rel=0.19)
    assert hist.quantile(1.0) == pytest.approx(3.21, rel=0.19)


def test_underflow_and_overflow_land_in_edge_buckets():
    hist = Histogram()
    hist.add(0.0)  # <= lo: bucket 0
    hist.add(1e-9)
    hist.add(1e9)  # beyond the top bucket: overflow
    assert hist.count == 3
    assert hist.quantile(0.0) <= hist.lo  # inside the underflow bucket
    # Overflow estimates sit at the bucket ceiling (~4.4e3 s for the
    # default scheme), bounded — not pinned — by the tracked maximum;
    # the *export* still carries the exact max.
    assert 4.0e3 <= hist.quantile(1.0) <= 1e9
    assert hist.as_dict()["max"] == 1e9


def test_quantile_rejects_out_of_range_q():
    hist = Histogram()
    hist.add(1.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        hist.quantile(-0.1)


def test_histogram_validates_construction():
    with pytest.raises(ValueError):
        Histogram(lo=0.0)
    with pytest.raises(ValueError):
        Histogram(growth=1.0)
    with pytest.raises(ValueError):
        Histogram(num_buckets=0)


def test_unit_is_carried_into_the_export():
    registry = MetricsRegistry()
    registry.histogram("flush.batch_size", unit="requests").add(7)
    exported = registry.as_dict()
    assert exported["histograms"]["flush.batch_size"]["unit"] == "requests"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_instruments_are_get_or_create():
    registry = MetricsRegistry()
    assert registry.histogram("a") is registry.histogram("a")
    assert registry.counter("b") is registry.counter("b")
    assert registry.gauge("c") is registry.gauge("c")
    # Same name, different kind: separate namespaces, no collision.
    assert registry.counter("a").value == 0


def test_as_dict_is_sorted_and_complete():
    registry = MetricsRegistry()
    registry.histogram("z.last").add(1.0)
    registry.histogram("a.first").add(2.0)
    registry.counter("hits").inc()
    exported = registry.as_dict()
    assert list(exported["histograms"]) == ["a.first", "z.last"]
    assert exported["counters"] == {"hits": {"value": 1}}
    assert exported["gauges"] == {}


def test_concurrent_adds_lose_nothing():
    registry = MetricsRegistry()
    hist = registry.histogram("lat")
    counter = registry.counter("hits")
    per_thread = 2000

    def hammer():
        for i in range(per_thread):
            hist.add(0.001 * (1 + i % 7))
            counter.inc()

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert hist.count == 4 * per_thread
    assert counter.value == 4 * per_thread
