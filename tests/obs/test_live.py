"""Unit tests for the windowed time-series recorder and coordinator."""

import json

import pytest

from repro.obs import MetricsRegistry, TimeSeriesRecorder
from repro.obs.live import LiveTelemetry, render_live_line
from repro.sim.config import SimulationConfig


def make_recorder(registry, **kwargs):
    defaults = dict(window_s=10.0, start_time=100.0, ring=3)
    defaults.update(kwargs)
    return TimeSeriesRecorder(registry, **defaults)


# ----------------------------------------------------------------------
# Window rolling
# ----------------------------------------------------------------------
def test_windows_roll_on_sim_time():
    registry = MetricsRegistry()
    counter = registry.counter("requests.settled")
    recorder = make_recorder(registry)

    counter.inc(3)
    recorder.advance(105.0)  # inside window 0: nothing closes
    assert recorder.rows == []
    recorder.advance(110.0)  # exactly the boundary closes window 0
    assert len(recorder.rows) == 1
    counter.inc(2)
    recorder.advance(131.0)  # completes windows 1 and 2
    assert [r["window"] for r in recorder.rows] == [0, 1, 2]
    assert [r["t_start"] for r in recorder.rows] == [100.0, 110.0, 120.0]
    assert [r["t_end"] for r in recorder.rows] == [110.0, 120.0, 130.0]
    # Deltas: 3 settles before the first boundary, 2 after it.
    assert recorder.rows[0]["counters"] == {"requests.settled": 3}
    assert recorder.rows[1]["counters"] == {"requests.settled": 2}
    assert recorder.rows[2]["counters"] == {}  # zero deltas are elided
    assert recorder.rows[0]["throughput_rps"] == pytest.approx(0.3)
    assert recorder.rows[1]["throughput_rps"] == pytest.approx(0.2)


def test_histogram_window_deltas_and_rolling_merge():
    registry = MetricsRegistry()
    hist = registry.histogram("assign.latency_s")
    recorder = make_recorder(registry, ring=2)

    hist.add(1.0)
    hist.add(2.0)
    recorder.advance(110.0)
    hist.add(100.0)
    recorder.advance(120.0)

    first, second = recorder.rows
    assert first["histograms"]["assign.latency_s"]["count"] == 2
    assert second["histograms"]["assign.latency_s"]["count"] == 1
    # Window 1's delta covers only the late sample.
    assert second["histograms"]["assign.latency_s"]["p50"] == pytest.approx(
        100.0, rel=0.19
    )
    # Rolling view merges the ring (both windows here).
    rolling = second["rolling"]["assign.latency_s"]
    assert rolling["windows"] == 2
    assert rolling["count"] == 3
    assert rolling["p50"] == pytest.approx(2.0, rel=0.19)

    # A third window evicts window 0 from the ring of 2.
    hist.add(50.0)
    recorder.advance(130.0)
    rolling = recorder.rows[-1]["rolling"]["assign.latency_s"]
    assert rolling["windows"] == 2
    assert rolling["count"] == 2  # the two early samples fell out


def test_instrument_created_mid_run_appears_in_next_window():
    registry = MetricsRegistry()
    recorder = make_recorder(registry)
    recorder.advance(110.0)
    late = registry.histogram("late.metric_s")
    late.add(0.5)
    registry.counter("late.counter").inc(4)
    recorder.advance(120.0)
    row = recorder.rows[-1]
    assert row["histograms"]["late.metric_s"]["count"] == 1
    assert row["counters"]["late.counter"] == 4


def test_finish_emits_final_partial_window(tmp_path):
    out = tmp_path / "ts.jsonl"
    registry = MetricsRegistry()
    counter = registry.counter("requests.settled")
    recorder = make_recorder(registry, out_path=str(out))
    counter.inc(7)
    recorder.finish(114.0)  # 1.4 windows: one full roll never happened
    assert len(recorder.rows) == 2
    partial = recorder.rows[-1]
    assert partial["t_start"] == 110.0
    assert partial["t_end"] == 114.0
    assert partial["window_s"] == pytest.approx(4.0)
    rows = [
        json.loads(line)
        for line in out.read_text(encoding="utf-8").splitlines()
    ]
    assert rows == recorder.rows
    # Idempotent: a second finish neither rolls nor rewrites.
    recorder.finish(200.0)
    assert len(recorder.rows) == 2


def test_finish_on_empty_run_still_writes_one_row(tmp_path):
    out = tmp_path / "ts.jsonl"
    recorder = make_recorder(MetricsRegistry(), out_path=str(out))
    recorder.finish(100.0)
    assert len(recorder.rows) == 1
    assert recorder.rows[0]["window_s"] == 0.0
    assert recorder.rows[0]["throughput_rps"] == 0.0


def test_observers_see_full_deltas():
    registry = MetricsRegistry()
    seen = []
    recorder = make_recorder(registry)
    registry.counter("a").inc(2)
    registry.histogram("h_s").add(1.0)
    recorder.observers.append(
        lambda row, counters, hists: seen.append((row, counters, hists))
    )
    recorder.advance(120.0)
    assert len(seen) == 2
    row, counters, hists = seen[0]
    assert counters["a"] == 2
    assert hists["h_s"].count == 1
    # Second window: zero deltas are still present for observers.
    _, counters, hists = seen[1]
    assert counters["a"] == 0
    assert hists["h_s"].count == 0


def test_live_report_cadence():
    printed = []
    registry = MetricsRegistry()
    recorder = make_recorder(
        registry, live_report_every=2, print_fn=printed.append
    )
    recorder.advance(160.0)  # windows 0..5 close
    assert len(recorder.rows) == 6
    assert len(printed) == 3  # windows 0, 2, 4
    assert all(line.startswith("[live]") for line in printed)


def test_render_live_line_contents():
    row = {
        "window": 3,
        "t_start": 300.0,
        "t_end": 360.0,
        "counters": {"requests.settled": 10, "requests.assigned": 9},
        "gauges": {"resource.rss_bytes": 64 * 2**20},
        "rolling": {"assign.latency_s": {"p99": 0.25}},
    }
    line = render_live_line(row)
    assert "w  3" in line
    assert "settled=10" in line
    assert "service=90%" in line
    assert "assign_p99=250.0ms" in line
    assert "rss=64MiB" in line


def test_render_live_line_handles_empty_window():
    line = render_live_line(
        {
            "window": 0,
            "t_start": 0.0,
            "t_end": 60.0,
            "counters": {},
            "gauges": {},
            "rolling": {},
        }
    )
    assert "service=--" in line
    assert "assign_p99=--" in line


def test_recorder_rejects_bad_params():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="window_s"):
        TimeSeriesRecorder(registry, window_s=0.0, start_time=0.0)
    with pytest.raises(ValueError, match="ring"):
        TimeSeriesRecorder(registry, window_s=1.0, start_time=0.0, ring=0)


# ----------------------------------------------------------------------
# LiveTelemetry coordinator
# ----------------------------------------------------------------------
def test_from_config_disabled_returns_none():
    config = SimulationConfig()
    assert LiveTelemetry.from_config(config, MetricsRegistry(), 0.0) is None


@pytest.mark.parametrize(
    "overrides",
    [
        {"timeseries_out": "ts.jsonl"},
        {"slo": "service_rate>=0.5"},
        {"live_report_every": 3},
        {"resource_monitor": True},
    ],
)
def test_from_config_any_live_feature_enables(tmp_path, overrides):
    if "timeseries_out" in overrides:
        overrides["timeseries_out"] = str(tmp_path / "ts.jsonl")
    config = SimulationConfig(**overrides)
    live = LiveTelemetry.from_config(config, MetricsRegistry(), 0.0)
    assert live is not None
    live.finish(0.0)


def test_finish_writes_slo_document(tmp_path):
    slo_path = tmp_path / "slo.json"
    registry = MetricsRegistry()
    live = LiveTelemetry(
        registry,
        start_time=0.0,
        window_s=10.0,
        slo_spec="service_rate>=0.5",
        slo_out=str(slo_path),
    )
    registry.counter("requests.settled").inc(4)
    registry.counter("requests.assigned").inc(4)
    live.advance(25.0)
    document = live.finish(25.0)
    assert document is not None and document["pass"] is True
    on_disk = json.loads(slo_path.read_text(encoding="utf-8"))
    assert on_disk == document
    # Idempotent finish returns the same document without rewriting.
    assert live.finish(99.0) == document
