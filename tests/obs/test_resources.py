"""Resource-monitor tests: RSS, GC hooks, queue-depth probes."""

import gc
import tracemalloc

import pytest

from repro.obs import MetricsRegistry, ResourceMonitor
from repro.obs.resources import read_rss_bytes


@pytest.fixture
def monitor_factory():
    """Build monitors and guarantee their GC hooks are detached."""
    monitors = []

    def build(registry, probes=()):
        monitor = ResourceMonitor(registry, probes)
        monitors.append(monitor)
        return monitor

    yield build
    for monitor in monitors:
        monitor.close()


def test_read_rss_bytes_on_linux():
    rss = read_rss_bytes()
    # procfs exists on every platform the suite targets; a live
    # interpreter occupies at least a megabyte.
    assert rss is not None and rss > 2**20


def test_sample_sets_rss_gauge(monitor_factory):
    registry = MetricsRegistry()
    monitor = monitor_factory(registry)
    monitor.sample()
    gauges = registry.snapshot()["gauges"]
    assert gauges["resource.rss_bytes"] > 2**20


def test_gc_pause_histogram_captures_collections(monitor_factory):
    registry = MetricsRegistry()
    monitor = monitor_factory(registry)
    for _ in range(3):
        gc.collect()
    snapshot = registry.snapshot()
    assert snapshot["counters"]["gc.collections"] >= 3
    pauses = snapshot["histograms"]["gc.pause_s"]
    assert pauses.count >= 3
    assert pauses.max < 60.0  # sanity: pauses are sub-minute

    # After close() the hook is gone: counters freeze.
    monitor.close()
    frozen = registry.snapshot()["counters"]["gc.collections"]
    gc.collect()
    assert registry.snapshot()["counters"]["gc.collections"] == frozen
    monitor.close()  # idempotent


def test_queue_depth_sums_probes(monitor_factory):
    registry = MetricsRegistry()
    monitor = monitor_factory(
        registry, probes=[lambda: 2, lambda: None, lambda: 3]
    )
    monitor.sample()
    assert registry.snapshot()["gauges"]["pool.queue_depth"] == 5


def test_queue_depth_absent_when_no_probe_answers(monitor_factory):
    registry = MetricsRegistry()
    monitor = monitor_factory(registry, probes=[lambda: None])
    monitor.sample()
    assert registry.snapshot()["gauges"]["pool.queue_depth"] is None


def test_tracemalloc_gauge_only_when_already_tracing(monitor_factory):
    registry = MetricsRegistry()
    monitor = monitor_factory(registry)
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        monitor.sample()
        gauges = registry.snapshot()["gauges"]
        # The monitor must never start tracemalloc itself.
        assert not tracemalloc.is_tracing()
        assert "resource.tracemalloc_peak_bytes" not in gauges
    tracemalloc.start()
    try:
        list(range(1000))  # some traced allocations
        monitor.sample()
        peak = registry.snapshot()["gauges"][
            "resource.tracemalloc_peak_bytes"
        ]
        assert peak > 0
    finally:
        if not was_tracing:
            tracemalloc.stop()
