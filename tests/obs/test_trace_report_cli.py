"""tools/trace_report.py CLI: --json mode and failure modes."""

import json
import os
import subprocess
import sys

import pytest

from repro.obs.export import write_chrome_trace
from repro.obs.trace import Tracer

REPO = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
TOOL = os.path.join(REPO, "tools", "trace_report.py")


def run_tool(*args):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.run(
        [sys.executable, TOOL, *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )


@pytest.fixture
def trace_path(tmp_path):
    clock = iter(float(i) for i in range(100))
    tracer = Tracer(enabled=True, clock=lambda: next(clock))
    with tracer.span("flush", flush=1, requests=3):
        with tracer.span("quote.collect"):
            pass
        with tracer.span("solve"):
            pass
        with tracer.span("commit"):
            pass
        with tracer.span("cleanup"):
            pass
    path = tmp_path / "trace.jsonl"
    write_chrome_trace(tracer.records(), str(path))
    return path


def test_text_mode_summarizes(trace_path):
    result = run_tool(str(trace_path))
    assert result.returncode == 0, result.stderr
    assert "flush" in result.stdout
    assert "slowest flushes" in result.stdout


def test_json_mode_is_machine_readable(trace_path):
    result = run_tool(str(trace_path), "--json", "--top", "2")
    assert result.returncode == 0, result.stderr
    document = json.loads(result.stdout)
    assert document["trace"] == str(trace_path)
    assert document["events"] == 5
    assert {s["name"] for s in document["stages"]} == {
        "flush", "quote.collect", "solve", "commit", "cleanup",
    }
    assert len(document["slowest_flushes"]) == 1
    assert document["slowest_flushes"][0]["args"]["requests"] == 3


def test_missing_trace_is_a_clear_error(tmp_path):
    result = run_tool(str(tmp_path / "nope.jsonl"))
    assert result.returncode == 2
    assert "cannot read trace" in result.stderr
    assert result.stdout == ""


def test_malformed_trace_is_a_clear_error(tmp_path):
    path = tmp_path / "garbage.jsonl"
    path.write_text("this is not json\n", encoding="utf-8")
    result = run_tool(str(path))
    assert result.returncode == 2
    assert "not a Chrome trace" in result.stderr


def test_empty_trace_is_a_clear_error(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("", encoding="utf-8")
    result = run_tool(str(path), "--json")
    assert result.returncode == 1
    assert "no trace events" in result.stderr
    assert "--trace-out" in result.stderr


def test_wrong_jsonl_kind_is_a_clear_error(tmp_path):
    """Valid JSONL that is not a trace — e.g. a --timeseries-out file
    fed to the trace tool — gets a diagnosis, not a traceback."""
    path = tmp_path / "ts.jsonl"
    path.write_text(
        '{"window": 0, "t_start": 0.0, "counters": {}}\n', encoding="utf-8"
    )
    result = run_tool(str(path))
    assert result.returncode == 1
    assert "not trace events" in result.stderr
    assert "timeseries" in result.stderr
    assert "Traceback" not in result.stderr
