"""Metrics naming audit.

The robustness counters are part of the repo's observable surface:
docs/robustness.md documents them and every export (metrics.json,
Prometheus text, time-series rows) must carry them even when zero.
This test pins the three-way agreement between the documented names,
the pre-registered registry and the exporters.
"""

import os

from repro.obs.export import prom_text_lines, _prom_name
from repro.sim.metrics import SimulationReport

DOCS = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "docs"
)


def test_documented_counters_are_pre_registered():
    report = SimulationReport()
    counters = report.registry.snapshot()["counters"]
    for name in SimulationReport.DOCUMENTED_COUNTERS:
        assert name in counters, f"{name} missing from a fresh registry"
        assert counters[name] == 0
    for name in SimulationReport.SERVICE_COUNTERS:
        assert name in counters, f"{name} missing from a fresh registry"


def test_documented_counters_reach_the_prometheus_export():
    report = SimulationReport()
    lines = set(prom_text_lines(report.registry))
    for name in (
        SimulationReport.DOCUMENTED_COUNTERS
        + SimulationReport.SERVICE_COUNTERS
    ):
        metric = _prom_name(name) + "_total"
        assert f"{metric} 0" in lines, f"{metric} missing from exposition"


def test_robustness_doc_names_every_documented_counter():
    with open(
        os.path.join(DOCS, "robustness.md"), encoding="utf-8"
    ) as handle:
        text = handle.read()
    for name in SimulationReport.DOCUMENTED_COUNTERS:
        assert f"`{name}`" in text, (
            f"docs/robustness.md does not document the {name} counter"
        )


def test_observability_doc_names_the_service_counters():
    with open(
        os.path.join(DOCS, "observability.md"), encoding="utf-8"
    ) as handle:
        text = handle.read()
    for name in SimulationReport.SERVICE_COUNTERS:
        assert f"`{name}`" in text, (
            f"docs/observability.md does not document the {name} counter"
        )


def test_shm_counters_are_pre_registered_and_exported():
    """The zero-copy plane's counters (``shm.bytes_shared``,
    ``worker.reuse``) are part of the observable surface like the
    robustness ones: present at zero in a fresh registry and in the
    Prometheus exposition, so a dashboard can tell "zero-copy off" from
    "metric missing"."""
    report = SimulationReport()
    counters = report.registry.snapshot()["counters"]
    lines = set(prom_text_lines(report.registry))
    for name in SimulationReport.SHM_COUNTERS:
        assert name in counters and counters[name] == 0
        assert f"{_prom_name(name)}_total 0" in lines


def test_architecture_doc_names_the_shm_telemetry():
    with open(
        os.path.join(DOCS, "architecture.md"), encoding="utf-8"
    ) as handle:
        text = handle.read()
    for name in SimulationReport.SHM_COUNTERS + ("shm.attach_s",):
        assert f"`{name}`" in text, (
            f"docs/architecture.md does not document {name}"
        )
