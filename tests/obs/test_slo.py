"""SLO grammar, burn-rate math and verdict-document tests."""

import math

import pytest

from repro.obs import MetricsRegistry, SloEngine, SloObjective, parse_slo_spec
from repro.sim.config import SimulationConfig


def latency_delta(*samples):
    """A HistogramSnapshot holding exactly ``samples``."""
    hist = MetricsRegistry().histogram("assign.latency_s")
    for sample in samples:
        hist.add(sample)
    return hist.snapshot()


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------
def test_parse_full_spec():
    objectives = parse_slo_spec(
        "service_rate>=0.9, wait_p99 <= 300,detour_compliance>=0.99"
    )
    assert [o.label for o in objectives] == [
        "service_rate>=0.9",
        "wait_p99<=300",
        "detour_compliance>=0.99",
    ]
    assert objectives[0].kind == "ratio"
    assert objectives[1].kind == "latency"
    assert objectives[1].threshold == 300.0


def test_parse_disabled_specs():
    assert parse_slo_spec(None) == ()
    assert parse_slo_spec("") == ()
    assert parse_slo_spec("   ") == ()


@pytest.mark.parametrize(
    ("spec", "match"),
    [
        ("service_rate>0.9", "needs '>=' or '<='"),
        ("latency<=5", "unknown SLO metric"),
        ("service_rate>=fast", "not a number"),
        ("service_rate>=1.5", "must be in \\[0, 1\\]"),
        ("wait_p99<=0", "must be positive"),
        ("wait_p99<=-3", "must be positive"),
        ("service_rate>=0.9,service_rate>=0.9", "duplicate"),
        (",", "contains no clauses"),
    ],
)
def test_parse_rejects_bad_specs(spec, match):
    with pytest.raises(ValueError, match=match):
        parse_slo_spec(spec)


def test_objective_holds():
    above = SloObjective("service_rate", ">=", 0.9)
    assert above.holds(0.9) and above.holds(1.0) and not above.holds(0.89)
    below = SloObjective("wait_p99", "<=", 300.0)
    assert below.holds(300.0) and not below.holds(300.1)


def test_config_validates_slo_at_construction(tmp_path):
    with pytest.raises(ValueError, match="unknown SLO metric"):
        SimulationConfig(slo="bogus>=1")
    with pytest.raises(ValueError, match="slo_out requires"):
        SimulationConfig(slo_out=str(tmp_path / "slo.json"))
    SimulationConfig(
        slo="service_rate>=0.9", slo_out=str(tmp_path / "slo.json")
    )  # valid pairing constructs fine


# ----------------------------------------------------------------------
# Burn-rate math
# ----------------------------------------------------------------------
def make_engine(spec, window_s=60.0, burn_windows=3, burn_threshold=1.0):
    return SloEngine(
        parse_slo_spec(spec),
        window_s,
        burn_windows=burn_windows,
        burn_threshold=burn_threshold,
    )


def test_ratio_burn_rate():
    engine = make_engine("service_rate>=0.9")
    row = engine.observe_window(
        0, 0.0, 60.0,
        {"requests.settled": 10, "requests.rejected": 2},
        {},
    )
    # value 0.8: error 0.2 against budget 0.1 -> burn 2.0, fast == slow
    # on the first window, so this alerts.
    burn = row["burn"]["service_rate>=0.9"]
    assert burn["fast"] == pytest.approx(2.0)
    assert burn["slow"] == pytest.approx(2.0)
    assert burn["alert"] is True
    assert row["verdicts"]["service_rate>=0.9"] == "fail"
    assert row["metrics"]["service_rate"] == pytest.approx(0.8)


def test_zero_budget_objective():
    engine = make_engine("service_rate>=1")
    perfect = engine.observe_window(
        0, 0.0, 60.0, {"requests.settled": 5, "requests.rejected": 0}, {}
    )
    assert perfect["burn"]["service_rate>=1"]["fast"] == 0.0
    failing = engine.observe_window(
        1, 60.0, 120.0, {"requests.settled": 5, "requests.rejected": 1}, {}
    )
    assert failing["burn"]["service_rate>=1"]["fast"] == math.inf


def test_latency_burn_rate():
    engine = make_engine("wait_p99<=0.2")
    row = engine.observe_window(
        0, 0.0, 60.0, {},
        {"assign.latency_s": latency_delta(0.4, 0.4, 0.4)},
    )
    burn = row["burn"]["wait_p99<=0.2"]
    # p99 of three equal samples is ~0.4 -> burn ~2 (within the
    # histogram's 19 % bucket-width error).
    assert burn["fast"] == pytest.approx(2.0, rel=0.19)
    assert burn["alert"] is True
    assert row["verdicts"]["wait_p99<=0.2"] == "fail"


def test_inverted_objectives_have_verdicts_but_no_burn():
    engine = make_engine("service_rate<=0.5")
    row = engine.observe_window(
        0, 0.0, 60.0, {"requests.settled": 10, "requests.rejected": 1}, {}
    )
    assert row["verdicts"]["service_rate<=0.5"] == "fail"  # 0.9 > 0.5
    assert row["burn"]["service_rate<=0.5"] == {
        "fast": None, "slow": None, "alert": False,
    }


def test_no_data_window():
    engine = make_engine("service_rate>=0.9,wait_p99<=1")
    row = engine.observe_window(0, 0.0, 60.0, {}, {})
    assert row["verdicts"] == {
        "service_rate>=0.9": "no_data",
        "wait_p99<=1": "no_data",
    }
    assert row["burn"]["service_rate>=0.9"]["alert"] is False
    document = engine.finalize()
    assert document["objectives"][0]["overall_pass"] is None
    assert document["pass"] is True  # no traffic is not a violation


def test_alert_needs_fast_and_slow():
    # Two good windows build up budget; one bad window then has a high
    # fast burn but a merged (slow) burn at/below threshold -> no alert.
    engine = make_engine("service_rate>=0.8", burn_windows=3)
    for index in range(2):
        engine.observe_window(
            index, index * 60.0, (index + 1) * 60.0,
            {"requests.settled": 40, "requests.rejected": 0},
            {},
        )
    spike = engine.observe_window(
        2, 120.0, 180.0,
        {"requests.settled": 10, "requests.rejected": 4},
        {},
    )
    burn = spike["burn"]["service_rate>=0.8"]
    assert burn["fast"] == pytest.approx(2.0)  # window value 0.6
    # merged: 90 settled, 4 rejected -> error 4/90 against budget 0.2
    assert burn["slow"] == pytest.approx((4 / 90) / 0.2)
    assert burn["alert"] is False

    # Sustained failure pushes the slow burn over the threshold too.
    for index in range(3, 5):
        row = engine.observe_window(
            index, index * 60.0, (index + 1) * 60.0,
            {"requests.settled": 10, "requests.rejected": 4},
            {},
        )
    assert row["burn"]["service_rate>=0.8"]["alert"] is True
    document = engine.finalize()
    assert document["alert_windows"] >= 1


def test_slow_latency_burn_merges_windows():
    engine = make_engine("wait_p50<=1", burn_windows=2)
    engine.observe_window(
        0, 0.0, 60.0, {}, {"assign.latency_s": latency_delta(0.1, 0.1)}
    )
    row = engine.observe_window(
        1, 60.0, 120.0, {}, {"assign.latency_s": latency_delta(3.0, 3.0)}
    )
    burn = row["burn"]["wait_p50<=1"]
    assert burn["fast"] == pytest.approx(3.0, rel=0.19)
    # merged p50 over [0.1, 0.1, 3.0, 3.0] sits between the modes
    assert 0.1 <= burn["slow"] <= 3.0


# ----------------------------------------------------------------------
# Verdict document
# ----------------------------------------------------------------------
def test_finalize_document_shape():
    spec = "service_rate>=0.9,wait_p99<=300"
    engine = make_engine(spec, window_s=60.0)
    engine.observe_window(
        0, 0.0, 60.0,
        {"requests.settled": 10, "requests.rejected": 0},
        {"assign.latency_s": latency_delta(1.0, 2.0)},
    )
    engine.observe_window(
        1, 60.0, 120.0,
        {"requests.settled": 10, "requests.rejected": 4},
        {},
    )
    document = engine.finalize(spec)
    assert document["spec"] == spec
    assert document["window_s"] == 60.0
    assert document["num_windows"] == 2
    assert len(document["windows"]) == 2

    by_label = {o["label"]: o for o in document["objectives"]}
    rate = by_label["service_rate>=0.9"]
    assert rate["overall_value"] == pytest.approx(16 / 20)
    assert rate["overall_pass"] is False
    assert rate["windows"] == {"pass": 1, "fail": 1, "no_data": 0}
    assert rate["worst_fast_burn"] == pytest.approx(4.0)

    latency = by_label["wait_p99<=300"]
    assert latency["overall_pass"] is True
    assert latency["windows"]["no_data"] == 1
    assert document["pass"] is False


def test_engine_requires_objectives():
    with pytest.raises(ValueError, match="at least one objective"):
        SloEngine((), 60.0)
    with pytest.raises(ValueError, match="burn_windows"):
        SloEngine(parse_slo_spec("service_rate>=0.9"), 60.0, burn_windows=0)
