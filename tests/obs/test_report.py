"""Trace analysis: stage breakdowns and slowest-flush drilldowns."""

from repro.obs.report import (
    render_slowest,
    render_stage_table,
    slowest_flushes,
    stage_breakdown,
)


def event(name, ts, dur, span_id, parent_id=None, **args):
    return {
        "name": name,
        "cat": "flush",
        "ph": "X",
        "pid": 1,
        "tid": 0,
        "ts": ts,
        "dur": dur,
        "args": {**args, "span_id": span_id, "parent_id": parent_id},
    }


def sample_events():
    """Two flushes (8 ms and 2 ms) with solve/commit children plus an
    unparented engine event."""
    return [
        event("flush", 0, 8000, "0:1", flush=0, requests=5),
        event("solve", 1000, 3000, "0:2", "0:1"),
        event("commit", 4000, 2000, "0:3", "0:1"),
        event("flush", 10000, 2000, "0:4", flush=1, requests=1),
        event("solve", 10500, 500, "0:5", "0:4"),
        event("engine.distance_many", 200, 100, "0:6"),
    ]


def test_stage_breakdown_aggregates_by_name_sorted_by_total():
    rows = stage_breakdown(sample_events())
    assert [r["name"] for r in rows] == [
        "flush",
        "solve",
        "commit",
        "engine.distance_many",
    ]
    flush = rows[0]
    assert flush["count"] == 2
    assert flush["total_ms"] == 10.0
    assert flush["mean_ms"] == 5.0
    assert flush["p50_ms"] == 5.0  # interpolated between 2 and 8 ms
    assert flush["max_ms"] == 8.0
    solve = rows[1]
    assert solve["count"] == 2 and solve["total_ms"] == 3.5


def test_slowest_flushes_ranks_and_reassembles_children():
    flushes = slowest_flushes(sample_events(), top=2)
    assert [f["dur_ms"] for f in flushes] == [8.0, 2.0]
    top = flushes[0]
    # Children in start order; ids stripped from the surfaced args.
    assert [c["name"] for c in top["children"]] == ["solve", "commit"]
    assert top["args"] == {"flush": 0, "requests": 5}
    assert flushes[1]["children"] == [{"name": "solve", "dur_ms": 0.5}]


def test_slowest_flushes_top_limits_the_result():
    assert len(slowest_flushes(sample_events(), top=1)) == 1
    assert slowest_flushes([], top=3) == []


def test_render_stage_table_is_fixed_width_text():
    text = render_stage_table(stage_breakdown(sample_events()))
    lines = text.splitlines()
    assert lines[0].startswith("span")
    assert any(line.startswith("flush") for line in lines)
    # Every data row renders the same seven columns.
    assert all(
        len(line.split()) == 7 for line in lines[2:]
    )


def test_render_slowest_handles_empty_traces():
    assert render_slowest([]) == "(no flush spans in trace)"
    text = render_slowest(slowest_flushes(sample_events(), top=1))
    assert "#1" in text and "flush 8.000 ms" in text and "solve" in text
