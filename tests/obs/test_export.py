"""Exporter schema pins: Chrome trace-event JSONL and metrics.json.

The trace schema is pinned by a *golden file*
(``tests/obs/data/golden_trace.jsonl``): a fixed span tree driven by a
fake clock must serialize byte-identically, so any schema change —
field renames, ordering, µs rounding — fails loudly and forces a
deliberate golden update. Extend the schema additively.
"""

import json
import os

from repro.obs.export import (
    chrome_trace_events,
    read_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

GOLDEN = os.path.join(os.path.dirname(__file__), "data", "golden_trace.jsonl")


class FakeClock:
    """Every read returns the next scripted tick (1 s apart)."""

    def __init__(self):
        self.value = 0.0

    def __call__(self):
        tick = self.value
        self.value += 1.0
        return tick


def golden_records():
    """The pinned span tree: one flush with a solve child plus one
    emitted worker column — every exporter feature in four spans."""
    tracer = Tracer(enabled=True, clock=FakeClock())
    with tracer.span("flush", flush=0, requests=2) as flush:  # t=0..3
        with tracer.span("solve", cat="solve", rows=2, cols=3):  # t=1..2
            pass
        tracer.emit(
            "quote.column", "quote", 0.25, 0.75, parent=flush, vehicle=7
        )
    return tracer.records()


def test_chrome_trace_matches_the_golden_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    count = write_chrome_trace(golden_records(), str(path))
    assert count == 3
    produced = path.read_text(encoding="utf-8")
    golden = open(GOLDEN, encoding="utf-8").read()
    assert produced == golden, (
        "Chrome-trace schema drifted from tests/obs/data/golden_trace.jsonl"
        " — if the change is deliberate, regenerate the golden file"
    )


def test_events_are_rebased_sorted_and_integer_microseconds():
    events = chrome_trace_events(golden_records())
    assert [e["name"] for e in events] == ["flush", "quote.column", "solve"]
    flush, column, solve = events
    # Rebased: the earliest span starts at ts=0 whatever the clock said.
    assert flush["ts"] == 0 and flush["dur"] == 3_000_000
    assert column["ts"] == 250_000 and column["dur"] == 500_000
    assert solve["ts"] == 1_000_000 and solve["dur"] == 1_000_000
    for event in events:
        assert event["ph"] == "X" and event["pid"] == 1
        assert isinstance(event["ts"], int) and isinstance(event["dur"], int)
    # Parenthood travels in args, alongside the annotations.
    assert solve["args"]["parent_id"] == flush["args"]["span_id"]
    assert column["args"]["parent_id"] == flush["args"]["span_id"]
    assert flush["args"]["parent_id"] is None
    assert flush["args"]["requests"] == 2
    assert column["args"]["vehicle"] == 7


def test_empty_records_export_no_events(tmp_path):
    assert chrome_trace_events([]) == []
    path = tmp_path / "empty.jsonl"
    assert write_chrome_trace([], str(path)) == 0
    assert read_chrome_trace(str(path)) == []


def test_read_roundtrips_jsonl_and_accepts_the_array_form(tmp_path):
    events = chrome_trace_events(golden_records())
    jsonl = tmp_path / "trace.jsonl"
    write_chrome_trace(golden_records(), str(jsonl))
    assert read_chrome_trace(str(jsonl)) == events
    # Hand-wrapped strict array (what some viewers emit) reads too.
    array = tmp_path / "trace.json"
    array.write_text(json.dumps(events), encoding="utf-8")
    assert read_chrome_trace(str(array)) == events


def test_write_metrics_json_document_shape(tmp_path):
    registry = MetricsRegistry()
    registry.histogram("assign.latency_s").add(2.5)
    registry.counter("flush.count").inc(3)
    path = tmp_path / "metrics.json"
    document = write_metrics_json(
        registry, str(path), extra={"service_rate": 0.9}
    )
    on_disk = json.loads(path.read_text(encoding="utf-8"))
    assert on_disk == document
    assert on_disk["context"] == {"service_rate": 0.9}
    assert on_disk["counters"]["flush.count"] == {"value": 3}
    latency = on_disk["histograms"]["assign.latency_s"]
    assert latency["count"] == 1 and latency["p99"] == 2.5


def test_write_metrics_json_without_extra_has_no_context_key(tmp_path):
    path = tmp_path / "metrics.json"
    document = write_metrics_json(MetricsRegistry(), str(path))
    assert "context" not in document


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def test_prom_counter_and_gauge_lines():
    from repro.obs.export import prom_text_lines

    registry = MetricsRegistry()
    registry.counter("fault.injected").inc(3)
    registry.gauge("resource.rss_bytes").set(1024.0)
    registry.gauge("pool.queue_depth")  # never set: must be skipped
    lines = prom_text_lines(registry)
    assert "# TYPE repro_fault_injected_total counter" in lines
    assert "repro_fault_injected_total 3" in lines
    assert "repro_resource_rss_bytes 1024" in lines
    assert not any("queue_depth" in line for line in lines)


def test_prom_histogram_buckets_are_cumulative(tmp_path):
    from repro.obs.export import prom_text_lines, write_prom_text

    registry = MetricsRegistry()
    hist = registry.histogram("assign.latency_s")
    for sample in (0.001, 0.001, 0.5, 40.0):
        hist.add(sample)
    lines = prom_text_lines(registry)
    buckets = [
        line for line in lines if line.startswith("repro_assign_latency_s_bucket")
    ]
    # Cumulative counts are non-decreasing and end at the +Inf total.
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts)
    assert buckets[-1] == 'repro_assign_latency_s_bucket{le="+Inf"} 4'
    assert "repro_assign_latency_s_count 4" in lines
    total = [
        line for line in lines if line.startswith("repro_assign_latency_s_sum")
    ]
    assert len(total) == 1 and float(total[0].split()[1]) > 40.0

    path = tmp_path / "metrics.prom"
    written = write_prom_text(registry, str(path))
    text = path.read_text(encoding="utf-8")
    assert text.endswith("\n")
    assert len(text.splitlines()) == written == len(lines)


def test_prom_overflow_bucket_folds_into_inf():
    from repro.obs.export import prom_text_lines

    registry = MetricsRegistry()
    hist = registry.histogram("big_s")
    hist.add(1e9)  # far beyond the bucketed range: overflow bucket
    lines = prom_text_lines(registry)
    buckets = [line for line in lines if "big_s_bucket" in line]
    # Only the +Inf bucket carries the overflowed sample.
    assert buckets == ['repro_big_s_bucket{le="+Inf"} 1']


def test_prom_name_sanitization():
    from repro.obs.export import _prom_name

    assert _prom_name("assign.latency_s") == "repro_assign_latency_s"
    assert _prom_name("weird-name.v2") == "repro_weird_name_v2"
