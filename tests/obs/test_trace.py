"""Tracer fundamentals: span identity, nesting, the no-op fast path.

Two contracts matter most here:

* **disabled means gone** — a disabled tracer must never construct a
  :class:`~repro.obs.trace.Span` (pinned by poisoning the constructor)
  and ``emit`` must return before touching anything;
* **deterministic identity** — span ids on the tracer-creating thread
  are a pure function of call order, and worker-thread spans carry
  deterministic *parent* ids because the parent handle is captured on
  the issuing thread at submit time.
"""

import threading

import pytest

from repro.dispatch.sharding.executor import WorkerPool
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Span, Tracer


class FakeClock:
    """A controllable clock: every read returns the next scripted tick."""

    def __init__(self, start=0.0, step=1.0):
        self.value = start
        self.step = step

    def __call__(self):
        tick = self.value
        self.value += self.step
        return tick


# ----------------------------------------------------------------------
# Disabled fast path
# ----------------------------------------------------------------------
def test_disabled_span_is_the_shared_null_singleton():
    assert NULL_TRACER.span("flush") is NULL_SPAN
    assert NULL_TRACER.span("anything", cat="quote", extra=1) is NULL_SPAN


def test_null_span_is_an_inert_context_manager():
    with NULL_TRACER.span("flush") as span:
        span.annotate(requests=3)
        assert span is NULL_SPAN
    assert NULL_TRACER.records() == []


def test_disabled_tracer_never_constructs_a_span(monkeypatch):
    """The zero-allocation claim, unit-testable: poison the constructor
    and drive every entry point of a disabled tracer."""

    def explode(*args, **kwargs):
        raise AssertionError("disabled tracer allocated a Span")

    monkeypatch.setattr(Span, "__init__", explode)
    tracer = Tracer(enabled=False)
    with tracer.span("flush", requests=9):
        pass
    tracer.emit("solve", "solve", 0.0, 1.0, rows=3)
    assert tracer.current_id() is None
    assert tracer.records() == []


def test_disabled_emit_returns_before_recording():
    tracer = Tracer(enabled=False)
    tracer.emit("quote.column", "quote", 0.0, 5.0, vehicle=1)
    assert tracer.records() == []


# ----------------------------------------------------------------------
# Identity and nesting on one thread
# ----------------------------------------------------------------------
def test_creating_thread_is_ordinal_zero_and_ids_are_sequential():
    tracer = Tracer(enabled=True)
    with tracer.span("a") as a:
        pass
    with tracer.span("b") as b:
        pass
    assert a.span_id == "0:1"
    assert b.span_id == "0:2"
    assert [r.thread for r in tracer.records()] == [0, 0]


def test_nested_spans_parent_to_the_innermost_open_span():
    tracer = Tracer(enabled=True, clock=FakeClock())
    with tracer.span("flush") as flush:
        with tracer.span("solve", cat="solve") as solve:
            assert solve.parent_id == flush.span_id
            with tracer.span("shard.solve") as shard:
                assert shard.parent_id == solve.span_id
        with tracer.span("commit", cat="commit") as commit:
            assert commit.parent_id == flush.span_id
    assert flush.parent_id is None
    # Exit order: innermost records first.
    assert [r.name for r in tracer.records()] == [
        "shard.solve",
        "solve",
        "commit",
        "flush",
    ]


def test_explicit_parent_overrides_the_stack():
    tracer = Tracer(enabled=True)
    with tracer.span("flush") as flush:
        with tracer.span("solve"):
            sibling = tracer.span("quote.column", parent=flush)
            with sibling:
                pass
            by_string = tracer.span("quote.column", parent=flush.span_id)
            with by_string:
                pass
    assert sibling.parent_id == flush.span_id
    assert by_string.parent_id == flush.span_id


def test_current_id_tracks_the_open_span():
    tracer = Tracer(enabled=True)
    assert tracer.current_id() is None
    with tracer.span("flush") as flush:
        assert tracer.current_id() == flush.span_id
        with tracer.span("solve") as solve:
            assert tracer.current_id() == solve.span_id
        assert tracer.current_id() == flush.span_id
    assert tracer.current_id() is None


def test_annotate_merges_into_args():
    tracer = Tracer(enabled=True)
    with tracer.span("flush", requests=2) as span:
        span.annotate(requests=5, requotes=1)
    (record,) = tracer.records()
    assert record.args == {"requests": 5, "requotes": 1}


def test_span_survives_exceptions_and_still_records():
    tracer = Tracer(enabled=True, clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("flush"):
            raise RuntimeError("solver blew up")
    (record,) = tracer.records()
    assert record.name == "flush"
    assert record.dur_s == 1.0
    assert tracer.current_id() is None  # the stack unwound


def test_mis_nested_exit_drops_orphans_instead_of_corrupting():
    tracer = Tracer(enabled=True)
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.__enter__()
    inner.__enter__()
    # Exiting the outer span first drops the forgotten inner frame.
    outer.__exit__(None, None, None)
    assert tracer.current_id() is None


def test_fake_clock_drives_start_and_duration():
    clock = FakeClock(start=10.0, step=2.5)
    tracer = Tracer(enabled=True, clock=clock)
    with tracer.span("flush"):
        pass
    (record,) = tracer.records()
    assert record.start_s == 10.0
    assert record.dur_s == 2.5


def test_emit_records_caller_stamps_and_clamps_negative_durations():
    tracer = Tracer(enabled=True)
    tracer.emit("solve", "solve", 5.0, 7.0, rows=3)
    tracer.emit("weird", "solve", 7.0, 5.0)
    first, second = tracer.records()
    assert (first.start_s, first.dur_s) == (5.0, 2.0)
    assert first.args == {"rows": 3}
    assert second.dur_s == 0.0


def test_clear_empties_the_record_buffer():
    tracer = Tracer(enabled=True)
    with tracer.span("flush"):
        pass
    tracer.clear()
    assert tracer.records() == []


# ----------------------------------------------------------------------
# Cross-thread parent handles (the worker-pool shape)
# ----------------------------------------------------------------------
def test_worker_spans_carry_the_submit_time_parent_handle():
    """The async-quote shape: the issuing thread opens ``quote.issue``,
    captures ``current_id()`` and hands it to each pool task. Whatever
    thread runs the task, the recorded parent is the issue span —
    deterministically, run after run."""
    tracer = Tracer(enabled=True)
    pool = WorkerPool(backend="thread", max_workers=2)
    started = threading.Barrier(3, timeout=5.0)

    def task(parent, index):
        started.wait()  # force both workers to participate
        with tracer.span("quote.column", cat="quote", parent=parent, col=index):
            pass

    try:
        with tracer.span("quote.issue", cat="quote") as issue:
            parent = tracer.current_id()
            futures = [pool.submit(task, parent, i) for i in range(2)]
            started.wait()
            for future in futures:
                future.result(timeout=5.0)
    finally:
        pool.close()

    records = {r.name: r for r in tracer.records()}
    columns = [r for r in tracer.records() if r.name == "quote.column"]
    assert len(columns) == 2
    assert {c.parent_id for c in columns} == {records["quote.issue"].span_id}
    assert records["quote.issue"].span_id == "0:1"  # deterministic
    # Worker ordinals are non-zero: the simulator thread owns 0.
    assert all(c.thread > 0 for c in columns)
    assert all(c.span_id != records["quote.issue"].span_id for c in columns)


def test_thread_ordinals_are_first_use_order_and_stable():
    tracer = Tracer(enabled=True)
    seen = []

    def open_one(name):
        with tracer.span(name) as span:
            seen.append((name, span.thread))

    worker = threading.Thread(target=open_one, args=("w",))
    worker.start()
    worker.join()
    open_one("main")
    by_name = dict(seen)
    assert by_name["main"] == 0  # claimed at construction, not first span
    assert by_name["w"] == 1
