"""Bench-trend extraction and regression detection.

The acceptance scenario: copy a committed ``BENCH_*.json``, inject a
synthetic 20 % regression, and ``tools/bench_trend.py`` must flag it
(exit 1) in gating mode and stay green (exit 0) in ``--report`` mode.
"""

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.bench.trend import (
    attach_series,
    compare_series,
    extract_series,
    regression_pct,
)

REPO = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
TOOL = os.path.join(REPO, "tools", "bench_trend.py")


def run_tool(*args, cwd=REPO):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.run(
        [sys.executable, TOOL, *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def test_committed_documents_all_extract_series():
    for name in sorted(os.listdir(REPO)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        with open(os.path.join(REPO, name), encoding="utf-8") as handle:
            doc = json.load(handle)
        series = extract_series(doc)
        assert series, f"{name} yields no trend series"
        for record in series.values():
            assert record["direction"] in ("higher", "lower")
            assert isinstance(record["value"], float)


def test_attach_series_embeds_and_takes_precedence():
    doc = {
        "benchmark": "distance_plane_fan_out",
        "engines": {"matrix": {"batched_queries_per_sec": 1000.0}},
    }
    attach_series(doc)
    embedded = doc["trend_series"]
    assert embedded == {
        "engines.matrix.batched_queries_per_sec": {
            "value": 1000.0,
            "direction": "higher",
        }
    }
    # Once embedded, extraction reads the embed — even if the raw
    # numbers change (the embed is the document of record).
    doc["engines"]["matrix"]["batched_queries_per_sec"] = 5.0
    assert extract_series(doc) == embedded


def test_regression_pct_directions():
    # higher-is-better: a drop regresses
    assert regression_pct(100.0, 80.0, "higher") == pytest.approx(20.0)
    assert regression_pct(100.0, 120.0, "higher") == pytest.approx(-20.0)
    # lower-is-better: a rise regresses
    assert regression_pct(10.0, 12.0, "lower") == pytest.approx(20.0)
    assert regression_pct(10.0, 8.0, "lower") == pytest.approx(-20.0)
    assert regression_pct(0.0, 5.0, "higher") is None


def test_compare_series_flags_and_sorts():
    history = {
        "a": {"value": 100.0, "direction": "higher"},
        "b": {"value": 10.0, "direction": "lower"},
        "gone": {"value": 1.0, "direction": "higher"},
    }
    current = {
        "a": {"value": 70.0, "direction": "higher"},   # 30 % worse
        "b": {"value": 10.5, "direction": "lower"},    # 5 % worse
        "new": {"value": 2.0, "direction": "higher"},  # no baseline
    }
    records = compare_series(current, history, threshold_pct=10.0)
    assert [r["series"] for r in records] == ["a", "b"]  # worst first
    assert records[0]["regressed"] is True
    assert records[1]["regressed"] is False


# ----------------------------------------------------------------------
# The tool, end to end
# ----------------------------------------------------------------------
@pytest.fixture
def regressed_root(tmp_path):
    """A root with one copied BENCH doc carrying a 20 % regression,
    and a history seeded from the original."""
    source = os.path.join(REPO, "BENCH_micro.json")
    target = tmp_path / "BENCH_micro.json"
    shutil.copy(source, target)

    seeded = run_tool(
        "--root", str(tmp_path),
        "--history", str(tmp_path / "trend.json"),
        "--update",
    )
    assert seeded.returncode == 0, seeded.stderr

    doc = json.loads(target.read_text(encoding="utf-8"))
    engine = sorted(doc["engines"])[0]
    doc["engines"][engine]["batched_queries_per_sec"] *= 0.8  # 20 % drop
    doc.pop("trend_series", None)  # re-derive from the mutated numbers
    target.write_text(json.dumps(attach_series(doc)), encoding="utf-8")
    return tmp_path


def test_tool_detects_synthetic_20pct_regression(regressed_root):
    result = run_tool(
        "--root", str(regressed_root),
        "--history", str(regressed_root / "trend.json"),
        "--threshold", "10",
    )
    assert result.returncode == 1, result.stdout + result.stderr
    assert "REGRESSED" in result.stdout
    assert "1 regression(s) beyond 10%" in result.stdout


def test_report_mode_never_gates(regressed_root):
    result = run_tool(
        "--root", str(regressed_root),
        "--history", str(regressed_root / "trend.json"),
        "--threshold", "10",
        "--report",
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "REGRESSED" in result.stdout


def test_json_mode_reports_the_regression(regressed_root):
    result = run_tool(
        "--root", str(regressed_root),
        "--history", str(regressed_root / "trend.json"),
        "--threshold", "10",
        "--json", "--report",
    )
    assert result.returncode == 0
    document = json.loads(result.stdout)
    assert document["regressions"] == 1
    records = document["documents"]["BENCH_micro.json"]
    assert records[0]["regressed"] is True
    assert records[0]["regression_pct"] == pytest.approx(20.0, abs=0.1)


def test_threshold_above_the_injected_drop_passes(regressed_root):
    result = run_tool(
        "--root", str(regressed_root),
        "--history", str(regressed_root / "trend.json"),
        "--threshold", "25",
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_missing_history_is_a_clear_error(tmp_path):
    shutil.copy(
        os.path.join(REPO, "BENCH_micro.json"), tmp_path / "BENCH_micro.json"
    )
    gating = run_tool(
        "--root", str(tmp_path), "--history", str(tmp_path / "none.json")
    )
    assert gating.returncode == 2
    assert "no trend history" in gating.stderr
    report = run_tool(
        "--root", str(tmp_path),
        "--history", str(tmp_path / "none.json"),
        "--report",
    )
    assert report.returncode == 0


def test_no_documents_is_a_clear_error(tmp_path):
    result = run_tool("--root", str(tmp_path))
    assert result.returncode == 2
    assert "no BENCH_*.json" in result.stderr


def test_update_then_gate_round_trip_on_real_documents(tmp_path):
    """``--update`` followed by gating against the history it wrote is
    clean on the repo's real BENCH docs. Values are not pinned against
    the committed ``trend.json`` — the benchmark tests in this very
    suite regenerate the docs with fresh wall-clock numbers, so a
    percentage gate on them would flake with machine load; CI runs the
    non-gating ``--report`` mode for the same reason."""
    history = tmp_path / "trend.json"
    seeded = run_tool("--history", str(history), "--update")
    assert seeded.returncode == 0, seeded.stderr
    result = run_tool("--history", str(history), "--threshold", "10")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "no regressions beyond 10%" in result.stdout


def test_committed_history_covers_committed_documents():
    """The committed ``trend.json`` tracks every BENCH doc's series by
    *name* (names are deterministic; values drift with the machine)."""
    with open(
        os.path.join(REPO, "benchmarks", "results", "trend.json"),
        encoding="utf-8",
    ) as handle:
        history = json.load(handle)["series"]
    for name in sorted(os.listdir(REPO)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        with open(os.path.join(REPO, name), encoding="utf-8") as handle:
            current = extract_series(json.load(handle))
        assert name in history, f"{name} untracked in trend.json"
        assert set(current) == set(history[name]), (
            f"{name}: series names diverge from trend.json — re-seed "
            "with `python tools/bench_trend.py --update` and commit"
        )
