"""The `python -m repro.bench` command-line entry point."""

import os

import pytest

from repro.bench.__main__ import main
from repro.bench.experiments import ALL_EXPERIMENTS


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_EXPERIMENTS:
        assert name in out


def test_unknown_experiment():
    with pytest.raises(ValueError):
        main(["fig99z"])


def test_run_one_and_save(tmp_path, capsys):
    assert main(["table1", "--save-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert os.path.exists(tmp_path / "table1.txt")


def test_registry_complete():
    """Every figure and table of the paper has an experiment."""
    for required in (
        "table1", "table2",
        "fig6a", "fig6b", "fig6c",
        "fig7a", "fig7b", "fig7c",
        "fig8a", "fig8b",
        "fig9a", "fig9b", "fig9c",
        "occupancy",
    ):
        assert required in ALL_EXPERIMENTS


def test_micro_cli_fast(tmp_path, capsys):
    """`python -m repro.bench.micro --fast` (the CI perf smoke step)."""
    import json

    from repro.bench.micro import ENGINE_KINDS, main as micro_main

    out = tmp_path / "BENCH_micro.json"
    assert micro_main(["--fast", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert set(doc["engines"]) == set(ENGINE_KINDS)
    for row in doc["engines"].values():
        assert row["scalar_queries_per_sec"] > 0
        assert row["batched_queries_per_sec"] > 0
    assert "micro_batched" in capsys.readouterr().out
