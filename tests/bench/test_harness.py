"""The benchmark harness: suites, cells, memoization, tables."""

import os

import pytest

from repro.bench.harness import (
    BenchContext,
    ExperimentTable,
    SuiteSpec,
    fmt_cell,
    fmt_ms,
    repro_scale,
)
from repro.sim.metrics import SimulationReport


TINY = SuiteSpec(
    name="tiny",
    grid_rows=8,
    grid_cols=8,
    num_vehicles=4,
    capacity=4,
    num_trips=10,
    duration_seconds=600.0,
    seed=5,
    min_trip_meters=300.0,
)


@pytest.fixture(scope="module")
def context():
    return BenchContext(TINY)


def test_scaled_suite():
    scaled = TINY.scaled(2.0)
    assert scaled.num_vehicles == 8
    assert scaled.num_trips == 20
    assert TINY.scaled(1.0) is TINY


def test_repro_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.5")
    assert repro_scale() == 2.5
    monkeypatch.delenv("REPRO_SCALE")
    assert repro_scale() == 1.0


def test_context_builds_workload(context):
    assert len(context.trips) == TINY.num_trips
    assert context.city.num_vertices == 64


def test_run_cell_returns_report(context):
    report = context.run_cell(algorithm="kinetic")
    assert isinstance(report, SimulationReport)
    assert report.num_requests == TINY.num_trips


def test_run_cell_memoized(context):
    first = context.run_cell(algorithm="kinetic")
    second = context.run_cell(algorithm="kinetic")
    assert first is second


def test_run_cell_distinct_params_not_shared(context):
    a = context.run_cell(algorithm="kinetic")
    b = context.run_cell(algorithm="kinetic", num_vehicles=2)
    assert a is not b


def test_burst_suite_appends_bursts():
    burst = SuiteSpec(
        name="tinyburst",
        grid_rows=8,
        grid_cols=8,
        num_vehicles=4,
        capacity=4,
        num_trips=10,
        duration_seconds=600.0,
        seed=5,
        min_trip_meters=300.0,
        burst_count=2,
        burst_size=3,
    )
    context = BenchContext(burst)
    assert len(context.trips) > 10
    times = [t.request_time for t in context.trips]
    assert times == sorted(times)


def test_table_render_and_save(tmp_path):
    table = ExperimentTable(
        "figX",
        "demo",
        ["a", "b"],
        [["1", "2"], ["333", "4"]],
        notes="hello",
    )
    text = table.render()
    assert "figX" in text and "hello" in text
    assert "333" in text
    path = table.save(str(tmp_path))
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as handle:
        assert "demo" in handle.read()


def test_table_render_empty_rows():
    table = ExperimentTable("figY", "empty", ["col"], [])
    assert "figY" in table.render()


def test_fmt_ms():
    assert fmt_ms(None) == "-"
    assert fmt_ms(0.0123) == "12.300"


def test_fmt_cell(context):
    report = context.run_cell(algorithm="kinetic")
    assert fmt_cell(None, "acrt") == "DNF"
    assert fmt_cell(report, "acrt") != "DNF"
    assert fmt_cell(report, "service_rate").replace(".", "").isdigit()
    with pytest.raises(ValueError):
        fmt_cell(report, "latency_p99")


def test_dnf_on_budget_exceeded():
    burst = SuiteSpec(
        name="tinyexplode",
        grid_rows=8,
        grid_cols=8,
        num_vehicles=2,
        capacity=4,
        num_trips=8,
        duration_seconds=600.0,
        seed=5,
        min_trip_meters=300.0,
        burst_count=1,
        burst_size=8,
    )
    context = BenchContext(burst)
    report = context.run_cell(
        algorithm="kinetic",
        tree_mode="basic",
        capacity=None,
        tree_expansion_budget=50,
    )
    assert report is None  # rendered as DNF
