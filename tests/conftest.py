"""Shared test fixtures: small deterministic cities, request factories,
and the suite-wide shared-memory leak invariant."""

import numpy as np
import pytest

from repro.core.request import TripRequest
from repro.dispatch.sharding.shm import (
    active_segment_names,
    leaked_segment_files,
)
from repro.roadnet.engine import DijkstraEngine
from repro.roadnet.generators import grid_city
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.matrix import MatrixEngine


@pytest.fixture(autouse=True)
def assert_no_leaked_segments():
    """Every test must release every shared-memory segment it created.

    Snapshots the arena registry and the ``/dev/shm`` listing before the
    test and fails if either grew afterwards — the lifecycle invariant of
    :mod:`repro.dispatch.sharding.shm` (segments are closed *and*
    unlinked on executor close, pool death, and crash teardown). Autouse
    so a leak introduced anywhere in the suite is pinned to the exact
    test that caused it rather than surfacing as CI /dev/shm residue.
    """
    before_registry = set(active_segment_names())
    before_files = set(leaked_segment_files())
    yield
    new_registry = set(active_segment_names()) - before_registry
    new_files = set(leaked_segment_files()) - before_files
    assert not new_registry, (
        f"test leaked arena segments (registry): {sorted(new_registry)}"
    )
    assert not new_files, (
        f"test leaked shared-memory files in /dev/shm: {sorted(new_files)}"
    )


@pytest.fixture(scope="session")
def line_graph() -> RoadNetwork:
    """0 - 1 - 2 - 3 - 4 with unit weights."""
    return RoadNetwork(5, [(i, i + 1, 1.0) for i in range(4)])


@pytest.fixture(scope="session")
def square_graph() -> RoadNetwork:
    """A 2x2 square with one diagonal:  0-1 / 0-2 / 1-3 / 2-3 / 0-3(2.5)."""
    edges = [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0), (0, 3, 2.5)]
    coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    return RoadNetwork(4, edges, coords=coords)


@pytest.fixture(scope="session")
def small_city() -> RoadNetwork:
    return grid_city(10, 10, seed=0)


@pytest.fixture(scope="session")
def city_engine(small_city) -> MatrixEngine:
    return MatrixEngine(small_city)


@pytest.fixture(scope="session")
def dijkstra_engine(small_city) -> DijkstraEngine:
    return DijkstraEngine(small_city)


class RequestFactory:
    """Stamps consistent TripRequests against an engine."""

    def __init__(self, engine):
        self.engine = engine
        self.next_id = 0

    def __call__(
        self,
        origin: int,
        destination: int,
        request_time: float = 0.0,
        max_wait: float = 600.0,
        epsilon: float = 0.5,
    ) -> TripRequest:
        request = TripRequest(
            request_id=self.next_id,
            origin=origin,
            destination=destination,
            request_time=request_time,
            max_wait=max_wait,
            detour_epsilon=epsilon,
            direct_cost=self.engine.distance(origin, destination),
        )
        self.next_id += 1
        return request


@pytest.fixture
def make_request(city_engine) -> RequestFactory:
    return RequestFactory(city_engine)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
