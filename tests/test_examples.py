"""Smoke tests: the example scripts run and demonstrate what they claim."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, *args: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_shows_sharing():
    out = run_example("quickstart.py")
    assert "valid schedule(s)" in out
    # At least one vehicle carries multiple riders (a shared plan with
    # more than one pickup before a dropoff).
    assert any("P0" in line and "P1" in line for line in out.splitlines())


def test_shanghai_day_small():
    out = run_example("shanghai_day.py", "--vehicles", "8", "--hours", "0.3")
    assert "service-guarantee audit: 0 violations" in out
    assert "ART by active requests" in out


def test_custom_network():
    out = run_example("custom_network.py")
    assert "all engines agree" in out


def test_batched_dispatch_small():
    out = run_example(
        "batched_dispatch.py", "--vehicles", "6", "--hours", "0.3",
    )
    assert "service-guarantee audit" in out
    assert "lap" in out and "iterative" in out
    assert "batched dispatch" in out  # the report's batching section


def test_sharded_dispatch_small():
    out = run_example(
        "sharded_dispatch.py", "--vehicles", "6", "--hours", "0.3",
        "--shards", "3",
    )
    assert "service-guarantee audit" in out
    assert "sharded x3" in out
    assert "sharded dispatch" in out  # the report's shard section
    assert "boundary_conflicts" in out


def test_adaptive_window_small():
    out = run_example(
        "adaptive_window.py", "--vehicles", "6",
        "--offpeak-trips", "20", "--peak-trips", "80",
    )
    assert "service-guarantee audit" in out
    assert "adaptive window trajectory" in out
    assert "surge" in out and "lull" in out
    assert "adaptive window / carry-over" in out  # the report's section


def test_trace_flush_small(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    out = run_example(
        "trace_flush.py", "--vehicles", "6",
        "--offpeak-trips", "15", "--peak-trips", "50",
        "--trace-out", str(trace_path),
    )
    assert "tracing on" in out
    assert "where flush time goes" in out
    assert "slowest flushes" in out
    assert "assignment latency: p50" in out
    # The stage table really decomposes the pipeline.
    for span in ("flush", "quote.collect", "solve", "commit"):
        assert span in out
    assert trace_path.exists()
    # The written trace feeds the CLI reporter.
    import subprocess as sp

    result = sp.run(
        [
            sys.executable,
            os.path.join(EXAMPLES, "..", "tools", "trace_report.py"),
            str(trace_path),
        ],
        capture_output=True,
        text=True,
        timeout=60.0,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "span" in result.stdout and "flush" in result.stdout


def test_live_metrics_small(tmp_path):
    import json

    ts_path = tmp_path / "ts.jsonl"
    slo_path = tmp_path / "slo.json"
    out = run_example(
        "live_metrics.py", "--vehicles", "6",
        "--offpeak-trips", "15", "--peak-trips", "50",
        "--out", str(ts_path), "--slo-out", str(slo_path),
    )
    assert "[live] w" in out        # the per-window console feed
    assert "rolling dashboard" in out
    assert "SLO verdict:" in out
    assert "burn alerts" in out
    # The written artifacts are real: JSONL rows and the verdict doc.
    rows = [
        json.loads(line)
        for line in ts_path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    assert len(rows) >= 2
    document = json.loads(slo_path.read_text(encoding="utf-8"))
    assert document["pass"] in (True, False)
    assert document["num_windows"] == len(rows)


@pytest.mark.slow
def test_airport_hotspot():
    out = run_example("airport_hotspot.py", timeout=600.0)
    assert "hotspot" in out
    assert "DNF" in out or "optimality gap" in out


@pytest.mark.slow
def test_algorithm_comparison():
    out = run_example(
        "algorithm_comparison.py", "--trips", "25", "--vehicles", "6",
        timeout=600.0,
    )
    assert "mip" in out
