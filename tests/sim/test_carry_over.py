"""Carry-over batching and the adaptive window, end to end.

Four guarantee families:

* **pinned degeneration** — ``adaptive_window=False, carry_over=False``
  runs through the very same controller-scheduled code path and must be
  bit-identical to the pre-controller fixed window; a degenerate
  adaptive band (``min == initial == max``) must be bit-identical too
  (the controller wiring itself perturbs nothing);
* **conservation** — with carry-over on, every request is settled
  exactly once (assigned or rejected), never lost in the window and
  never double-counted, including requests that expire mid-carry;
* **interplay** — carry-over composes with the async quote pipeline
  (staleness re-quotes fire; worker counts stay invisible) and with the
  sharded policy;
* **determinism** — adaptive + carry-over runs are reproducible given
  the seed, and the window trajectory stays clamped to the band under
  burst load and silence.
"""

import pytest

from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import Simulation, simulate
from repro.sim.workload import ShanghaiLikeWorkload, burst_workload


@pytest.fixture(scope="module")
def scenario():
    city = grid_city(14, 14, seed=11)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=11, min_trip_meters=600.0).generate(
        num_trips=80, duration_seconds=1200
    )
    return city, engine, trips


def _deterministic_state(report):
    """Everything a run produces except wall-clock timings."""
    return {
        "num_requests": report.num_requests,
        "num_assigned": report.num_assigned,
        "num_rejected": report.num_rejected,
        "total_cost": report.total_assignment_cost,
        "carry_events": report.carry_events,
        "max_carries": report.max_carries,
        "window_trajectory": list(report.window_trajectory),
        "service_log": {
            rid: {
                "vehicle": entry.get("vehicle"),
                "assigned_cost": entry.get("assigned_cost"),
                "assigned_at": entry.get("assigned_at"),
                "pickup": entry.get("pickup"),
                "dropoff": entry.get("dropoff"),
            }
            for rid, entry in report.service_log.items()
        },
    }


def _run(scenario, **overrides):
    _, engine, trips = scenario
    params = dict(
        num_vehicles=8,
        algorithm="kinetic",
        seed=3,
        dispatch_policy="lap",
        batch_window_s=15.0,
    )
    params.update(overrides)
    return simulate(engine, SimulationConfig(**params), trips)


def _expected_requests(scenario):
    """Requests immediate dispatch would stamp (degenerate specs drop)."""
    _, engine, trips = scenario
    config = SimulationConfig(num_vehicles=8, algorithm="kinetic", seed=3)
    return simulate(engine, config, trips).num_requests


# ----------------------------------------------------------------------
# Pinned degeneration
# ----------------------------------------------------------------------
def test_disabled_config_matches_pre_controller_fixed_window(scenario):
    """The named contract (docs/determinism.md): adaptive-off ≡ fixed
    window. The controller-scheduled chain with everything disabled must
    reproduce the pre-controller flush arithmetic bit for bit — pinned
    against a reference that schedules flushes with the literal
    pre-controller expression."""

    class PreControllerSimulation(Simulation):
        """Schedules flushes exactly as the code did before the window
        controller existed (PR 4's handler, config arithmetic inline)."""

        def _handle_batch_flush(self, now, queue):
            from repro.sim.events import Event, EventKind

            requests = self.batch_window.flush()
            if requests:
                commit_time = now + self.config.quote_overlap_s
                pending = None
                if self.batch_dispatcher.policy.uses_quote_set:
                    pending = self.quote_service.begin(
                        self.dispatcher, requests, commit_time
                    )
                queue.push(
                    Event(
                        commit_time,
                        EventKind.QUOTE_READY,
                        (requests, pending, None, None, 0),
                    )
                )
            if now < self.horizon:
                queue.push(
                    Event(
                        now + self.config.batch_window_s,
                        EventKind.BATCH_DISPATCH,
                    )
                )

    _, engine, trips = scenario
    config = SimulationConfig(
        num_vehicles=8,
        algorithm="kinetic",
        seed=3,
        dispatch_policy="lap",
        batch_window_s=15.0,
    )
    current = Simulation(engine, config, trips).run()
    reference = PreControllerSimulation(engine, config, trips).run()
    state = _deterministic_state(current)
    ref_state = _deterministic_state(reference)
    # The reference never records a trajectory (it bypasses the
    # controller); everything else must agree bit for bit.
    state.pop("window_trajectory")
    ref_state.pop("window_trajectory")
    assert state == ref_state
    assert current.carry_events == 0
    # And the fixed trajectory really is constant at the config value.
    assert all(w == 15.0 and o == 0.0 for _, w, o in current.window_trajectory)


def test_degenerate_band_is_bit_identical_to_fixed_window(scenario):
    """``window_min == initial == window_max`` clamps the adaptive
    controller into a constant — the wiring (retunes, proportional
    overlap, trajectory recording) must perturb nothing."""
    fixed = _run(scenario)
    pinned = _run(
        scenario,
        adaptive_window=True,
        window_min_s=15.0,
        window_max_s=15.0,
    )
    assert _deterministic_state(pinned) == _deterministic_state(fixed)


def test_carry_over_off_leaves_results_untouched(scenario):
    """``carry_over=False`` must not change a single assignment even
    though the dispatch call now threads a carry deadline parameter."""
    baseline = _run(scenario)
    explicit = _run(scenario, carry_over=False)
    assert _deterministic_state(explicit) == _deterministic_state(baseline)


# ----------------------------------------------------------------------
# Conservation and expiry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["greedy", "lap", "iterative"])
def test_every_request_settles_exactly_once_with_carry(scenario, policy):
    expected = _expected_requests(scenario)
    report = _run(scenario, dispatch_policy=policy, carry_over=True)
    assert report.num_requests == expected
    assert report.num_assigned + report.num_rejected == expected
    assert len(report.service_log) == report.num_assigned
    assert report.verify_service_guarantees() == []


@pytest.fixture(scope="module")
def overload():
    """A demand stream a 6-vehicle fleet cannot absorb: most requests
    lose several flushes in a row, so carry-over gets real work."""
    city = grid_city(20, 20, seed=11)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=11, min_trip_meters=1500.0).generate(
        num_trips=220, duration_seconds=1800
    )
    return engine, trips


def _run_overload(overload, wait_minutes=6.0, **overrides):
    from repro.core.constraints import ConstraintConfig

    engine, trips = overload
    params = dict(
        num_vehicles=6,
        algorithm="kinetic",
        seed=3,
        dispatch_policy="lap",
        batch_window_s=15.0,
        constraints=ConstraintConfig.from_minutes(wait_minutes, 20.0),
    )
    params.update(overrides)
    return simulate(engine, SimulationConfig(**params), trips)


def test_request_expiring_mid_carry_takes_the_rejection_path(overload):
    """Overflow requests must ride the window for a bounded number of
    flushes and then be *rejected* (not lost, not retried forever) once
    their wait budget cannot reach the next commit."""
    wait_budget = 4.0 * 60.0
    report = _run_overload(overload, wait_minutes=4.0, carry_over=True)
    assert report.num_rejected > 0  # the overflow expired...
    assert report.carry_events > 0  # ...after genuinely riding along
    assert report.max_carries >= 2
    # A request never rides past its wait budget: carry ages are bounded
    # by it, and every settle is final (assigned + rejected = total).
    assert report.carry_age_s.max <= wait_budget + 1e-9
    assert report.num_assigned + report.num_rejected == report.num_requests
    assert report.verify_service_guarantees() == []


def test_carry_rescues_requests_the_in_batch_path_rejects(overload):
    """The service-rate payoff: a request infeasible at its own flush
    (every nearby vehicle committed elsewhere) can become feasible a few
    windows later — new commits drag vehicles toward its origin, riders
    are dropped off, cruise positions move. In-batch settling rejects it
    at the first flush; carry-over keeps it alive while its wait budget
    lasts and assigns strictly more of the stream."""
    without = _run_overload(overload)
    with_carry = _run_overload(overload, carry_over=True)
    assert with_carry.num_assigned > without.num_assigned
    assert with_carry.verify_service_guarantees() == []


# ----------------------------------------------------------------------
# Interplay with the quote pipeline and sharding
# ----------------------------------------------------------------------
def test_carry_composes_with_staleness_requotes(scenario):
    """Carried requests re-enter windows whose vehicles move between
    quote and commit: the staleness machinery must keep repairing
    columns, and worker timing must stay invisible."""
    deferred = _run(
        scenario, carry_over=True, quote_workers=0, quote_overlap_s=7.0
    )
    threaded = _run(
        scenario,
        carry_over=True,
        quote_workers=2,
        quote_backend="thread",
        quote_overlap_s=7.0,
    )
    assert _deterministic_state(threaded) == _deterministic_state(deferred)
    assert int(threaded.staleness_requotes.total) > 0
    assert threaded.carry_events > 0
    assert threaded.verify_service_guarantees() == []


def test_carry_composes_with_sharded_policy(scenario):
    expected = _expected_requests(scenario)
    report = _run(
        scenario, dispatch_policy="sharded", num_shards=3, carry_over=True
    )
    assert report.num_requests == expected
    assert report.shard_sizes.count > 0
    assert report.verify_service_guarantees() == []


# ----------------------------------------------------------------------
# Adaptive trajectory: clamping and determinism
# ----------------------------------------------------------------------
def _bursty_trips(city):
    """Silence, then an airport burst, then silence again."""
    trips = list(
        burst_workload(
            city, center_vertex=90, num_trips=25, request_time=600.0, seed=8
        )
    )
    # Sparse background before and after the burst.
    sparse = ShanghaiLikeWorkload(city, seed=8, min_trip_meters=600.0).generate(
        num_trips=10, duration_seconds=1800
    )
    trips.extend(sparse)
    trips.sort(key=lambda t: t.request_time)
    return trips


def test_window_is_clamped_under_burst_and_silence(scenario):
    city, engine, _ = scenario
    trips = _bursty_trips(city)
    config = SimulationConfig(
        num_vehicles=8,
        algorithm="kinetic",
        seed=8,
        dispatch_policy="lap",
        batch_window_s=6.0,
        adaptive_window=True,
        window_min_s=3.0,
        window_max_s=24.0,
        adaptive_target_batch=6.0,
        carry_over=True,
    )
    report = simulate(engine, config, trips)
    windows = [w for _, w, _ in report.window_trajectory]
    assert windows, "no flush ever recorded a window"
    assert min(windows) >= 3.0 - 1e-12
    assert max(windows) <= 24.0 + 1e-12
    # The burst/silence contrast actually drives the controller to both
    # ends of the band.
    assert min(windows) == pytest.approx(3.0)
    assert max(windows) == pytest.approx(24.0)
    assert report.verify_service_guarantees() == []


def test_adaptive_carry_runs_are_deterministic_given_the_seed(scenario):
    kwargs = dict(
        adaptive_window=True,
        window_min_s=5.0,
        window_max_s=30.0,
        carry_over=True,
        quote_workers=1,
        quote_backend="serial",
        quote_overlap_s=2.0,
    )
    first = _run(scenario, **kwargs)
    second = _run(scenario, **kwargs)
    assert _deterministic_state(first) == _deterministic_state(second)
    assert first.window_trajectory == second.window_trajectory
