"""End-to-end simulation integration tests.

The crown-jewel assertion: for every algorithm, every assigned rider's
*executed* service respects the paper's guarantees — picked up within
``w`` of requesting and carried within ``(1 + eps) d(s, e)``.
"""

import pytest

from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import Simulation, simulate
from repro.sim.workload import ShanghaiLikeWorkload, burst_workload


@pytest.fixture(scope="module")
def sim_city():
    return grid_city(15, 15, seed=4)


@pytest.fixture(scope="module")
def sim_engine(sim_city):
    return MatrixEngine(sim_city)


@pytest.fixture(scope="module")
def sim_trips(sim_city):
    return ShanghaiLikeWorkload(sim_city, seed=4, min_trip_meters=600.0).generate(
        num_trips=80, duration_seconds=1200
    )


ALGORITHMS = ["kinetic", "brute_force", "branch_and_bound", "insertion"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_service_guarantees_hold(sim_engine, sim_trips, algorithm):
    config = SimulationConfig(num_vehicles=12, algorithm=algorithm, seed=1)
    report = simulate(sim_engine, config, sim_trips)
    assert report.num_requests == len(sim_trips)
    assert report.verify_service_guarantees() == []


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_requests_get_serviced(sim_engine, sim_trips, algorithm):
    config = SimulationConfig(num_vehicles=12, algorithm=algorithm, seed=1)
    report = simulate(sim_engine, config, sim_trips)
    assert report.service_rate > 0.5
    # Every assigned request is eventually picked up AND dropped off
    # (the simulation runs its event queue dry).
    for rid, entry in report.service_log.items():
        assert "pickup" in entry, f"request {rid} assigned but never picked up"
        assert "dropoff" in entry, f"request {rid} picked up but never dropped"


def test_kinetic_tree_modes_agree_on_assignments(sim_engine, sim_trips):
    reports = {}
    for mode in ("basic", "slack"):
        config = SimulationConfig(
            num_vehicles=12, algorithm="kinetic", tree_mode=mode, seed=1
        )
        reports[mode] = simulate(sim_engine, config, sim_trips)
    basic, slack = reports["basic"], reports["slack"]
    assert basic.num_assigned == slack.num_assigned
    # Same requests to the same vehicles at the same cost.
    for rid, entry in basic.service_log.items():
        other = slack.service_log[rid]
        assert entry["vehicle"] == other["vehicle"]
        assert entry["assigned_cost"] == pytest.approx(other["assigned_cost"])


def test_deterministic_given_seed(sim_engine, sim_trips):
    config = SimulationConfig(num_vehicles=10, algorithm="kinetic", seed=9)
    a = simulate(sim_engine, config, sim_trips)
    b = simulate(sim_engine, config, sim_trips)
    assert a.num_assigned == b.num_assigned
    assert a.total_assignment_cost == pytest.approx(b.total_assignment_cost)
    for rid in a.service_log:
        assert a.service_log[rid].get("vehicle") == b.service_log[rid].get("vehicle")


def test_grid_index_does_not_change_assignability(sim_engine, sim_trips):
    """The index is a conservative filter: disabling it must not *add*
    assignments (it only widens the candidate set)."""
    with_index = simulate(
        sim_engine,
        SimulationConfig(num_vehicles=10, algorithm="kinetic", seed=3),
        sim_trips,
    )
    without_index = simulate(
        sim_engine,
        SimulationConfig(
            num_vehicles=10, algorithm="kinetic", seed=3, use_grid_index=False
        ),
        sim_trips,
    )
    assert with_index.num_assigned == without_index.num_assigned
    assert with_index.verify_service_guarantees() == []


def test_occupancy_tracked(sim_engine, sim_trips):
    report = simulate(
        sim_engine,
        SimulationConfig(num_vehicles=8, algorithm="kinetic", seed=1),
        sim_trips,
    )
    assert report.occupancy.max_passengers >= 1


def test_burst_simulation_with_hotspot_tree(sim_city, sim_engine):
    trips = burst_workload(
        sim_city, center_vertex=112, num_trips=8, request_time=100.0,
        dest_center_vertex=0, seed=5,
    )
    config = SimulationConfig(
        num_vehicles=3,
        capacity=None,
        algorithm="kinetic",
        hotspot_theta=45.0,
        seed=2,
    )
    report = simulate(sim_engine, config, trips)
    assert report.verify_service_guarantees() == []
    assert report.num_assigned >= 6


def test_empty_trip_stream(sim_engine):
    report = simulate(
        sim_engine, SimulationConfig(num_vehicles=3, seed=0), []
    )
    assert report.num_requests == 0


def test_simulation_object_exposes_state(sim_engine, sim_trips):
    sim = Simulation(
        sim_engine, SimulationConfig(num_vehicles=5, seed=0), sim_trips[:10]
    )
    report = sim.run()
    assert len(sim.agents) == 5
    assert report.wall_seconds > 0
    assert "grid_stats" in report.extra


def test_eager_and_lazy_same_assignments(sim_engine, sim_trips):
    lazy = simulate(
        sim_engine,
        SimulationConfig(num_vehicles=10, algorithm="kinetic", seed=5),
        sim_trips,
    )
    eager = simulate(
        sim_engine,
        SimulationConfig(
            num_vehicles=10, algorithm="kinetic", seed=5, eager_invalidation=True
        ),
        sim_trips,
    )
    assert lazy.num_assigned == eager.num_assigned
    for rid in lazy.service_log:
        assert lazy.service_log[rid].get("vehicle") == eager.service_log[
            rid
        ].get("vehicle")
