"""Flush-pipeline telemetry, end to end through the simulator.

The contract under test is *telemetry never steers dispatch*: a traced
run must be bit-identical to the untraced run on every configuration
the determinism pins cover (batched LAP, sharded, async quoting), while
producing a span tree whose ``flush`` spans decompose into the
quote/solve/commit stages and whose exports load back intact.
"""

import json

import pytest

from repro.obs.export import read_chrome_trace
from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload


@pytest.fixture(scope="module")
def scenario():
    city = grid_city(12, 12, seed=5)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=5, min_trip_meters=500.0).generate(
        num_trips=50, duration_seconds=900
    )
    return engine, trips


def _run(scenario, **overrides):
    engine, trips = scenario
    params = dict(
        num_vehicles=6,
        algorithm="kinetic",
        seed=2,
        dispatch_policy="lap",
        batch_window_s=15.0,
    )
    params.update(overrides)
    return simulate(engine, SimulationConfig(**params), trips)


def _deterministic_state(report):
    return {
        "num_requests": report.num_requests,
        "num_assigned": report.num_assigned,
        "num_rejected": report.num_rejected,
        "total_cost": round(report.total_assignment_cost, 6),
        "service_log": {
            rid: (
                entry.get("vehicle"),
                entry.get("assigned_cost"),
                entry.get("pickup"),
                entry.get("dropoff"),
            )
            for rid, entry in report.service_log.items()
        },
    }


# ----------------------------------------------------------------------
# Telemetry never steers dispatch
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "overrides",
    [
        {},
        {"dispatch_policy": "sharded", "num_shards": 3,
         "shard_backend": "thread"},
        {"quote_workers": 2, "quote_backend": "thread",
         "quote_overlap_s": 2.0},
        {"dispatch_policy": "greedy", "batch_window_s": 0.0},
    ],
    ids=["lap", "sharded_thread", "async_quotes", "greedy_immediate"],
)
def test_traced_run_is_bit_identical_to_untraced(scenario, overrides):
    untraced = _run(scenario, **overrides)
    traced = _run(scenario, trace=True, **overrides)
    assert _deterministic_state(traced) == _deterministic_state(untraced)


def test_untraced_run_collects_no_spans(scenario):
    report = _run(scenario)
    assert report.tracer is not None
    assert not report.tracer.enabled
    assert report.tracer.records() == []


# ----------------------------------------------------------------------
# Span tree structure
# ----------------------------------------------------------------------
def test_flush_spans_decompose_into_pipeline_stages(scenario):
    report = _run(scenario, trace=True)
    records = report.tracer.records()
    by_id = {r.span_id: r for r in records}
    flushes = [r for r in records if r.name == "flush"]
    assert flushes, "a batched traced run must record flush spans"
    for flush in flushes:
        kids = sorted(
            r.name for r in records if r.parent_id == flush.span_id
        )
        assert kids == ["cleanup", "commit", "quote.collect", "solve"]
        assert flush.parent_id is None
        assert "flush" in flush.args and "requests" in flush.args
    # The issue side pairs up: every flush id also has a flush.issue
    # span with a snapshot child, linked by the flush arg.
    issue_ids = {
        r.args["flush"]
        for r in records
        if r.name == "flush.issue" and "flush" in r.args
    }
    assert {f.args["flush"] for f in flushes} <= issue_ids
    for record in records:
        if record.name == "snapshot":
            assert by_id[record.parent_id].name == "flush.issue"


def test_shard_spans_nest_under_solve(scenario):
    report = _run(
        scenario,
        trace=True,
        dispatch_policy="sharded",
        num_shards=3,
        shard_backend="thread",
    )
    records = report.tracer.records()
    by_id = {r.span_id: r for r in records}
    shard_solves = [r for r in records if r.name == "shard.solve"]
    assert shard_solves, "the sharded policy must record per-shard solves"
    for shard in shard_solves:
        assert by_id[shard.parent_id].name == "solve"
        assert "shard" in shard.args


def test_worker_quote_spans_parent_to_the_issue_span(scenario):
    report = _run(
        scenario,
        trace=True,
        quote_workers=2,
        quote_backend="thread",
        quote_overlap_s=2.0,
    )
    records = report.tracer.records()
    by_id = {r.span_id: r for r in records}
    columns = [r for r in records if r.name == "quote.column"]
    assert columns, "async quoting must record per-column worker spans"
    assert {by_id[c.parent_id].name for c in columns} == {"quote.issue"}


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def test_trace_and_metrics_exports_load_back(scenario, tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    metrics_path = tmp_path / "metrics.json"
    report = _run(
        scenario,
        trace=True,
        trace_out=str(trace_path),
        metrics_out=str(metrics_path),
    )
    events = read_chrome_trace(str(trace_path))
    assert len(events) == len(report.tracer.records())
    assert {e["name"] for e in events} >= {"flush", "solve", "commit"}
    assert min(e["ts"] for e in events) == 0  # rebased

    document = json.loads(metrics_path.read_text(encoding="utf-8"))
    latency = document["histograms"]["assign.latency_s"]
    assert latency["count"] == report.num_assigned
    assert latency["p50"] is not None and latency["p99"] is not None
    # The report summary rides along as context.
    assert document["context"]["assigned"] == report.num_assigned
    summary = report.summary()
    assert summary["assign_latency_s_p50"] > 0.0
    assert summary["assign_latency_s_p99"] >= summary["assign_latency_s_p50"]


def test_metrics_export_works_without_tracing(scenario, tmp_path):
    """The registry is always live — ``metrics_out`` needs no ``trace``."""
    metrics_path = tmp_path / "metrics.json"
    report = _run(scenario, metrics_out=str(metrics_path))
    document = json.loads(metrics_path.read_text(encoding="utf-8"))
    assert document["histograms"]["flush.total_s"]["count"] > 0
    assert report.tracer.records() == []


def test_trace_out_without_trace_is_rejected():
    with pytest.raises(ValueError, match="trace_out requires trace=True"):
        SimulationConfig(trace_out="/tmp/t.jsonl")
