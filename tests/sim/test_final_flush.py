"""The final partial batch window is always flushed.

The periodic ``BATCH_DISPATCH`` chain used to end on a float comparison
(``next <= horizon + window``) that could stop one window early under
accumulation error, silently stranding whatever the last window had
collected. Two defenses now exist and both are pinned here:

* the chain condition is ``now < horizon`` — it keeps flushing until the
  first flush at or after the last request arrival, which provably
  covers every arrival;
* the run loop's end-of-simulation safety net flushes any requests still
  sitting in the window once the event queue drains, whatever broke the
  chain.
"""

import pytest

from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import Simulation, simulate
from repro.sim.workload import ShanghaiLikeWorkload


@pytest.fixture(scope="module")
def scenario():
    city = grid_city(12, 12, seed=6)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=6, min_trip_meters=500.0).generate(
        num_trips=60, duration_seconds=900
    )
    return engine, trips


def _expected_requests(engine, trips):
    """Requests immediate dispatch would stamp (degenerate specs drop)."""
    config = SimulationConfig(num_vehicles=8, algorithm="kinetic", seed=2)
    return simulate(engine, config, trips).num_requests


class BrokenChainSimulation(Simulation):
    """A flush chain that dies after the first flush — the worst-case
    stand-in for any chain-end bug (float accumulation, off-by-one):
    every later arrival lands in the window with no flush scheduled."""

    def _handle_batch_flush(self, now, queue):
        requests = self.batch_window.flush()
        if requests:
            self._dispatch_batch(requests, now, queue)
        # Deliberately never schedules the next BATCH_DISPATCH.


def test_broken_chain_tail_is_flushed_by_safety_net(scenario):
    engine, trips = scenario
    expected = _expected_requests(engine, trips)
    config = SimulationConfig(
        num_vehicles=8,
        algorithm="kinetic",
        seed=2,
        dispatch_policy="lap",
        batch_window_s=20.0,
    )
    report = BrokenChainSimulation(engine, config, trips).run()
    # Without the end-of-run safety flush everything after the first
    # window would vanish; with it, every request is answered.
    assert report.num_requests == expected
    assert report.verify_service_guarantees() == []


@pytest.mark.parametrize("window", [0.7, 1.3, 7.0, 20.0, 60.0])
@pytest.mark.parametrize("policy", ["greedy", "lap"])
def test_every_request_is_dispatched_for_awkward_windows(
    scenario, window, policy
):
    """No tail request is ever silently dropped, whatever the window
    length's float behavior over hundreds of accumulated flushes."""
    engine, trips = scenario
    expected = _expected_requests(engine, trips)
    config = SimulationConfig(
        num_vehicles=8,
        algorithm="kinetic",
        seed=2,
        dispatch_policy=policy,
        batch_window_s=window,
    )
    report = simulate(engine, config, trips)
    assert report.num_requests == expected
    assert len(report.service_log) == report.num_assigned


def test_pipeline_final_flush_commits_after_horizon(scenario):
    """The last flush's QUOTE_READY lands after the final arrival; its
    batch must still solve, commit and be serviced."""
    engine, trips = scenario
    expected = _expected_requests(engine, trips)
    config = SimulationConfig(
        num_vehicles=8,
        algorithm="kinetic",
        seed=2,
        dispatch_policy="lap",
        batch_window_s=20.0,
        quote_workers=1,
        quote_backend="serial",
        quote_overlap_s=15.0,
    )
    report = simulate(engine, config, trips)
    assert report.num_requests == expected
    assert report.verify_service_guarantees() == []
    for rid, entry in report.service_log.items():
        assert "dropoff" in entry, f"request {rid} never completed"


def test_flush_chain_reaches_horizon(scenario):
    """The chain's last flush is at or after the last arrival: popping
    the queue must never leave a pending window behind (the safety net
    stays dormant on healthy chains)."""
    engine, trips = scenario
    config = SimulationConfig(
        num_vehicles=8,
        algorithm="kinetic",
        seed=2,
        dispatch_policy="lap",
        batch_window_s=13.0,
    )
    sim = Simulation(engine, config, trips)
    flushes = []
    original = Simulation._handle_batch_flush

    def spying_flush(self, now, queue):
        flushes.append(now)
        return original(self, now, queue)

    sim._handle_batch_flush = spying_flush.__get__(sim)
    sim.run()
    assert flushes, "no flush ever ran"
    assert flushes[-1] >= sim.horizon
    assert len(sim.batch_window) == 0
