"""SimulationConfig validation and fleet construction."""

import pytest

from repro.core.matching import KineticAgent, RescheduleAgent
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.fleet import build_fleet


def test_config_defaults_match_paper():
    config = SimulationConfig()
    assert config.capacity == 4
    assert config.constraints.max_wait_seconds == 600.0
    assert config.constraints.detour_epsilon == pytest.approx(0.2)


def test_config_validation():
    with pytest.raises(ValueError):
        SimulationConfig(num_vehicles=0)
    with pytest.raises(ValueError):
        SimulationConfig(capacity=0)
    with pytest.raises(ValueError):
        SimulationConfig(report_interval=0)


def test_config_unlimited_capacity_allowed():
    assert SimulationConfig(capacity=None).capacity is None


def test_build_fleet_kinetic(city_engine):
    agents = build_fleet(city_engine, SimulationConfig(num_vehicles=5, seed=3))
    assert len(agents) == 5
    assert all(isinstance(a, KineticAgent) for a in agents)
    assert len({a.vehicle.vehicle_id for a in agents}) == 5


def test_build_fleet_reschedule(city_engine):
    agents = build_fleet(
        city_engine,
        SimulationConfig(num_vehicles=3, algorithm="brute_force", seed=3),
    )
    assert all(isinstance(a, RescheduleAgent) for a in agents)


def test_build_fleet_deterministic(city_engine):
    config = SimulationConfig(num_vehicles=6, seed=8)
    a = build_fleet(city_engine, config)
    b = build_fleet(city_engine, config)
    assert [x.vehicle.waypoints[0] for x in a] == [
        x.vehicle.waypoints[0] for x in b
    ]


def test_build_fleet_capacity_passthrough(city_engine):
    agents = build_fleet(
        city_engine, SimulationConfig(num_vehicles=2, capacity=7, seed=0)
    )
    assert all(a.vehicle.capacity == 7 for a in agents)
    assert all(a.tree.capacity == 7 for a in agents)


def test_build_fleet_tree_variant_passthrough(city_engine):
    agents = build_fleet(
        city_engine,
        SimulationConfig(
            num_vehicles=2,
            algorithm="kinetic",
            tree_mode="basic",
            hotspot_theta=25.0,
            tree_expansion_budget=1000,
            seed=0,
        ),
    )
    for agent in agents:
        assert agent.tree.mode == "basic"
        assert agent.tree.hotspot_theta == 25.0
        assert agent.tree.expansion_budget == 1000


def test_config_engine_kind_validated():
    assert SimulationConfig(engine_kind="hub_label").engine_kind == "hub_label"
    assert SimulationConfig().engine_kind == "auto"
    with pytest.raises(ValueError):
        SimulationConfig(engine_kind="teleporter")


def test_every_engine_kind_drives_the_simulator(small_city):
    """All engines are exact, so pointing the simulator at any of them
    yields the same assignments/service rate on a small scenario."""
    from repro.roadnet.engine import ENGINE_KINDS, make_engine
    from repro.sim.simulator import simulate
    from repro.sim.workload import ShanghaiLikeWorkload

    trips = ShanghaiLikeWorkload(small_city, seed=5, min_trip_meters=400.0).generate(
        num_trips=12, duration_seconds=900
    )
    rates = {}
    for kind in ENGINE_KINDS:
        config = SimulationConfig(num_vehicles=4, seed=5, engine_kind=kind)
        engine = make_engine(small_city, config.engine_kind)
        rates[kind] = simulate(engine, config, trips).service_rate
    assert len(set(rates.values())) == 1, rates
