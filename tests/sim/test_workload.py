"""Synthetic workload generation."""

import numpy as np
import pytest

from repro.sim.workload import (
    PAPER_TRIPS_PER_VEHICLE_HOUR,
    ShanghaiLikeWorkload,
    burst_workload,
)


@pytest.fixture(scope="module")
def workload(small_city):
    return ShanghaiLikeWorkload(small_city, seed=5, min_trip_meters=400.0)


def test_generates_requested_count(workload):
    trips = workload.generate(num_trips=120, duration_seconds=1800)
    assert len(trips) == 120


def test_sorted_by_time(workload):
    trips = workload.generate(num_trips=80, duration_seconds=1800)
    times = [t.request_time for t in trips]
    assert times == sorted(times)


def test_times_within_window(workload):
    start = 7 * 3600.0
    trips = workload.generate(num_trips=80, duration_seconds=1800, start_seconds=start)
    assert all(start <= t.request_time <= start + 1800 for t in trips)


def test_no_degenerate_trips(workload, small_city):
    trips = workload.generate(num_trips=100, duration_seconds=1800)
    coords = small_city.coords
    for trip in trips:
        assert trip.origin != trip.destination
        span = np.hypot(*(coords[trip.origin] - coords[trip.destination]))
        assert span >= 400.0


def test_deterministic_per_seed(small_city):
    a = ShanghaiLikeWorkload(small_city, seed=9).generate(50, 900)
    b = ShanghaiLikeWorkload(small_city, seed=9).generate(50, 900)
    assert a == b


def test_different_seeds_differ(small_city):
    a = ShanghaiLikeWorkload(small_city, seed=1).generate(50, 900)
    b = ShanghaiLikeWorkload(small_city, seed=2).generate(50, 900)
    assert a != b


def test_hotspot_weight_skews_distribution(small_city):
    """With weight 1.0 all endpoints come from hotspot neighborhoods."""
    wl = ShanghaiLikeWorkload(
        small_city, seed=3, hotspot_weight=1.0, hotspot_radius_meters=100.0,
        min_trip_meters=0.0,
    )
    trips = wl.generate(60, 900)
    hotspot_coords = small_city.coords[wl.hotspots]
    for trip in trips:
        o = small_city.coords[trip.origin]
        distance_to_hotspot = np.min(np.hypot(*(hotspot_coords - o).T))
        assert distance_to_hotspot < 800.0


def test_generate_for_fleet_uses_paper_ratio(workload):
    trips = workload.generate_for_fleet(num_vehicles=100, duration_seconds=3600)
    expected = round(100 * PAPER_TRIPS_PER_VEHICLE_HOUR)
    assert len(trips) == expected


def test_paper_ratio_value():
    assert PAPER_TRIPS_PER_VEHICLE_HOUR == pytest.approx(1.0596, abs=1e-3)


def test_requires_coords(line_graph):
    with pytest.raises(ValueError):
        ShanghaiLikeWorkload(line_graph)


def test_invalid_hotspot_weight(small_city):
    with pytest.raises(ValueError):
        ShanghaiLikeWorkload(small_city, hotspot_weight=1.5)


def test_negative_trip_count(workload):
    with pytest.raises(ValueError):
        workload.generate(-5, 900)


def test_impossible_min_length(small_city):
    wl = ShanghaiLikeWorkload(small_city, seed=0, min_trip_meters=1e9)
    with pytest.raises(ValueError):
        wl.generate(10, 900)


# ----------------------------------------------------------------------
# Burst workloads (Section V scenario)
# ----------------------------------------------------------------------
def test_burst_pickups_colocated(small_city):
    specs = burst_workload(small_city, center_vertex=45, num_trips=6,
                           request_time=100.0, seed=1)
    assert len(specs) >= 5
    coords = small_city.coords
    center = coords[45]
    for spec in specs:
        assert np.hypot(*(coords[spec.origin] - center)) < 800.0
        assert 100.0 <= spec.request_time < 110.0


def test_burst_clustered_destinations(small_city):
    specs = burst_workload(
        small_city, 0, 6, 0.0, dest_center_vertex=99, seed=2
    )
    coords = small_city.coords
    target = coords[99]
    for spec in specs:
        assert np.hypot(*(coords[spec.destination] - target)) < 800.0


def test_burst_requires_coords(line_graph):
    with pytest.raises(ValueError):
        burst_workload(line_graph, 0, 3, 0.0)
