"""Cross-algorithm simulation consistency: the exact reschedulers and the
kinetic tree must produce identical assignment *decisions* in the full
simulator (they optimize the same objective exactly)."""

import pytest

from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload


@pytest.fixture(scope="module")
def setup():
    city = grid_city(12, 12, seed=23)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=23, min_trip_meters=500.0).generate(
        num_trips=50, duration_seconds=900
    )
    return engine, trips


def run(setup, algorithm):
    engine, trips = setup
    return simulate(
        engine,
        SimulationConfig(num_vehicles=8, algorithm=algorithm, seed=4),
        trips,
    )


def test_kinetic_and_bruteforce_assign_identically(setup):
    kinetic = run(setup, "kinetic")
    brute = run(setup, "brute_force")
    assert kinetic.num_assigned == brute.num_assigned
    for rid, entry in kinetic.service_log.items():
        other = brute.service_log.get(rid)
        assert other is not None
        assert entry["vehicle"] == other["vehicle"], f"request {rid}"
        assert entry["assigned_cost"] == pytest.approx(other["assigned_cost"])


def test_kinetic_and_branch_and_bound_assign_identically(setup):
    kinetic = run(setup, "kinetic")
    bb = run(setup, "branch_and_bound")
    for rid, entry in kinetic.service_log.items():
        other = bb.service_log.get(rid)
        assert other is not None
        assert entry["vehicle"] == other["vehicle"]


def test_total_costs_match_across_exact_algorithms(setup):
    totals = {
        name: run(setup, name).total_assignment_cost
        for name in ("kinetic", "brute_force", "branch_and_bound")
    }
    reference = totals["kinetic"]
    for name, total in totals.items():
        assert total == pytest.approx(reference, rel=1e-9), totals
