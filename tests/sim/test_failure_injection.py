"""Failure injection: degenerate inputs the system must survive."""

import pytest

from repro.core.matching import Dispatcher, KineticAgent
from repro.core.vehicle import Vehicle
from repro.exceptions import TreeBudgetExceeded
from repro.roadnet.engine import DijkstraEngine
from repro.roadnet.graph import RoadNetwork
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import TripSpec, burst_workload


def test_unreachable_destination_rejected_cleanly():
    """A request between disconnected components is refused at stamping,
    never reaching the matcher."""
    g = RoadNetwork(
        6,
        [(0, 1, 10.0), (1, 2, 10.0), (3, 4, 10.0), (4, 5, 10.0)],
    )
    engine = DijkstraEngine(g)
    agent = KineticAgent(Vehicle(0, 0, capacity=4), engine)
    dispatcher = Dispatcher(engine, [agent])
    assert dispatcher.make_request(0, 5, 0.0, 600.0, 0.2) is None


def test_simulation_skips_unreachable_trips(small_city, city_engine):
    """Degenerate trip specs (origin == destination) are dropped, and the
    simulation completes normally."""
    trips = [
        TripSpec(0, 0, 10.0),  # degenerate
        TripSpec(0, 25, 20.0),
        TripSpec(30, 30, 30.0),  # degenerate
        TripSpec(40, 75, 40.0),
    ]
    report = simulate(
        city_engine, SimulationConfig(num_vehicles=4, seed=0), trips
    )
    assert report.num_requests == 2
    assert report.verify_service_guarantees() == []


def test_zero_wait_requests_all_rejected(small_city, city_engine):
    from repro.core.constraints import ConstraintConfig

    trips = [TripSpec(0, 25, 10.0), TripSpec(90, 12, 20.0)]
    config = SimulationConfig(
        num_vehicles=3,
        constraints=ConstraintConfig(1e-6, 0.0),
        seed=0,
    )
    report = simulate(city_engine, config, trips)
    # A vehicle would have to sit exactly on the pickup vertex; with 3
    # random vehicles on 100 vertices rejection is the expected outcome.
    assert report.num_rejected >= 1


def test_budget_exceeded_propagates_from_simulation(small_city, city_engine):
    """An unlimited-capacity burst with a tiny expansion budget must
    surface TreeBudgetExceeded rather than hang."""
    trips = burst_workload(
        small_city, center_vertex=55, num_trips=8, request_time=10.0,
        dest_center_vertex=0, seed=3,
    )
    config = SimulationConfig(
        num_vehicles=1,
        capacity=None,
        algorithm="kinetic",
        tree_mode="basic",
        tree_expansion_budget=30,
        seed=0,
    )
    with pytest.raises(TreeBudgetExceeded):
        simulate(city_engine, config, trips)


def test_single_vehicle_fleet(small_city, city_engine):
    trips = [TripSpec(0, 25, 10.0), TripSpec(26, 60, 400.0)]
    report = simulate(
        city_engine, SimulationConfig(num_vehicles=1, seed=0), trips
    )
    assert report.num_assigned >= 1
    assert report.verify_service_guarantees() == []


def test_all_requests_at_same_instant(small_city, city_engine):
    trips = [TripSpec(i * 7 % 99, (i * 13 + 1) % 99, 50.0) for i in range(6)]
    trips = [t for t in trips if t.origin != t.destination]
    report = simulate(
        city_engine, SimulationConfig(num_vehicles=5, seed=1), trips
    )
    assert report.num_requests == len(trips)
    assert report.verify_service_guarantees() == []
