"""Live telemetry end to end through the simulator.

Determinism contract 9 extends to the whole live-ops plane: a run
with the live layer *fully enabled* — windowed time series, SLO
engine, resource monitor, console reports — must be bit-identical to
a run with it disabled, on every configuration the original trace
pins cover. And because the SLO engine consumes only simulated-time
metrics, the entire ``slo.json`` verdict (per-window values, verdicts
and burn rates included) must reproduce exactly on a same-seed rerun
of the bimodal adaptive workload.
"""

import json

import pytest

from repro.bench.adaptive import bimodal_trips
from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload

SLO_SPEC = "service_rate>=0.5,wait_compliance>=0.5,wait_p99<=600"


@pytest.fixture(scope="module")
def scenario():
    city = grid_city(12, 12, seed=5)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=5, min_trip_meters=500.0).generate(
        num_trips=50, duration_seconds=900
    )
    return engine, trips


def _run(scenario, **overrides):
    engine, trips = scenario
    params = dict(
        num_vehicles=6,
        algorithm="kinetic",
        seed=2,
        dispatch_policy="lap",
        batch_window_s=15.0,
    )
    params.update(overrides)
    return simulate(engine, SimulationConfig(**params), trips)


def _deterministic_state(report):
    return {
        "num_requests": report.num_requests,
        "num_assigned": report.num_assigned,
        "num_rejected": report.num_rejected,
        "total_cost": round(report.total_assignment_cost, 6),
        "service_log": {
            rid: (
                entry.get("vehicle"),
                entry.get("assigned_cost"),
                entry.get("pickup"),
                entry.get("dropoff"),
            )
            for rid, entry in report.service_log.items()
        },
    }


def _live_overrides(tmp_path, suffix=""):
    """Every live feature at once: the strongest form of the pin."""
    return dict(
        timeseries_out=str(tmp_path / f"ts{suffix}.jsonl"),
        timeseries_window_s=120.0,
        timeseries_ring=3,
        slo=SLO_SPEC,
        slo_out=str(tmp_path / f"slo{suffix}.json"),
        live_report_every=4,
        resource_monitor=True,
    )


# ----------------------------------------------------------------------
# Contract 9, extended: the live layer never steers dispatch
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "overrides",
    [
        {},
        {"dispatch_policy": "sharded", "num_shards": 3,
         "shard_backend": "thread"},
        {"dispatch_policy": "greedy", "batch_window_s": 0.0},
    ],
    ids=["lap", "sharded_thread", "greedy_immediate"],
)
def test_live_run_is_bit_identical_to_disabled(scenario, tmp_path, overrides):
    disabled = _run(scenario, **overrides)
    live = _run(scenario, **_live_overrides(tmp_path), **overrides)
    assert _deterministic_state(live) == _deterministic_state(disabled)


def test_disabled_run_builds_no_live_layer(scenario):
    report = _run(scenario)
    assert "timeseries" not in report.extra
    assert "slo" not in report.extra


# ----------------------------------------------------------------------
# slo.json reproduces exactly on a same-seed rerun (bimodal workload)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def bimodal_scenario():
    city = grid_city(12, 12, seed=7)
    engine = MatrixEngine(city)
    trips, split = bimodal_trips(
        city,
        seed=7,
        offpeak_s=600.0,
        peak_s=300.0,
        offpeak_trips=15,
        peak_trips=45,
        min_trip_meters=500.0,
    )
    return engine, trips, split


def _bimodal_run(bimodal_scenario, tmp_path, suffix):
    engine, trips, split = bimodal_scenario
    config = SimulationConfig(
        num_vehicles=8,
        algorithm="kinetic",
        seed=3,
        dispatch_policy="lap",
        batch_window_s=15.0,
        adaptive_window=True,
        window_min_s=5.0,
        window_max_s=30.0,
        timeseries_out=str(tmp_path / f"ts{suffix}.jsonl"),
        timeseries_window_s=120.0,
        slo=SLO_SPEC,
        slo_out=str(tmp_path / f"slo{suffix}.json"),
        resource_monitor=True,
    )
    report = simulate(engine, config, trips)
    document = json.loads(
        (tmp_path / f"slo{suffix}.json").read_text(encoding="utf-8")
    )
    return report, document


def test_slo_verdict_reproduces_on_same_seed_rerun(
    bimodal_scenario, tmp_path
):
    report_a, doc_a = _bimodal_run(bimodal_scenario, tmp_path, "_a")
    report_b, doc_b = _bimodal_run(bimodal_scenario, tmp_path, "_b")
    # The whole document — per-window metrics, verdicts, burn rates —
    # is simulated-time only, so it reproduces bit for bit.
    assert doc_a == doc_b
    assert (tmp_path / "slo_a.json").read_bytes() == (
        tmp_path / "slo_b.json"
    ).read_bytes()
    assert _deterministic_state(report_a) == _deterministic_state(report_b)

    assert doc_a["spec"] == SLO_SPEC
    assert doc_a["num_windows"] >= 2
    labels = {o["label"] for o in doc_a["objectives"]}
    assert labels == {
        "service_rate>=0.5", "wait_compliance>=0.5", "wait_p99<=600",
    }
    # The bimodal run serves most requests at this capacity.
    rate = next(
        o for o in doc_a["objectives"] if o["metric"] == "service_rate"
    )
    assert rate["overall_value"] is not None
    assert rate["overall_pass"] is not None


# ----------------------------------------------------------------------
# Time-series rows and report integration
# ----------------------------------------------------------------------
def test_timeseries_rows_are_contiguous_and_consistent(scenario, tmp_path):
    report = _run(scenario, **_live_overrides(tmp_path))
    path = tmp_path / "ts.jsonl"
    rows = [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
    ]
    assert rows, "an enabled run must emit time-series rows"
    assert report.extra["timeseries"] == {
        "windows": len(rows),
        "path": str(path),
    }
    for index, row in enumerate(rows):
        assert row["window"] == index
        if index:
            assert row["t_start"] == rows[index - 1]["t_end"]
    # Window counter deltas add up to the end-of-run cumulative count.
    settled = sum(
        row["counters"].get("requests.settled", 0) for row in rows
    )
    assert settled == report.num_requests
    # The resource monitor fed the rows: RSS appears as a gauge.
    assert any(
        "resource.rss_bytes" in row["gauges"] for row in rows
    )
    # Rolling quantiles appear once assignment latency has samples.
    assert any(
        "assign.latency_s" in row.get("rolling", {}) for row in rows
    )


def test_summary_carries_the_slo_verdict(scenario, tmp_path):
    report = _run(scenario, **_live_overrides(tmp_path))
    summary = report.summary()
    assert summary["slo_pass"] in (True, False)
    assert summary["slo_windows"] == report.extra["slo"]["num_windows"]
    assert "slo_alert_windows" in summary
    text = report.text_summary()
    assert "service-level objectives" in text
    assert SLO_SPEC.split(",")[0] in text


def test_live_report_prints_status_lines(scenario, tmp_path, capsys):
    _run(
        scenario,
        timeseries_window_s=120.0,
        live_report_every=1,
    )
    lines = [
        line
        for line in capsys.readouterr().out.splitlines()
        if line.startswith("[live]")
    ]
    assert lines, "--live-report must print console status lines"
    assert "settled=" in lines[0] and "service=" in lines[0]
