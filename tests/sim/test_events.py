"""Event queue semantics."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.events import Event, EventKind, EventQueue


def test_time_ordering():
    queue = EventQueue()
    queue.push(Event(5.0, EventKind.REQUEST_ARRIVAL, "b"))
    queue.push(Event(1.0, EventKind.REQUEST_ARRIVAL, "a"))
    queue.push(Event(3.0, EventKind.REQUEST_ARRIVAL, "m"))
    assert [queue.pop().payload for _ in range(3)] == ["a", "m", "b"]


def test_kind_priority_at_same_instant():
    queue = EventQueue()
    queue.push(Event(1.0, EventKind.LOCATION_REPORT, "report"))
    queue.push(Event(1.0, EventKind.REQUEST_ARRIVAL, "request"))
    queue.push(Event(1.0, EventKind.STOP_REACHED, "stop"))
    kinds = [queue.pop().kind for _ in range(3)]
    assert kinds == [
        EventKind.STOP_REACHED,
        EventKind.REQUEST_ARRIVAL,
        EventKind.LOCATION_REPORT,
    ]


def test_fifo_within_same_time_and_kind():
    queue = EventQueue()
    for i in range(5):
        queue.push(Event(2.0, EventKind.REQUEST_ARRIVAL, i))
    assert [queue.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]


def test_causality_guard():
    queue = EventQueue()
    queue.push(Event(10.0, EventKind.REQUEST_ARRIVAL))
    queue.pop()
    with pytest.raises(SimulationError):
        queue.push(Event(5.0, EventKind.REQUEST_ARRIVAL))


def test_push_at_current_time_allowed():
    queue = EventQueue()
    queue.push(Event(10.0, EventKind.REQUEST_ARRIVAL))
    queue.pop()
    queue.push(Event(10.0, EventKind.STOP_REACHED))  # same instant: fine


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_len_and_bool():
    queue = EventQueue()
    assert not queue
    queue.push(Event(1.0, EventKind.REQUEST_ARRIVAL))
    assert queue
    assert len(queue) == 1


def test_current_time_tracks_pops():
    queue = EventQueue()
    queue.push(Event(7.5, EventKind.REQUEST_ARRIVAL))
    queue.pop()
    assert queue.current_time == 7.5
