"""Determinism contract 10 and the degradation ladder, end to end.

Three guarantee families (``docs/robustness.md``, ``docs/determinism.md``
contract 10):

* **empty plan ≡ unhardened** — with no fault plan (or an armed plan
  whose clauses can never fire) the hardened pipeline is bit-identical
  to the fault-free run on every backend: the injector, retry loops and
  budget checks perturb nothing;
* **seeded replay** — a fixed ``(fault_spec, fault_seed)`` replays
  bit-identically on the serial backend, including every fault counter;
* **the ladder** — each rung degrades instead of failing: a transiently
  crashing quote is retried to the identical answer; a permanently
  failing quote column carries its requests (never drops them); a
  permanently failing shard is re-solved serially to the identical
  assignment; a flush that blows its deadline budget downgrades to
  greedy for that flush only; and a long mixed-fault chaos soak on the
  process backend completes with zero requests lost.
"""

import pytest

from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import Simulation, simulate
from repro.sim.workload import ShanghaiLikeWorkload


@pytest.fixture(scope="module")
def scenario():
    city = grid_city(14, 14, seed=11)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=11, min_trip_meters=600.0).generate(
        num_trips=80, duration_seconds=1200
    )
    return city, engine, trips


def _deterministic_state(report):
    """Everything a run produces except wall-clock timings."""
    return {
        "num_requests": report.num_requests,
        "num_assigned": report.num_assigned,
        "num_rejected": report.num_rejected,
        "total_cost": report.total_assignment_cost,
        "carry_events": report.carry_events,
        "service_log": {
            rid: {
                "vehicle": entry.get("vehicle"),
                "assigned_cost": entry.get("assigned_cost"),
                "assigned_at": entry.get("assigned_at"),
                "pickup": entry.get("pickup"),
                "dropoff": entry.get("dropoff"),
            }
            for rid, entry in report.service_log.items()
        },
    }


def _fault_state(report):
    """The deterministic state plus every fault-tolerance counter."""
    state = _deterministic_state(report)
    summary = report.summary()
    for key in (
        "faults_injected",
        "retries",
        "pool_recreations",
        "quote_columns_failed",
        "shard_serial_rescues",
        "flushes_degraded",
        "fault_rescued_carries",
    ):
        state[key] = summary[key]
    return state


def _run(scenario, **overrides):
    _, engine, trips = scenario
    params = dict(
        num_vehicles=8,
        algorithm="kinetic",
        seed=3,
        dispatch_policy="lap",
        batch_window_s=15.0,
    )
    params.update(overrides)
    return simulate(engine, SimulationConfig(**params), trips)


# ----------------------------------------------------------------------
# Contract 10: empty plan ≡ unhardened, on every backend
# ----------------------------------------------------------------------
def test_no_plan_and_unfireable_plan_are_bit_identical(scenario):
    """An armed injector whose clauses can never fire (rate 0) draws RNG
    samples and runs every hardened branch, yet must change nothing
    against the disarmed run."""
    baseline = _deterministic_state(_run(scenario))
    armed = _run(scenario, fault_spec="quote.task:crash:0.0", fault_seed=9)
    assert _deterministic_state(armed) == baseline
    assert armed.summary()["faults_injected"] == 0


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_empty_plan_identical_across_shard_backends(scenario, backend):
    """Contract 10 on the sharded pipeline: the hardened executor with
    no plan is bit-identical across serial/thread/process backends."""
    reference = _deterministic_state(
        _run(scenario, dispatch_policy="sharded", num_shards=2)
    )
    run = _run(
        scenario,
        dispatch_policy="sharded",
        num_shards=2,
        shard_backend=backend,
    )
    assert _deterministic_state(run) == reference


def test_empty_plan_identical_with_async_quote_pipeline(scenario):
    """The hardened quote service (worker-side fault hooks, retry-aware
    collect) with no plan matches the deferred synchronous reference."""
    reference = _deterministic_state(_run(scenario, quote_overlap_s=5.0))
    for workers, backend in ((1, "serial"), (2, "thread")):
        run = _run(
            scenario,
            quote_overlap_s=5.0,
            quote_workers=workers,
            quote_backend=backend,
        )
        assert _deterministic_state(run) == reference


# ----------------------------------------------------------------------
# Contract 10: seeded replay
# ----------------------------------------------------------------------
def test_fixed_plan_and_seed_replay_bit_identically(scenario):
    spec = "quote.task:crash:0.1,quote.task:delay:0.05:0.2,shard.solve:crash:0.05"
    kwargs = dict(
        dispatch_policy="sharded",
        num_shards=2,
        fault_spec=spec,
        fault_seed=21,
        flush_deadline_s=5.0,
    )
    first = _fault_state(_run(scenario, **kwargs))
    second = _fault_state(_run(scenario, **kwargs))
    assert first == second
    assert first["faults_injected"] > 0


def test_different_fault_seeds_draw_differently(scenario):
    spec = "quote.task:crash:0.2"
    a = _run(scenario, fault_spec=spec, fault_seed=1).summary()
    b = _run(scenario, fault_spec=spec, fault_seed=2).summary()
    assert a["faults_injected"] > 0 and b["faults_injected"] > 0
    assert a["faults_injected"] != b["faults_injected"]


# ----------------------------------------------------------------------
# Ladder rung 1: retry — transient faults change nothing
# ----------------------------------------------------------------------
def test_transient_quote_crash_is_retried_to_the_identical_run(scenario):
    baseline = _deterministic_state(_run(scenario))
    report = _run(scenario, fault_spec="quote.task:crash:@1")
    assert _deterministic_state(report) == baseline
    summary = report.summary()
    assert summary["faults_injected"] == 1
    assert summary["retries"] == 1
    assert summary["quote_columns_failed"] == 0


def test_transient_engine_crash_is_retried_to_the_identical_run(scenario):
    _, engine, _ = scenario
    baseline = _deterministic_state(_run(scenario))
    report = _run(scenario, fault_spec="engine.distance_many:crash:@1")
    assert _deterministic_state(report) == baseline
    assert report.summary()["retries"] >= 1
    # The engine wrapper is an instance attribute installed for the run
    # and must be removed afterwards — engines are shared across tests.
    assert "distance_many" not in vars(engine)


# ----------------------------------------------------------------------
# Ladder rung 2: failed quote column -> requests carried, not dropped
# ----------------------------------------------------------------------
def test_permanent_quote_failure_carries_requests_not_drops(scenario):
    """Every quote attempt crashes, so every column fails every flush:
    requests ride the fault-carry path flush to flush until their wait
    budget runs out, then are rejected — all settled, none vanish."""
    expected = _run(scenario).num_requests
    report = _run(scenario, fault_spec="quote.task:crash:%1")
    summary = report.summary()
    assert report.num_requests == expected
    assert report.num_assigned + report.num_rejected == report.num_requests
    assert summary["fault_rescued_carries"] > 0
    assert summary["quote_columns_failed"] > 0
    # With quoting fully dead nothing can be assigned...
    assert report.num_assigned == 0
    # ...but nothing was silently lost either: every request settled.
    assert report.num_rejected == expected


# ----------------------------------------------------------------------
# Ladder rung 3: failed shard -> serial re-solve, bit-identical
# ----------------------------------------------------------------------
def test_permanent_shard_failure_is_rescued_serially_bit_identical(scenario):
    kwargs = dict(dispatch_policy="sharded", num_shards=2)
    baseline = _deterministic_state(_run(scenario, **kwargs))
    report = _run(
        scenario, fault_spec="shard.solve:crash:%1", task_retries=1, **kwargs
    )
    assert _deterministic_state(report) == baseline
    summary = report.summary()
    assert summary["shard_serial_rescues"] > 0
    assert summary["retries"] > 0


# ----------------------------------------------------------------------
# Ladder rung 4: deadline exhaustion -> one-flush greedy downgrade
# ----------------------------------------------------------------------
def test_deadline_exhaustion_downgrades_one_flush_then_recovers(scenario):
    """A single huge injected delay blows the first flush's budget: that
    flush dispatches greedily, the chain continues, and every later
    flush runs the full pipeline again."""
    report = _run(
        scenario,
        fault_spec="quote.task:delay:@1:10",
        flush_deadline_s=1.0,
    )
    summary = report.summary()
    assert summary["flushes_degraded"] == 1
    assert summary["faults_injected"] == 1
    # The run went on: many more flushes committed after the downgrade,
    # and the service rate survived one greedy flush.
    assert report.num_batches > 1
    assert report.num_assigned + report.num_rejected == report.num_requests
    assert report.num_assigned > 0


def test_no_deadline_means_no_degradation(scenario):
    report = _run(scenario, fault_spec="quote.task:delay:0.3:0.5")
    assert report.summary()["flushes_degraded"] == 0


# ----------------------------------------------------------------------
# Chaos soak: >= 1000 flushes of mixed faults on the process backend
# ----------------------------------------------------------------------
SOAK_PARAMS = dict(
    num_vehicles=6,
    algorithm="kinetic",
    seed=5,
    dispatch_policy="sharded",
    num_shards=2,
    shard_backend="process",
    batch_window_s=2.0,
    carry_over=True,
    flush_deadline_s=1.0,
    task_retries=1,
)

#: The two transport cells of the soak: the pickle baseline and the
#: zero-copy arena + persistent worker group (whose shared segments and
#: long-lived workers see every rung of the ladder fire over >= 1000
#: flushes — the hardest lifecycle workout in the suite).
SOAK_TRANSPORTS = {
    "pickle": {},
    "zero_copy+persistent": {
        "shard_zero_copy": True,
        "shard_persistent_workers": True,
    },
}


@pytest.fixture(scope="module")
def soak_scenario():
    city = grid_city(12, 12, seed=5)
    engine = MatrixEngine(city)
    trips = ShanghaiLikeWorkload(city, seed=5, min_trip_meters=600.0).generate(
        num_trips=300, duration_seconds=2400
    )
    reference = simulate(engine, SimulationConfig(**SOAK_PARAMS), trips)
    return engine, trips, reference


@pytest.mark.parametrize("transport", sorted(SOAK_TRANSPORTS))
def test_chaos_soak_process_backend_loses_nothing(soak_scenario, transport):
    """The acceptance soak: a long simulation under a 5% mixed fault
    plan — quote crashes and delays, shard crashes, pool deaths — on the
    process shard backend, with carry-over and a flush deadline armed.
    It must complete, drive >= 1000 flushes, and account for every
    request: assigned or rejected (expiry settles as rejection), with
    the same request population as the fault-free reference. The
    zero-copy + persistent-workers cell additionally proves the arena
    survives the whole soak without leaking a single segment."""
    from repro.dispatch.sharding.shm import (
        active_segment_names,
        leaked_segment_files,
    )

    engine, trips, reference = soak_scenario
    spec = (
        "quote.task:crash:0.05,"
        "quote.task:delay:0.03:0.6,"
        "shard.solve:crash:0.05,"
        "pool.submit:pool_death:0.01"
    )
    sim = Simulation(
        engine,
        SimulationConfig(
            **SOAK_PARAMS,
            **SOAK_TRANSPORTS[transport],
            fault_spec=spec,
            fault_seed=13,
        ),
        trips,
    )
    report = sim.run()
    summary = report.summary()
    assert sim._flush_seq >= 1000
    assert summary["faults_injected"] > 0
    # Zero requests silently lost: the chaos run settled exactly the
    # same request population as the fault-free reference, every one of
    # them assigned or rejected.
    assert report.num_requests == reference.num_requests
    assert report.num_assigned + report.num_rejected == report.num_requests
    # The ladder took real traffic: failed columns and rescued shards.
    assert summary["quote_columns_failed"] > 0
    assert summary["shard_serial_rescues"] > 0
    # And the shared-memory plane released everything it created.
    assert not active_segment_names()
    assert not leaked_segment_files()
