"""The `python -m repro.sim` command-line runner."""

import argparse

import pytest

from repro.sim.__main__ import build_parser, main, parse_capacity, parse_constraints


def test_parse_constraints():
    config = parse_constraints("5:10")
    assert config.max_wait_seconds == 300.0
    assert config.detour_epsilon == pytest.approx(0.1)


def test_parse_constraints_invalid():
    with pytest.raises(argparse.ArgumentTypeError):
        parse_constraints("banana")


def test_parse_capacity():
    assert parse_capacity("4") == 4
    assert parse_capacity("unlimited") is None
    assert parse_capacity("unlim") is None


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.algorithm == "kinetic"
    assert args.capacity == 4


def test_main_smoke(capsys):
    code = main(
        [
            "--grid", "10",
            "--vehicles", "5",
            "--trips", "15",
            "--hours", "0.5",
            "--min-trip-meters", "400",
            "--seed", "1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "service-guarantee audit: 0 violation(s)" in out
    assert "acrt_ms" in out


def test_main_with_hotspot_and_unlimited(capsys):
    code = main(
        [
            "--grid", "10",
            "--vehicles", "4",
            "--trips", "12",
            "--hours", "0.5",
            "--capacity", "unlimited",
            "--hotspot-theta", "40",
            "--min-trip-meters", "400",
            "--constraints", "15:30",
        ]
    )
    assert code == 0
    assert "unlim" in capsys.readouterr().out


def test_engine_flag_smoke(capsys):
    code = main(
        [
            "--grid", "8",
            "--vehicles", "4",
            "--trips", "10",
            "--hours", "0.5",
            "--min-trip-meters", "400",
            "--engine", "dijkstra",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "engine dijkstra" in out


def test_engine_flag_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--engine", "teleporter"])
