"""Metric collectors."""

import pytest

from repro.core.request import TripRequest
from repro.sim.metrics import (
    ARTCollector,
    OccupancyTracker,
    RunningStats,
    SimulationReport,
)


def test_running_stats_basic():
    stats = RunningStats()
    for v in (1.0, 2.0, 3.0):
        stats.add(v)
    assert stats.count == 3
    assert stats.mean == 2.0
    assert stats.min == 1.0
    assert stats.max == 3.0


def test_running_stats_empty():
    """Empty collectors export null extremes — unambiguous with a real
    0.0 sample (which stays 0.0)."""
    stats = RunningStats()
    assert stats.mean == 0.0
    assert stats.as_dict()["min"] is None
    assert stats.as_dict()["max"] is None
    stats.add(0.0)
    assert stats.as_dict()["min"] == 0.0
    assert stats.as_dict()["max"] == 0.0


def test_art_collector_buckets():
    art = ARTCollector()
    art.record(0, 0.001)
    art.record(0, 0.003)
    art.record(4, 0.010)
    assert art.mean_for(0) == pytest.approx(0.002)
    assert art.mean_for(4) == pytest.approx(0.010)
    assert art.mean_for(7) is None
    assert list(art.as_dict()) == [0, 4]


def test_occupancy_tracker():
    occ = OccupancyTracker()
    for load in (1, 3, 2):
        occ.observe(1, load)
    occ.observe(2, 5)
    for vid in range(3, 12):
        occ.observe(vid, 1)
    assert occ.max_passengers == 5
    assert occ.mean_max_per_vehicle == pytest.approx((3 + 5 + 9) / 11)
    # Top 20% of 11 vehicles = top 2: loads 5 and 3.
    assert occ.top20_mean == pytest.approx(4.0)
    assert occ.mean_load_at_stops > 0


def test_occupancy_empty():
    occ = OccupancyTracker()
    assert occ.max_passengers == 0
    assert occ.mean_max_per_vehicle == 0.0
    assert occ.top20_mean == 0.0
    assert occ.mean_load_at_stops == 0.0


class _FakeResult:
    def __init__(self, assigned, elapsed=0.01, cost=100.0):
        self.elapsed = elapsed
        self.num_candidates = 3
        self.quote_timings = [(0, 0.001), (2, 0.004)]
        self.assigned = assigned
        self.cost = cost if assigned else float("inf")


def test_report_record_assignment():
    report = SimulationReport()
    report.record_assignment(_FakeResult(True))
    report.record_assignment(_FakeResult(False))
    assert report.num_requests == 2
    assert report.num_assigned == 1
    assert report.num_rejected == 1
    assert report.service_rate == 0.5
    assert report.acrt_ms == pytest.approx(10.0)
    assert report.art_ms(0) == pytest.approx(1.0)
    assert report.art_ms(9) is None
    summary = report.summary()
    assert summary["requests"] == 2
    assert summary["service_rate"] == 0.5


def test_report_empty_summary():
    report = SimulationReport()
    assert report.service_rate == 0.0
    assert report.summary()["acrt_ms"] == 0.0


def test_verify_service_guarantees():
    report = SimulationReport()
    request = TripRequest(1, 0, 5, 100.0, 60.0, 0.2, 100.0)
    report.service_log[1] = {
        "request": request,
        "pickup": 150.0,
        "dropoff": 260.0,
    }
    assert report.verify_service_guarantees() == []
    # Late pickup.
    report.service_log[1]["pickup"] = 161.0
    violations = report.verify_service_guarantees()
    assert len(violations) == 1 and "deadline" in violations[0]
    # Ride budget blown: budget = 120 s.
    report.service_log[1] = {
        "request": request,
        "pickup": 150.0,
        "dropoff": 150.0 + 121.0,
    }
    violations = report.verify_service_guarantees()
    assert len(violations) == 1 and "ride" in violations[0]


def test_verify_ignores_inflight():
    report = SimulationReport()
    request = TripRequest(1, 0, 5, 100.0, 60.0, 0.2, 100.0)
    report.service_log[1] = {"request": request, "pickup": 150.0}
    assert report.verify_service_guarantees() == []
