"""Hotspot-tree vehicles inside the full simulator: group stops, index
interplay, and end-to-end guarantees under bursty demand."""

import pytest

from repro.roadnet.generators import grid_city
from repro.roadnet.matrix import MatrixEngine
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload, burst_workload


@pytest.fixture(scope="module")
def city():
    return grid_city(14, 14, seed=17)


@pytest.fixture(scope="module")
def engine(city):
    return MatrixEngine(city)


@pytest.fixture(scope="module")
def bursty_trips(city):
    workload = ShanghaiLikeWorkload(city, seed=17, min_trip_meters=600.0)
    trips = workload.generate(num_trips=60, duration_seconds=1200)
    trips += burst_workload(
        city,
        center_vertex=int(workload.hotspots[0]),
        num_trips=7,
        request_time=trips[0].request_time + 600.0,
        dest_center_vertex=int(workload.hotspots[1]),
        seed=4,
    )
    trips.sort(key=lambda t: t.request_time)
    return trips


def test_hotspot_sim_guarantees(engine, bursty_trips):
    config = SimulationConfig(
        num_vehicles=8,
        capacity=None,
        algorithm="kinetic",
        hotspot_theta=45.0,
        tree_expansion_budget=500_000,
        seed=2,
    )
    report = simulate(engine, config, bursty_trips)
    assert report.verify_service_guarantees() == []
    assert report.service_rate > 0.6


def test_hotspot_faster_than_basic_on_bursts(engine, bursty_trips):
    """On bursty demand at high capacity, hotspot ACRT must beat basic."""
    reports = {}
    for name, theta, mode in (("basic", None, "basic"), ("hotspot", 45.0, "slack")):
        config = SimulationConfig(
            num_vehicles=6,
            capacity=None,
            algorithm="kinetic",
            tree_mode=mode,
            hotspot_theta=theta,
            tree_expansion_budget=500_000,
            seed=2,
        )
        reports[name] = simulate(engine, config, bursty_trips)
    assert reports["hotspot"].acrt.mean < reports["basic"].acrt.mean
    # Approximation trades cost, never validity.
    assert reports["hotspot"].verify_service_guarantees() == []


def test_group_stops_reported_individually(engine, bursty_trips):
    """Hotspot group nodes service several stops in one event; each stop
    must still be logged with its own arrival time."""
    config = SimulationConfig(
        num_vehicles=4,
        capacity=None,
        algorithm="kinetic",
        hotspot_theta=60.0,
        tree_expansion_budget=500_000,
        seed=3,
    )
    report = simulate(engine, config, bursty_trips)
    completed = [
        entry
        for entry in report.service_log.values()
        if "pickup" in entry and "dropoff" in entry
    ]
    assert completed
    for entry in completed:
        assert entry["dropoff"] >= entry["pickup"] - 1e-9
