"""Two-phase insertion heuristic."""

import numpy as np
import pytest

from repro.algorithms.brute_force import BruteForce
from repro.algorithms.insertion import TwoPhaseInsertion
from repro.core.problem import SchedulingProblem
from tests.algorithms.test_brute_force import make_problem


@pytest.mark.parametrize("seed", range(8))
def test_never_beats_brute_force(city_engine, seed):
    rng = np.random.default_rng(seed)
    problem = make_problem(city_engine, rng, num_requests=3)
    ins = TwoPhaseInsertion(city_engine).solve(problem)
    bf = BruteForce(city_engine).solve(problem)
    if ins is not None:
        assert bf is not None
        assert ins.cost >= bf.cost - 1e-9


def test_result_valid(city_engine, rng):
    problem = make_problem(city_engine, rng, num_requests=3)
    result = TwoPhaseInsertion(city_engine).solve(problem)
    if result is not None:
        assert problem.evaluate(city_engine, result.stops) is not None


def test_preserves_committed_order(city_engine, make_request):
    """Existing pending trips keep their relative order."""
    r1 = make_request(5, 20, epsilon=3.0, max_wait=3000.0)
    r2 = make_request(30, 50, epsilon=3.0, max_wait=3000.0)
    new = make_request(6, 21, epsilon=3.0, max_wait=3000.0)
    problem = SchedulingProblem(0, 0.0, {}, (r1, r2), new, 8)
    result = TwoPhaseInsertion(city_engine).solve(problem)
    assert result is not None
    old_order = [s for s in result.stops if s.request_id != new.request_id]
    expected = [
        s
        for s in SchedulingProblem(0, 0.0, {}, (r1, r2), None, 8).stops_to_schedule
    ]
    assert old_order == expected


def test_single_request(city_engine, make_request):
    request = make_request(5, 20)
    problem = SchedulingProblem(0, 0.0, {}, (), request, 4)
    result = TwoPhaseInsertion(city_engine).solve(problem)
    bf = BruteForce(city_engine).solve(problem)
    assert result.cost == pytest.approx(bf.cost)


def test_no_new_request(city_engine, make_request):
    r1 = make_request(5, 20, epsilon=3.0)
    problem = SchedulingProblem(0, 0.0, {}, (r1,), None, 4)
    result = TwoPhaseInsertion(city_engine).solve(problem)
    assert result is not None
    assert len(result.stops) == 2


def test_infeasible(city_engine, make_request):
    request = make_request(99, 0, max_wait=0.5)
    assert (
        TwoPhaseInsertion(city_engine).solve(
            SchedulingProblem(0, 0.0, {}, (), request, 4)
        )
        is None
    )
