"""Brute-force scheduler: exact optimality on small instances."""

import itertools

import numpy as np
import pytest

from repro.algorithms.brute_force import BruteForce
from repro.core.problem import SchedulingProblem
from repro.core.request import TripRequest
from repro.core.schedule import evaluate_schedule


def reference_best(engine, problem):
    """Slow but obviously correct: filter all permutations."""
    stops = list(problem.stops_to_schedule)
    best = None
    for perm in itertools.permutations(stops):
        evaluation = None
        seen = set(problem.onboard_pickup_times)
        ok = True
        for stop in perm:
            if stop.is_pickup:
                seen.add(stop.request_id)
            elif stop.request_id not in seen:
                ok = False
                break
        if ok:
            evaluation = evaluate_schedule(
                engine,
                problem.start_vertex,
                problem.start_time,
                perm,
                problem.onboard_pickup_times,
                capacity=problem.capacity,
                initial_load=len(problem.onboard),
            )
        if evaluation is not None and (best is None or evaluation.cost < best):
            best = evaluation.cost
    return best


def make_problem(engine, rng, num_requests=2, capacity=4, eps=1.0, wait=900.0):
    n = engine.graph.num_vertices
    requests = []
    rid = 0
    while len(requests) < num_requests:
        o, d = (int(x) for x in rng.integers(0, n, 2))
        if o == d:
            continue
        requests.append(TripRequest(rid, o, d, 0.0, wait, eps, engine.distance(o, d)))
        rid += 1
    *pending, new = requests
    return SchedulingProblem(
        int(rng.integers(0, n)), 0.0, {}, tuple(pending), new, capacity
    )


@pytest.mark.parametrize("seed", range(8))
def test_matches_reference(city_engine, seed):
    rng = np.random.default_rng(seed)
    problem = make_problem(city_engine, rng, num_requests=3)
    result = BruteForce(city_engine).solve(problem)
    expected = reference_best(city_engine, problem)
    if expected is None:
        assert result is None
    else:
        assert result is not None
        assert result.cost == pytest.approx(expected, rel=1e-9)


def test_result_is_valid_schedule(city_engine, rng):
    problem = make_problem(city_engine, rng, num_requests=3)
    result = BruteForce(city_engine).solve(problem)
    assert result is not None
    evaluation = problem.evaluate(city_engine, result.stops)
    assert evaluation is not None
    assert evaluation.cost == pytest.approx(result.cost)
    assert evaluation.arrivals == pytest.approx(result.arrivals)


def test_empty_problem(city_engine):
    problem = SchedulingProblem(0, 0.0, {}, (), None, 4)
    result = BruteForce(city_engine).solve(problem)
    assert result is not None
    assert result.cost == 0.0
    assert result.is_empty


def test_infeasible_wait(city_engine, make_request):
    request = make_request(99, 0, max_wait=0.5)
    problem = SchedulingProblem(0, 0.0, {}, (), request, 4)
    assert BruteForce(city_engine).solve(problem) is None


def test_capacity_forces_sequential(city_engine, make_request):
    # Capacity 1: the two trips can never overlap in the vehicle.
    r1 = make_request(5, 20, epsilon=5.0, max_wait=5000.0)
    r2 = make_request(6, 21, epsilon=5.0, max_wait=5000.0)
    problem = SchedulingProblem(0, 0.0, {}, (r1,), r2, 1)
    result = BruteForce(city_engine).solve(problem)
    assert result is not None
    kinds = [s.kind.value for s in result.stops]
    assert kinds in (
        ["pickup", "dropoff", "pickup", "dropoff"],
    )


def test_counts_expansions(city_engine, rng):
    problem = make_problem(city_engine, rng, num_requests=2)
    result = BruteForce(city_engine).solve(problem)
    assert result.expansions > 0


def test_onboard_only_problem(city_engine, make_request):
    r = make_request(5, 20, epsilon=2.0)
    problem = SchedulingProblem(5, 10.0, {r: 10.0}, (), None, 4)
    result = BruteForce(city_engine).solve(problem)
    assert result is not None
    assert len(result.stops) == 1
    assert result.stops[0].is_dropoff
