"""Algorithm registry and the kinetic one-shot adapter."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHM_REGISTRY,
    BranchAndBound,
    BruteForce,
    KineticTreeAlgorithm,
    make_algorithm,
)
from repro.core.problem import SchedulingProblem
from tests.algorithms.test_brute_force import make_problem


def test_registry_contents():
    for name in ("brute_force", "branch_and_bound", "mip", "insertion", "kinetic"):
        assert name in ALGORITHM_REGISTRY


def test_make_algorithm(city_engine):
    assert isinstance(make_algorithm("brute_force", city_engine), BruteForce)
    assert isinstance(make_algorithm("branch_and_bound", city_engine), BranchAndBound)
    assert isinstance(make_algorithm("kinetic", city_engine), KineticTreeAlgorithm)


def test_make_algorithm_unknown(city_engine):
    with pytest.raises(ValueError):
        make_algorithm("simulated_annealing", city_engine)


@pytest.mark.parametrize("seed", range(10))
def test_kinetic_adapter_matches_brute_force(city_engine, seed):
    rng = np.random.default_rng(seed)
    problem = make_problem(city_engine, rng, num_requests=3)
    kin = KineticTreeAlgorithm(city_engine).solve(problem)
    bf = BruteForce(city_engine).solve(problem)
    assert (kin is None) == (bf is None)
    if bf is not None:
        assert kin.cost == pytest.approx(bf.cost, rel=1e-9)


@pytest.mark.parametrize("mode", ["basic", "slack"])
def test_kinetic_adapter_modes_agree(city_engine, mode, rng):
    problem = make_problem(city_engine, rng, num_requests=3)
    result = KineticTreeAlgorithm(city_engine, mode=mode).solve(problem)
    reference = BruteForce(city_engine).solve(problem)
    assert (result is None) == (reference is None)
    if reference is not None:
        assert result.cost == pytest.approx(reference.cost, rel=1e-9)


def test_kinetic_adapter_with_onboard(city_engine, make_request):
    onboard = make_request(0, 55, epsilon=3.0)
    new = make_request(10, 30, epsilon=2.0, max_wait=2000.0)
    problem = SchedulingProblem(0, 0.0, {onboard: 0.0}, (), new, 4)
    kin = KineticTreeAlgorithm(city_engine).solve(problem)
    bf = BruteForce(city_engine).solve(problem)
    assert (kin is None) == (bf is None)
    if bf is not None:
        assert kin.cost == pytest.approx(bf.cost, rel=1e-9)


def test_kinetic_adapter_no_new_request(city_engine, make_request):
    r1 = make_request(5, 20, epsilon=2.0)
    problem = SchedulingProblem(0, 0.0, {}, (r1,), None, 4)
    result = KineticTreeAlgorithm(city_engine).solve(problem)
    assert result is not None
    assert len(result.stops) == 2
