"""MIP scheduler: optimality, constraints, degenerate cases."""

import numpy as np
import pytest

from repro.algorithms.brute_force import BruteForce
from repro.algorithms.mip import MixedIntegerProgramming
from repro.core.problem import SchedulingProblem
from tests.algorithms.test_brute_force import make_problem


@pytest.mark.parametrize("seed", range(8))
def test_matches_brute_force(city_engine, seed):
    rng = np.random.default_rng(seed)
    problem = make_problem(city_engine, rng, num_requests=2)
    mip = MixedIntegerProgramming(city_engine).solve(problem)
    bf = BruteForce(city_engine).solve(problem)
    assert (mip is None) == (bf is None)
    if bf is not None:
        assert mip.cost == pytest.approx(bf.cost, rel=1e-4)


def test_matches_with_onboard(city_engine, make_request):
    onboard = make_request(0, 55, epsilon=3.0)
    pending = make_request(10, 30, epsilon=2.0, max_wait=2000.0)
    new = make_request(12, 40, epsilon=2.0, max_wait=2000.0)
    problem = SchedulingProblem(0, 0.0, {onboard: 0.0}, (pending,), new, 4)
    mip = MixedIntegerProgramming(city_engine).solve(problem)
    bf = BruteForce(city_engine).solve(problem)
    assert (mip is None) == (bf is None)
    if bf is not None:
        assert mip.cost == pytest.approx(bf.cost, rel=1e-4)


def test_capacity_enforced(city_engine, make_request):
    """Capacity 1 forbids overlapping riders; MIP must agree with BF."""
    r1 = make_request(5, 20, epsilon=5.0, max_wait=5000.0)
    r2 = make_request(6, 21, epsilon=5.0, max_wait=5000.0)
    problem = SchedulingProblem(0, 0.0, {}, (r1,), r2, 1)
    mip = MixedIntegerProgramming(city_engine).solve(problem)
    bf = BruteForce(city_engine).solve(problem)
    assert mip is not None and bf is not None
    assert mip.cost == pytest.approx(bf.cost, rel=1e-4)
    kinds = [s.kind.value for s in mip.stops]
    assert kinds == ["pickup", "dropoff", "pickup", "dropoff"]


def test_empty_problem(city_engine):
    result = MixedIntegerProgramming(city_engine).solve(
        SchedulingProblem(0, 0.0, {}, (), None, 4)
    )
    assert result is not None and result.cost == 0.0


def test_infeasible_wait(city_engine, make_request):
    request = make_request(99, 0, max_wait=0.5)
    assert (
        MixedIntegerProgramming(city_engine).solve(
            SchedulingProblem(0, 0.0, {}, (), request, 4)
        )
        is None
    )


def test_infeasible_onboard_budget(city_engine, make_request):
    """Onboard rider's remaining ride budget already blown."""
    onboard = make_request(0, 50, epsilon=0.0)
    # Vehicle is far off the rider's shortest path with zero tolerance.
    problem = SchedulingProblem(99, 500.0, {onboard: 0.0}, (), None, 4)
    assert MixedIntegerProgramming(city_engine).solve(problem) is None


def test_result_is_exactly_validated(city_engine, rng):
    problem = make_problem(city_engine, rng, num_requests=2)
    result = MixedIntegerProgramming(city_engine).solve(problem)
    assert result is not None
    assert problem.evaluate(city_engine, result.stops) is not None


def test_colocated_stops_no_zero_cycles(city_engine, make_request):
    """Stops sharing a vertex must not break the MTZ acyclicity."""
    r1 = make_request(40, 70, epsilon=4.0, max_wait=4000.0)
    r2 = make_request(40, 70, epsilon=4.0, max_wait=4000.0)
    problem = SchedulingProblem(0, 0.0, {}, (r1,), r2, 4)
    result = MixedIntegerProgramming(city_engine).solve(problem)
    assert result is not None
    assert len(result.stops) == 4
