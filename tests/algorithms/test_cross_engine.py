"""Schedulers must be engine-agnostic: identical answers over every
shortest-path engine (the ShortestPathEngine seam really is a seam)."""

import numpy as np
import pytest

from repro.algorithms.brute_force import BruteForce
from repro.core.kinetic.tree import KineticTree
from repro.core.problem import SchedulingProblem
from repro.core.request import TripRequest
from repro.roadnet.astar import AStarEngine
from repro.roadnet.contraction import CHEngine
from repro.roadnet.engine import DijkstraEngine
from repro.roadnet.hub_labeling import HubLabelEngine
from repro.roadnet.matrix import MatrixEngine


@pytest.fixture(scope="module")
def engines(small_city):
    return {
        "matrix": MatrixEngine(small_city),
        "dijkstra": DijkstraEngine(small_city),
        "hub_label": HubLabelEngine(small_city),
        "astar": AStarEngine(small_city),
        "ch": CHEngine(small_city),
    }


def build_problem(engine, seed):
    rng = np.random.default_rng(seed)
    n = engine.graph.num_vertices
    requests = []
    for rid in range(3):
        while True:
            o, d = (int(x) for x in rng.integers(0, n, 2))
            if o != d:
                break
        requests.append(
            TripRequest(rid, o, d, 0.0, 700.0, 0.8, engine.distance(o, d))
        )
    *pending, new = requests
    return SchedulingProblem(int(rng.integers(0, n)), 0.0, {}, tuple(pending), new, 4)


@pytest.mark.parametrize("seed", range(4))
def test_bruteforce_engine_agnostic(engines, seed):
    costs = {}
    for name, engine in engines.items():
        problem = build_problem(engine, seed)
        result = BruteForce(engine).solve(problem)
        costs[name] = None if result is None else round(result.cost, 6)
    assert len(set(costs.values())) == 1, costs


@pytest.mark.parametrize("seed", range(4))
def test_kinetic_tree_engine_agnostic(engines, seed):
    outcomes = {}
    for name, engine in engines.items():
        problem = build_problem(engine, seed)
        tree = KineticTree.from_problem(engine, problem)
        if tree is None:
            outcomes[name] = None
            continue
        trial = tree.try_insert(problem.new_request, problem.start_vertex, 0.0)
        outcomes[name] = None if trial is None else round(trial.best_cost, 6)
    assert len(set(outcomes.values())) == 1, outcomes
