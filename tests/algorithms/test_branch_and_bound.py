"""Branch and bound: same optimum as brute force, valid bounds."""

import numpy as np
import pytest

from repro.algorithms.branch_and_bound import BranchAndBound
from repro.algorithms.brute_force import BruteForce
from tests.algorithms.test_brute_force import make_problem


@pytest.mark.parametrize("seed", range(12))
def test_matches_brute_force(city_engine, seed):
    rng = np.random.default_rng(seed)
    problem = make_problem(city_engine, rng, num_requests=3)
    bb = BranchAndBound(city_engine).solve(problem)
    bf = BruteForce(city_engine).solve(problem)
    assert (bb is None) == (bf is None)
    if bf is not None:
        assert bb.cost == pytest.approx(bf.cost, rel=1e-9)


@pytest.mark.parametrize("seed", range(4))
def test_matches_brute_force_with_onboard(city_engine, seed):
    from repro.core.request import TripRequest

    rng = np.random.default_rng(seed + 50)
    problem = make_problem(city_engine, rng, num_requests=2)
    origin = problem.start_vertex if problem.start_vertex != 55 else 54
    onboard = TripRequest(
        100, origin, 55, 0.0, 600.0, 3.0, city_engine.distance(origin, 55)
    )
    problem = type(problem)(
        problem.start_vertex,
        problem.start_time,
        {onboard: 0.0},
        problem.pending,
        problem.new_request,
        problem.capacity,
    )
    bb = BranchAndBound(city_engine).solve(problem)
    bf = BruteForce(city_engine).solve(problem)
    assert (bb is None) == (bf is None)
    if bf is not None:
        assert bb.cost == pytest.approx(bf.cost, rel=1e-9)


def test_prunes_versus_bruteforce(city_engine):
    """On larger instances B&B should expand fewer nodes (the paper's
    observation for large request counts)."""
    rng = np.random.default_rng(9)
    problem = make_problem(
        city_engine, rng, num_requests=5, capacity=8, eps=2.0, wait=3000.0
    )
    bb = BranchAndBound(city_engine).solve(problem)
    bf = BruteForce(city_engine).solve(problem)
    assert bb is not None and bf is not None
    assert bb.expansions < bf.expansions


def test_empty_problem(city_engine):
    from repro.core.problem import SchedulingProblem

    result = BranchAndBound(city_engine).solve(SchedulingProblem(0, 0.0, {}, (), None, 4))
    assert result is not None and result.cost == 0.0


def test_infeasible(city_engine, make_request):
    from repro.core.problem import SchedulingProblem

    request = make_request(99, 0, max_wait=0.5)
    assert (
        BranchAndBound(city_engine).solve(
            SchedulingProblem(0, 0.0, {}, (), request, 4)
        )
        is None
    )


def test_result_valid(city_engine, rng):
    problem = make_problem(city_engine, rng, num_requests=3)
    result = BranchAndBound(city_engine).solve(problem)
    assert result is not None
    assert problem.evaluate(city_engine, result.stops) is not None
