"""The public API surface: everything advertised imports and is documented."""

import inspect

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"


def test_public_items_documented():
    """Every class/function exported at the top level carries a docstring."""
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_subpackages_documented():
    import repro.algorithms
    import repro.bench
    import repro.core
    import repro.dispatch
    import repro.roadnet
    import repro.sim
    import repro.spatial

    for module in (
        repro,
        repro.roadnet,
        repro.spatial,
        repro.core,
        repro.dispatch,
        repro.algorithms,
        repro.sim,
        repro.bench,
    ):
        assert (module.__doc__ or "").strip(), f"{module.__name__} lacks a docstring"


def test_quickstart_snippet_from_readme():
    """The README's quickstart snippet executes as written."""
    from repro import Dispatcher, KineticAgent, Vehicle, grid_city, make_engine

    city = grid_city(20, 20, seed=7)
    engine = make_engine(city)
    agents = [
        KineticAgent(Vehicle(i, start_vertex=40 * i, capacity=4), engine)
        for i in range(4)
    ]
    dispatcher = Dispatcher(engine, agents)
    request = dispatcher.make_request(
        origin=5, destination=210, request_time=0.0,
        max_wait=600.0, detour_epsilon=0.2,
    )
    result = dispatcher.submit(request, now=0.0)
    assert result.assigned
    assert result.winner.tree.best_schedule() is not None


def test_module_docstring_quickstart():
    """The package docstring's example executes as written."""
    from repro import (
        ShanghaiLikeWorkload,
        SimulationConfig,
        grid_city,
        make_engine,
        simulate,
    )

    city = grid_city(30, 30, seed=7)
    engine = make_engine(city)
    trips = ShanghaiLikeWorkload(city, seed=7).generate(
        num_trips=50, duration_seconds=3600
    )
    report = simulate(engine, SimulationConfig(num_vehicles=50), trips)
    summary = report.summary()
    assert summary["requests"] == 50
