"""Geometry helpers."""

import pytest

from repro.spatial.geometry import BoundingBox, euclidean_distance


def test_euclidean_distance():
    assert euclidean_distance((0, 0), (3, 4)) == 5.0
    assert euclidean_distance((1, 1), (1, 1)) == 0.0


def test_bbox_dimensions():
    box = BoundingBox(0, 0, 10, 5)
    assert box.width == 10
    assert box.height == 5


def test_bbox_negative_extent_rejected():
    with pytest.raises(ValueError):
        BoundingBox(5, 0, 0, 10)


def test_bbox_contains():
    box = BoundingBox(0, 0, 10, 10)
    assert box.contains(5, 5)
    assert box.contains(0, 0)  # inclusive
    assert box.contains(10, 10)
    assert not box.contains(-0.1, 5)
    assert not box.contains(5, 10.1)


def test_bbox_clamp():
    box = BoundingBox(0, 0, 10, 10)
    assert box.clamp(5, 5) == (5, 5)
    assert box.clamp(-3, 20) == (0, 10)


def test_bbox_of_points():
    box = BoundingBox.of_points([(1, 2), (4, -1), (0, 3)])
    assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, -1, 4, 3)


def test_bbox_of_points_empty():
    with pytest.raises(ValueError):
        BoundingBox.of_points([])
