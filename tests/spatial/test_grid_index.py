"""Grid-based moving-vehicle index."""

import numpy as np
import pytest

from repro.spatial.geometry import BoundingBox, euclidean_distance
from repro.spatial.grid_index import GridIndex


@pytest.fixture
def index():
    return GridIndex(BoundingBox(0, 0, 1000, 1000), cell_meters=100)


def test_update_and_query(index):
    index.update(1, 150, 150)
    assert 1 in index
    assert 1 in index.query_radius(150, 150, 50)


def test_update_within_cell_is_noop(index):
    assert index.update(1, 150, 150) is True
    assert index.update(1, 160, 140) is False  # same cell
    assert index.moves_within_cell == 1
    assert index.updates == 1


def test_update_across_cells(index):
    index.update(1, 150, 150)
    assert index.update(1, 450, 150) is True
    assert 1 not in index.query_radius(150, 150, 60)
    assert 1 in index.query_radius(450, 150, 60)


def test_query_is_conservative_superset(index):
    rng = np.random.default_rng(0)
    positions = {}
    for vid in range(200):
        x, y = rng.uniform(0, 1000, 2)
        index.update(vid, float(x), float(y))
        positions[vid] = (float(x), float(y))
    center, radius = (500.0, 500.0), 180.0
    hits = set(index.query_radius(*center, radius))
    for vid, pos in positions.items():
        if euclidean_distance(pos, center) <= radius:
            assert vid in hits, f"vehicle {vid} within radius but missed"


def test_query_zero_radius(index):
    index.update(1, 500, 500)
    assert 1 in index.query_radius(500, 500, 0.0)


def test_query_negative_radius(index):
    with pytest.raises(ValueError):
        index.query_radius(0, 0, -1.0)


def test_out_of_bounds_clamped(index):
    index.update(1, -50, 2000)  # clamps to a border cell
    assert 1 in index
    assert 1 in index.query_radius(0, 1000, 150)


def test_remove(index):
    index.update(1, 100, 100)
    index.remove(1)
    assert 1 not in index
    assert index.query_radius(100, 100, 500) == []
    index.remove(1)  # idempotent


def test_len_and_all(index):
    for vid in range(5):
        index.update(vid, vid * 100.0, 50.0)
    assert len(index) == 5
    assert sorted(index.all_vehicles()) == list(range(5))


def test_invalid_cell_size():
    with pytest.raises(ValueError):
        GridIndex(BoundingBox(0, 0, 10, 10), cell_meters=0)


def test_stats(index):
    index.update(1, 10, 10)
    stats = index.stats()
    assert stats["vehicles"] == 1
    assert stats["occupied_cells"] == 1


def test_empty_cells_removed(index):
    index.update(1, 50, 50)
    index.update(1, 950, 950)
    assert index.stats()["occupied_cells"] == 1


# ----------------------------------------------------------------------
# Shard-enumeration helpers (repro.dispatch.sharding support)
# ----------------------------------------------------------------------
def test_cells_in_region_includes_empty_cells(index):
    cells = index.cells_in_region(0, 0, 1, 2)
    # Region geometry is independent of occupancy: all six cells listed
    # even though the index holds no vehicles at all.
    assert cells == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]


def test_cells_in_region_clamps_to_grid(index):
    # 1000/100 = 10x10 grid; out-of-range corners clamp.
    assert index.cells_in_region(-3, -3, 0, 0) == [(0, 0)]
    assert index.cells_in_region(9, 9, 50, 50) == [(9, 9)]
    # Fully outside or inverted rectangles are empty.
    assert index.cells_in_region(20, 20, 30, 30) == []
    assert index.cells_in_region(5, 5, 3, 3) == []


def test_vehicles_in_cells_skips_empty_cells(index):
    index.update(1, 50, 50)    # cell (0, 0)
    index.update(2, 250, 50)   # cell (0, 2)
    index.update(3, 55, 45)    # cell (0, 0)
    region = index.cells_in_region(0, 0, 0, 2)
    assert index.vehicles_in_cells(region) == [1, 2, 3]
    assert index.vehicles_in_cells([(5, 5), (9, 9)]) == []
    # Sorted output regardless of insertion or set order.
    assert index.vehicles_in_cells([(0, 0)]) == [1, 3]


def test_cell_location(index):
    assert index.cell_location(7) is None
    index.update(7, 420, 380)
    assert index.cell_location(7) == (3, 4)
    index.remove(7)
    assert index.cell_location(7) is None


def test_boundary_points_shard_deterministically(index):
    """A vehicle exactly on a cell edge always lands in the higher cell
    (floor semantics), so co-located boundary vehicles tie to the same
    shard cell every time."""
    assert index.cell_of(100.0, 0.0) == (0, 1)
    assert index.cell_of(0.0, 100.0) == (1, 0)
    assert index.cell_of(200.0, 200.0) == (2, 2)
    # The far border clamps into the last cell instead of overflowing.
    assert index.cell_of(1000.0, 1000.0) == (9, 9)
    # Two vehicles reported at the identical boundary point share a cell.
    index.update(1, 300.0, 500.0)
    index.update(2, 300.0, 500.0)
    assert index.cell_location(1) == index.cell_location(2) == (5, 3)
    # Re-reporting the same boundary point is a within-cell no-op.
    assert index.update(1, 300.0, 500.0) is False
