"""Dijkstra shortest-path functions."""

import numpy as np
import pytest

from repro.exceptions import DisconnectedError
from repro.roadnet.dijkstra import (
    bidirectional_distance,
    dijkstra_distance,
    dijkstra_path,
    single_source_array,
    single_source_distances,
    vertices_within,
)
from repro.roadnet.graph import RoadNetwork


def path_cost(graph, path):
    return sum(graph.edge_weight(u, v) for u, v in zip(path, path[1:]))


def test_line_distances(line_graph):
    assert dijkstra_distance(line_graph, 0, 4) == 4.0
    assert dijkstra_distance(line_graph, 4, 0) == 4.0
    assert dijkstra_distance(line_graph, 2, 2) == 0.0


def test_square_shortcut(square_graph):
    # Direct 0-3 edge costs 2.5; going around costs 2.0.
    assert dijkstra_distance(square_graph, 0, 3) == 2.0


def test_path_is_shortest(square_graph):
    path = dijkstra_path(square_graph, 0, 3)
    assert path[0] == 0 and path[-1] == 3
    assert path_cost(square_graph, path) == dijkstra_distance(square_graph, 0, 3)


def test_path_trivial(square_graph):
    assert dijkstra_path(square_graph, 2, 2) == [2]


def test_disconnected_raises():
    g = RoadNetwork(4, [(0, 1, 1.0), (2, 3, 1.0)])
    with pytest.raises(DisconnectedError):
        dijkstra_distance(g, 0, 3)
    with pytest.raises(DisconnectedError):
        dijkstra_path(g, 0, 2)


def test_single_source_distances(line_graph):
    dist = single_source_distances(line_graph, 0)
    assert dist == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}


def test_single_source_cutoff(line_graph):
    dist = single_source_distances(line_graph, 0, cutoff=2.0)
    assert set(dist) == {0, 1, 2}


def test_single_source_array(line_graph):
    arr = single_source_array(line_graph, 1)
    assert arr[4] == 3.0
    assert arr[0] == 1.0


def test_vertices_within(line_graph):
    ball = vertices_within(line_graph, 2, 1.0)
    assert set(ball) == {1, 2, 3}


def test_vertices_within_zero_radius(line_graph):
    assert set(vertices_within(line_graph, 2, 0.0)) == {2}


def test_matches_scipy_on_random_city(small_city):
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    ref = sp_dijkstra(small_city.to_scipy_csr(), directed=False, indices=[0])[0]
    ours = single_source_array(small_city, 0)
    np.testing.assert_allclose(ours, ref, rtol=1e-12)


def test_bidirectional_matches_unidirectional(small_city, rng):
    for _ in range(25):
        s, e = rng.integers(0, small_city.num_vertices, 2)
        expected = dijkstra_distance(small_city, int(s), int(e))
        actual = bidirectional_distance(small_city, int(s), int(e))
        assert actual == pytest.approx(expected, rel=1e-12)


def test_bidirectional_disconnected():
    g = RoadNetwork(4, [(0, 1, 1.0), (2, 3, 1.0)])
    with pytest.raises(DisconnectedError):
        bidirectional_distance(g, 0, 3)


def test_bidirectional_same_vertex(small_city):
    assert bidirectional_distance(small_city, 5, 5) == 0.0
