"""MatrixEngine: precomputed APSP engine."""

import numpy as np
import pytest

from repro.exceptions import DisconnectedError, GraphError
from repro.roadnet.dijkstra import dijkstra_distance
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.matrix import MatrixEngine


def test_matches_dijkstra(small_city, city_engine, rng):
    for _ in range(30):
        s, e = rng.integers(0, small_city.num_vertices, 2)
        assert city_engine.distance(int(s), int(e)) == pytest.approx(
            dijkstra_distance(small_city, int(s), int(e)), rel=1e-9
        )


def test_path_reconstruction_costs_match(small_city, city_engine, rng):
    for _ in range(20):
        s, e = rng.integers(0, small_city.num_vertices, 2)
        path = city_engine.path(int(s), int(e))
        assert path[0] == int(s) and path[-1] == int(e)
        cost = sum(
            small_city.edge_weight(u, v) for u, v in zip(path, path[1:])
        )
        assert cost == pytest.approx(city_engine.distance(int(s), int(e)), rel=1e-9)


def test_path_edges_exist(small_city, city_engine):
    path = city_engine.path(0, small_city.num_vertices - 1)
    for u, v in zip(path, path[1:]):
        assert small_city.has_edge(u, v)


def test_trivial_path(city_engine):
    assert city_engine.path(3, 3) == [3]


def test_distances_from_row(small_city, city_engine):
    row = city_engine.distances_from(0)
    assert row.shape == (small_city.num_vertices,)
    assert row[0] == 0.0


def test_vertices_within(city_engine):
    ball = city_engine.vertices_within(0, 30.0)
    assert 0 in ball
    full = city_engine.vertices_within(0, float("inf"))
    assert len(full) == city_engine.graph.num_vertices
    assert len(ball) < len(full)
    for v, d in ball.items():
        assert d <= 30.0
        assert city_engine.distance(0, v) == pytest.approx(d, rel=1e-6)


def test_disconnected_raises():
    g = RoadNetwork(4, [(0, 1, 1.0), (2, 3, 1.0)])
    engine = MatrixEngine(g)
    with pytest.raises(DisconnectedError):
        engine.distance(0, 2)
    with pytest.raises(DisconnectedError):
        engine.path(0, 3)


def test_size_guard():
    big = RoadNetwork(30_000, [(0, 1, 1.0)])
    with pytest.raises(GraphError):
        MatrixEngine(big)


def test_stats(city_engine):
    stats = city_engine.stats()
    assert stats["num_vertices"] == city_engine.graph.num_vertices
    assert stats["matrix_bytes"] > 0


def test_symmetry(city_engine, rng):
    for _ in range(10):
        s, e = rng.integers(0, city_engine.graph.num_vertices, 2)
        assert city_engine.distance(int(s), int(e)) == pytest.approx(
            city_engine.distance(int(e), int(s))
        )


def test_triangle_inequality(city_engine, rng):
    n = city_engine.graph.num_vertices
    for _ in range(30):
        a, b, c = (int(x) for x in rng.integers(0, n, 3))
        assert city_engine.distance(a, c) <= (
            city_engine.distance(a, b) + city_engine.distance(b, c) + 1e-9
        )
