"""RoadNetwork construction and accessors."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.roadnet.graph import RoadNetwork, build_from_arrays


def test_basic_construction(line_graph):
    assert line_graph.num_vertices == 5
    assert line_graph.num_edges == 4


def test_neighbors_sorted(square_graph):
    assert list(square_graph.neighbors(0)) == [1, 2, 3]
    assert list(square_graph.neighbors(3)) == [0, 1, 2]


def test_neighbor_weights_aligned(square_graph):
    weights = dict(zip(square_graph.neighbors(0), square_graph.neighbor_weights(0)))
    assert weights[1] == 1.0
    assert weights[3] == 2.5


def test_degree(square_graph):
    assert square_graph.degree(0) == 3
    assert square_graph.degree(1) == 2


def test_edge_weight(square_graph):
    assert square_graph.edge_weight(0, 3) == 2.5
    assert square_graph.edge_weight(3, 0) == 2.5


def test_edge_weight_missing_raises(square_graph):
    with pytest.raises(GraphError):
        square_graph.edge_weight(1, 2)


def test_has_edge(square_graph):
    assert square_graph.has_edge(0, 1)
    assert not square_graph.has_edge(1, 2)


def test_parallel_edges_keep_minimum():
    g = RoadNetwork(2, [(0, 1, 5.0), (1, 0, 3.0), (0, 1, 4.0)])
    assert g.num_edges == 1
    assert g.edge_weight(0, 1) == 3.0


def test_self_loop_rejected():
    with pytest.raises(GraphError):
        RoadNetwork(2, [(0, 0, 1.0)])


def test_nonpositive_weight_rejected():
    with pytest.raises(GraphError):
        RoadNetwork(2, [(0, 1, 0.0)])
    with pytest.raises(GraphError):
        RoadNetwork(2, [(0, 1, -2.0)])
    with pytest.raises(GraphError):
        RoadNetwork(2, [(0, 1, float("nan"))])


def test_unknown_vertex_rejected():
    with pytest.raises(GraphError):
        RoadNetwork(2, [(0, 2, 1.0)])


def test_empty_graph_rejected():
    with pytest.raises(GraphError):
        RoadNetwork(0, [])


def test_coords_shape_validated():
    with pytest.raises(GraphError):
        RoadNetwork(3, [(0, 1, 1.0)], coords=np.zeros((2, 2)))


def test_iter_edges_each_once(square_graph):
    edges = list(square_graph.iter_edges())
    assert len(edges) == square_graph.num_edges
    assert all(u < v for u, v, _ in edges)


def test_validate_vertex(square_graph):
    assert square_graph.validate_vertex(2) == 2
    with pytest.raises(GraphError):
        square_graph.validate_vertex(7)
    with pytest.raises(GraphError):
        square_graph.validate_vertex(-1)


def test_to_scipy_csr_roundtrip(square_graph):
    mat = square_graph.to_scipy_csr()
    assert mat.shape == (4, 4)
    assert mat[0, 3] == 2.5
    assert mat[3, 0] == 2.5


def test_nearest_vertex(square_graph):
    assert square_graph.nearest_vertex(0.1, 0.05) == 0
    assert square_graph.nearest_vertex(0.9, 1.2) == 3


def test_nearest_vertex_requires_coords(line_graph):
    with pytest.raises(GraphError):
        line_graph.nearest_vertex(0.0, 0.0)


def test_euclidean(square_graph):
    assert square_graph.euclidean(0, 3) == pytest.approx(np.sqrt(2))


def test_is_connected(square_graph, line_graph):
    assert square_graph.is_connected()
    assert line_graph.is_connected()


def test_largest_component():
    # Two components: a triangle (0,1,2) and an edge (3,4).
    g = RoadNetwork(
        5,
        [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (3, 4, 1.0)],
        coords=np.arange(10, dtype=float).reshape(5, 2),
    )
    assert not g.is_connected()
    largest = g.largest_component()
    assert largest.num_vertices == 3
    assert largest.num_edges == 3
    assert largest.coords is not None and largest.coords.shape == (3, 2)


def test_build_from_arrays():
    g = build_from_arrays(3, [0, 1], [1, 2], [1.0, 2.0])
    assert g.num_edges == 2
    assert g.edge_weight(1, 2) == 2.0


def test_repr(square_graph):
    assert "RoadNetwork" in repr(square_graph)
