"""Road-network serialization roundtrips."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.roadnet.generators import grid_city
from repro.roadnet.io import load_edgelist, load_npz, save_edgelist, save_npz


@pytest.fixture
def city():
    return grid_city(5, 5, seed=2)


def assert_same_graph(a, b):
    assert a.num_vertices == b.num_vertices
    assert list(a.iter_edges()) == pytest.approx(list(b.iter_edges()))
    if a.coords is not None:
        np.testing.assert_allclose(a.coords, b.coords)


def test_npz_roundtrip(tmp_path, city):
    path = tmp_path / "city.npz"
    save_npz(city, path)
    assert_same_graph(city, load_npz(path))


def test_npz_roundtrip_without_coords(tmp_path, line_graph):
    path = tmp_path / "line.npz"
    save_npz(line_graph, path)
    loaded = load_npz(path)
    assert loaded.coords is None
    assert_same_graph(line_graph, loaded)


def test_edgelist_roundtrip(tmp_path, city):
    path = tmp_path / "city.csv"
    save_edgelist(city, path)
    assert_same_graph(city, load_edgelist(path))


def test_edgelist_missing_header(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("0,1,2.0\n")
    with pytest.raises(GraphError):
        load_edgelist(path)


def test_edgelist_malformed_line(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("#V,3\n0,1\n")
    with pytest.raises(GraphError):
        load_edgelist(path)


def test_edgelist_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "ok.csv"
    path.write_text("#V,3\n# a comment\n\n0,1,1.5\n1,2,2.5\n")
    g = load_edgelist(path)
    assert g.num_edges == 2
