"""LRU caches and the paper's composite cache key."""

import pytest

from repro.roadnet.cache import LRUCache, ShortestPathCache, combined_key


def test_combined_key_formula():
    # Paper: i = id(s) * |V| + id(e).
    assert combined_key(3, 7, 100) == 307
    assert combined_key(0, 0, 100) == 0


def test_combined_key_injective():
    n = 50
    keys = {combined_key(s, e, n) for s in range(n) for e in range(n)}
    assert len(keys) == n * n


def test_lru_put_get():
    cache = LRUCache(2)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", 42) == 42


def test_lru_eviction_order():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)  # evicts "a"
    assert "a" not in cache
    assert cache.get("b") == 2
    assert cache.get("c") == 3


def test_lru_access_refreshes_recency():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # "b" is now least recent
    cache.put("c", 3)
    assert "a" in cache
    assert "b" not in cache


def test_lru_put_refreshes_recency():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)
    cache.put("c", 3)
    assert cache.get("a") == 10
    assert "b" not in cache


def test_lru_hit_rate_counters():
    cache = LRUCache(4)
    cache.put("x", 1)
    cache.get("x")
    cache.get("y")
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5


def test_lru_len_and_clear():
    cache = LRUCache(4)
    cache.put("x", 1)
    cache.put("y", 2)
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 0 and cache.misses == 0


def test_lru_invalid_size():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_lru_repr():
    assert "LRUCache" in repr(LRUCache(3))


def test_dual_cache_distance_symmetric():
    cache = ShortestPathCache(100, distance_capacity=10, path_capacity=4)
    cache.put_distance(1, 2, 42.0)
    assert cache.get_distance(1, 2) == 42.0
    assert cache.get_distance(2, 1) == 42.0  # undirected


def test_dual_cache_path_directional():
    cache = ShortestPathCache(100)
    cache.put_path(1, 2, [1, 5, 2])
    assert cache.get_path(1, 2) == [1, 5, 2]
    assert cache.get_path(2, 1) is None


def test_dual_cache_key_parity_no_collision():
    # A distance entry and a path entry for the same (s, e) must coexist.
    cache = ShortestPathCache(100)
    cache.put_distance(1, 2, 9.0)
    cache.put_path(1, 2, [1, 2])
    assert cache.get_distance(1, 2) == 9.0
    assert cache.get_path(1, 2) == [1, 2]


def test_dual_cache_stats_and_clear():
    cache = ShortestPathCache(100)
    cache.put_distance(0, 1, 1.0)
    cache.get_distance(0, 1)
    cache.get_distance(5, 6)
    stats = cache.stats()
    assert stats["distance_hits"] == 1
    assert stats["distance_misses"] == 1
    cache.clear()
    assert cache.stats()["distance_entries"] == 0
