"""LRU caches and the paper's composite cache key."""

import pytest

from repro.roadnet.cache import LRUCache, ShortestPathCache, combined_key


def test_combined_key_formula():
    # Paper: i = id(s) * |V| + id(e).
    assert combined_key(3, 7, 100) == 307
    assert combined_key(0, 0, 100) == 0


def test_combined_key_injective():
    n = 50
    keys = {combined_key(s, e, n) for s in range(n) for e in range(n)}
    assert len(keys) == n * n


def test_lru_put_get():
    cache = LRUCache(2)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", 42) == 42


def test_lru_eviction_order():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)  # evicts "a"
    assert "a" not in cache
    assert cache.get("b") == 2
    assert cache.get("c") == 3


def test_lru_access_refreshes_recency():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # "b" is now least recent
    cache.put("c", 3)
    assert "a" in cache
    assert "b" not in cache


def test_lru_put_refreshes_recency():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)
    cache.put("c", 3)
    assert cache.get("a") == 10
    assert "b" not in cache


def test_lru_hit_rate_counters():
    cache = LRUCache(4)
    cache.put("x", 1)
    cache.get("x")
    cache.get("y")
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5


def test_lru_len_and_clear():
    cache = LRUCache(4)
    cache.put("x", 1)
    cache.put("y", 2)
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 0 and cache.misses == 0


def test_lru_invalid_size():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_lru_repr():
    assert "LRUCache" in repr(LRUCache(3))


def test_dual_cache_distance_symmetric():
    cache = ShortestPathCache(100, distance_capacity=10, path_capacity=4)
    cache.put_distance(1, 2, 42.0)
    assert cache.get_distance(1, 2) == 42.0
    assert cache.get_distance(2, 1) == 42.0  # undirected


def test_dual_cache_path_directional():
    cache = ShortestPathCache(100)
    cache.put_path(1, 2, [1, 5, 2])
    assert cache.get_path(1, 2) == [1, 5, 2]
    assert cache.get_path(2, 1) is None


def test_dual_cache_key_parity_no_collision():
    # A distance entry and a path entry for the same (s, e) must coexist.
    cache = ShortestPathCache(100)
    cache.put_distance(1, 2, 9.0)
    cache.put_path(1, 2, [1, 2])
    assert cache.get_distance(1, 2) == 9.0
    assert cache.get_path(1, 2) == [1, 2]


def test_dual_cache_stats_and_clear():
    cache = ShortestPathCache(100)
    cache.put_distance(0, 1, 1.0)
    cache.get_distance(0, 1)
    cache.get_distance(5, 6)
    stats = cache.stats()
    assert stats["distance_hits"] == 1
    assert stats["distance_misses"] == 1
    cache.clear()
    assert cache.stats()["distance_entries"] == 0


def test_row_cache_merge_grows_rows():
    from repro.roadnet.cache import SourceRowCache

    cache = SourceRowCache(4)
    assert cache.get(3) is None
    cache.merge(3, {1: 5.0, 2: 7.0}, exhausted=False)
    settled, exhausted = cache.get(3)
    assert settled == {1: 5.0, 2: 7.0} and not exhausted
    # A later sweep folds in (grow-only) and can mark the row complete.
    cache.merge(3, {4: 9.0}, exhausted=True)
    settled, exhausted = cache.get(3)
    assert settled == {1: 5.0, 2: 7.0, 4: 9.0} and exhausted


def test_row_cache_lru_eviction_and_stats():
    from repro.roadnet.cache import SourceRowCache

    cache = SourceRowCache(2)
    cache.merge(0, {1: 1.0}, exhausted=False)
    cache.merge(1, {1: 1.0}, exhausted=False)
    cache.get(0)  # refresh 0's recency
    cache.merge(2, {1: 1.0}, exhausted=False)  # evicts 1
    assert cache.get(1) is None
    assert cache.get(0) is not None and cache.get(2) is not None
    stats = cache.stats()
    assert stats["row_entries"] == 2
    assert stats["row_misses"] >= 1
    cache.clear()
    assert cache.stats()["row_entries"] == 0


def test_row_cache_cell_budget_bounds_memory():
    from repro.roadnet.cache import SourceRowCache

    cache = SourceRowCache(100, max_cells=5)
    cache.merge(0, {i: float(i) for i in range(4)}, exhausted=False)
    cache.merge(1, {i: float(i) for i in range(4)}, exhausted=False)  # 8 > 5: evicts row 0
    assert cache.get(0) is None
    assert cache.get(1) is not None
    assert cache.stats()["row_cells"] == 4
    # A single over-budget row is still retained (active working set).
    cache.merge(2, {i: float(i) for i in range(9)}, exhausted=False)
    assert cache.get(2) is not None
    assert cache.stats()["row_entries"] == 1
