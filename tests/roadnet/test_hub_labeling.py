"""Hub labeling (pruned landmark labeling)."""

import numpy as np
import pytest

from repro.exceptions import DisconnectedError
from repro.roadnet.dijkstra import dijkstra_distance
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.hub_labeling import HubLabelEngine, HubLabels


@pytest.fixture(scope="module")
def labels(small_city):
    return HubLabels(small_city)


def test_exact_on_small_city(small_city, labels, rng):
    for _ in range(50):
        s, e = rng.integers(0, small_city.num_vertices, 2)
        assert labels.query(int(s), int(e)) == pytest.approx(
            dijkstra_distance(small_city, int(s), int(e)), rel=1e-9
        )


def test_same_vertex(labels):
    assert labels.query(7, 7) == 0.0


def test_disconnected():
    g = RoadNetwork(4, [(0, 1, 1.0), (2, 3, 1.0)])
    labels = HubLabels(g)
    with pytest.raises(DisconnectedError):
        labels.query(0, 2)


def test_label_sizes_reported(labels, small_city):
    assert labels.average_label_size >= 1.0
    assert labels.total_entries >= small_city.num_vertices


def test_labels_much_smaller_than_apsp(labels, small_city):
    # The whole point of hub labels: far fewer entries than n^2.
    assert labels.total_entries < small_city.num_vertices**2 / 4


def test_custom_order(square_graph):
    labels = HubLabels(square_graph, order=np.array([3, 2, 1, 0]))
    assert labels.query(0, 3) == pytest.approx(2.0)


def test_bad_order_rejected(square_graph):
    with pytest.raises(ValueError):
        HubLabels(square_graph, order=np.array([0, 0, 1, 2]))


def test_engine_api(small_city, rng):
    engine = HubLabelEngine(small_city)
    s, e = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
    assert engine.distance(s, e) == pytest.approx(
        dijkstra_distance(small_city, s, e)
    )
    path = engine.path(s, e)
    assert path[0] == s and path[-1] == e
    ball = engine.vertices_within(s, 60.0)
    assert s in ball
    row = engine.distances_from(s)
    assert row[s] == 0.0
    assert engine.stats()["average_label_size"] > 0
