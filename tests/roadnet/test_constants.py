"""Paper constants and unit conventions."""

import pytest

from repro import constants


def test_speed_matches_paper():
    # "a constant 14 meters/second (approximately 48 kilometers/hour)"
    assert constants.SPEED_MPS == 14.0
    assert constants.SPEED_MPS * 3.6 == pytest.approx(50.4, abs=3.0)


def test_default_constraints_are_table1_defaults():
    assert constants.DEFAULT_WAIT_SECONDS == 600.0
    assert constants.DEFAULT_DETOUR_EPSILON == 0.20


def test_wait_radius_matches_paper_remark():
    # "a waiting time constraint of 10 minutes corresponds to 8,500 m".
    radius = constants.DEFAULT_WAIT_SECONDS * constants.SPEED_MPS
    assert radius == pytest.approx(8_400.0)
    assert abs(radius - 8_500.0) < 200.0


def test_shanghai_dataset_figures():
    assert constants.SHANGHAI_NUM_VERTICES == 122_319
    assert constants.SHANGHAI_NUM_EDGES == 188_426
    assert constants.SHANGHAI_NUM_TRIPS == 432_327
    assert constants.SHANGHAI_NUM_TAXIS == 17_000


def test_capacity_defaults():
    assert constants.DEFAULT_CAPACITY_FOUR_ALGO == 4
    assert constants.DEFAULT_CAPACITY_TREE == 6
    assert constants.UNLIMITED_CAPACITY is None


def test_cache_defaults_are_asymmetric():
    # "more distances can be stored in memory, and shortest distance is
    # needed more often than shortest path"
    assert constants.DEFAULT_DISTANCE_CACHE_SIZE > constants.DEFAULT_PATH_CACHE_SIZE
