"""DijkstraEngine caching behavior and the engine factory."""

import pytest

from repro.roadnet.dijkstra import dijkstra_distance
from repro.roadnet.engine import DijkstraEngine, ShortestPathEngine, make_engine
from repro.roadnet.hub_labeling import HubLabelEngine
from repro.roadnet.matrix import MatrixEngine


def test_distance_cached(small_city):
    engine = DijkstraEngine(small_city)
    d1 = engine.distance(0, 42)
    hits_before = engine.cache.distances.hits
    d2 = engine.distance(0, 42)
    assert d1 == d2
    assert engine.cache.distances.hits == hits_before + 1


def test_distance_cached_symmetric(small_city):
    engine = DijkstraEngine(small_city)
    engine.distance(3, 50)
    assert engine.cache.get_distance(50, 3) is not None


def test_path_cached_and_reversed(small_city):
    engine = DijkstraEngine(small_city)
    forward = engine.path(0, 30)
    backward = engine.path(30, 0)
    assert backward == list(reversed(forward))


def test_path_populates_distance_cache(small_city):
    engine = DijkstraEngine(small_city)
    path = engine.path(0, 25)
    cached = engine.cache.get_distance(0, 25)
    assert cached is not None
    assert cached == pytest.approx(dijkstra_distance(small_city, 0, 25))


def test_path_result_isolated(small_city):
    engine = DijkstraEngine(small_city)
    p1 = engine.path(0, 10)
    p1.append(999)  # mutate the returned list
    assert engine.path(0, 10)[-1] != 999


def test_same_vertex_shortcuts(small_city):
    engine = DijkstraEngine(small_city)
    assert engine.distance(5, 5) == 0.0
    assert engine.path(5, 5) == [5]


def test_vertices_within(small_city):
    engine = DijkstraEngine(small_city)
    ball = engine.vertices_within(0, 45.0)
    for v, d in ball.items():
        assert d <= 45.0


def test_distances_from(small_city):
    engine = DijkstraEngine(small_city)
    row = engine.distances_from(0)
    assert row[0] == 0.0
    assert len(row) == small_city.num_vertices


def test_stats_exposed(small_city):
    engine = DijkstraEngine(small_city)
    engine.distance(0, 1)
    assert "distance_hit_rate" in engine.stats()


def test_factory_kinds(small_city):
    assert isinstance(make_engine(small_city, "matrix"), MatrixEngine)
    assert isinstance(make_engine(small_city, "dijkstra"), DijkstraEngine)
    assert isinstance(make_engine(small_city, "hub_label"), HubLabelEngine)


def test_factory_auto_small(small_city):
    assert isinstance(make_engine(small_city, "auto"), MatrixEngine)


def test_factory_unknown(small_city):
    with pytest.raises(ValueError):
        make_engine(small_city, "quantum")


def test_engines_satisfy_protocol(small_city):
    for kind in ("matrix", "dijkstra", "hub_label"):
        assert isinstance(make_engine(small_city, kind), ShortestPathEngine)


def test_all_engines_agree(small_city, rng):
    engines = [make_engine(small_city, k) for k in ("matrix", "dijkstra", "hub_label")]
    for _ in range(20):
        s, e = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
        values = {round(engine.distance(s, e), 6) for engine in engines}
        assert len(values) == 1, f"engines disagree on d({s},{e}): {values}"
