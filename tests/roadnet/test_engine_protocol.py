"""Protocol conformance: every engine kind satisfies ShortestPathEngine
and behaves identically on the protocol surface."""

import numpy as np
import pytest

from repro.roadnet.engine import ShortestPathEngine, make_engine

KINDS = ("matrix", "dijkstra", "hub_label", "astar", "ch")


@pytest.fixture(scope="module")
def all_engines(small_city):
    return {kind: make_engine(small_city, kind) for kind in KINDS}


def test_all_kinds_constructible(all_engines):
    for kind, engine in all_engines.items():
        assert isinstance(engine, ShortestPathEngine), kind


def test_distances_agree_everywhere(all_engines, small_city, rng):
    reference = all_engines["matrix"]
    for _ in range(25):
        s, e = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
        expected = reference.distance(s, e)
        for kind, engine in all_engines.items():
            assert engine.distance(s, e) == pytest.approx(expected, rel=1e-9), (
                kind, s, e,
            )


def test_distance_many_agrees_across_kinds(all_engines, small_city, rng):
    reference = all_engines["matrix"]
    sources = [int(x) for x in rng.integers(0, small_city.num_vertices, 5)]
    for source in sources:
        targets = rng.integers(0, small_city.num_vertices, 12)
        expected = np.array(
            [reference.distance(source, int(t)) for t in targets]
        )
        for kind, engine in all_engines.items():
            got = engine.distance_many(source, targets)
            np.testing.assert_allclose(got, expected, rtol=1e-9, err_msg=kind)


def test_distance_many_matches_own_scalar(all_engines, small_city, rng):
    """The batched plane is elementwise identical to the engine's own
    scalar plane (bit-for-bit, not just approximately)."""
    for kind, engine in all_engines.items():
        source = int(rng.integers(0, small_city.num_vertices))
        targets = [int(t) for t in rng.integers(0, small_city.num_vertices, 10)]
        got = engine.distance_many(source, targets)
        expected = np.array([engine.distance(source, t) for t in targets])
        assert np.array_equal(got, expected), kind


def test_paths_valid_everywhere(all_engines, small_city, rng):
    for kind, engine in all_engines.items():
        s, e = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
        path = engine.path(s, e)
        assert path[0] == s and path[-1] == e, kind
        for u, v in zip(path, path[1:]):
            assert small_city.has_edge(u, v), kind


def test_vertices_within_consistent(all_engines, small_city):
    radius = 60.0
    reference = set(all_engines["matrix"].vertices_within(0, radius))
    for kind, engine in all_engines.items():
        assert set(engine.vertices_within(0, radius)) == reference, kind


def test_distances_from_consistent(all_engines, small_city):
    reference = np.asarray(all_engines["matrix"].distances_from(0), dtype=float)
    for kind, engine in all_engines.items():
        row = np.asarray(engine.distances_from(0), dtype=float)
        np.testing.assert_allclose(row, reference, rtol=1e-9, err_msg=kind)
