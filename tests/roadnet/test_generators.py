"""Synthetic city generators."""

import numpy as np
import pytest

from repro.constants import SPEED_MPS
from repro.roadnet.generators import (
    grid_city,
    random_geometric_city,
    ring_radial_city,
)


def test_grid_city_size():
    city = grid_city(5, 7, seed=0)
    assert city.num_vertices == 35
    assert city.coords is not None


def test_grid_city_connected():
    for seed in range(3):
        assert grid_city(8, 8, seed=seed, irregularity=0.2).is_connected()


def test_grid_city_deterministic():
    a = grid_city(6, 6, seed=9)
    b = grid_city(6, 6, seed=9)
    assert list(a.iter_edges()) == list(b.iter_edges())
    np.testing.assert_array_equal(a.coords, b.coords)


def test_grid_city_seed_changes_weights():
    a = grid_city(6, 6, seed=1)
    b = grid_city(6, 6, seed=2)
    assert list(a.iter_edges()) != list(b.iter_edges())


def test_grid_city_irregularity_removes_edges():
    dense = grid_city(10, 10, seed=0, irregularity=0.0)
    sparse = grid_city(10, 10, seed=0, irregularity=0.25)
    assert sparse.num_edges < dense.num_edges


def test_grid_city_weights_are_plausible_seconds():
    city = grid_city(6, 6, seed=0, block_meters=200.0)
    for _, _, w in city.iter_edges():
        # 200 m at 14 m/s ~ 14 s; lognormal spread stays within sanity.
        assert 10.0 / SPEED_MPS <= w <= 2000.0 / SPEED_MPS


def test_grid_city_validation():
    with pytest.raises(ValueError):
        grid_city(1, 5)
    with pytest.raises(ValueError):
        grid_city(5, 5, irregularity=0.9)


def test_ring_radial_city():
    city = ring_radial_city(3, 8, seed=0)
    assert city.num_vertices == 1 + 3 * 8
    assert city.is_connected()
    assert city.coords is not None


def test_ring_radial_validation():
    with pytest.raises(ValueError):
        ring_radial_city(0, 8)
    with pytest.raises(ValueError):
        ring_radial_city(2, 2)


def test_random_geometric_city():
    city = random_geometric_city(300, seed=0)
    assert city.is_connected()  # trimmed to largest component
    assert city.num_vertices > 150  # most of the graph survives
    degrees = [city.degree(v) for v in range(city.num_vertices)]
    assert 2.0 < np.mean(degrees) < 8.0


def test_random_geometric_validation():
    with pytest.raises(ValueError):
        random_geometric_city(5)
