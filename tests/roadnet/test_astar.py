"""A* with Euclidean and landmark (ALT) heuristics."""

import numpy as np
import pytest

from repro.exceptions import DisconnectedError, GraphError
from repro.roadnet.astar import (
    AStarEngine,
    EuclideanHeuristic,
    LandmarkHeuristic,
    astar_distance,
    astar_expansions,
    astar_path,
)
from repro.roadnet.dijkstra import dijkstra_distance
from repro.roadnet.graph import RoadNetwork


@pytest.fixture(scope="module")
def euclidean(small_city):
    return EuclideanHeuristic(small_city)


@pytest.fixture(scope="module")
def landmarks(small_city):
    return LandmarkHeuristic(small_city, num_landmarks=6)


@pytest.mark.parametrize("heuristic_name", ["euclidean", "landmarks"])
def test_exact_distances(small_city, euclidean, landmarks, heuristic_name, rng):
    heuristic = euclidean if heuristic_name == "euclidean" else landmarks
    for _ in range(40):
        s, e = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
        assert astar_distance(small_city, s, e, heuristic) == pytest.approx(
            dijkstra_distance(small_city, s, e), rel=1e-9
        )


def test_paths_are_shortest(small_city, landmarks, rng):
    for _ in range(15):
        s, e = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
        path = astar_path(small_city, s, e, landmarks)
        assert path[0] == s and path[-1] == e
        cost = sum(
            small_city.edge_weight(u, v) for u, v in zip(path, path[1:])
        )
        assert cost == pytest.approx(dijkstra_distance(small_city, s, e))


def test_euclidean_heuristic_admissible(small_city, euclidean, rng):
    """h(v) <= d(v, target) for all sampled pairs."""
    for _ in range(20):
        v, target = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
        h = euclidean.bind(target)
        assert h(v) <= dijkstra_distance(small_city, v, target) + 1e-9


def test_landmark_heuristic_admissible(small_city, landmarks, rng):
    for _ in range(20):
        v, target = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
        h = landmarks.bind(target)
        assert h(v) <= dijkstra_distance(small_city, v, target) + 1e-9


def test_landmarks_are_spread_out(small_city, landmarks):
    assert len(set(landmarks.landmarks)) == len(landmarks.landmarks)
    assert len(landmarks.landmarks) == 6


def test_alt_expands_fewer_than_dijkstra(small_city, landmarks):
    """Goal direction must pay off on long queries (the point of A*)."""
    corner_a, corner_b = 0, small_city.num_vertices - 1

    class NullHeuristic:
        def bind(self, target):
            return lambda v: 0.0

    blind = astar_expansions(small_city, corner_a, corner_b, NullHeuristic())
    directed = astar_expansions(small_city, corner_a, corner_b, landmarks)
    assert directed < blind


def test_euclidean_requires_coords(line_graph):
    with pytest.raises(GraphError):
        EuclideanHeuristic(line_graph)


def test_alpha_in_unit_range(euclidean):
    assert 0.0 < euclidean.alpha <= 1.0


def test_landmark_validation(small_city):
    with pytest.raises(ValueError):
        LandmarkHeuristic(small_city, num_landmarks=0)


def test_disconnected():
    g = RoadNetwork(4, [(0, 1, 1.0), (2, 3, 1.0)])
    heuristic = LandmarkHeuristic(g, num_landmarks=2)
    with pytest.raises(DisconnectedError):
        astar_distance(g, 0, 3, heuristic)


def test_same_vertex(small_city, landmarks):
    assert astar_distance(small_city, 5, 5, landmarks) == 0.0
    assert astar_path(small_city, 5, 5, landmarks) == [5]


def test_engine_api(small_city, rng):
    for heuristic in ("landmark", "euclidean"):
        engine = AStarEngine(small_city, heuristic=heuristic)
        s, e = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
        assert engine.distance(s, e) == pytest.approx(
            dijkstra_distance(small_city, s, e)
        )
        path = engine.path(s, e)
        assert path[0] == s and path[-1] == e
        assert engine.distances_from(s)[s] == 0.0
        assert s in engine.vertices_within(s, 100.0)


def test_engine_unknown_heuristic(small_city):
    with pytest.raises(ValueError):
        AStarEngine(small_city, heuristic="psychic")
