"""Contraction hierarchies: exactness and structure."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.exceptions import DisconnectedError
from repro.roadnet.contraction import CHEngine, ContractionHierarchy
from repro.roadnet.dijkstra import dijkstra_distance
from repro.roadnet.graph import RoadNetwork
from tests.properties.test_roadnet_properties import connected_graphs


@pytest.fixture(scope="module")
def hierarchy(small_city):
    return ContractionHierarchy(small_city)


def test_exact_on_city(small_city, hierarchy, rng):
    for _ in range(60):
        s, e = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
        assert hierarchy.query(s, e) == pytest.approx(
            dijkstra_distance(small_city, s, e), rel=1e-9
        )


def test_same_vertex(hierarchy):
    assert hierarchy.query(3, 3) == 0.0


def test_rank_is_permutation(small_city, hierarchy):
    assert sorted(hierarchy.rank) == list(range(small_city.num_vertices))


def test_shortcuts_bounded(small_city, hierarchy):
    # Street-like graphs contract with few shortcuts; quadratic blowup
    # would indicate a broken ordering or witness search.
    assert hierarchy.num_shortcuts < 4 * small_city.num_edges


def test_disconnected():
    g = RoadNetwork(4, [(0, 1, 1.0), (2, 3, 1.0)])
    ch = ContractionHierarchy(g)
    with pytest.raises(DisconnectedError):
        ch.query(0, 2)
    assert ch.query(2, 3) == 1.0


def test_line_graph(line_graph):
    ch = ContractionHierarchy(line_graph)
    assert ch.query(0, 4) == 4.0


def test_square_with_shortcut_edge(square_graph):
    ch = ContractionHierarchy(square_graph)
    assert ch.query(0, 3) == pytest.approx(2.0)


@given(connected_graphs())
@settings(max_examples=30, deadline=None)
def test_exact_on_random_graphs(case):
    graph, rng = case
    ch = ContractionHierarchy(graph)
    for _ in range(5):
        s, e = (int(x) for x in rng.integers(0, graph.num_vertices, 2))
        assert ch.query(s, e) == pytest.approx(
            dijkstra_distance(graph, s, e), rel=1e-9
        )


def test_engine_api(small_city, rng):
    engine = CHEngine(small_city)
    s, e = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
    assert engine.distance(s, e) == pytest.approx(
        dijkstra_distance(small_city, s, e)
    )
    path = engine.path(s, e)
    assert path[0] == s and path[-1] == e
    assert engine.distances_from(s)[s] == 0.0
    assert s in engine.vertices_within(s, 50.0)
    assert engine.stats()["num_vertices"] == small_city.num_vertices


def test_tiny_witness_budget_still_exact(small_city, rng):
    """A starved witness search only adds redundant shortcuts — queries
    must stay exact."""
    ch = ContractionHierarchy(small_city, witness_budget=1)
    for _ in range(25):
        s, e = (int(x) for x in rng.integers(0, small_city.num_vertices, 2))
        assert ch.query(s, e) == pytest.approx(
            dijkstra_distance(small_city, s, e), rel=1e-9
        )
