"""FaultInjector determinism, the flush budget, and fault enactment."""

import pytest

from repro.exceptions import (
    FaultInjectedError,
    FlushDeadlineExceededError,
)
from repro.faults import (
    DEFAULT_RETRY,
    FaultInjector,
    FlushBudget,
    NULL_INJECTOR,
    RetryPolicy,
    SimulatedPoolDeathError,
    VirtualTimeoutError,
    parse_fault_spec,
    run_with_fault,
)
from repro.obs.metrics import MetricsRegistry


def _draws(injector, site, n):
    return [injector.draw(site) for _ in range(n)]


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_null_injector_is_inert():
    assert not NULL_INJECTOR.enabled
    assert NULL_INJECTOR.draw("quote.task") is None
    assert not NULL_INJECTOR.wants("quote.task")
    fault, sleeping = NULL_INJECTOR.draw_engine()
    assert fault is None and sleeping is False


def test_rate_draws_replay_bit_identically():
    plan = parse_fault_spec("quote.task:crash:0.3")
    a = _draws(FaultInjector(plan, seed=42), "quote.task", 200)
    b = _draws(FaultInjector(plan, seed=42), "quote.task", 200)
    assert a == b
    assert any(f is not None for f in a)
    assert any(f is None for f in a)


def test_different_seeds_differ():
    plan = parse_fault_spec("quote.task:crash:0.3")
    a = _draws(FaultInjector(plan, seed=1), "quote.task", 200)
    b = _draws(FaultInjector(plan, seed=2), "quote.task", 200)
    assert a != b


def test_one_shot_fires_exactly_once_at_the_nth_opportunity():
    plan = parse_fault_spec("shard.solve:crash:@3")
    injector = FaultInjector(plan, seed=0)
    draws = _draws(injector, "shard.solve", 6)
    fired = [i for i, f in enumerate(draws, start=1) if f is not None]
    assert fired == [3]
    assert draws[2].seq == 3


def test_every_nth_fires_periodically():
    plan = parse_fault_spec("shard.solve:crash:%2")
    injector = FaultInjector(plan, seed=0)
    draws = _draws(injector, "shard.solve", 6)
    fired = [i for i, f in enumerate(draws, start=1) if f is not None]
    assert fired == [2, 4, 6]


def test_clause_streams_are_independent():
    """Adding a clause never perturbs the draws of the ones before it:
    each rate clause owns a (seed, clause_index)-keyed RNG stream and
    consumes exactly one sample per opportunity whether or not it fires."""
    base = parse_fault_spec("quote.task:crash:0.3")
    extended = parse_fault_spec("quote.task:crash:0.3,quote.task:delay:0.9:0.1")
    solo = _draws(FaultInjector(base, seed=7), "quote.task", 100)
    both = _draws(FaultInjector(extended, seed=7), "quote.task", 100)
    for lone, paired in zip(solo, both):
        if lone is not None:
            # The first-listed clause still wins whenever it fires.
            assert paired is not None
            assert paired.kind == "crash"
            assert paired.seq == lone.seq


def test_sites_draw_from_separate_opportunity_counters():
    plan = parse_fault_spec("quote.task:crash:@1,shard.solve:crash:@1")
    injector = FaultInjector(plan, seed=0)
    assert injector.draw("shard.solve") is not None
    assert injector.draw("quote.task") is not None
    assert injector.draw("quote.task") is None


def test_wants_reflects_armed_sites():
    injector = FaultInjector(parse_fault_spec("quote.task:crash:0.1"), seed=0)
    assert injector.wants("quote.task")
    assert not injector.wants("shard.solve")


# ----------------------------------------------------------------------
# Registry accounting
# ----------------------------------------------------------------------
def test_injections_and_retries_are_counted():
    registry = MetricsRegistry()
    plan = parse_fault_spec("quote.task:crash:%1")
    injector = FaultInjector(plan, seed=0, registry=registry)
    injector.draw("quote.task")
    injector.draw("quote.task")
    injector.record_retry("quote.task")
    injector.record_pool_recreated()
    assert registry.counter("fault.injected").value == 2
    assert registry.counter("fault.injected.quote.task").value == 2
    assert registry.counter("retry.count").value == 1
    assert registry.counter("retry.quote.task").value == 1
    assert registry.counter("pool.recreated").value == 1


# ----------------------------------------------------------------------
# FlushBudget
# ----------------------------------------------------------------------
def test_budget_charges_and_trips():
    budget = FlushBudget(1.0)
    budget.charge(0.6)
    budget.check()  # under budget: fine
    assert not budget.exceeded
    budget.charge(0.6)
    assert budget.exceeded
    with pytest.raises(FlushDeadlineExceededError):
        budget.check()


def test_unbounded_budget_never_trips():
    budget = FlushBudget(None)
    budget.charge(1e9)
    assert not budget.exceeded
    budget.check()


def test_delay_draws_charge_the_budget_virtually():
    plan = parse_fault_spec("quote.task:delay:%1:0.4")
    injector = FaultInjector(plan, seed=0)
    budget = FlushBudget(1.0)
    injector.draw("quote.task", budget=budget)
    injector.draw("quote.task", budget=budget)
    assert budget.spent_s == pytest.approx(0.8)


# ----------------------------------------------------------------------
# Enactment (run_with_fault) and the engine window
# ----------------------------------------------------------------------
def test_run_with_fault_none_is_transparent():
    assert run_with_fault(None, False, None, lambda x: x + 1, 2) == 3


def test_crash_fault_raises_before_the_work():
    plan = parse_fault_spec("quote.task:crash:@1")
    fault = FaultInjector(plan, seed=0).draw("quote.task")
    ran = []
    with pytest.raises(FaultInjectedError):
        run_with_fault(fault, False, None, ran.append, 1)
    assert ran == []


def test_virtual_delay_converts_to_timeout_only_past_the_limit():
    plan = parse_fault_spec("quote.task:delay:%1:0.5")
    injector = FaultInjector(plan, seed=0)
    fault = injector.draw("quote.task")
    # Under the timeout (or with none): the work still runs, no sleep.
    assert run_with_fault(fault, False, None, lambda: "ok") == "ok"
    fault = injector.draw("quote.task")
    assert run_with_fault(fault, False, 1.0, lambda: "ok") == "ok"
    with pytest.raises(VirtualTimeoutError):
        run_with_fault(injector.draw("quote.task"), False, 0.1, lambda: "ok")


def test_engine_faults_only_fire_inside_a_window():
    plan = parse_fault_spec("engine.distance_many:crash:%1")
    injector = FaultInjector(plan, seed=0)
    fault, _ = injector.draw_engine()
    assert fault is None  # no window open: immune
    with injector.engine_window():
        fault, sleeping = injector.draw_engine()
    assert fault is not None and sleeping is False
    fault, _ = injector.draw_engine()
    assert fault is None  # window closed again


def test_engine_window_is_null_when_site_unarmed():
    injector = FaultInjector(parse_fault_spec("quote.task:crash:0.1"), seed=0)
    window = injector.engine_window()
    with window:
        fault, _ = injector.draw_engine()
    assert fault is None


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_backoff_schedule():
    policy = RetryPolicy(max_attempts=5, backoff_s=0.1, backoff_cap_s=0.3)
    assert policy.backoff_for(1) == 0.0
    assert policy.backoff_for(2) == pytest.approx(0.1)
    assert policy.backoff_for(3) == pytest.approx(0.2)
    assert policy.backoff_for(4) == pytest.approx(0.3)  # capped
    assert policy.backoff_for(5) == pytest.approx(0.3)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_s=-1.0)
    assert DEFAULT_RETRY.max_attempts == 3


def test_simulated_pool_death_is_a_broken_executor():
    from concurrent.futures import BrokenExecutor

    error = SimulatedPoolDeathError("pool.submit", 4)
    assert isinstance(error, BrokenExecutor)
    assert error.site == "pool.submit" and error.seq == 4
