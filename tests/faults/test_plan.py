"""The fault-spec grammar: what parses, what is rejected, and how."""

import pytest

from repro.faults import FAULT_KINDS, FAULT_SITES, FaultPlan, parse_fault_spec


def test_empty_and_none_specs_yield_the_empty_plan():
    for spec in (None, "", "   ", ",", " , "):
        plan = parse_fault_spec(spec)
        assert plan.empty
        assert plan.clauses == ()


def test_rate_clause_parses():
    plan = parse_fault_spec("quote.task:crash:0.05")
    (clause,) = plan.clauses
    assert clause.site == "quote.task"
    assert clause.kind == "crash"
    assert clause.rate == pytest.approx(0.05)
    assert clause.every is None and clause.at is None
    assert clause.delay_s == 0.0


def test_one_shot_and_every_nth_triggers_parse():
    plan = parse_fault_spec("shard.solve:crash:@3,shard.solve:crash:%2")
    at, every = plan.clauses
    assert at.at == 3 and at.rate is None and at.every is None
    assert every.every == 2 and every.rate is None and every.at is None


def test_delay_clause_requires_and_takes_seconds():
    plan = parse_fault_spec("engine.distance_many:delay:0.5:0.25")
    (clause,) = plan.clauses
    assert clause.kind == "delay"
    assert clause.delay_s == pytest.approx(0.25)
    with pytest.raises(ValueError, match="needs a delay"):
        parse_fault_spec("quote.task:delay:0.5")
    with pytest.raises(ValueError, match="positive"):
        parse_fault_spec("quote.task:delay:0.5:0")
    with pytest.raises(ValueError, match="fourth field"):
        parse_fault_spec("quote.task:crash:0.5:1.0")


def test_site_and_kind_membership_enforced():
    with pytest.raises(ValueError, match="unknown fault site"):
        parse_fault_spec("quote.column:crash:0.1")
    with pytest.raises(ValueError, match="unknown fault kind"):
        parse_fault_spec("quote.task:explode:0.1")


def test_kind_site_compatibility():
    # pool_death is a submission-level fault; delay is a task-level one.
    with pytest.raises(ValueError, match="pool_death only applies"):
        parse_fault_spec("quote.task:pool_death:0.1")
    with pytest.raises(ValueError, match="delay does not apply"):
        parse_fault_spec("pool.submit:delay:0.1:1.0")
    parse_fault_spec("pool.submit:pool_death:%100")  # legal


def test_trigger_validation():
    with pytest.raises(ValueError, match="integer"):
        parse_fault_spec("quote.task:crash:@x")
    with pytest.raises(ValueError, match="N >= 1"):
        parse_fault_spec("quote.task:crash:%0")
    with pytest.raises(ValueError, match=r"in \[0, 1\]"):
        parse_fault_spec("quote.task:crash:1.5")
    with pytest.raises(ValueError, match="must be a rate"):
        parse_fault_spec("quote.task:crash:sometimes")
    with pytest.raises(ValueError, match="must look like"):
        parse_fault_spec("quote.task:crash")


def test_multi_clause_specs_keep_order_and_skip_blanks():
    plan = parse_fault_spec(
        "quote.task:crash:0.01, shard.solve:delay:@1:0.5 ,,pool.submit:pool_death:%9"
    )
    assert [c.site for c in plan.clauses] == [
        "quote.task",
        "shard.solve",
        "pool.submit",
    ]
    assert plan.sites() == {"quote.task", "shard.solve", "pool.submit"}
    assert plan.indexed_clauses_for("shard.solve") == [(1, plan.clauses[1])]


def test_clause_labels_round_trip():
    spec = "quote.task:crash:0.05,shard.solve:delay:@1:0.5,pool.submit:pool_death:%9"
    plan = parse_fault_spec(spec)
    assert ",".join(c.label() for c in plan.clauses) == spec
    assert parse_fault_spec(
        ",".join(c.label() for c in plan.clauses)
    ) == FaultPlan(plan.clauses)


def test_registry_constants_are_closed():
    assert FAULT_SITES == (
        "quote.task",
        "shard.solve",
        "engine.distance_many",
        "pool.submit",
    )
    assert FAULT_KINDS == ("crash", "delay", "pool_death")
