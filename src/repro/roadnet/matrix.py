"""All-pairs shortest-path engine backed by ``scipy.sparse.csgraph``.

For the benchmark-scale graphs used in this reproduction (thousands of
vertices), precomputing the full distance matrix once in C is far cheaper
than answering millions of on-demand Dijkstra queries in Python — this is
how the reproduction meets the paper's throughput requirements without a
C++ substrate. Distances are stored float32 (n² * 4 bytes) and
predecessors int32, so a 5,000-vertex city costs ~200 MB, well within the
paper's 3 GB process budget.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

from repro.exceptions import DisconnectedError, GraphError
from repro.roadnet.graph import RoadNetwork

_MAX_MATRIX_VERTICES = 20_000


class MatrixEngine:
    """Exact shortest-path engine over a precomputed APSP matrix.

    Implements the :class:`~repro.roadnet.engine.ShortestPathEngine`
    protocol. Paths are reconstructed on demand from the predecessor
    matrix and memoized in the dual LRU cache by the caller when needed.
    """

    kind = "matrix"
    #: Scalar lookups are O(1) array reads; batching only pays for its
    #: per-call numpy overhead on wider fan-outs.
    batch_cutoff = 8

    def __init__(self, graph: RoadNetwork):
        if graph.num_vertices > _MAX_MATRIX_VERTICES:
            raise GraphError(
                f"MatrixEngine supports up to {_MAX_MATRIX_VERTICES} vertices; "
                f"got {graph.num_vertices}. Use DijkstraEngine or "
                "HubLabelEngine for larger networks."
            )
        self.graph = graph
        dist, pred = csgraph_dijkstra(
            graph.to_scipy_csr(),
            directed=False,
            return_predecessors=True,
        )
        # float64 distances keep arrival times bit-consistent with path
        # reconstructions; predecessors stay int32 (half the footprint).
        self._dist = dist
        self._pred = pred.astype(np.int32)

    # ------------------------------------------------------------------
    # ShortestPathEngine protocol
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Exact ``d(source, target)``."""
        d = self._dist[source, target]
        if not np.isfinite(d):
            raise DisconnectedError(source, target)
        return float(d)

    def distance_many(self, source: int, targets) -> np.ndarray:
        """Batched fan-out via fancy indexing — one gather from the APSP
        row, no per-target Python work. ``inf`` cells mark unreachable
        targets (the batched plane never raises)."""
        if len(targets) == 0:
            return np.empty(0, dtype=np.float64)
        idx = np.asarray(targets, dtype=np.int64)
        return self._dist[source, idx].astype(np.float64, copy=False)

    def path(self, source: int, target: int) -> list[int]:
        """Shortest path ``[source, ..., target]`` from predecessors."""
        if source == target:
            return [source]
        if not np.isfinite(self._dist[source, target]):
            raise DisconnectedError(source, target)
        pred_row = self._pred[source]
        path = [target]
        v = target
        while v != source:
            v = int(pred_row[v])
            path.append(v)
        path.reverse()
        return path

    def distances_from(self, source: int) -> np.ndarray:
        """Dense distance row from ``source`` (float32, inf = unreachable)."""
        return self._dist[source]

    def vertices_within(self, source: int, radius: float) -> dict[int, float]:
        """Vertices within network ``radius`` of ``source`` with distances."""
        row = self._dist[source]
        hits = np.nonzero(row <= radius)[0]
        return {int(v): float(row[v]) for v in hits}

    def stats(self) -> dict[str, float]:
        """Memory footprint report for the harness."""
        return {
            "matrix_bytes": self._dist.nbytes + self._pred.nbytes,
            "num_vertices": self.graph.num_vertices,
        }
