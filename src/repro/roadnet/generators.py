"""Synthetic road-network generators.

The paper evaluates on the Shanghai road network (122,319 vertices,
188,426 edges), which is not redistributable. These generators produce
street-like planar graphs with controllable size and irregularity; all
matching algorithms interact with the network only through shortest-path
distances, so any connected street-like graph exercises the same code
paths (see DESIGN.md, "Substitutions").

All edge weights are travel times in seconds at the paper's constant
14 m/s, derived from generated street lengths in meters.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SPEED_MPS
from repro.roadnet.graph import RoadNetwork


def _street_seconds(rng: np.random.Generator, mean_meters: float, n: int) -> np.ndarray:
    """Street traversal times drawn from a lognormal street-length model."""
    sigma = 0.35
    mu = np.log(mean_meters) - sigma**2 / 2
    lengths = rng.lognormal(mu, sigma, size=n)
    return np.maximum(lengths, 10.0) / SPEED_MPS


def grid_city(
    rows: int,
    cols: int,
    *,
    block_meters: float = 200.0,
    irregularity: float = 0.1,
    seed: int | None = 0,
) -> RoadNetwork:
    """A Manhattan-style grid city.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the network has ``rows * cols`` vertices.
    block_meters:
        Mean street-segment length (Shanghai-like blocks default to 200 m).
    irregularity:
        Fraction of interior edges removed at random (dead ends, rivers,
        superblocks). Removal never disconnects the graph: only edges whose
        endpoints stay reachable through the remaining grid are dropped,
        enforced by keeping the boundary ring intact and bounding removal.
    seed:
        RNG seed for reproducibility.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid_city needs at least a 2x2 grid")
    if not 0.0 <= irregularity < 0.5:
        raise ValueError("irregularity must be in [0, 0.5)")
    rng = np.random.default_rng(seed)
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return r * cols + c

    horizontal = [
        (vid(r, c), vid(r, c + 1)) for r in range(rows) for c in range(cols - 1)
    ]
    vertical = [
        (vid(r, c), vid(r + 1, c)) for r in range(rows - 1) for c in range(cols)
    ]
    pairs = horizontal + vertical
    weights = _street_seconds(rng, block_meters, len(pairs))

    if irregularity > 0:
        interior = [
            i
            for i, (u, v) in enumerate(pairs)
            if _is_interior(u, rows, cols) and _is_interior(v, rows, cols)
        ]
        n_drop = int(len(pairs) * irregularity)
        drop = set(
            rng.choice(interior, size=min(n_drop, len(interior)), replace=False).tolist()
        )
    else:
        drop = set()

    # Jittered planar coordinates in meters.
    jitter = rng.normal(0.0, block_meters * 0.08, size=(n, 2))
    base = np.array(
        [[c * block_meters, r * block_meters] for r in range(rows) for c in range(cols)]
    )
    coords = base + jitter

    edges = [
        (u, v, float(w))
        for i, ((u, v), w) in enumerate(zip(pairs, weights))
        if i not in drop
    ]
    network = RoadNetwork(n, edges, coords=coords)
    if not network.is_connected():
        network = network.largest_component()
    return network


def _is_interior(v: int, rows: int, cols: int) -> bool:
    r, c = divmod(v, cols)
    return 0 < r < rows - 1 and 0 < c < cols - 1


def ring_radial_city(
    rings: int,
    spokes: int,
    *,
    ring_spacing_meters: float = 600.0,
    seed: int | None = 0,
) -> RoadNetwork:
    """A ring-and-radial city (European style): concentric rings connected
    by radial avenues, plus a central hub vertex."""
    if rings < 1 or spokes < 3:
        raise ValueError("need >= 1 ring and >= 3 spokes")
    rng = np.random.default_rng(seed)
    n = 1 + rings * spokes
    coords = np.zeros((n, 2))
    edges: list[tuple[int, int, float]] = []

    def vid(ring: int, spoke: int) -> int:
        return 1 + ring * spokes + (spoke % spokes)

    for ring in range(rings):
        radius = (ring + 1) * ring_spacing_meters
        circumference_step = 2 * np.pi * radius / spokes
        for spoke in range(spokes):
            angle = 2 * np.pi * spoke / spokes
            coords[vid(ring, spoke)] = radius * np.array([np.cos(angle), np.sin(angle)])
            # Ring edge to the next spoke on the same ring.
            ring_len = circumference_step * rng.uniform(0.9, 1.1)
            edges.append((vid(ring, spoke), vid(ring, spoke + 1), ring_len / SPEED_MPS))
            # Radial edge inward.
            inward = 0 if ring == 0 else vid(ring - 1, spoke)
            radial_len = ring_spacing_meters * rng.uniform(0.9, 1.1)
            edges.append((vid(ring, spoke), inward, radial_len / SPEED_MPS))
    return RoadNetwork(n, edges, coords=coords)


def random_geometric_city(
    n: int,
    *,
    area_meters: float = 10_000.0,
    target_degree: float = 3.5,
    seed: int | None = 0,
) -> RoadNetwork:
    """An irregular street graph: ``n`` intersections uniform in a square,
    connected by a thinned Delaunay triangulation, trimmed to the largest
    component.

    Delaunay edges give a planar, well-connected scaffold (mean degree
    ~6); random thinning brings the mean intersection degree down to
    ``target_degree`` (real street networks sit near 3; Shanghai's is
    ~3.1) without fragmenting the graph the way a sub-percolation random
    geometric graph would."""
    from scipy.spatial import Delaunay

    if n < 10:
        raise ValueError("random_geometric_city needs n >= 10")
    if target_degree <= 2.0:
        raise ValueError("target_degree must exceed 2.0 to stay connected")
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, area_meters, size=(n, 2))
    triangulation = Delaunay(coords)
    pairs = set()
    for simplex in triangulation.simplices:
        for a in range(3):
            u, v = int(simplex[a]), int(simplex[(a + 1) % 3])
            pairs.add((u, v) if u < v else (v, u))
    pairs = sorted(pairs)
    mean_degree = 2 * len(pairs) / n
    keep_probability = min(1.0, target_degree / mean_degree)
    kept = [p for p in pairs if rng.random() < keep_probability]
    edges = [
        (u, v, float(max(np.hypot(*(coords[u] - coords[v])), 1.0) / SPEED_MPS))
        for u, v in kept
    ]
    return RoadNetwork(n, edges, coords=coords).largest_component()
