"""Goal-directed point-to-point search: A* with admissible heuristics.

Section VI of the paper surveys the speedup-technique landscape — "A*,
Arc-flag (directing the search towards the goal), highway hierarchies,
transit node routing" — before settling on hub labels. This module
implements the goal-directed family:

* :class:`EuclideanHeuristic` — straight-line distance over the graph's
  coordinates, *auto-scaled to be admissible*: synthetic street lengths
  are not guaranteed to dominate the straight-line separation, so the
  heuristic is multiplied by the largest factor ``alpha`` for which
  ``alpha * euclid(u, v) / speed <= w(u, v)`` holds on every edge
  (computed once at construction). With ``alpha = 0`` (no coordinates or
  a degenerate edge) A* gracefully degrades to Dijkstra.
* :class:`LandmarkHeuristic` — ALT (A*, Landmarks, Triangle inequality):
  ``h(v) = max over landmarks l of |d(l, t) - d(l, v)|``, admissible on
  any graph, using a handful of far-apart landmarks selected greedily.

Both heuristics are *consistent*, so A* never re-expands settled
vertices and returns exact distances.
"""

from __future__ import annotations

import heapq
from math import inf

import numpy as np

from repro.constants import SPEED_MPS
from repro.exceptions import DisconnectedError, GraphError
from repro.roadnet.dijkstra import single_source_array
from repro.roadnet.graph import RoadNetwork


class EuclideanHeuristic:
    """Admissible straight-line lower bound (auto-scaled)."""

    def __init__(self, graph: RoadNetwork):
        if graph.coords is None:
            raise GraphError("EuclideanHeuristic needs vertex coordinates")
        self.graph = graph
        alpha = inf
        coords = graph.coords
        for u, v, w in graph.iter_edges():
            gap = float(np.hypot(*(coords[u] - coords[v]))) / SPEED_MPS
            if gap > 1e-12:
                alpha = min(alpha, w / gap)
        #: Admissibility factor: h(u) = alpha * euclid(u, t) / speed.
        self.alpha = min(alpha, 1.0) if alpha is not inf else 0.0

    def bind(self, target: int):
        """A per-target callable ``h(v)`` for one A* run."""
        coords = self.graph.coords
        tx, ty = coords[target]
        alpha = self.alpha

        def h(v: int) -> float:
            dx = coords[v, 0] - tx
            dy = coords[v, 1] - ty
            return alpha * (dx * dx + dy * dy) ** 0.5 / SPEED_MPS

        return h


class LandmarkHeuristic:
    """ALT lower bounds from greedily farthest-selected landmarks."""

    def __init__(self, graph: RoadNetwork, num_landmarks: int = 8, seed: int = 0):
        if num_landmarks < 1:
            raise ValueError("need at least one landmark")
        self.graph = graph
        rng = np.random.default_rng(seed)
        first = int(rng.integers(0, graph.num_vertices))
        landmarks = [first]
        tables = [single_source_array(graph, first)]
        while len(landmarks) < min(num_landmarks, graph.num_vertices):
            # Farthest-point selection: maximize distance to chosen set.
            closest = np.minimum.reduce(tables)
            closest[~np.isfinite(closest)] = -1.0  # unreachable: never pick
            candidate = int(np.argmax(closest))
            if candidate in landmarks:
                break
            landmarks.append(candidate)
            tables.append(single_source_array(graph, candidate))
        self.landmarks = landmarks
        #: (num_landmarks, |V|) distance table.
        self.tables = np.vstack(tables)

    def bind(self, target: int):
        """A per-target callable ``h(v) = max_l |d(l,t) - d(l,v)|``."""
        to_target = self.tables[:, target]
        tables = self.tables
        usable = np.isfinite(to_target)
        if not usable.any():
            return lambda v: 0.0
        tt = to_target[usable]
        tb = tables[usable]

        def h(v: int) -> float:
            column = tb[:, v]
            bounds = np.abs(tt - column)
            bounds[~np.isfinite(bounds)] = 0.0
            return float(bounds.max())

        return h


def astar_distance(graph: RoadNetwork, source: int, target: int, heuristic) -> float:
    """Exact ``d(source, target)`` via A* with a bound from
    ``heuristic.bind(target)``."""
    cost, _ = _astar(graph, source, target, heuristic, need_pred=False)
    return cost


def astar_path(graph: RoadNetwork, source: int, target: int, heuristic) -> list[int]:
    """Exact shortest path via A*."""
    _, pred = _astar(graph, source, target, heuristic, need_pred=True)
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return path


def astar_expansions(graph: RoadNetwork, source: int, target: int, heuristic) -> int:
    """Number of vertices settled by the A* run (for speedup studies)."""
    _astar.counter = 0
    _astar(graph, source, target, heuristic, need_pred=False)
    return _astar.counter


def _astar(graph, source, target, heuristic, need_pred):
    if source == target:
        _astar.counter = 0
        return 0.0, {}
    h = heuristic.bind(target)
    best = {source: 0.0}
    pred: dict[int, int] = {}
    settled: set[int] = set()
    heap = [(h(source), source)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    expansions = 0
    while heap:
        f, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        expansions += 1
        if u == target:
            _astar.counter = expansions
            return best[u], pred
        du = best[u]
        lo, hi = indptr[u], indptr[u + 1]
        for pos in range(lo, hi):
            v = int(indices[pos])
            if v in settled:
                continue
            nd = du + weights[pos]
            if nd < best.get(v, inf):
                best[v] = nd
                if need_pred:
                    pred[v] = u
                heapq.heappush(heap, (nd + h(v), v))
    _astar.counter = expansions
    raise DisconnectedError(source, target)


_astar.counter = 0


class AStarEngine:
    """Shortest-path engine answering point-to-point queries with A*.

    ``heuristic="landmark"`` (ALT, default — works on any graph) or
    ``"euclidean"`` (needs coordinates). Satisfies the
    :class:`~repro.roadnet.engine.ShortestPathEngine` protocol.
    """

    kind = "astar"
    #: No batched fast path exists (``distance_many`` is the scalar
    #: fallback loop), so consumers should stay on their own scalar
    #: loops at any fan-out width.
    batch_cutoff = float("inf")

    def __init__(self, graph: RoadNetwork, heuristic: str = "landmark", **kwargs):
        self.graph = graph
        if heuristic == "landmark":
            self.heuristic = LandmarkHeuristic(graph, **kwargs)
        elif heuristic == "euclidean":
            self.heuristic = EuclideanHeuristic(graph, **kwargs)
        else:
            raise ValueError(f"unknown heuristic {heuristic!r}")

    def distance(self, source: int, target: int) -> float:
        return astar_distance(self.graph, source, target, self.heuristic)

    def distance_many(self, source: int, targets) -> np.ndarray:
        """Batched queries via the shared scalar fallback loop: A* is
        inherently goal-directed (one heuristic binding per target), so
        there is no multi-target sweep to amortize."""
        from repro.roadnet.engine import distance_many_fallback

        return distance_many_fallback(self, source, targets)

    def path(self, source: int, target: int) -> list[int]:
        if source == target:
            return [source]
        return astar_path(self.graph, source, target, self.heuristic)

    def distances_from(self, source: int) -> np.ndarray:
        return single_source_array(self.graph, source)

    def vertices_within(self, source: int, radius: float) -> dict[int, float]:
        from repro.roadnet.dijkstra import vertices_within

        return vertices_within(self.graph, source, radius)
