"""Road-network substrate: graphs, shortest paths, caches and generators.

The paper's algorithms interact with the road network exclusively through
shortest-path distances ``d(u, v)`` and shortest paths. This subpackage
provides:

* :class:`~repro.roadnet.graph.RoadNetwork` — a compact CSR adjacency
  representation of an undirected weighted road graph;
* five interchangeable shortest-path engines
  (:class:`~repro.roadnet.engine.DijkstraEngine`,
  :class:`~repro.roadnet.matrix.MatrixEngine`,
  :class:`~repro.roadnet.hub_labeling.HubLabelEngine`,
  :class:`~repro.roadnet.astar.AStarEngine`,
  :class:`~repro.roadnet.contraction.CHEngine`) behind one protocol with
  both a scalar ``distance`` and a batched ``distance_many`` query plane;
* the paper's dual LRU caches for distances and paths plus the
  source-keyed row cache backing batched fan-outs
  (:mod:`repro.roadnet.cache`);
* synthetic city generators standing in for the Shanghai road network
  (:mod:`repro.roadnet.generators`).
"""

from repro.roadnet.astar import (
    AStarEngine,
    EuclideanHeuristic,
    LandmarkHeuristic,
    astar_distance,
    astar_path,
)
from repro.roadnet.cache import (
    LRUCache,
    ShortestPathCache,
    SourceRowCache,
    combined_key,
)
from repro.roadnet.contraction import CHEngine, ContractionHierarchy
from repro.roadnet.dijkstra import (
    dijkstra_distance,
    dijkstra_path,
    multi_target_distances,
    single_source_distances,
    vertices_within,
)
from repro.roadnet.engine import (
    ENGINE_KINDS,
    DijkstraEngine,
    ShortestPathEngine,
    distance_many_fallback,
    fan_out_distances,
    make_engine,
)
from repro.roadnet.generators import grid_city, random_geometric_city, ring_radial_city
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.hub_labeling import HubLabelEngine, HubLabels
from repro.roadnet.matrix import MatrixEngine

__all__ = [
    "RoadNetwork",
    "AStarEngine",
    "EuclideanHeuristic",
    "LandmarkHeuristic",
    "astar_distance",
    "astar_path",
    "CHEngine",
    "ContractionHierarchy",
    "LRUCache",
    "ShortestPathCache",
    "SourceRowCache",
    "combined_key",
    "dijkstra_distance",
    "dijkstra_path",
    "multi_target_distances",
    "single_source_distances",
    "vertices_within",
    "ShortestPathEngine",
    "DijkstraEngine",
    "MatrixEngine",
    "HubLabels",
    "HubLabelEngine",
    "ENGINE_KINDS",
    "distance_many_fallback",
    "fan_out_distances",
    "make_engine",
    "grid_city",
    "ring_radial_city",
    "random_geometric_city",
]
