"""Road-network substrate: graphs, shortest paths, caches and generators.

The paper's algorithms interact with the road network exclusively through
shortest-path distances ``d(u, v)`` and shortest paths. This subpackage
provides:

* :class:`~repro.roadnet.graph.RoadNetwork` — a compact CSR adjacency
  representation of an undirected weighted road graph;
* three interchangeable shortest-path engines
  (:class:`~repro.roadnet.engine.DijkstraEngine`,
  :class:`~repro.roadnet.matrix.MatrixEngine`,
  :class:`~repro.roadnet.hub_labeling.HubLabelEngine`) behind one protocol;
* the paper's dual LRU caches for distances and paths
  (:mod:`repro.roadnet.cache`);
* synthetic city generators standing in for the Shanghai road network
  (:mod:`repro.roadnet.generators`).
"""

from repro.roadnet.astar import (
    AStarEngine,
    EuclideanHeuristic,
    LandmarkHeuristic,
    astar_distance,
    astar_path,
)
from repro.roadnet.cache import LRUCache, ShortestPathCache, combined_key
from repro.roadnet.contraction import CHEngine, ContractionHierarchy
from repro.roadnet.dijkstra import (
    dijkstra_distance,
    dijkstra_path,
    single_source_distances,
    vertices_within,
)
from repro.roadnet.engine import (
    DijkstraEngine,
    ShortestPathEngine,
    make_engine,
)
from repro.roadnet.generators import grid_city, random_geometric_city, ring_radial_city
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.hub_labeling import HubLabelEngine, HubLabels
from repro.roadnet.matrix import MatrixEngine

__all__ = [
    "RoadNetwork",
    "AStarEngine",
    "EuclideanHeuristic",
    "LandmarkHeuristic",
    "astar_distance",
    "astar_path",
    "CHEngine",
    "ContractionHierarchy",
    "LRUCache",
    "ShortestPathCache",
    "combined_key",
    "dijkstra_distance",
    "dijkstra_path",
    "single_source_distances",
    "vertices_within",
    "ShortestPathEngine",
    "DijkstraEngine",
    "MatrixEngine",
    "HubLabels",
    "HubLabelEngine",
    "make_engine",
    "grid_city",
    "ring_radial_city",
    "random_geometric_city",
]
