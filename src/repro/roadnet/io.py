"""Serialization for road networks.

Two formats:

* **edge list CSV** (``u,v,weight`` lines plus optional ``# coords`` block)
  for interchange with external tools and hand-written fixtures;
* **npz** for fast round-trips of generated cities in the benchmark
  harness.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import GraphError
from repro.roadnet.graph import RoadNetwork


def save_npz(network: RoadNetwork, path: str | os.PathLike) -> None:
    """Save a road network to a compressed ``.npz`` archive."""
    payload = {
        "num_vertices": np.array([network.num_vertices]),
        "indptr": network.indptr,
        "indices": network.indices,
        "weights": network.weights,
    }
    if network.coords is not None:
        payload["coords"] = network.coords
    np.savez_compressed(path, **payload)


def load_npz(path: str | os.PathLike) -> RoadNetwork:
    """Load a road network saved by :func:`save_npz`."""
    with np.load(path) as data:
        n = int(data["num_vertices"][0])
        indptr, indices, weights = data["indptr"], data["indices"], data["weights"]
        coords = data["coords"] if "coords" in data else None
        edges = []
        for u in range(n):
            for pos in range(indptr[u], indptr[u + 1]):
                v = int(indices[pos])
                if u < v:
                    edges.append((u, v, float(weights[pos])))
        return RoadNetwork(n, edges, coords=coords)


def save_edgelist(network: RoadNetwork, path: str | os.PathLike) -> None:
    """Write ``u,v,weight`` CSV; coordinates appended as ``#C,x,y`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"#V,{network.num_vertices}\n")
        for u, v, w in network.iter_edges():
            handle.write(f"{u},{v},{w!r}\n")
        if network.coords is not None:
            for x, y in network.coords:
                handle.write(f"#C,{float(x)!r},{float(y)!r}\n")


def load_edgelist(path: str | os.PathLike) -> RoadNetwork:
    """Read a network written by :func:`save_edgelist`."""
    num_vertices = None
    edges: list[tuple[int, int, float]] = []
    coords: list[tuple[float, float]] = []
    with open(path, encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#V,"):
                num_vertices = int(line.split(",")[1])
            elif line.startswith("#C,"):
                _, x, y = line.split(",")
                coords.append((float(x), float(y)))
            elif line.startswith("#"):
                continue
            else:
                parts = line.split(",")
                if len(parts) != 3:
                    raise GraphError(f"{path}:{line_no}: malformed edge line {line!r}")
                edges.append((int(parts[0]), int(parts[1]), float(parts[2])))
    if num_vertices is None:
        raise GraphError(f"{path}: missing #V header")
    coord_array = np.array(coords) if coords else None
    return RoadNetwork(num_vertices, edges, coords=coord_array)
