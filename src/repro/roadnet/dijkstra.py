"""Dijkstra shortest paths over :class:`~repro.roadnet.graph.RoadNetwork`.

Pure-Python, dict-based Dijkstra tuned for the access patterns of the
ridesharing matcher:

* point-to-point queries with early termination at the target;
* bounded exploration (``cutoff``) for "all vertices within the waiting
  time ``w``" candidate filtering (Section I.B of the paper);
* single-source full sweeps for index construction.

Dict-based frontiers keep per-query cost proportional to the visited
region rather than ``|V|``, which matters when queries are short relative
to the network (the common case for pickup feasibility checks).
"""

from __future__ import annotations

import heapq
from math import inf

import numpy as np

from repro.exceptions import DisconnectedError
from repro.roadnet.graph import RoadNetwork


def _search(
    graph: RoadNetwork,
    source: int,
    target: int | None,
    cutoff: float,
    need_pred: bool,
):
    """Core Dijkstra loop. Returns ``(settled, pred)`` dicts."""
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    settled: dict[int, float] = {}
    pred: dict[int, int] = {}
    best: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled[u] = d
        if u == target:
            break
        lo, hi = indptr[u], indptr[u + 1]
        for pos in range(lo, hi):
            v = int(indices[pos])
            if v in settled:
                continue
            nd = d + weights[pos]
            if nd > cutoff:
                continue
            if nd < best.get(v, inf):
                best[v] = nd
                if need_pred:
                    pred[v] = u
                heapq.heappush(heap, (nd, v))
    return settled, pred


def dijkstra_distance(graph: RoadNetwork, source: int, target: int) -> float:
    """Shortest-path cost ``d(source, target)``.

    Raises :class:`~repro.exceptions.DisconnectedError` when no path
    exists.
    """
    if source == target:
        return 0.0
    settled, _ = _search(graph, source, target, inf, need_pred=False)
    if target not in settled:
        raise DisconnectedError(source, target)
    return settled[target]


def dijkstra_path(graph: RoadNetwork, source: int, target: int) -> list[int]:
    """Shortest path as a vertex list ``[source, ..., target]``."""
    if source == target:
        return [source]
    settled, pred = _search(graph, source, target, inf, need_pred=True)
    if target not in settled:
        raise DisconnectedError(source, target)
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return path


def single_source_distances(
    graph: RoadNetwork, source: int, cutoff: float = inf
) -> dict[int, float]:
    """Distances from ``source`` to every vertex within ``cutoff``."""
    settled, _ = _search(graph, source, None, cutoff, need_pred=False)
    return settled


def single_source_array(graph: RoadNetwork, source: int) -> np.ndarray:
    """Distances from ``source`` as a dense float64 array (inf = unreachable)."""
    settled, _ = _search(graph, source, None, inf, need_pred=False)
    out = np.full(graph.num_vertices, inf)
    for v, d in settled.items():
        out[v] = d
    return out


def multi_target_distances(
    graph: RoadNetwork, source: int, targets: set[int]
) -> tuple[dict[int, float], bool]:
    """One bounded single-source Dijkstra answering many targets.

    Runs the same relaxation loop as :func:`_search` (so settled values
    are bit-identical to point-to-point queries) but stops as soon as
    *every* requested target has been settled, instead of at one target.
    This is the batched fan-out primitive behind
    ``DijkstraEngine.distance_many``: a batch of ``k`` targets costs one
    search bounded by the farthest target, not ``k`` searches.

    Returns ``(settled, exhausted)`` — ``settled`` maps every settled
    vertex (a superset of the reachable targets) to its exact distance;
    ``exhausted`` is True when the whole component was swept, in which
    case any vertex absent from ``settled`` is unreachable.
    """
    if not targets:
        return {}, False
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    settled: dict[int, float] = {}
    best: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    outstanding = len(targets)
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled[u] = d
        if u in targets:
            outstanding -= 1
            if outstanding <= 0:
                return settled, False
        lo, hi = indptr[u], indptr[u + 1]
        for pos in range(lo, hi):
            v = int(indices[pos])
            if v in settled:
                continue
            nd = d + weights[pos]
            if nd < best.get(v, inf):
                best[v] = nd
                heapq.heappush(heap, (nd, v))
    return settled, True


def vertices_within(
    graph: RoadNetwork, source: int, radius: float
) -> dict[int, float]:
    """All vertices whose network distance from ``source`` is <= radius.

    This is the exact form of the paper's candidate filter: "servers that
    are farther than ``w`` from the pickup location are unable to respond".
    """
    return single_source_distances(graph, source, cutoff=radius)


def bidirectional_distance(graph: RoadNetwork, source: int, target: int) -> float:
    """Point-to-point distance via bidirectional Dijkstra.

    Settles roughly half the vertices of the unidirectional search on
    street-like graphs; used by :class:`~repro.roadnet.engine.DijkstraEngine`
    for long-range queries.
    """
    if source == target:
        return 0.0
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    dist = ({source: 0.0}, {target: 0.0})
    settled: tuple[set, set] = (set(), set())
    heaps = ([(0.0, source)], [(0.0, target)])
    mu = inf
    while heaps[0] and heaps[1]:
        side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        d, u = heapq.heappop(heaps[side])
        if u in settled[side]:
            continue
        settled[side].add(u)
        if u in settled[1 - side]:
            break
        lo, hi = indptr[u], indptr[u + 1]
        my_dist, other_dist = dist[side], dist[1 - side]
        for pos in range(lo, hi):
            v = int(indices[pos])
            nd = d + weights[pos]
            if nd < my_dist.get(v, inf):
                my_dist[v] = nd
                heapq.heappush(heaps[side], (nd, v))
                if v in other_dist:
                    mu = min(mu, nd + other_dist[v])
        if d >= mu:
            break
    # Final sweep: best meeting point among both frontiers.
    for v, dv in dist[0].items():
        dw = dist[1].get(v)
        if dw is not None and dv + dw < mu:
            mu = dv + dw
    if mu is inf:
        raise DisconnectedError(source, target)
    return mu
