"""Contraction hierarchies (CH).

The last member of the paper's surveyed speedup family (Section VI:
"highway hierarchies (building shortcuts to reduce search space)").
Vertices are contracted in importance order; each contraction preserves
all shortest paths among the remaining vertices by inserting *shortcuts*
where no witness path exists. Queries run a bidirectional Dijkstra that
only relaxes edges toward higher-ranked vertices; the best meeting point
over both search spaces is the exact distance.

Implementation notes
--------------------
* Ordering uses the classic lazy-heap heuristic: priority = edge
  difference (shortcuts added − edges removed) + number of already
  contracted neighbors; priorities are re-evaluated on pop.
* Witness searches are plain Dijkstras on the uncontracted remainder,
  budgeted by settled-vertex count; an exhausted budget just means a
  (harmless) extra shortcut.
* The upward graph keeps, per vertex, only arcs to higher-ranked
  neighbors — both original edges and shortcuts.
"""

from __future__ import annotations

import heapq
from math import inf

import numpy as np

from repro.exceptions import DisconnectedError
from repro.roadnet.graph import RoadNetwork

#: Witness searches stop after settling this many vertices.
_WITNESS_BUDGET = 60


class ContractionHierarchy:
    """Preprocessed CH over a road network; answers exact distances."""

    def __init__(self, graph: RoadNetwork, witness_budget: int = _WITNESS_BUDGET):
        self.graph = graph
        self.witness_budget = witness_budget
        n = graph.num_vertices
        # Working adjacency (mutated during contraction): v -> {u: weight}.
        adjacency: list[dict[int, float]] = [dict() for _ in range(n)]
        for u, v, w in graph.iter_edges():
            adjacency[u][v] = min(w, adjacency[u].get(v, inf))
            adjacency[v][u] = min(w, adjacency[v].get(u, inf))

        self.rank = [0] * n
        self.num_shortcuts = 0
        contracted = [False] * n
        contracted_neighbors = [0] * n

        def simulate(v: int) -> tuple[int, list[tuple[int, int, float]]]:
            """Shortcuts needed to contract ``v`` now."""
            neighbors = [u for u in adjacency[v] if not contracted[u]]
            shortcuts: list[tuple[int, int, float]] = []
            for i, u in enumerate(neighbors):
                for w_vertex in neighbors[i + 1 :]:
                    through = adjacency[v][u] + adjacency[v][w_vertex]
                    if not self._has_witness(
                        adjacency, contracted, u, w_vertex, v, through
                    ):
                        shortcuts.append((u, w_vertex, through))
            return len(shortcuts) - len(neighbors), shortcuts

        heap: list[tuple[float, int]] = []
        for v in range(n):
            edge_diff, _ = simulate(v)
            heapq.heappush(heap, (float(edge_diff), v))

        order = 0
        while heap:
            _, v = heapq.heappop(heap)
            if contracted[v]:
                continue
            edge_diff, shortcuts = simulate(v)
            priority = float(edge_diff + contracted_neighbors[v])
            if heap and priority > heap[0][0] + 1e-9:
                heapq.heappush(heap, (priority, v))  # lazy re-evaluation
                continue
            # Contract v.
            for u, w_vertex, weight in shortcuts:
                if weight < adjacency[u].get(w_vertex, inf):
                    adjacency[u][w_vertex] = weight
                    adjacency[w_vertex][u] = weight
                    self.num_shortcuts += 1
            contracted[v] = True
            self.rank[v] = order
            order += 1
            for u in adjacency[v]:
                if not contracted[u]:
                    contracted_neighbors[u] += 1

        # Upward arcs only (to higher rank), original + shortcuts.
        self._up: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for v in range(n):
            for u, w in adjacency[v].items():
                if self.rank[u] > self.rank[v]:
                    self._up[v].append((u, w))

    def _has_witness(
        self, adjacency, contracted, source, target, skip, limit
    ) -> bool:
        """Is there a path source->target avoiding ``skip`` with cost <=
        limit, in the uncontracted remainder? Budgeted Dijkstra."""
        best = {source: 0.0}
        heap = [(0.0, source)]
        settled = 0
        while heap and settled < self.witness_budget:
            d, u = heapq.heappop(heap)
            if d > best.get(u, inf):
                continue
            if u == target:
                return True
            if d > limit:
                return False
            settled += 1
            for v, w in adjacency[u].items():
                if v == skip or contracted[v]:
                    continue
                nd = d + w
                if nd <= limit + 1e-12 and nd < best.get(v, inf):
                    best[v] = nd
                    heapq.heappush(heap, (nd, v))
        return False

    # ------------------------------------------------------------------
    def upward_distances(self, vertex: int) -> dict[int, float]:
        """Full upward Dijkstra from ``vertex`` (its CH search space).

        The upward search space of a vertex is tiny relative to the
        graph, so sweeping it to exhaustion once and reusing it across a
        whole batch of targets is the CH batching lever: distances to
        ``k`` targets cost one forward sweep plus ``k`` backward sweeps
        instead of ``k`` bidirectional searches.
        """
        dist: dict[int, float] = {vertex: 0.0}
        heap: list[tuple[float, int]] = [(0.0, vertex)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, inf):
                continue
            for v, w in self._up[u]:
                nd = d + w
                if nd < dist.get(v, inf):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def query_many(self, source: int, targets) -> np.ndarray:
        """Batched fan-out: one shared forward upward sweep, one backward
        upward sweep per target, meeting-point minimum per target.
        ``inf`` marks unreachable targets (no exception)."""
        out = np.full(len(targets), inf, dtype=np.float64)
        if not len(targets):
            return out
        forward = self.upward_distances(source)
        backward_cache: dict[int, float] = {}
        for i, raw in enumerate(targets):
            target = int(raw)
            if target == source:
                out[i] = 0.0
                continue
            cached = backward_cache.get(target)
            if cached is not None:
                out[i] = cached
                continue
            best = inf
            for u, db in self.upward_distances(target).items():
                df = forward.get(u)
                if df is not None and df + db < best:
                    best = df + db
            backward_cache[target] = best
            out[i] = best
        return out

    def query(self, source: int, target: int) -> float:
        """Exact shortest-path distance via bidirectional upward search."""
        if source == target:
            return 0.0
        dist_f = {source: 0.0}
        dist_b = {target: 0.0}
        heap_f = [(0.0, source)]
        heap_b = [(0.0, target)]
        best = inf
        while heap_f or heap_b:
            for heap, dist, other in (
                (heap_f, dist_f, dist_b),
                (heap_b, dist_b, dist_f),
            ):
                if not heap:
                    continue
                d, u = heapq.heappop(heap)
                if d > dist.get(u, inf) or d > best:
                    continue
                if u in other:
                    best = min(best, d + other[u])
                for v, w in self._up[u]:
                    nd = d + w
                    if nd < dist.get(v, inf):
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))
            if heap_f and heap_b and min(heap_f[0][0], heap_b[0][0]) > best:
                break
        if best is inf:
            raise DisconnectedError(source, target)
        return best


class CHEngine:
    """Shortest-path engine answering distances from a contraction
    hierarchy (paths and ball queries fall back to Dijkstra, like the
    hub-label engine)."""

    kind = "ch"
    #: A single query's early-terminating bidirectional search beats an
    #: exhaustive forward sweep; sharing the sweep pays from 2 targets on.
    batch_cutoff = 1

    def __init__(self, graph: RoadNetwork, witness_budget: int = _WITNESS_BUDGET):
        self.graph = graph
        self.hierarchy = ContractionHierarchy(graph, witness_budget=witness_budget)

    def distance(self, source: int, target: int) -> float:
        return self.hierarchy.query(source, target)

    def distance_many(self, source: int, targets) -> np.ndarray:
        """Batched fan-out sharing one forward upward sweep per call."""
        return self.hierarchy.query_many(source, targets)

    def path(self, source: int, target: int) -> list[int]:
        from repro.roadnet.dijkstra import dijkstra_path

        return dijkstra_path(self.graph, source, target)

    def distances_from(self, source: int):
        from repro.roadnet.dijkstra import single_source_array

        return single_source_array(self.graph, source)

    def vertices_within(self, source: int, radius: float) -> dict[int, float]:
        from repro.roadnet.dijkstra import vertices_within

        return vertices_within(self.graph, source, radius)

    def stats(self) -> dict[str, float]:
        return {
            "num_shortcuts": self.hierarchy.num_shortcuts,
            "num_vertices": self.graph.num_vertices,
        }
