"""LRU caches for shortest-path computations.

Section VI of the paper: "we implement two LRU caches using a single hash
table, one storing up to ten million shortest distances and the other
storing up to ten thousand shortest paths (...) Both caches are indexed
only by the starting and destination points (...) by defining the index
for two vertices s and e as ``i = id(s) * |V| + id(e)``".

:func:`combined_key` implements exactly that indexing.
:class:`ShortestPathCache` holds both caches behind one facade; the hash
table backing each LRU is a Python dict (the language-native analogue of
the paper's single hash table), with distance entries and path entries
disambiguated by key parity so that both logically live in one keyspace.
"""

from __future__ import annotations

import threading as _threading
from typing import Any, Hashable


def combined_key(source: int, target: int, num_vertices: int) -> int:
    """The paper's composite cache index ``id(s) * |V| + id(e)``."""
    return source * num_vertices + target


class LRUCache:
    """A minimal, instrumented LRU cache.

    Python dicts iterate in insertion order, so recency is maintained by
    re-inserting on access; eviction pops the oldest entry. ``hits`` /
    ``misses`` counters support the cache-effectiveness microbenchmarks.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses")

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        try:
            value = self._data.pop(key)
        except KeyError:
            self.misses += 1
            return default
        self._data[key] = value
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts the least recently used entry.

        Eviction tolerates the oldest key vanishing between selection and
        deletion: the async quoting pipeline shares engine caches between
        the simulator thread and quote workers, and every cached value is
        a deterministic function of its key, so a lost eviction race only
        means redundant work — never a wrong value.
        """
        try:
            del self._data[key]
        except KeyError:
            if len(self._data) >= self.maxsize:
                try:
                    del self._data[next(iter(self._data))]
                except (KeyError, StopIteration, RuntimeError):
                    pass
        self._data[key] = value

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self._data)}/{self.maxsize}, "
            f"hit_rate={self.hit_rate:.3f})"
        )


class SourceRowCache:
    """LRU of partial single-source distance rows, keyed by source vertex.

    The batched fan-out path (``DijkstraEngine.distance_many``) settles a
    region around one source per call; this cache keeps those regions so
    consecutive batches from the same decision point — the kinetic tree's
    exact access pattern — reuse the swept region instead of re-running
    the search.

    Each entry is ``(settled, exhausted)``: ``settled`` maps vertex ->
    exact distance for the region swept so far, ``exhausted`` records
    that the source's whole component was settled (so a vertex missing
    from ``settled`` is provably unreachable). Re-inserting a source
    *merges* the new region into the old one — settled distances are
    exact regardless of where a bounded search stopped, so rows only ever
    grow more complete.

    Eviction is bounded on two axes: ``capacity`` rows *and*
    ``max_cells`` total settled entries across all rows — a row can be
    O(|V|) on large graphs (one unreachable target sweeps the whole
    component), so a row-count cap alone would admit O(capacity * |V|)
    memory. The most recently merged row is always retained, even when
    it alone exceeds the cell budget (it is the active working set).
    """

    __slots__ = (
        "capacity",
        "max_cells",
        "_rows",
        "_cells",
        "_lock",
        "hits",
        "misses",
    )

    def __init__(self, capacity: int, max_cells: int = 2_000_000):
        if capacity < 1:
            raise ValueError("row cache capacity must be >= 1")
        if max_cells < 1:
            raise ValueError("row cache max_cells must be >= 1")
        self.capacity = capacity
        self.max_cells = max_cells
        self._rows: dict[int, tuple[dict[int, float], bool]] = {}
        self._cells = 0
        # get() and merge() both pop-and-reinsert row entries, and merge
        # additionally does read-modify-write bookkeeping on the _cells
        # budget; concurrent quote workers interleaving those sequences
        # would orphan entries' cell counts and drift the budget
        # permanently. One lock over both keeps the counter exact; the
        # critical sections are dictionary ops, far cheaper than the
        # Dijkstra sweeps they guard.
        self._lock = _threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, source: int) -> tuple[dict[int, float], bool] | None:
        """The cached ``(settled, exhausted)`` row for ``source``,
        refreshing its recency on a hit."""
        with self._lock:
            try:
                entry = self._rows.pop(source)
            except KeyError:
                self.misses += 1
                return None
            self._rows[source] = entry
            self.hits += 1
            return entry

    def merge(
        self, source: int, settled: dict[int, float], exhausted: bool
    ) -> tuple[dict[int, float], bool]:
        """Fold a freshly swept region into the cached row (grow-only),
        then evict least-recently-used rows past either budget."""
        with self._lock:
            prior = self._rows.pop(source, None)
            if prior is not None:
                merged, was_exhausted = prior
                self._cells -= len(merged)
                merged.update(settled)
                entry = (merged, exhausted or was_exhausted)
            else:
                entry = (dict(settled), exhausted)
            self._cells += len(entry[0])
            self._rows[source] = entry
            while (
                len(self._rows) > self.capacity or self._cells > self.max_cells
            ) and len(self._rows) > 1:
                oldest = next(iter(self._rows))
                evicted, _ = self._rows.pop(oldest)
                self._cells -= len(evicted)
            return entry

    def clear(self) -> None:
        with self._lock:
            self._rows.clear()
            self._cells = 0
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {
            "row_hits": self.hits,
            "row_misses": self.misses,
            "row_hit_rate": self.hits / total if total else 0.0,
            "row_entries": len(self._rows),
            "row_cells": self._cells,
        }


class ShortestPathCache:
    """The paper's dual distance/path cache facade.

    Separate capacities mirror the paper's rationale: "more distances can
    be stored in memory, and shortest distance is needed more often than
    shortest path". Distance keys are even (``2i``), path keys odd
    (``2i + 1``), so both families share one integer keyspace as in the
    paper's single-hash-table design.
    """

    __slots__ = ("num_vertices", "distances", "paths")

    def __init__(
        self,
        num_vertices: int,
        distance_capacity: int = 1_000_000,
        path_capacity: int = 10_000,
    ):
        self.num_vertices = num_vertices
        self.distances = LRUCache(distance_capacity)
        self.paths = LRUCache(path_capacity)

    def _key(self, source: int, target: int) -> int:
        return combined_key(source, target, self.num_vertices)

    def get_distance(self, source: int, target: int) -> float | None:
        """Cached ``d(source, target)`` or ``None``."""
        return self.distances.get(2 * self._key(source, target))

    def put_distance(self, source: int, target: int, value: float) -> None:
        """Cache a distance both ways (the graph is undirected)."""
        self.distances.put(2 * self._key(source, target), value)
        self.distances.put(2 * self._key(target, source), value)

    def get_path(self, source: int, target: int) -> list[int] | None:
        """Cached shortest path or ``None``."""
        return self.paths.get(2 * self._key(source, target) + 1)

    def put_path(self, source: int, target: int, path: list[int]) -> None:
        """Cache a path (one direction only; reversal is the caller's call)."""
        self.paths.put(2 * self._key(source, target) + 1, path)

    def clear(self) -> None:
        """Drop both caches."""
        self.distances.clear()
        self.paths.clear()

    def stats(self) -> dict[str, float]:
        """Hit-rate and occupancy snapshot for reporting."""
        return {
            "distance_hits": self.distances.hits,
            "distance_misses": self.distances.misses,
            "distance_hit_rate": self.distances.hit_rate,
            "distance_entries": len(self.distances),
            "path_hits": self.paths.hits,
            "path_misses": self.paths.misses,
            "path_hit_rate": self.paths.hit_rate,
            "path_entries": len(self.paths),
        }
