"""Hub labeling via pruned landmark labeling.

Section VI of the paper: "We implement the state-of-art hub-labeling
algorithm — a fast and practical algorithm to heuristically construct the
distance labeling on large road networks, where each vertex records a set
of intermediate vertices (and their distance to them) for the shortest
path computation".

This module implements the standard pruned-landmark-labeling construction
(process vertices in importance order; run a Dijkstra from each, pruning
any vertex already covered at equal-or-smaller distance by existing
labels). Queries are exact::

    d(u, v) = min over common hubs h of  L(u)[h] + L(v)[h]

Labels are frozen into sorted parallel numpy arrays per vertex so queries
run as a linear merge.
"""

from __future__ import annotations

import heapq
from math import inf

import numpy as np

from repro.exceptions import DisconnectedError
from repro.roadnet.dijkstra import dijkstra_path, vertices_within
from repro.roadnet.graph import RoadNetwork


class HubLabels:
    """Exact 2-hop distance labels for a road network."""

    def __init__(self, graph: RoadNetwork, order: np.ndarray | None = None):
        self.graph = graph
        if order is None:
            order = self._default_order(graph)
        self.order = np.asarray(order, dtype=np.int64)
        if sorted(self.order.tolist()) != list(range(graph.num_vertices)):
            raise ValueError("order must be a permutation of all vertices")
        self._build()

    @staticmethod
    def _default_order(graph: RoadNetwork) -> np.ndarray:
        """Vertices by descending degree (ties by id) — a cheap, effective
        importance heuristic for street graphs."""
        degrees = np.diff(graph.indptr)
        return np.lexsort((np.arange(graph.num_vertices), -degrees))

    def _build(self) -> None:
        graph = self.graph
        n = graph.num_vertices
        rank = np.empty(n, dtype=np.int64)
        rank[self.order] = np.arange(n)
        self._rank = rank
        # Working representation: per-vertex dict {hub_rank: dist}.
        labels: list[dict[int, float]] = [dict() for _ in range(n)]
        indptr, indices, weights = graph.indptr, graph.indices, graph.weights

        for hub_rank, root in enumerate(self.order.tolist()):
            root_label = labels[root]
            settled: set[int] = set()
            best = {root: 0.0}
            heap = [(0.0, root)]
            while heap:
                d, u = heapq.heappop(heap)
                if u in settled:
                    continue
                settled.add(u)
                # Prune if some earlier hub already certifies d(root, u) <= d.
                u_label = labels[u]
                pruned = False
                small, large = (
                    (root_label, u_label)
                    if len(root_label) < len(u_label)
                    else (u_label, root_label)
                )
                for h, dh in small.items():
                    other = large.get(h)
                    if other is not None and dh + other <= d:
                        pruned = True
                        break
                if pruned:
                    continue
                u_label[hub_rank] = d
                lo, hi = indptr[u], indptr[u + 1]
                for pos in range(lo, hi):
                    v = int(indices[pos])
                    if v in settled:
                        continue
                    nd = d + weights[pos]
                    if nd < best.get(v, inf):
                        best[v] = nd
                        heapq.heappush(heap, (nd, v))

        # Freeze into sorted parallel arrays for merge-join queries.
        self._hubs: list[np.ndarray] = []
        self._dists: list[np.ndarray] = []
        for label in labels:
            hubs = np.fromiter(label.keys(), dtype=np.int64, count=len(label))
            dists = np.fromiter(label.values(), dtype=np.float64, count=len(label))
            srt = np.argsort(hubs)
            self._hubs.append(hubs[srt])
            self._dists.append(dists[srt])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> float:
        """Exact shortest-path distance via label merge."""
        if source == target:
            return 0.0
        h1, d1 = self._hubs[source], self._dists[source]
        h2, d2 = self._hubs[target], self._dists[target]
        i = j = 0
        best = inf
        n1, n2 = len(h1), len(h2)
        while i < n1 and j < n2:
            a, b = h1[i], h2[j]
            if a == b:
                total = d1[i] + d2[j]
                if total < best:
                    best = total
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        if best is inf:
            raise DisconnectedError(source, target)
        return float(best)

    def query_many(self, source: int, targets) -> np.ndarray:
        """Batched label merge: all targets' label arrays are stacked
        into one pair of flat arrays and joined against the source label
        with a single ``searchsorted`` (labels are hub-sorted), then
        reduced per target with ``np.minimum.at``.

        The per-target Python merge loop disappears, and no
        ``O(|V|)`` scratch is allocated — work is proportional to the
        stacked label entries. The sums are the same ``d(s,h) + d(h,t)``
        floats the scalar merge adds, so results are bit-identical to
        :meth:`query`; unreachable targets come back as ``inf`` instead
        of raising.
        """
        k = len(targets)
        out = np.full(k, inf, dtype=np.float64)
        if k == 0:
            return out
        idx = np.asarray(targets, dtype=np.int64)
        src_hubs, src_dists = self._hubs[source], self._dists[source]
        if src_hubs.size:
            lengths = np.fromiter(
                (len(self._hubs[t]) for t in idx), dtype=np.int64, count=k
            )
            if int(lengths.sum()):
                all_hubs = np.concatenate([self._hubs[t] for t in idx])
                all_dists = np.concatenate([self._dists[t] for t in idx])
                owner = np.repeat(np.arange(k), lengths)
                pos = np.searchsorted(src_hubs, all_hubs)
                pos[pos == src_hubs.size] = 0  # clamp; masked below
                shared = src_hubs[pos] == all_hubs
                np.minimum.at(
                    out,
                    owner[shared],
                    src_dists[pos[shared]] + all_dists[shared],
                )
        out[idx == source] = 0.0
        return out

    @property
    def average_label_size(self) -> float:
        """Mean number of (hub, distance) entries per vertex."""
        return float(np.mean([len(h) for h in self._hubs]))

    @property
    def total_entries(self) -> int:
        """Total label entries across all vertices."""
        return int(sum(len(h) for h in self._hubs))


class HubLabelEngine:
    """Shortest-path engine answering distances from hub labels.

    Paths (needed only for vehicle movement, far less often than
    distances — the paper's observation behind its asymmetric caches) fall
    back to Dijkstra.
    """

    kind = "hub_label"
    #: The scalar two-pointer merge is cheap on short labels; the stacked
    #: vectorized join pays from a few targets on.
    batch_cutoff = 2

    def __init__(self, graph: RoadNetwork, order: np.ndarray | None = None):
        self.graph = graph
        self.labels = HubLabels(graph, order=order)

    def distance(self, source: int, target: int) -> float:
        """Exact distance via the labeling."""
        return self.labels.query(source, target)

    def distance_many(self, source: int, targets) -> np.ndarray:
        """Batched fan-out via the stacked vectorized label merge."""
        return self.labels.query_many(source, targets)

    def path(self, source: int, target: int) -> list[int]:
        """Shortest path via Dijkstra fallback."""
        return dijkstra_path(self.graph, source, target)

    def distances_from(self, source: int) -> np.ndarray:
        """Dense distance row (label query per vertex)."""
        out = np.empty(self.graph.num_vertices)
        for v in range(self.graph.num_vertices):
            try:
                out[v] = self.labels.query(source, v)
            except DisconnectedError:
                out[v] = inf
        return out

    def vertices_within(self, source: int, radius: float) -> dict[int, float]:
        """Vertices within ``radius``, via bounded Dijkstra (cheaper than
        querying every label for local neighborhoods)."""
        return vertices_within(self.graph, source, radius)

    def stats(self) -> dict[str, float]:
        """Label-size statistics for the harness."""
        return {
            "average_label_size": self.labels.average_label_size,
            "total_entries": self.labels.total_entries,
        }
