"""Shortest-path engine protocol, the cached Dijkstra engine, and a factory.

Every matcher, tree, and simulator component takes a
:class:`ShortestPathEngine` — the single seam between the scheduling
algorithms and the road network, exactly mirroring the paper where all
algorithms consume ``d(u, v)`` and shortest paths.
"""

from __future__ import annotations

from math import inf
from typing import Protocol, runtime_checkable

import numpy as np

from repro.constants import DEFAULT_DISTANCE_CACHE_SIZE, DEFAULT_PATH_CACHE_SIZE
from repro.roadnet.cache import ShortestPathCache
from repro.roadnet.dijkstra import (
    dijkstra_distance,
    dijkstra_path,
    single_source_array,
    vertices_within,
)
from repro.roadnet.graph import RoadNetwork


@runtime_checkable
class ShortestPathEngine(Protocol):
    """What the rest of the library needs from a road network."""

    graph: RoadNetwork

    def distance(self, source: int, target: int) -> float:
        """Exact shortest-path cost ``d(source, target)`` in seconds."""
        ...

    def path(self, source: int, target: int) -> list[int]:
        """A shortest path as a vertex list ``[source, ..., target]``."""
        ...

    def distances_from(self, source: int) -> np.ndarray:
        """Dense array of distances from ``source`` to every vertex."""
        ...

    def vertices_within(self, source: int, radius: float) -> dict[int, float]:
        """Vertices (with distances) whose network distance <= ``radius``."""
        ...


class DijkstraEngine:
    """On-demand Dijkstra behind the paper's dual LRU caches.

    This is the configuration the paper describes for the full Shanghai
    network: exact point-to-point searches whose results are memoized in
    a large distance cache and a small path cache, exploiting the strong
    locality of matcher query streams.
    """

    kind = "dijkstra"

    def __init__(
        self,
        graph: RoadNetwork,
        distance_cache_size: int = DEFAULT_DISTANCE_CACHE_SIZE,
        path_cache_size: int = DEFAULT_PATH_CACHE_SIZE,
    ):
        self.graph = graph
        self.cache = ShortestPathCache(
            graph.num_vertices,
            distance_capacity=distance_cache_size,
            path_capacity=path_cache_size,
        )

    def distance(self, source: int, target: int) -> float:
        """Cached exact distance."""
        if source == target:
            return 0.0
        cached = self.cache.get_distance(source, target)
        if cached is not None:
            return cached
        value = dijkstra_distance(self.graph, source, target)
        self.cache.put_distance(source, target, value)
        return value

    def path(self, source: int, target: int) -> list[int]:
        """Cached shortest path (cached one direction; reversed on demand)."""
        if source == target:
            return [source]
        cached = self.cache.get_path(source, target)
        if cached is not None:
            return list(cached)
        reverse = self.cache.get_path(target, source)
        if reverse is not None:
            return list(reversed(reverse))
        value = dijkstra_path(self.graph, source, target)
        self.cache.put_path(source, target, value)
        self.cache.put_distance(
            source, target, _path_cost(self.graph, value)
        )
        return list(value)

    def distances_from(self, source: int) -> np.ndarray:
        """Full single-source sweep (uncached; used by index builders)."""
        return single_source_array(self.graph, source)

    def vertices_within(self, source: int, radius: float) -> dict[int, float]:
        """Bounded Dijkstra ball around ``source``."""
        return vertices_within(self.graph, source, radius)

    def stats(self) -> dict[str, float]:
        """Cache statistics passthrough."""
        return self.cache.stats()


def _path_cost(graph: RoadNetwork, path: list[int]) -> float:
    """Sum of edge weights along ``path``."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += graph.edge_weight(u, v)
    return total


def make_engine(graph: RoadNetwork, kind: str = "auto", **kwargs) -> ShortestPathEngine:
    """Build a shortest-path engine.

    ``kind``:
      * ``"auto"`` — matrix engine for graphs small enough to precompute
        all pairs (the benchmark configuration), Dijkstra otherwise;
      * ``"matrix"`` | ``"dijkstra"`` | ``"hub_label"`` — explicit choice.
    """
    from repro.roadnet.astar import AStarEngine
    from repro.roadnet.hub_labeling import HubLabelEngine
    from repro.roadnet.matrix import MatrixEngine

    if kind == "auto":
        kind = "matrix" if graph.num_vertices <= 6_000 else "dijkstra"
    if kind == "matrix":
        return MatrixEngine(graph, **kwargs)
    if kind == "dijkstra":
        return DijkstraEngine(graph, **kwargs)
    if kind == "hub_label":
        return HubLabelEngine(graph, **kwargs)
    if kind == "astar":
        return AStarEngine(graph, **kwargs)
    if kind == "ch":
        from repro.roadnet.contraction import CHEngine

        return CHEngine(graph, **kwargs)
    raise ValueError(f"unknown engine kind {kind!r}")
