"""Shortest-path engine protocol, the cached Dijkstra engine, and a factory.

Every matcher, tree, and simulator component takes a
:class:`ShortestPathEngine` — the single seam between the scheduling
algorithms and the road network, exactly mirroring the paper where all
algorithms consume ``d(u, v)`` and shortest paths.

The protocol has two query planes: the scalar ``distance(u, v)`` the
paper describes, and the batched ``distance_many(u, targets)`` fan-out
plane the matcher hot paths (kinetic-tree insertion, batch cost-matrix
quoting) use to amortize shortest-path work across a whole candidate set
radiating from one decision point. Every engine implements both with
identical per-element semantics.
"""

from __future__ import annotations

from math import inf
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.constants import (
    DEFAULT_DISTANCE_CACHE_SIZE,
    DEFAULT_PATH_CACHE_SIZE,
    DEFAULT_ROW_CACHE_SIZE,
)
from repro.exceptions import DisconnectedError
from repro.obs.trace import NULL_TRACER, clock
from repro.roadnet.cache import ShortestPathCache, SourceRowCache
from repro.roadnet.dijkstra import (
    dijkstra_distance,
    dijkstra_path,
    multi_target_distances,
    single_source_array,
    vertices_within,
)
from repro.roadnet.graph import RoadNetwork


@runtime_checkable
class ShortestPathEngine(Protocol):
    """What the rest of the library needs from a road network."""

    graph: RoadNetwork

    def distance(self, source: int, target: int) -> float:
        """Exact shortest-path cost ``d(source, target)`` in seconds."""
        ...

    def distance_many(self, source: int, targets: Sequence[int]) -> np.ndarray:
        """Exact ``d(source, t)`` for every ``t`` in ``targets``, as a
        float64 array aligned with ``targets``; ``inf`` marks unreachable
        targets (no exception). This is the batched fan-out query the
        matcher hot paths use — engines amortize shortest-path work
        across the whole target set."""
        ...

    def path(self, source: int, target: int) -> list[int]:
        """A shortest path as a vertex list ``[source, ..., target]``."""
        ...

    def distances_from(self, source: int) -> np.ndarray:
        """Dense array of distances from ``source`` to every vertex."""
        ...

    def vertices_within(self, source: int, radius: float) -> dict[int, float]:
        """Vertices (with distances) whose network distance <= ``radius``."""
        ...


def distance_many_fallback(
    engine: "ShortestPathEngine", source: int, targets: Sequence[int]
) -> np.ndarray:
    """Shared scalar-loop implementation of ``distance_many``.

    Engines without a batched fast path (A*) delegate here so the whole
    engine family still satisfies the protocol with identical semantics:
    element ``i`` equals ``engine.distance(source, targets[i])``, with
    ``inf`` (not an exception) for unreachable targets.
    """
    out = np.empty(len(targets), dtype=np.float64)
    for i, target in enumerate(targets):
        try:
            out[i] = engine.distance(source, int(target))
        except DisconnectedError:
            out[i] = inf
    return out


def fan_out_distances(engine, source: int, targets):
    """Fan-out distances respecting the engine's ``batch_cutoff``.

    Consumers of the batched plane (kinetic tree, batch quoting) call
    this instead of ``distance_many`` directly: fan-outs at or below the
    engine's advertised ``batch_cutoff`` run as a plain scalar loop —
    where per-call batching overhead outweighs the amortization win
    (e.g. the matrix engine's O(1) lookups) — and wider ones go through
    the engine's batched fast path. Both produce identical values
    (``inf`` = unreachable); the cutoff is purely a performance dial.
    """
    if len(targets) <= getattr(engine, "batch_cutoff", 0):
        distance = engine.distance
        out = []
        for target in targets:
            try:
                out.append(distance(source, target))
            except DisconnectedError:
                out.append(inf)
        return out
    return engine.distance_many(source, targets)


class DijkstraEngine:
    """On-demand Dijkstra behind the paper's dual LRU caches.

    This is the configuration the paper describes for the full Shanghai
    network: exact point-to-point searches whose results are memoized in
    a large distance cache and a small path cache, exploiting the strong
    locality of matcher query streams.
    """

    kind = "dijkstra"
    #: Always batch: even single-target calls benefit from the row cache
    #: and the bounded multi-target sweep.
    batch_cutoff = 0
    #: Protocol-level hint (paired with ``batch_cutoff``): a
    #: ``distance_many`` call is worth issuing purely to warm caches for
    #: later scalar queries. Engines without cross-plane caching leave
    #: this False so consumers skip discarded-result prefetches.
    batch_prefetch = True
    #: Span collector for fan-out sweeps (repro.obs); the simulator
    #: swaps its run's tracer in. A class attribute so un-instrumented
    #: engines (tests, benchmarks) stay no-ops without per-instance
    #: state. Write-only: no routing decision ever reads it.
    tracer = NULL_TRACER

    def __init__(
        self,
        graph: RoadNetwork,
        distance_cache_size: int = DEFAULT_DISTANCE_CACHE_SIZE,
        path_cache_size: int = DEFAULT_PATH_CACHE_SIZE,
        row_cache_size: int = DEFAULT_ROW_CACHE_SIZE,
    ):
        self.graph = graph
        self.cache = ShortestPathCache(
            graph.num_vertices,
            distance_capacity=distance_cache_size,
            path_capacity=path_cache_size,
        )
        #: Source-keyed partial rows feeding ``distance_many`` (batched
        #: fan-out); grows with every bounded multi-target sweep.
        self.row_cache = SourceRowCache(row_cache_size)

    def distance(self, source: int, target: int) -> float:
        """Cached exact distance."""
        if source == target:
            return 0.0
        cached = self.cache.get_distance(source, target)
        if cached is not None:
            return cached
        value = dijkstra_distance(self.graph, source, target)
        self.cache.put_distance(source, target, value)
        return value

    def distance_many(self, source: int, targets) -> np.ndarray:
        """Batched fan-out: one bounded single-source Dijkstra that stops
        once all targets are settled, against the source-keyed row cache.

        Values are bit-identical to per-pair :meth:`distance` calls (the
        same relaxation loop settles them); reachable results are also
        folded into the pair cache so scalar and batched query streams
        share locality.
        """
        source = int(source)
        tr = self.tracer
        t0 = clock() if tr.enabled else 0.0
        out = np.empty(len(targets), dtype=np.float64)
        row = self.row_cache.get(source)
        settled, exhausted = row if row is not None else ({}, False)
        missing: set[int] = set()
        for i, raw in enumerate(targets):
            target = int(raw)
            if target == source:
                out[i] = 0.0
                continue
            hit = settled.get(target)
            if hit is None and not exhausted:
                hit = self.cache.get_distance(source, target)
            if hit is not None:
                out[i] = hit
            elif exhausted:
                out[i] = inf
            else:
                out[i] = np.nan  # placeholder: resolved by the sweep below
                missing.add(target)
        if missing:
            swept, swept_all = multi_target_distances(self.graph, source, missing)
            settled, exhausted = self.row_cache.merge(source, swept, swept_all)
            for i, raw in enumerate(targets):
                target = int(raw)
                if target in missing:
                    value = settled.get(target)
                    if value is None:
                        out[i] = inf
                    else:
                        out[i] = value
                        # Reachable swept cells feed the pair cache so the
                        # scalar stream shares the batch's locality (inf
                        # never does: the scalar path signals
                        # unreachability by exception, not by value).
                        self.cache.put_distance(source, target, value)
        if tr.enabled:
            tr.emit(
                "engine.distance_many",
                "engine",
                t0,
                clock(),
                targets=len(targets),
                swept=len(missing),
                row_hit=row is not None,
            )
        return out

    def path(self, source: int, target: int) -> list[int]:
        """Cached shortest path (cached one direction; reversed on demand)."""
        if source == target:
            return [source]
        cached = self.cache.get_path(source, target)
        if cached is not None:
            return list(cached)
        reverse = self.cache.get_path(target, source)
        if reverse is not None:
            return list(reversed(reverse))
        value = dijkstra_path(self.graph, source, target)
        self.cache.put_path(source, target, value)
        self.cache.put_distance(
            source, target, _path_cost(self.graph, value)
        )
        return list(value)

    def distances_from(self, source: int) -> np.ndarray:
        """Full single-source sweep (uncached; used by index builders)."""
        return single_source_array(self.graph, source)

    def vertices_within(self, source: int, radius: float) -> dict[int, float]:
        """Bounded Dijkstra ball around ``source``."""
        return vertices_within(self.graph, source, radius)

    def stats(self) -> dict[str, float]:
        """Cache statistics passthrough (pair caches + batched row cache)."""
        return {**self.cache.stats(), **self.row_cache.stats()}


def _path_cost(graph: RoadNetwork, path: list[int]) -> float:
    """Sum of edge weights along ``path``."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += graph.edge_weight(u, v)
    return total


#: Every ``kind`` accepted by :func:`make_engine` (also what
#: ``SimulationConfig.engine_kind`` and the sim CLI's ``--engine`` take).
ENGINE_KINDS = ("auto", "matrix", "dijkstra", "hub_label", "astar", "ch")


def make_engine(graph: RoadNetwork, kind: str = "auto", **kwargs) -> ShortestPathEngine:
    """Build a shortest-path engine.

    ``kind`` (see :data:`ENGINE_KINDS`):
      * ``"auto"`` — matrix engine for graphs small enough to precompute
        all pairs (the benchmark configuration), Dijkstra otherwise;
      * ``"matrix"`` | ``"dijkstra"`` | ``"hub_label"`` | ``"astar"`` |
        ``"ch"`` — explicit choice.
    """
    from repro.roadnet.astar import AStarEngine
    from repro.roadnet.hub_labeling import HubLabelEngine
    from repro.roadnet.matrix import MatrixEngine

    if kind == "auto":
        kind = "matrix" if graph.num_vertices <= 6_000 else "dijkstra"
    if kind == "matrix":
        return MatrixEngine(graph, **kwargs)
    if kind == "dijkstra":
        return DijkstraEngine(graph, **kwargs)
    if kind == "hub_label":
        return HubLabelEngine(graph, **kwargs)
    if kind == "astar":
        return AStarEngine(graph, **kwargs)
    if kind == "ch":
        from repro.roadnet.contraction import CHEngine

        return CHEngine(graph, **kwargs)
    raise ValueError(f"unknown engine kind {kind!r}")
