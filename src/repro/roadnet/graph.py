"""Compact road-network graph representation.

A :class:`RoadNetwork` stores an undirected, positively weighted graph in
CSR (compressed sparse row) form using numpy arrays, which keeps traversal
tight in pure Python and interoperates directly with
``scipy.sparse.csgraph``. Vertices are dense integers ``0..n-1``; optional
planar coordinates (meters) support spatial indexing and nearest-vertex
mapping of raw trip coordinates, as done for the Shanghai dataset in the
paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GraphError


class RoadNetwork:
    """Undirected weighted road graph ``G = <V, E, W>`` in CSR form.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``|V|``; vertices are ``0..num_vertices-1``.
    edges:
        Iterable of ``(u, v, weight)`` triples. Each undirected edge is
        given once; both directions are materialized internally. Weights
        are travel costs (seconds throughout this library) and must be
        positive. Parallel edges collapse to the minimum weight.
    coords:
        Optional ``(num_vertices, 2)`` array of planar coordinates in
        meters.
    """

    __slots__ = ("num_vertices", "indptr", "indices", "weights", "coords", "_kdtree")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int, float]],
        coords: np.ndarray | None = None,
    ):
        if num_vertices <= 0:
            raise GraphError("a road network needs at least one vertex")
        self.num_vertices = int(num_vertices)

        best: dict[tuple[int, int], float] = {}
        for u, v, w in edges:
            u, v, w = int(u), int(v), float(w)
            if not 0 <= u < num_vertices or not 0 <= v < num_vertices:
                raise GraphError(f"edge ({u}, {v}) references an unknown vertex")
            if u == v:
                raise GraphError(f"self-loop at vertex {u} is not allowed")
            if w <= 0 or not np.isfinite(w):
                raise GraphError(f"edge ({u}, {v}) has non-positive weight {w}")
            key = (u, v) if u < v else (v, u)
            prior = best.get(key)
            if prior is None or w < prior:
                best[key] = w

        m = len(best)
        src = np.empty(2 * m, dtype=np.int32)
        dst = np.empty(2 * m, dtype=np.int32)
        wgt = np.empty(2 * m, dtype=np.float64)
        for i, ((u, v), w) in enumerate(best.items()):
            src[2 * i], dst[2 * i], wgt[2 * i] = u, v, w
            src[2 * i + 1], dst[2 * i + 1], wgt[2 * i + 1] = v, u, w

        order = np.lexsort((dst, src))
        src, dst, wgt = src[order], dst[order], wgt[order]
        self.indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(self.indptr, src + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)
        self.indices = dst
        self.weights = wgt

        if coords is not None:
            coords = np.asarray(coords, dtype=np.float64)
            if coords.shape != (num_vertices, 2):
                raise GraphError(
                    f"coords must have shape ({num_vertices}, 2), got {coords.shape}"
                )
        self.coords = coords
        self._kdtree = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def neighbors(self, u: int) -> np.ndarray:
        """Vertices adjacent to ``u`` (int32 array view)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Number of edges incident to ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``.

        Raises :class:`~repro.exceptions.GraphError` if the edge is absent.
        """
        lo, hi = self.indptr[u], self.indptr[u + 1]
        pos = lo + np.searchsorted(self.indices[lo:hi], v)
        if pos < hi and self.indices[pos] == v:
            return float(self.weights[pos])
        raise GraphError(f"no edge between vertices {u} and {v}")

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge ``(u, v)`` exists."""
        lo, hi = self.indptr[u], self.indptr[u + 1]
        pos = lo + np.searchsorted(self.indices[lo:hi], v)
        return bool(pos < hi and self.indices[pos] == v)

    def iter_edges(self):
        """Yield each undirected edge once as ``(u, v, weight)`` with u < v."""
        for u in range(self.num_vertices):
            lo, hi = self.indptr[u], self.indptr[u + 1]
            for pos in range(lo, hi):
                v = int(self.indices[pos])
                if u < v:
                    yield u, v, float(self.weights[pos])

    def validate_vertex(self, v: int) -> int:
        """Return ``v`` as int, raising :class:`GraphError` if out of range."""
        v = int(v)
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
        return v

    # ------------------------------------------------------------------
    # Interop and geometry
    # ------------------------------------------------------------------
    def to_scipy_csr(self):
        """The graph as a ``scipy.sparse.csr_matrix`` (directed expansion)."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.weights, self.indices, self.indptr),
            shape=(self.num_vertices, self.num_vertices),
        )

    def nearest_vertex(self, x: float, y: float) -> int:
        """Map a planar coordinate to the closest vertex.

        Mirrors the paper's pre-mapping of raw trip coordinates onto the
        road graph. Requires ``coords``.
        """
        if self.coords is None:
            raise GraphError("road network has no coordinates")
        if self._kdtree is None:
            from scipy.spatial import cKDTree

            self._kdtree = cKDTree(self.coords)
        return int(self._kdtree.query([x, y])[1])

    def euclidean(self, u: int, v: int) -> float:
        """Straight-line distance in meters between two vertices."""
        if self.coords is None:
            raise GraphError("road network has no coordinates")
        return float(np.hypot(*(self.coords[u] - self.coords[v])))

    def connected_components(self) -> np.ndarray:
        """Component label per vertex (via scipy csgraph)."""
        from scipy.sparse.csgraph import connected_components

        return connected_components(self.to_scipy_csr(), directed=False)[1]

    def is_connected(self) -> bool:
        """Whether the graph is a single connected component."""
        from scipy.sparse.csgraph import connected_components

        return connected_components(self.to_scipy_csr(), directed=False)[0] == 1

    def largest_component(self) -> "RoadNetwork":
        """The subgraph induced by the largest connected component.

        Vertices are relabeled densely; coordinates are carried over.
        """
        labels = self.connected_components()
        counts = np.bincount(labels)
        keep = labels == int(np.argmax(counts))
        remap = -np.ones(self.num_vertices, dtype=np.int64)
        remap[keep] = np.arange(int(keep.sum()))
        edges = [
            (remap[u], remap[v], w)
            for u, v, w in self.iter_edges()
            if keep[u] and keep[v]
        ]
        coords = self.coords[keep] if self.coords is not None else None
        return RoadNetwork(int(keep.sum()), edges, coords=coords)

    def __repr__(self) -> str:
        return (
            f"RoadNetwork(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )


def build_from_arrays(
    num_vertices: int,
    us: Sequence[int],
    vs: Sequence[int],
    ws: Sequence[float],
    coords: np.ndarray | None = None,
) -> RoadNetwork:
    """Build a :class:`RoadNetwork` from parallel edge arrays."""
    return RoadNetwork(num_vertices, zip(us, vs, ws), coords=coords)
