"""Seeded deterministic fault injection for the flush pipeline.

The :class:`FaultInjector` turns a parsed :class:`~repro.faults.plan.
FaultPlan` into concrete :class:`InjectedFault` directives. Draws are
made at deterministic points — the submitting/collecting thread for
``quote.task`` / ``shard.solve`` / ``pool.submit``, inside an explicit
*engine window* for ``engine.distance_many`` — and each clause owns an
independent RNG stream seeded from ``(fault_seed, clause_index)``, so:

* an empty plan consumes nothing and the injector is a literal no-op;
* a fixed ``(plan, seed)`` replays the same faults at the same
  opportunities on the serial backend, run after run;
* adding a clause never perturbs the draws of the clauses before it.

Directives are plain picklable dataclasses: parent-side draws ship with
the task to whatever worker enacts them (``crash`` raises, ``delay``
sleeps on real pools). On the serial backend nothing ever sleeps —
injected delays are charged *virtually* against the flush's
:class:`FlushBudget`, which keeps serial runs deterministic and fast
while still exercising the deadline-degradation rung.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass

import numpy as np

from repro.exceptions import FaultInjectedError, FlushDeadlineExceededError
from repro.faults.plan import FaultPlan
from repro.obs.trace import NULL_TRACER, clock


class SimulatedPoolDeathError(BrokenExecutor):
    """An injected ``pool_death``: subclasses
    :class:`concurrent.futures.BrokenExecutor` so callers exercise the
    exact recovery path a real ``BrokenProcessPool`` takes."""

    def __init__(self, site: str, seq: int):
        self.site = site
        self.seq = seq
        super().__init__(f"injected pool death at {site} (opportunity {seq})")


class VirtualTimeoutError(TimeoutError):
    """A deterministic stand-in for a wall-clock task timeout: raised
    when an injected (virtual) delay exceeds the per-task timeout on a
    backend that never actually sleeps (serial)."""


@dataclass(frozen=True, slots=True)
class InjectedFault:
    """One concrete fault directive — primitives only, so it can ride a
    task submission across a process boundary."""

    site: str
    kind: str
    #: The opportunity ordinal (1-based, per site) that fired.
    seq: int
    delay_s: float = 0.0


@dataclass(slots=True)
class TaskFailure:
    """A structured task failure: what the hardened executors return
    instead of silently swallowing (or fatally raising) an exception
    once the retry budget is spent."""

    site: str
    task_id: int | None
    attempts: int
    error: BaseException


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff.

    ``max_attempts`` counts the first try; ``timeout_s`` bounds each
    attempt (``None`` = wait forever, today's behavior); attempt ``n``
    (n >= 2) backs off ``min(backoff_s * 2**(n-2), backoff_cap_s)``
    seconds — slept on real pools, charged virtually against the flush
    budget on the simulator thread.
    """

    max_attempts: int = 3
    timeout_s: float | None = None
    backoff_s: float = 0.05
    backoff_cap_s: float = 1.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive or None")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff seconds must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        """Backoff before ``attempt`` (2-based; attempt 1 never waits)."""
        if attempt <= 1:
            return 0.0
        return min(self.backoff_s * 2 ** (attempt - 2), self.backoff_cap_s)


DEFAULT_RETRY = RetryPolicy()


class FlushBudget:
    """One flush's deadline budget, in *modeled* seconds.

    Injected delays and retry backoffs are charged here at draw time —
    deterministically, whatever the backend — and the quote stage checks
    the budget between attempts. ``deadline_s=None`` never trips.
    ``charge`` only records (it may run on a worker thread mid-task);
    ``check`` raises :class:`~repro.exceptions.FlushDeadlineExceededError`
    at the controlled points where the ladder can act on it.
    """

    __slots__ = ("deadline_s", "spent_s", "_lock")

    def __init__(self, deadline_s: float | None = None):
        self.deadline_s = deadline_s
        self.spent_s = 0.0
        self._lock = threading.Lock()

    @property
    def exceeded(self) -> bool:
        return self.deadline_s is not None and self.spent_s > self.deadline_s

    def charge(self, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._lock:
            self.spent_s += seconds

    def check(self) -> None:
        if self.exceeded:
            raise FlushDeadlineExceededError(self.deadline_s, self.spent_s)


class _EngineGate(threading.local):
    """Thread-local gate restricting ``engine.distance_many`` faults to
    read-only quote computation (see :meth:`FaultInjector.engine_window`)."""

    def __init__(self):
        self.active = False
        self.budget: FlushBudget | None = None
        self.sleeping = False


class _EngineWindow:
    __slots__ = ("_injector", "_budget", "_sleeping", "_prev")

    def __init__(self, injector, budget, sleeping):
        self._injector = injector
        self._budget = budget
        self._sleeping = sleeping
        self._prev = None

    def __enter__(self):
        gate = self._injector._gate
        self._prev = (gate.active, gate.budget, gate.sleeping)
        gate.active = True
        gate.budget = self._budget
        gate.sleeping = self._sleeping
        return self

    def __exit__(self, *exc):
        gate = self._injector._gate
        gate.active, gate.budget, gate.sleeping = self._prev


class _NullWindow:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_WINDOW = _NullWindow()


class FaultInjector:
    """Draws faults from a plan; counts them into the metrics registry.

    With no plan (or an empty one) every method is a fast no-op:
    ``draw`` returns ``None`` without taking the lock or consuming any
    randomness, ``engine_window`` returns a shared null context. The
    pipeline can therefore thread one injector through unconditionally.
    """

    def __init__(
        self,
        plan: FaultPlan | None = None,
        seed: int = 0,
        registry=None,
        tracer=NULL_TRACER,
    ):
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = seed
        self.registry = registry
        self.tracer = tracer
        self.enabled = not self.plan.empty
        self._lock = threading.Lock()
        self._gate = _EngineGate()
        self._opportunities: dict[str, int] = {}
        #: site -> [(clause, rng-or-None)]; rate clauses own one
        #: np RNG stream each, seeded (seed, clause_index).
        self._armed: dict[str, list[tuple[object, object]]] = {}
        for site in self.plan.sites():
            armed = []
            for idx, clause in self.plan.indexed_clauses_for(site):
                rng = (
                    np.random.default_rng([seed, idx])
                    if clause.rate is not None
                    else None
                )
                armed.append((clause, rng))
            self._armed[site] = armed
            self._opportunities[site] = 0

    def __repr__(self) -> str:
        return (
            f"FaultInjector(clauses={len(self.plan.clauses)}, "
            f"seed={self.seed}, enabled={self.enabled})"
        )

    def wants(self, site: str) -> bool:
        """Whether any clause targets ``site``."""
        return site in self._armed

    # ------------------------------------------------------------------
    def draw(self, site: str, budget: FlushBudget | None = None) -> InjectedFault | None:
        """One opportunity at ``site``: returns the fault directive to
        enact, or ``None``. Each rate clause consumes exactly one RNG
        sample per opportunity whether or not it fires, so firing
        patterns depend only on opportunity counts — not on what other
        clauses did. Injected delays are charged against ``budget`` here,
        at draw time (virtually — deterministic on every backend)."""
        armed = self._armed.get(site)
        if not armed:
            return None
        with self._lock:
            self._opportunities[site] += 1
            seq = self._opportunities[site]
            fired = None
            for clause, rng in armed:
                if clause.rate is not None:
                    hit = rng.random() < clause.rate
                elif clause.every is not None:
                    hit = seq % clause.every == 0
                else:
                    hit = seq == clause.at
                if hit and fired is None:
                    fired = clause
        if fired is None:
            return None
        fault = InjectedFault(
            site=site, kind=fired.kind, seq=seq, delay_s=fired.delay_s
        )
        if fault.kind == "delay" and budget is not None:
            budget.charge(fault.delay_s)
        self._record_injection(fault)
        return fault

    def _record_injection(self, fault: InjectedFault) -> None:
        if self.registry is not None:
            self.registry.counter("fault.injected").inc()
            self.registry.counter(f"fault.injected.{fault.site}").inc()
        if self.tracer.enabled:
            now = clock()
            self.tracer.emit(
                "fault.inject",
                "fault",
                now,
                now,
                site=fault.site,
                kind=fault.kind,
                seq=fault.seq,
            )

    # ------------------------------------------------------------------
    def engine_window(self, budget: FlushBudget | None = None, sleeping: bool = False):
        """Context manager opening an ``engine.distance_many`` fault
        window on the current thread: only fan-outs inside it (the
        read-only quote computations, which are safe to retry) draw
        engine faults. The greedy fallback and the commit/cleanup paths
        stay immune by design — the ladder's last rung must be reliable.
        """
        if not self.wants("engine.distance_many"):
            return _NULL_WINDOW
        return _EngineWindow(self, budget, sleeping)

    def draw_engine(self) -> tuple[InjectedFault | None, bool]:
        """Draw at ``engine.distance_many`` if the current thread is
        inside an engine window; returns ``(fault, sleeping)``."""
        gate = self._gate
        if not gate.active:
            return None, False
        return self.draw("engine.distance_many", budget=gate.budget), gate.sleeping

    # ------------------------------------------------------------------
    def record_retry(self, site: str) -> None:
        if self.registry is not None:
            self.registry.counter("retry.count").inc()
            self.registry.counter(f"retry.{site}").inc()

    def record_pool_recreated(self) -> None:
        if self.registry is not None:
            self.registry.counter("pool.recreated").inc()


#: Shared disabled injector: the default everywhere an injector can be
#: threaded through. Draws nothing, counts nothing.
NULL_INJECTOR = FaultInjector()


def run_with_fault(
    fault: InjectedFault | None,
    sleeping: bool,
    timeout_s: float | None,
    fn,
    /,
    *args,
    **kwargs,
):
    """Enact ``fault`` (if any) around ``fn(*args, **kwargs)``.

    ``crash`` raises :class:`~repro.exceptions.FaultInjectedError` before
    the work runs. ``delay`` sleeps for real when ``sleeping`` (thread /
    process workers); on non-sleeping backends (serial — the simulator
    thread) the delay is purely virtual: it was already charged to the
    flush budget at draw time, and here it only converts to a
    deterministic :class:`VirtualTimeoutError` when it exceeds the
    per-task timeout. With ``fault=None`` this is exactly ``fn(...)``.
    """
    if fault is not None:
        if fault.kind == "crash":
            raise FaultInjectedError(fault.site, fault.seq)
        if fault.kind == "delay":
            if sleeping:
                time.sleep(fault.delay_s)
            elif timeout_s is not None and fault.delay_s > timeout_s:
                raise VirtualTimeoutError(
                    f"injected {fault.delay_s:g}s delay at {fault.site} "
                    f"exceeds the {timeout_s:g}s task timeout"
                )
    return fn(*args, **kwargs)
