"""Deterministic fault injection and the hardened-execution toolkit.

``repro.faults`` is the robustness layer's home: the fault-spec grammar
(:mod:`~repro.faults.plan`), the seeded :class:`FaultInjector` that
turns a plan into concrete :class:`InjectedFault` directives at named
pipeline sites, and the retry/timeout/budget primitives the hardened
executors (:class:`~repro.dispatch.sharding.executor.ShardExecutor`,
:class:`~repro.dispatch.quoting.QuoteService`) are built on. See
``docs/robustness.md`` for the grammar and the degradation ladder, and
determinism contract 10 in ``docs/determinism.md`` for the guarantees.
"""

from repro.faults.injector import (
    DEFAULT_RETRY,
    FaultInjector,
    FlushBudget,
    InjectedFault,
    NULL_INJECTOR,
    RetryPolicy,
    SimulatedPoolDeathError,
    TaskFailure,
    VirtualTimeoutError,
    run_with_fault,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultClause,
    FaultPlan,
    parse_fault_spec,
)

__all__ = [
    "DEFAULT_RETRY",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultClause",
    "FaultInjector",
    "FaultPlan",
    "FlushBudget",
    "InjectedFault",
    "NULL_INJECTOR",
    "RetryPolicy",
    "SimulatedPoolDeathError",
    "TaskFailure",
    "VirtualTimeoutError",
    "parse_fault_spec",
    "run_with_fault",
]
