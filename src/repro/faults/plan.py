"""The fault-spec grammar: parse a ``--fault-spec`` string into a plan.

A fault plan is a comma-separated list of clauses::

    spec    := clause ("," clause)*
    clause  := site ":" kind ":" trigger [":" delay_s]
    trigger := rate | "@" N | "%" N

* ``site`` names where the fault fires — one of :data:`FAULT_SITES`;
* ``kind`` is what happens — one of :data:`FAULT_KINDS`: ``crash``
  raises :class:`~repro.exceptions.FaultInjectedError` inside the task,
  ``delay`` stalls it for ``delay_s`` seconds (virtual on the serial
  backend — charged against the flush's deadline budget, never slept),
  ``pool_death`` kills the worker pool under the submission;
* ``trigger`` decides *when*: a float ``rate`` in ``[0, 1]`` is a
  Bernoulli draw per opportunity from that clause's own seeded RNG
  stream, ``@N`` fires exactly once at the N-th opportunity, ``%N``
  fires at every N-th opportunity (both 1-based);
* ``delay_s`` is required for (and only legal with) ``kind=delay``.

Examples::

    quote.task:crash:0.05
    shard.solve:crash:@1
    quote.task:delay:0.05:0.02,pool.submit:pool_death:%200

Kind/site compatibility: ``pool_death`` only makes sense where a pool
submission happens (``pool.submit``); ``delay`` models slow task work
and is rejected at ``pool.submit`` (submission itself is not a task).

An empty or ``None`` spec parses to the empty plan — the armed-but-idle
injector built from it is a literal no-op, which is what determinism
contract 10 pins (``docs/determinism.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Named injection sites, each drawn at one deterministic point:
#: ``quote.task`` per quote-column attempt, ``shard.solve`` per shard
#: solve attempt, ``engine.distance_many`` per engine fan-out *inside a
#: quote window* (see ``FaultInjector.engine_window``), ``pool.submit``
#: per ``WorkerPool.submit`` call.
FAULT_SITES = ("quote.task", "shard.solve", "engine.distance_many", "pool.submit")

#: Fault kinds a clause can inject.
FAULT_KINDS = ("crash", "delay", "pool_death")


@dataclass(frozen=True, slots=True)
class FaultClause:
    """One parsed clause of a fault plan."""

    site: str
    kind: str
    #: Bernoulli probability per opportunity (exclusive with every/at).
    rate: float | None = None
    #: Fire at every N-th opportunity (``%N``).
    every: int | None = None
    #: Fire exactly once, at the N-th opportunity (``@N``).
    at: int | None = None
    #: Injected stall in seconds (``kind == "delay"`` only).
    delay_s: float = 0.0

    def label(self) -> str:
        if self.rate is not None:
            trigger = f"{self.rate:g}"
        elif self.every is not None:
            trigger = f"%{self.every}"
        else:
            trigger = f"@{self.at}"
        tail = f":{self.delay_s:g}" if self.kind == "delay" else ""
        return f"{self.site}:{self.kind}:{trigger}{tail}"


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault spec: an ordered tuple of clauses.

    Clause order matters twice: each clause gets its own seeded RNG
    stream keyed by its index (adding a clause never perturbs the draws
    of the ones before it), and when several clauses fire at the same
    opportunity the first one listed wins.
    """

    clauses: tuple[FaultClause, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.clauses

    def sites(self) -> frozenset[str]:
        return frozenset(c.site for c in self.clauses)

    def indexed_clauses_for(self, site: str) -> list[tuple[int, FaultClause]]:
        """Clauses targeting ``site``, with their plan-wide indices (the
        RNG stream keys)."""
        return [(i, c) for i, c in enumerate(self.clauses) if c.site == site]


def _parse_clause(text: str) -> FaultClause:
    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"fault clause {text!r} must look like "
            "'site:kind:trigger[:delay_s]' (see docs/robustness.md)"
        )
    site, kind, trigger = parts[0].strip(), parts[1].strip(), parts[2].strip()
    if site not in FAULT_SITES:
        known = ", ".join(FAULT_SITES)
        raise ValueError(f"unknown fault site {site!r}; known: {known}")
    if kind not in FAULT_KINDS:
        known = ", ".join(FAULT_KINDS)
        raise ValueError(f"unknown fault kind {kind!r}; known: {known}")
    if kind == "pool_death" and site != "pool.submit":
        raise ValueError(
            f"pool_death only applies at site pool.submit, not {site!r}"
        )
    if kind == "delay" and site == "pool.submit":
        raise ValueError(
            "delay does not apply at pool.submit (submission is not a "
            "task); use quote.task, shard.solve or engine.distance_many"
        )

    rate = every = at = None
    if trigger.startswith("@") or trigger.startswith("%"):
        try:
            n = int(trigger[1:])
        except ValueError:
            raise ValueError(
                f"fault trigger {trigger!r} needs an integer after "
                f"{trigger[0]!r}"
            ) from None
        if n < 1:
            raise ValueError(f"fault trigger {trigger!r} must use N >= 1")
        if trigger[0] == "@":
            at = n
        else:
            every = n
    else:
        try:
            rate = float(trigger)
        except ValueError:
            raise ValueError(
                f"fault trigger {trigger!r} must be a rate in [0, 1], "
                "'@N' (one-shot) or '%N' (every N-th)"
            ) from None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate {rate:g} must be in [0, 1]")

    delay_s = 0.0
    if kind == "delay":
        if len(parts) != 4:
            raise ValueError(
                f"delay clause {text!r} needs a delay: 'site:delay:rate:seconds'"
            )
        try:
            delay_s = float(parts[3])
        except ValueError:
            raise ValueError(
                f"delay seconds {parts[3]!r} must be a number"
            ) from None
        if delay_s <= 0:
            raise ValueError("delay seconds must be positive")
    elif len(parts) == 4:
        raise ValueError(
            f"clause {text!r}: only delay clauses take a fourth field"
        )
    return FaultClause(
        site=site, kind=kind, rate=rate, every=every, at=at, delay_s=delay_s
    )


def parse_fault_spec(spec: str | None) -> FaultPlan:
    """Parse a fault-spec string; ``None``/blank yields the empty plan."""
    if spec is None or not spec.strip():
        return FaultPlan()
    clauses = tuple(
        _parse_clause(chunk)
        for chunk in spec.split(",")
        if chunk.strip()
    )
    return FaultPlan(clauses=clauses)
