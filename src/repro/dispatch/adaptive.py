"""Load-driven batch-window autotuning.

A fixed ``batch_window_s`` is a compromise: off-peak it makes every
request wait out a window sized for rush hour; in rush hour it may give
the solver batches too small for global matching to pay off. Simonetto
et al. (*Real-time City-scale Ridesharing via Linear Assignment
Problems*) adapt the batch length to the observed load instead; this
module is that controller for the staged dispatch pipeline.

Two controllers share one duck-typed interface (``window_s`` /
``overlap_s`` attributes, :meth:`on_flush` and
:meth:`observe_quote_stage` hooks, called by the simulator at every
``BATCH_DISPATCH`` flush and ``QUOTE_READY`` commit respectively):

* :class:`FixedWindowController` — the degenerate controller: echoes the
  configured ``batch_window_s`` / ``quote_overlap_s`` constants
  unchanged, so a run with ``adaptive_window=False`` schedules exactly
  the same flush instants as before the controller existed
  (bit-identical; pinned in ``tests/sim/test_carry_over.py``).
* :class:`AdaptiveWindowController` — retunes the window each flush from
  an EWMA of request arrival intensity, clamped to
  ``[window_min_s, window_max_s]``: short windows off-peak (requests are
  answered quickly; with idle vehicles around, global matching has
  little to add), long windows in rush hour (bigger batches let the
  linear-assignment round resolve conflicts over scarce vehicles
  globally). ``quote_overlap_s`` scales proportionally so the pipeline's
  flush/commit phase relationship is preserved at every window length.

Determinism
-----------

The intensity channel reads only *simulated* facts — arrival counts and
flush instants — so the window trajectory is a pure function of the
request stream (deterministic given the seed; see
``docs/determinism.md``). The *measured* channel
(:meth:`observe_quote_stage`, fed the quote stage's wall-clock seconds)
drives a real-time safety guard only: it raises the window floor when
quote work approaches the window's real-time budget, which at
simulation scale (quote milliseconds vs window seconds) never engages —
``guard_engagements`` records it if it ever does.
"""

from __future__ import annotations


class FixedWindowController:
    """Echoes the configured window/overlap constants (adaptive off).

    Exists so the simulator has exactly one scheduling code path: with
    adaptive tuning disabled this controller returns the *same float
    objects* the config carries, making the flush chain bit-identical
    to the pre-controller arithmetic.
    """

    __slots__ = ("window_s", "overlap_s", "retunes")

    def __init__(self, window_s: float, overlap_s: float):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self.overlap_s = overlap_s
        #: Flushes observed (mirrors the adaptive controller's counter).
        self.retunes = 0

    def on_flush(self, now: float, new_arrivals: int) -> None:
        """Per-flush hook; the fixed controller only counts."""
        self.retunes += 1

    def observe_quote_stage(self, quote_wall_seconds: float) -> None:
        """Measured-channel hook; ignored — nothing to guard."""

    def __repr__(self) -> str:
        return (
            f"FixedWindowController(window_s={self.window_s:g}, "
            f"overlap_s={self.overlap_s:g})"
        )


class AdaptiveWindowController:
    """Retunes ``window_s`` each flush from arrival-intensity feedback.

    Parameters
    ----------
    initial_window_s:
        Window used until the first intensity sample exists (the
        configured ``batch_window_s``; must lie inside the band).
    window_min_s / window_max_s:
        The clamp band. The target law is a saturating ramp between
        them: ``window = min + (max - min) * min(1, ewma / saturation)``
        where ``saturation = target_batch / window_max_s`` — i.e. the
        window reaches ``max`` exactly when the arrival intensity would
        fill a maximal window with ``target_batch`` requests.
    overlap_fraction:
        ``quote_overlap_s`` as a fraction of the window (taken from the
        configured ratio); the overlap is retuned proportionally so it
        always fits inside the window.
    ewma_alpha:
        Smoothing weight of the newest intensity sample (1 = no
        smoothing).
    target_batch:
        Batch size at which a maximal window saturates (sets the ramp
        slope).
    latency_headroom:
        Real-time guard: if the EWMA of *measured* quote wall seconds
        exceeds ``latency_headroom * window``, the window floor is
        raised to ``quote_ewma / latency_headroom`` (clamped to the
        band) so a deployment never schedules flushes faster than it
        can quote them. Dormant at simulation scale — this is the only
        wall-clock input, and ``guard_engagements`` counts it.
    """

    __slots__ = (
        "window_s",
        "overlap_s",
        "window_min_s",
        "window_max_s",
        "overlap_fraction",
        "ewma_alpha",
        "target_batch",
        "latency_headroom",
        "retunes",
        "guard_engagements",
        "_intensity_ewma",
        "_quote_ewma",
        "_last_flush_at",
    )

    def __init__(
        self,
        initial_window_s: float,
        window_min_s: float,
        window_max_s: float,
        overlap_fraction: float = 0.0,
        ewma_alpha: float = 0.3,
        target_batch: float = 12.0,
        latency_headroom: float = 0.5,
    ):
        if not 0 < window_min_s <= window_max_s:
            raise ValueError("need 0 < window_min_s <= window_max_s")
        if not window_min_s <= initial_window_s <= window_max_s:
            raise ValueError(
                "initial_window_s must lie inside [window_min_s, window_max_s]"
            )
        if not 0.0 <= overlap_fraction < 1.0:
            raise ValueError("overlap_fraction must be in [0, 1)")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if target_batch <= 0:
            raise ValueError("target_batch must be positive")
        if latency_headroom <= 0:
            raise ValueError("latency_headroom must be positive")
        self.window_min_s = window_min_s
        self.window_max_s = window_max_s
        self.overlap_fraction = overlap_fraction
        self.ewma_alpha = ewma_alpha
        self.target_batch = target_batch
        self.latency_headroom = latency_headroom
        self.window_s = initial_window_s
        self.overlap_s = overlap_fraction * initial_window_s
        self.retunes = 0
        self.guard_engagements = 0
        self._intensity_ewma: float | None = None
        self._quote_ewma: float | None = None
        self._last_flush_at: float | None = None

    # ------------------------------------------------------------------
    @property
    def saturation_intensity(self) -> float:
        """Arrival intensity (req/s) at which the window saturates at
        ``window_max_s`` (= ``target_batch / window_max_s``)."""
        return self.target_batch / self.window_max_s

    @property
    def intensity_ewma(self) -> float | None:
        """Current smoothed arrival intensity (req/s); ``None`` until
        two flushes have been observed."""
        return self._intensity_ewma

    def on_flush(self, now: float, new_arrivals: int) -> None:
        """Fold one flush's arrivals in and retune window + overlap.

        ``new_arrivals`` counts requests that entered the window since
        the previous flush (carry-over re-entries excluded — they were
        counted at their original arrival, and double-counting them
        would read backlog as fresh demand). Called at the *start* of
        the flush handler, so the returned window paces the very next
        flush.
        """
        if self._last_flush_at is not None:
            elapsed = now - self._last_flush_at
            if elapsed > 0:
                sample = new_arrivals / elapsed
                if self._intensity_ewma is None:
                    self._intensity_ewma = sample
                else:
                    a = self.ewma_alpha
                    self._intensity_ewma = (
                        a * sample + (1.0 - a) * self._intensity_ewma
                    )
        self._last_flush_at = now
        self.retunes += 1
        self.window_s = self._target_window()
        self.overlap_s = self.overlap_fraction * self.window_s

    def observe_quote_stage(self, quote_wall_seconds: float) -> None:
        """Fold one commit's *measured* quote-stage wall time into the
        real-time guard's EWMA (the controller's only wall-clock input)."""
        if quote_wall_seconds < 0:
            return
        if self._quote_ewma is None:
            self._quote_ewma = quote_wall_seconds
        else:
            a = self.ewma_alpha
            self._quote_ewma = a * quote_wall_seconds + (1.0 - a) * self._quote_ewma

    def _target_window(self) -> float:
        if self._intensity_ewma is None:
            base = self.window_s  # no sample yet: hold
        else:
            frac = min(1.0, self._intensity_ewma / self.saturation_intensity)
            base = self.window_min_s + (self.window_max_s - self.window_min_s) * frac
        if (
            self._quote_ewma is not None
            and self._quote_ewma > self.latency_headroom * base
        ):
            # Real-time floor: never schedule flushes faster than the
            # quote stage can keep up with (dormant at sim scale).
            self.guard_engagements += 1
            base = self._quote_ewma / self.latency_headroom
        return min(self.window_max_s, max(self.window_min_s, base))

    def __repr__(self) -> str:
        return (
            f"AdaptiveWindowController(window_s={self.window_s:.3f}, "
            f"band=[{self.window_min_s:g}, {self.window_max_s:g}], "
            f"intensity_ewma={self._intensity_ewma}, "
            f"retunes={self.retunes})"
        )


def make_window_controller(config):
    """Build the window controller a :class:`~repro.sim.config.
    SimulationConfig` asks for (``None`` for immediate dispatch)."""
    if config.batch_window_s <= 0:
        return None
    if not config.adaptive_window:
        return FixedWindowController(
            config.batch_window_s, config.quote_overlap_s
        )
    return AdaptiveWindowController(
        initial_window_s=config.batch_window_s,
        window_min_s=config.window_min_s,
        window_max_s=config.window_max_s,
        overlap_fraction=config.quote_overlap_s / config.batch_window_s,
        ewma_alpha=config.adaptive_ewma_alpha,
        target_batch=config.adaptive_target_batch,
        latency_headroom=config.adaptive_latency_headroom,
    )
