"""The quote stage of the staged dispatch pipeline.

The batch path used to quote, solve and commit as one synchronous blob
inside the ``BATCH_DISPATCH`` handler. This module is the refactor's
first stage made explicit: a :class:`QuoteService` builds one batch's
per-vehicle :class:`~repro.dispatch.costs.CostMatrix` columns — through
the same :func:`~repro.dispatch.costs.plan_columns` /
:func:`~repro.dispatch.costs.quote_column` /
:func:`~repro.dispatch.costs.assemble_matrix` stages the synchronous
:func:`~repro.dispatch.costs.build_cost_matrix` composes — either
inline or on a worker pool (the sharding subsystem's
:class:`~repro.dispatch.sharding.executor.WorkerPool`) while the
simulator keeps executing stop events.

Staleness-safe by construction
------------------------------

Async quotes are computed *for* the commit time ``now`` (the simulated
time of the ``QUOTE_READY`` event) but *at* quote-issue wall time, so a
vehicle can mutate its schedule — win a request, reach a stop, finish
its plan and go idle — between quote and commit. Every schedule
mutation bumps the agent's
:attr:`~repro.core.matching.VehicleAgent.schedule_epoch`;
:meth:`PendingQuotes.collect` compares each column's epoch against the
value captured at quote issue and deterministically re-quotes exactly
the stale columns on the simulator thread. A worker quote that raced a
mutation mid-read can therefore only ever be *discarded* (its epoch
check fails, or it raised and is repaired the same way) — torn reads
never reach the solver. Because every surviving quote is value-equal to
what a synchronous quote at commit time would have produced (schedules
untouched since issue, decision points deterministic), the repaired
:class:`QuoteSet` — and with it every downstream assignment — is
bit-identical across ``workers=0`` (deferred synchronous), the eager
``serial`` backend and the ``thread`` pool.

Decision points are resolved on the simulator thread at quote issue
(they mutate the vehicle's lazy cruise waypoints); workers only read
the agent's committed schedule and the engine.

Hardened quoting
----------------

Column quotes run under the fault-tolerance layer (:mod:`repro.faults`):
every attempt may carry an injected fault directive, failures — injected
or real — are retried on the simulator thread under the service's
:class:`~repro.faults.RetryPolicy`, retry backoffs and injected delays
are charged against the flush's :class:`~repro.faults.FlushBudget`, and
a column that exhausts its budget is assembled *failed* (all-infeasible,
no timing samples) with a structured
:class:`~repro.faults.TaskFailure` on the :class:`QuoteSet` — never the
old silent ``except Exception`` swallow. Its rows take the fault-carry
rung of the degradation ladder downstream; a flush that exhausts its
deadline budget stops quoting entirely and is flagged
``deadline_exceeded`` so the simulator can downgrade it to greedy.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.matching import Dispatcher
from repro.core.request import TripRequest
from repro.dispatch.costs import (
    ColumnPlan,
    ColumnQuotes,
    CostMatrix,
    assemble_matrix,
    failed_column,
    plan_columns,
    quote_column,
)
from repro.dispatch.sharding.executor import WorkerPool
from repro.exceptions import FlushDeadlineExceededError, QuoteFailedError
from repro.faults import (
    DEFAULT_RETRY,
    FlushBudget,
    NULL_INJECTOR,
    TaskFailure,
    run_with_fault,
)
from repro.obs.trace import NULL_TRACER, clock

#: Backends :class:`QuoteService` accepts. ``process`` is deliberately
#: absent: quoting reads live agent schedules (kinetic trees, pending
#: sets) that cannot cross a process boundary — only the *solve* stage
#: ships to processes (see :mod:`repro.dispatch.sharding`).
QUOTE_BACKENDS = ("serial", "thread")


@dataclass(slots=True)
class QuoteSet:
    """One batch's completed quote stage.

    ``matrix`` is what the solve stage consumes; ``quoted_at`` the
    simulated time every quote is valid for (the commit time);
    ``quote_seconds`` the wall time from quote issue to the last column
    completing (including any staleness repair); ``requotes`` how many
    columns were rebuilt at collect because their vehicle's schedule
    epoch moved (``failures`` of them because the racing worker quote
    raised). ``began_perf`` / ``finished_perf`` are ``perf_counter``
    stamps of quote start and end, from which the simulator derives how
    much quote wall time overlapped event execution.

    The fault-tolerance fields: ``failed_columns`` are the matrix
    columns that could not be quoted at all (retry budget spent — their
    ``task_failures`` entries say why), ``failed_rows`` the union of
    their rows (the fault-carry candidates), and ``deadline_exceeded``
    flags a flush that blew its deadline budget mid-stage (the
    greedy-downgrade trigger). All empty/False on the fault-free path.
    """

    matrix: CostMatrix
    quoted_at: float
    quote_seconds: float = 0.0
    requotes: int = 0
    failures: int = 0
    began_perf: float = 0.0
    finished_perf: float = 0.0
    #: ``perf_counter`` at the end of the issue prologue (candidate
    #: filtering, decision-point resolution, task submission) — all of
    #: it runs inline on the simulator thread, so overlap accounting
    #: starts here, not at ``began_perf``.
    issued_perf: float = 0.0
    #: True when the quote work ran inline on the simulator thread
    #: (deferred mode, or the eager ``serial`` backend) — none of its
    #: wall time can have overlapped event execution, whatever the
    #: perf stamps suggest.
    inline: bool = True
    failed_columns: tuple[int, ...] = ()
    failed_rows: frozenset[int] = frozenset()
    task_failures: list[TaskFailure] = field(default_factory=list)
    deadline_exceeded: bool = False


class PendingQuotes:
    """A quote stage in flight: collect() completes it.

    With ``columns is None`` (deferred mode, ``workers=0``) nothing has
    been quoted yet — :meth:`collect` runs the whole stage inline, which
    is exactly the old synchronous order. Otherwise ``columns`` holds
    one future per matrix column plus the schedule epoch its vehicle had
    at quote issue. ``budget`` is the flush's deadline budget (``None``
    when the flush has no deadline).
    """

    __slots__ = (
        "service",
        "dispatcher",
        "plan",
        "now",
        "columns",
        "epochs",
        "budget",
        "began_perf",
        "issued_perf",
    )

    def __init__(
        self,
        service: "QuoteService",
        dispatcher: Dispatcher,
        plan: ColumnPlan,
        now: float,
        columns: list[Future] | None,
        epochs: list[int] | None,
        budget: FlushBudget | None = None,
        began_perf: float | None = None,
    ):
        self.service = service
        self.dispatcher = dispatcher
        self.plan = plan
        self.now = now
        self.columns = columns
        self.epochs = epochs
        self.budget = budget
        self.began_perf = clock() if began_perf is None else began_perf
        #: Stamped when the issue prologue finished (begin's last line).
        self.issued_perf = self.began_perf

    def _column_requests(self, col: int) -> list[TripRequest]:
        plan = self.plan
        return [plan.requests[i] for i in plan.rows_by_col[col]]

    def _quote_hardened(self, col: int, span_name: str) -> ColumnQuotes:
        """Quote one column on the calling (simulator) thread under the
        retry policy: bounded attempts, backoff charged virtually against
        the flush budget (the simulator thread never sleeps), budget
        checked between attempts. Raises
        :class:`~repro.exceptions.FlushDeadlineExceededError` when the
        budget trips and :class:`~repro.exceptions.QuoteFailedError`
        when every attempt failed."""
        plan = self.plan
        agent = plan.agents[col]
        col_requests = self._column_requests(col)
        objective = self.dispatcher.objective
        tracer = self.service.tracer
        injector = self.service.injector
        retry = self.service.retry
        budget = self.budget
        last_error: BaseException | None = None
        for attempt in range(1, retry.max_attempts + 1):
            if attempt > 1:
                injector.record_retry("quote.task")
                if budget is not None:
                    budget.charge(retry.backoff_for(attempt))
            if budget is not None:
                budget.check()
            fault = injector.draw("quote.task", budget=budget)
            c0 = clock() if tracer.enabled else 0.0
            try:
                with injector.engine_window(budget=budget, sleeping=False):
                    quoted = run_with_fault(
                        fault,
                        False,
                        retry.timeout_s,
                        quote_column,
                        agent,
                        col_requests,
                        self.now,
                        objective,
                    )
            except (KeyboardInterrupt, SystemExit, FlushDeadlineExceededError):
                raise
            except Exception as error:
                last_error = error
                continue
            if tracer.enabled:
                tracer.emit(
                    span_name,
                    "quote",
                    c0,
                    clock(),
                    vehicle=agent.vehicle.vehicle_id,
                    rows=len(plan.rows_by_col[col]),
                )
            return quoted
        raise QuoteFailedError(
            agent.vehicle.vehicle_id, retry.max_attempts, last_error
        )

    def collect(self) -> QuoteSet:
        """Join the quote stage; re-quote stale columns; assemble.

        Blocks until every column future resolves. A column is *stale*
        when its vehicle's schedule epoch moved since quote issue (the
        vehicle committed another request, reached a stop, or went
        idle) or the racing worker quote raised; stale columns are
        re-quoted here, on the calling thread, in vehicle-id order —
        the deterministic fallback that makes the assembled matrix
        independent of worker timing. Unquotable columns degrade per
        the ladder (see the module docstring) instead of raising.
        """
        plan = self.plan
        budget = self.budget
        retry = self.service.retry
        n = len(plan.agents)

        task_failures: list[TaskFailure] = []
        failed_cols: list[int] = []
        deadline_exceeded = False

        def settle(col: int, span_name: str, columns: list) -> None:
            """Quote ``columns[col]`` under the retry policy, degrading
            an unquotable column to the failed placeholder."""
            nonlocal deadline_exceeded
            num_rows = len(plan.rows_by_col[col])
            if deadline_exceeded:
                failed_cols.append(col)
                columns[col] = failed_column(num_rows)
                return
            try:
                columns[col] = self._quote_hardened(col, span_name)
            except FlushDeadlineExceededError as error:
                deadline_exceeded = True
                task_failures.append(
                    TaskFailure(
                        site="quote.task",
                        task_id=plan.agents[col].vehicle.vehicle_id,
                        attempts=0,
                        error=error,
                    )
                )
                failed_cols.append(col)
                columns[col] = failed_column(num_rows)
            except QuoteFailedError as error:
                task_failures.append(
                    TaskFailure(
                        site="quote.task",
                        task_id=error.vehicle_id,
                        attempts=error.attempts,
                        error=error,
                    )
                )
                failed_cols.append(col)
                columns[col] = failed_column(num_rows)

        def finish(
            columns: list,
            *,
            quote_seconds: float,
            began_perf: float,
            finished_perf: float,
            issued_perf: float,
            requotes: int = 0,
            failures: int = 0,
            inline: bool = True,
        ) -> QuoteSet:
            tripped = deadline_exceeded or (
                budget is not None and budget.exceeded
            )
            return QuoteSet(
                matrix=assemble_matrix(plan, columns),
                quoted_at=self.now,
                quote_seconds=quote_seconds,
                requotes=requotes,
                failures=failures,
                began_perf=began_perf,
                finished_perf=finished_perf,
                issued_perf=issued_perf,
                inline=inline,
                failed_columns=tuple(failed_cols),
                failed_rows=frozenset(
                    row for col in failed_cols for row in plan.rows_by_col[col]
                ),
                task_failures=task_failures,
                deadline_exceeded=tripped,
            )

        if self.columns is None:
            # Deferred synchronous stage: the degenerate pipeline. Its
            # wall time starts here — nothing ran between begin and
            # collect, so none of it can overlap event execution.
            t0 = clock()
            columns: list = [None] * n
            for col in range(n):
                settle(col, "quote.column", columns)
            finished = clock()
            return finish(
                columns,
                quote_seconds=finished - t0,
                began_perf=t0,
                finished_perf=finished,
                issued_perf=t0,
            )

        columns = [None] * n
        finished = self.began_perf
        failures = 0
        stale: list[int] = []
        awaits_with_timeout = (
            self.service.backend == "thread" and retry.timeout_s is not None
        )
        for col, future in enumerate(self.columns):
            agent = plan.agents[col]
            try:
                if awaits_with_timeout:
                    quoted, done_at = future.result(timeout=retry.timeout_s)
                else:
                    quoted, done_at = future.result()
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                # A mutation raced the worker mid-quote, the quote timed
                # out, or an injected fault fired: repair below, same as
                # stale — the hardened inline path retries it.
                failures += 1
                stale.append(col)
                continue
            if agent.schedule_epoch != self.epochs[col]:
                stale.append(col)
            else:
                finished = max(finished, done_at)
                columns[col] = quoted
        for col in stale:
            settle(col, "quote.requote", columns)
        if stale:
            finished = max(finished, clock())
        return finish(
            columns,
            quote_seconds=finished - self.began_perf,
            began_perf=self.began_perf,
            finished_perf=finished,
            issued_perf=self.issued_perf,
            requotes=len(stale),
            failures=failures,
            inline=self.service.backend != "thread",
        )


def _quote_task(
    agent,
    requests,
    now,
    objective,
    decision,
    tracer,
    parent,
    fault=None,
    injector=NULL_INJECTOR,
    sleeping=False,
    timeout_s=None,
    budget=None,
):
    """One worker-side column quote; stamps its completion time.

    ``parent`` is the span-id handle captured on the simulator thread at
    quote issue — the deterministic anchor worker spans attach to,
    whatever pool thread runs the task. ``fault`` is the directive drawn
    parent-side at issue; engine faults open against this task's window.
    """
    t0 = clock()
    with injector.engine_window(budget=budget, sleeping=sleeping):
        quoted = run_with_fault(
            fault,
            sleeping,
            timeout_s,
            quote_column,
            agent,
            requests,
            now,
            objective,
            decision=decision,
        )
    done = clock()
    tracer.emit(
        "quote.column",
        "quote",
        t0,
        done,
        parent=parent,
        vehicle=agent.vehicle.vehicle_id,
        rows=len(requests),
    )
    return quoted, done


class QuoteService:
    """Builds batch cost matrices, optionally on a worker pool.

    ``workers=0`` (the default) is the synchronous service: *begin*
    plans the columns but defers all quoting to *collect*, reproducing
    the pre-pipeline order exactly. With ``workers >= 1`` the per-vehicle
    column quotes are issued eagerly at *begin* — inline for the
    ``serial`` backend, on a shared thread pool for ``thread`` — and
    *collect* repairs whatever went stale in between.

    ``injector`` / ``retry`` wire in the fault-tolerance layer
    (:mod:`repro.faults`); the defaults — a disabled injector and
    :data:`~repro.faults.DEFAULT_RETRY` — keep the fault-free path
    bit-identical to the unhardened service.
    """

    def __init__(
        self,
        workers: int = 0,
        backend: str = "thread",
        tracer=NULL_TRACER,
        injector=NULL_INJECTOR,
        retry=None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if backend not in QUOTE_BACKENDS:
            known = ", ".join(QUOTE_BACKENDS)
            raise ValueError(f"quote backend must be one of: {known}")
        self.workers = workers
        self.backend = backend
        self.tracer = tracer
        self.injector = injector
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self._pool: WorkerPool | None = None

    def __repr__(self) -> str:
        return f"QuoteService(workers={self.workers}, backend={self.backend!r})"

    def _get_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(
                self.backend, max_workers=self.workers, injector=self.injector
            )
        return self._pool

    def queue_depth(self) -> int | None:
        """In-flight column quotes on the async pool; ``None`` before
        the pool exists (deferred mode never builds one). The resource
        monitor's queue-depth probe."""
        pool = self._pool
        return pool.queue_depth() if pool is not None else None

    # ------------------------------------------------------------------
    def begin(
        self,
        dispatcher: Dispatcher,
        requests: list[TripRequest],
        now: float,
        budget: FlushBudget | None = None,
    ) -> PendingQuotes:
        """Start the quote stage for one batch, valid for commit at
        ``now``. Candidate filtering and (in eager mode) decision-point
        resolution happen here, on the calling thread. ``budget`` is the
        flush's deadline budget, threaded through to collect-time
        retries and injected delays."""
        began = clock()
        plan = plan_columns(dispatcher, requests)
        if self.workers == 0:
            # Deferred mode: nothing is quoted yet — the stage's wall
            # time starts when collect() runs it.
            return PendingQuotes(
                self, dispatcher, plan, now, None, None, budget=budget
            )
        pool = self._get_pool()
        graph = dispatcher.engine.graph
        # Captured on this (the issuing) thread: worker column spans
        # anchor to the currently open span — quote.issue — whatever
        # pool thread later runs them.
        parent = self.tracer.current_id()
        sleeping = self.backend == "thread"
        epochs: list[int] = []
        columns: list[Future] = []
        for col, agent in enumerate(plan.agents):
            epochs.append(agent.schedule_epoch)
            # Peek: ``now`` is the future commit instant — resolving it
            # must not advance the vehicle's waypoint cursor past the
            # position queries of the overlap window's own events.
            decision = agent.vehicle.peek_decision_point(now, graph)
            fault = self.injector.draw("quote.task", budget=budget)
            columns.append(
                pool.submit(
                    _quote_task,
                    agent,
                    [requests[i] for i in plan.rows_by_col[col]],
                    now,
                    dispatcher.objective,
                    decision,
                    self.tracer,
                    parent,
                    fault,
                    self.injector,
                    sleeping,
                    self.retry.timeout_s,
                    budget,
                )
            )
        pending = PendingQuotes(
            self,
            dispatcher,
            plan,
            now,
            columns,
            epochs,
            budget=budget,
            began_perf=began,
        )
        pending.issued_perf = clock()
        return pending

    def build(
        self, dispatcher: Dispatcher, requests: list[TripRequest], now: float
    ) -> QuoteSet:
        """The whole quote stage, synchronously (begin + collect).

        With ``workers=0`` this produces a matrix bit-identical to
        :func:`~repro.dispatch.costs.build_cost_matrix` — it runs the
        same three stages in the same order.
        """
        return self.begin(dispatcher, requests, now).collect()

    def close(self) -> None:
        """Release the worker pool (no-op when none was created)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "QuoteService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
