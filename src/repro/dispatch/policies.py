"""Pluggable batch-assignment policies.

Given one window's worth of requests, a :class:`DispatchPolicy` decides
which vehicle (if any) serves each request and commits the winning
quotes. Three policies ship:

* ``greedy`` — the paper's dispatch, applied sequentially in arrival
  order: each request is quoted against its candidates and committed to
  the cheapest. With a zero-length window this *is* immediate dispatch.
* ``lap`` — one global linear-assignment round over the whole batch
  (after Simonetto et al., *Real-time City-scale Ridesharing via Linear
  Assignment Problems*): at most one request per vehicle, minimum total
  cost; requests that lose the round fall back to a sequential
  cheapest-quote cleanup against the updated schedules, so ride-pooling
  (several requests on one vehicle) still happens within the batch.
* ``iterative`` — up to ``rounds`` linear-assignment rounds (after
  Vakayil et al., *Large-Scale Dynamic Ridesharing with Iterative
  Assignment*): unassigned requests are re-quoted against the updated
  vehicle schedules each round, then the same cleanup runs. ``lap`` is
  exactly ``iterative`` with one round.
* ``sharded`` — ``lap`` with the global solve federated over spatial
  shards (:mod:`repro.dispatch.sharding`): the batch is partitioned by
  grid-index region, the per-shard assignments run concurrently on a
  configurable backend, and boundary conflicts are reconciled by a
  deterministic second-stage solve. ``shards=1`` is bit-identical to
  ``lap``.

Within one flush a request that quotes infeasible against every
candidate is rejected outright and not retried: vehicle decision points
are fixed for the flush and schedules only grow, so feasibility can only
shrink between rounds. *Across* flushes feasibility can recover —
vehicles reach stops and free seats — which is what **carry-over
batching** (Simonetto-style, ``carry_deadline`` below) exploits: instead
of settling a losing request in-batch (greedy cleanup or rejection), the
policy hands it back as a :class:`CarriedRequest` and the simulator
rolls it into the next :class:`~repro.dispatch.window.BatchWindow`,
bounded by its remaining wait budget. A request whose pickup deadline
cannot reach the next flush's commit instant takes the existing
in-batch cleanup/rejection path exactly as before.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.matching import AssignmentResult, Dispatcher
from repro.core.request import TripRequest
from repro.dispatch.quoting import QuoteService, QuoteSet
from repro.dispatch.solver import solve_assignment
from repro.faults import NULL_INJECTOR
from repro.obs.trace import NULL_TRACER, clock


@dataclass(slots=True)
class CarriedRequest:
    """A request deferred to the next batch window (carry-over).

    ``elapsed`` and ``quote_timings`` are the ACRT/ART debt this flush
    ran up for the request; the simulator accumulates them and folds
    them into the request's final :class:`~repro.core.matching.
    AssignmentResult` when a later flush settles it, so response-time
    metrics cover the full multi-flush search.
    """

    request: TripRequest
    elapsed: float
    quote_timings: list[tuple[int, float]]
    #: True when the carry is the degradation ladder's doing: the
    #: request's quote column(s) failed this flush and the carry path
    #: rescued it instead of letting it be rejected on a fault.
    fault_rescued: bool = False


@dataclass(slots=True)
class BatchResult:
    """Outcome of dispatching one batch.

    ``results`` is in request (arrival) order, one
    :class:`~repro.core.matching.AssignmentResult` per *settled*
    request; ``carried`` holds the requests deferred to the next window
    (empty unless carry-over is enabled — see :class:`CarriedRequest`);
    ``solver_seconds`` is the wall time spent inside the assignment
    solver proper (0 for ``greedy``); ``rounds`` counts the
    linear-assignment rounds actually run. The shard fields are only
    populated by the ``sharded`` policy: requests per solved shard,
    in-worker solve seconds per shard, and how many vehicles were
    claimed by more than one shard (boundary conflicts).
    """

    results: list[AssignmentResult] = field(default_factory=list)
    carried: list[CarriedRequest] = field(default_factory=list)
    solver_seconds: float = 0.0
    rounds: int = 0
    shard_sizes: list[int] = field(default_factory=list)
    shard_solve_seconds: list[float] = field(default_factory=list)
    boundary_conflicts: int = 0
    #: Solve rounds whose shard plan degenerated to one global shard
    #: despite more being requested (no grid index / no coordinates).
    shard_fallbacks: int = 0
    #: Shards re-solved serially in the parent after their fan-out task
    #: exhausted its retry budget (sharded policy only).
    shard_serial_rescues: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.results)

    @property
    def num_assigned(self) -> int:
        return sum(1 for r in self.results if r.assigned)

    @property
    def num_rejected(self) -> int:
        return sum(1 for r in self.results if not r.assigned)


class DispatchPolicy(abc.ABC):
    """Strategy deciding how one batch of requests is matched."""

    #: Registry name; also what ``SimulationConfig.dispatch_policy`` takes.
    name: str = ""

    #: Whether :meth:`assign` consumes a pre-built :class:`QuoteSet`
    #: (the pipeline only runs the async quote stage for policies that
    #: do — ``greedy`` quotes inline and would waste the workers).
    uses_quote_set: bool = False

    @abc.abstractmethod
    def assign(
        self,
        dispatcher: Dispatcher,
        requests: list[TripRequest],
        now: float,
        quote_set: QuoteSet | None = None,
        carry_deadline: float | None = None,
        fault_deadline: float | None = None,
    ) -> BatchResult:
        """Match ``requests`` (arrival order) against the fleet at ``now``,
        committing every winning quote; returns one result per settled
        request (plus the carried remainder).

        ``quote_set`` is the pipeline's completed quote stage for this
        batch (``None`` = quote here, synchronously). Policies that
        consume it must treat it as round-1 material only: later rounds
        re-quote against schedules the earlier rounds just changed.

        ``carry_deadline`` enables carry-over batching: a request that
        ends the flush unassigned and whose ``pickup_deadline`` still
        reaches ``carry_deadline`` (the next flush's commit instant) is
        returned in :attr:`BatchResult.carried` instead of being
        settled in-batch. ``None`` (the default) settles every request
        here — today's behavior, bit-identical.

        ``fault_deadline`` arms the degradation ladder's fault-carry
        rung: a request whose quote column(s) *failed* this flush
        (``quote_set.failed_rows``) and whose ``pickup_deadline`` still
        reaches the next flush's commit instant is carried — flagged
        ``fault_rescued`` — rather than rejected on the back of an
        infrastructure fault. Independent of ``carry_deadline`` so the
        rescue works even with carry-over batching disabled.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class GreedyPolicy(DispatchPolicy):
    """Sequential cheapest-quote assignment in arrival order.

    Delegates each request to :meth:`Dispatcher.submit`, so a batch of
    one reproduces immediate dispatch *exactly* — same quotes, same
    tie-breaking, same metrics.
    """

    name = "greedy"

    def assign(
        self,
        dispatcher,
        requests,
        now,
        quote_set=None,
        carry_deadline=None,
        fault_deadline=None,
    ):
        tracer = getattr(dispatcher, "tracer", NULL_TRACER)
        results: list[AssignmentResult] = []
        carried: list[CarriedRequest] = []
        with tracer.span(
            "commit", cat="commit", policy=self.name, requests=len(requests)
        ):
            for request in requests:
                result = dispatcher.submit(request, now)
                self._settle(
                    result, request, carry_deadline, results, carried
                )
        return BatchResult(
            results=results,
            carried=carried,
            solver_seconds=0.0,
            rounds=0,
        )

    @staticmethod
    def _settle(result, request, carry_deadline, results, carried):
        if (
            not result.assigned
            and carry_deadline is not None
            and request.pickup_deadline >= carry_deadline
        ):
            carried.append(
                CarriedRequest(
                    request=request,
                    elapsed=result.elapsed,
                    quote_timings=result.quote_timings,
                )
            )
        else:
            results.append(result)


class _AssignmentRoundsPolicy(DispatchPolicy):
    """Shared machinery for the linear-assignment policies.

    Matrix construction lives in the shared quote service
    (:class:`~repro.dispatch.quoting.QuoteService`): round 1 consumes
    the pipeline's completed :class:`QuoteSet` when one is handed in,
    and every other build (later rounds, round 1 without a pipeline)
    goes through the policy's own synchronous service — the same three
    column stages either way.
    """

    uses_quote_set = True

    def __init__(self, rounds: int = 1, injector=NULL_INJECTOR, retry=None):
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds
        self.quote_service = QuoteService(
            workers=0, injector=injector, retry=retry
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rounds={self.rounds})"

    def _solve_matrix(self, dispatcher, matrix):
        """One assignment solve over the batch matrix: returns global
        ``(row, col)`` pairs plus an optional
        :class:`~repro.dispatch.sharding.solver.ShardedSolveOutcome`
        (``None`` here — the base policies solve globally; the sharded
        policy overrides this hook)."""
        return solve_assignment(matrix.keys), None

    def assign(
        self,
        dispatcher,
        requests,
        now,
        quote_set=None,
        carry_deadline=None,
        fault_deadline=None,
    ):
        tracer = getattr(dispatcher, "tracer", NULL_TRACER)
        started = clock()
        if quote_set is not None:
            # Round 1's quoting already ran in the pipeline's quote
            # stage; credit its wall time into the batch span so the
            # per-request ACRT share keeps covering the full search.
            started -= quote_set.quote_seconds
        solver_seconds = 0.0
        rounds_used = 0
        shard_sizes: list[int] = []
        shard_solve_seconds: list[float] = []
        boundary_conflicts = 0
        shard_fallbacks = 0
        shard_serial_rescues = 0
        results: dict[int, AssignmentResult] = {}
        carried_idx: set[int] = set()
        fault_rescued_idx: set[int] = set()
        pending = list(range(len(requests)))
        # ART samples accumulate across rounds: a request quoted in three
        # rounds contributes all three rounds' quote work, not just the
        # round it was resolved in.
        art_samples: dict[int, list[tuple[int, float]]] = {
            i: [] for i in pending
        }

        def carries_over(i: int) -> bool:
            # A carried request must still be assignable at the *next*
            # flush's commit instant; once its wait budget can no longer
            # reach it, the existing in-batch settle path fires instead.
            return (
                carry_deadline is not None
                and requests[i].pickup_deadline >= carry_deadline
            )

        while pending and rounds_used < self.rounds:
            batch = [requests[i] for i in pending]
            if quote_set is not None and rounds_used == 0:
                # Round 1 of a pipelined flush: the quote stage already
                # ran (and repaired staleness) for exactly this batch.
                matrix = quote_set.matrix
            else:
                with tracer.span(
                    "quote",
                    cat="quote",
                    round=rounds_used + 1,
                    requests=len(batch),
                ):
                    matrix = self.quote_service.build(
                        dispatcher, batch, now
                    ).matrix
            rounds_used += 1
            for row, i in enumerate(pending):
                art_samples[i].extend(matrix.row_timings(row))
            feasible_rows = np.isfinite(matrix.keys).any(axis=1)
            for row in np.nonzero(~feasible_rows)[0]:
                i = pending[row]
                if carries_over(i):
                    # Infeasible *now*, but vehicles free up between
                    # flushes — roll into the next window instead of
                    # rejecting.
                    carried_idx.add(i)
                    continue
                if (
                    quote_set is not None
                    and rounds_used == 1
                    and fault_deadline is not None
                    and row in quote_set.failed_rows
                    and requests[i].pickup_deadline >= fault_deadline
                ):
                    # Fault-carry rung: the request looks infeasible
                    # because its quote column(s) *failed*, not because
                    # no vehicle can serve it — carry it to the next
                    # flush instead of rejecting on an infrastructure
                    # fault. (Round 1 only: row indices == quote-set
                    # rows there, and later rounds re-quoted cleanly.)
                    carried_idx.add(i)
                    fault_rescued_idx.add(i)
                    continue
                results[i] = AssignmentResult(
                    request=matrix.requests[row],
                    winner=None,
                    cost=float("inf"),
                    elapsed=0.0,
                    num_candidates=matrix.candidate_counts[row],
                    quote_timings=art_samples[i],
                )
            # The solver stopwatch stays even when untraced: its sum
            # feeds BatchResult.solver_seconds either way. The span adds
            # the per-round decomposition (per-shard children attach to
            # it inside the sharded solve).
            with tracer.span(
                "solve",
                cat="solve",
                round=rounds_used,
                rows=int(matrix.keys.shape[0]),
                cols=int(matrix.keys.shape[1]),
            ):
                t0 = clock()
                pairs, shard_outcome = self._solve_matrix(dispatcher, matrix)
                solver_seconds += clock() - t0
            if shard_outcome is not None:
                shard_sizes.extend(shard_outcome.shard_sizes)
                shard_solve_seconds.extend(shard_outcome.shard_seconds)
                boundary_conflicts += shard_outcome.boundary_conflicts
                if shard_outcome.fallback_reason is not None:
                    shard_fallbacks += 1
                shard_serial_rescues += shard_outcome.serial_rescues
            assigned_rows = set()
            with tracer.span(
                "commit", cat="commit", round=rounds_used, pairs=len(pairs)
            ):
                for row, col in pairs:
                    quote = matrix.quotes[row][col]
                    quote.agent.commit(quote)
                    results[pending[row]] = AssignmentResult(
                        request=quote.request,
                        winner=quote.agent,
                        cost=quote.cost,
                        elapsed=0.0,
                        num_candidates=matrix.candidate_counts[row],
                        quote_timings=art_samples[pending[row]],
                    )
                    assigned_rows.add(row)
            pending = [
                i
                for row, i in enumerate(pending)
                if row not in assigned_rows and feasible_rows[row]
            ]
            if not pairs:
                break
        # Losers of every round: carry-over rolls them into the next
        # window (they wait for the next global solve instead of being
        # resolved greedily in-batch); everyone else takes the cleanup —
        # a sequential re-quote against the updated schedules, where a
        # vehicle that won a request above can still pool a second one.
        with tracer.span("cleanup", cat="commit", pending=len(pending)):
            for i in pending:
                if carries_over(i):
                    carried_idx.add(i)
                    continue
                result = dispatcher.submit(requests[i], now)
                result.quote_timings = art_samples[i] + result.quote_timings
                results[i] = result
        # Each request's ACRT contribution is an even share of the batch
        # wall time (the whole batch was answered by one solve); carried
        # requests take their share along as debt and settle it later.
        share = (clock() - started) / len(requests) if requests else 0.0
        ordered = []
        carried = []
        for i in range(len(requests)):
            if i in carried_idx:
                carried.append(
                    CarriedRequest(
                        request=requests[i],
                        elapsed=share,
                        quote_timings=art_samples[i],
                        fault_rescued=i in fault_rescued_idx,
                    )
                )
                continue
            result = results[i]
            result.elapsed = share
            ordered.append(result)
        return BatchResult(
            results=ordered,
            carried=carried,
            solver_seconds=solver_seconds,
            rounds=rounds_used,
            shard_sizes=shard_sizes,
            shard_solve_seconds=shard_solve_seconds,
            boundary_conflicts=boundary_conflicts,
            shard_fallbacks=shard_fallbacks,
            shard_serial_rescues=shard_serial_rescues,
        )


class LapPolicy(_AssignmentRoundsPolicy):
    """One global linear-assignment round plus greedy cleanup."""

    name = "lap"

    def __init__(self, injector=NULL_INJECTOR, retry=None):
        super().__init__(rounds=1, injector=injector, retry=retry)


class IterativePolicy(_AssignmentRoundsPolicy):
    """Repeated linear-assignment rounds over the shrinking batch."""

    name = "iterative"

    def __init__(self, rounds: int = 3, injector=NULL_INJECTOR, retry=None):
        super().__init__(rounds=rounds, injector=injector, retry=retry)


class ShardedPolicy(_AssignmentRoundsPolicy):
    """Linear assignment federated over spatial shards.

    Identical quoting, bookkeeping and cleanup to :class:`LapPolicy`
    (same base machinery); only the solve step differs — the batch is
    partitioned by grid region (:class:`~repro.dispatch.sharding.
    partitioner.ShardPartitioner`), per-shard Hungarian solves fan out
    over a :class:`~repro.dispatch.sharding.executor.ShardExecutor`, and
    the :class:`~repro.dispatch.sharding.reconciler.BoundaryReconciler`
    resolves vehicles claimed by several shards. With ``num_shards=1``
    (any backend) the solve is bit-identical to ``lap``.
    """

    name = "sharded"

    def __init__(
        self,
        num_shards: int = 1,
        backend: str = "serial",
        boundary_cells: int | None = None,
        rounds: int = 1,
        max_workers: int | None = None,
        injector=NULL_INJECTOR,
        retry=None,
        zero_copy: bool = False,
        persistent_workers: bool = False,
    ):
        from repro.dispatch.sharding import ShardExecutor, ShardPartitioner

        super().__init__(rounds=rounds, injector=injector, retry=retry)
        self.partitioner = ShardPartitioner(
            num_shards, boundary_cells=boundary_cells
        )
        self.executor = ShardExecutor(
            backend,
            max_workers=max_workers,
            injector=injector,
            retry=retry,
            zero_copy=zero_copy,
            persistent_workers=persistent_workers,
        )

    def __repr__(self) -> str:
        return (
            f"ShardedPolicy(num_shards={self.partitioner.num_shards}, "
            f"backend={self.executor.backend!r}, "
            f"boundary_cells={self.partitioner.boundary_cells}, "
            f"rounds={self.rounds})"
        )

    def _solve_matrix(self, dispatcher, matrix):
        from repro.dispatch.sharding import solve_sharded

        plan = self.partitioner.plan(
            matrix,
            grid_index=dispatcher.grid_index,
            coords=dispatcher.engine.graph.coords,
        )
        outcome = solve_sharded(
            matrix.keys,
            plan,
            self.executor,
            tracer=getattr(dispatcher, "tracer", NULL_TRACER),
        )
        return outcome.pairs, outcome

    def close(self) -> None:
        """Release the executor's worker pool (thread/process backends)."""
        self.executor.close()


#: Policy name -> class, for config validation and construction.
POLICY_REGISTRY: dict[str, type[DispatchPolicy]] = {
    GreedyPolicy.name: GreedyPolicy,
    LapPolicy.name: LapPolicy,
    IterativePolicy.name: IterativePolicy,
    ShardedPolicy.name: ShardedPolicy,
}


def make_policy(
    name: str,
    assignment_rounds: int = 3,
    *,
    num_shards: int = 1,
    shard_backend: str = "serial",
    shard_boundary_cells: int | None = None,
    shard_max_workers: int | None = None,
    shard_zero_copy: bool = False,
    shard_persistent_workers: bool = False,
    injector=NULL_INJECTOR,
    retry=None,
) -> DispatchPolicy:
    """Instantiate a policy by registry name.

    ``assignment_rounds`` only applies to ``iterative``; the ``shard_*``
    keywords only to ``sharded`` (``shard_zero_copy`` /
    ``shard_persistent_workers`` further only bite on the process
    backend — serial/thread have no process boundary and stay
    bit-identical with the flags set). ``injector`` / ``retry`` thread
    the fault-tolerance layer into the policy's quote service and (for
    ``sharded``) shard executor; ``greedy`` runs unhardened by design —
    it is the ladder's last rung and must stay fault-immune.
    """
    try:
        cls = POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise ValueError(
            f"unknown dispatch policy {name!r}; known: {known}"
        ) from None
    if cls is IterativePolicy:
        return IterativePolicy(
            rounds=assignment_rounds, injector=injector, retry=retry
        )
    if cls is ShardedPolicy:
        return ShardedPolicy(
            num_shards=num_shards,
            backend=shard_backend,
            boundary_cells=shard_boundary_cells,
            max_workers=shard_max_workers,
            injector=injector,
            retry=retry,
            zero_copy=shard_zero_copy,
            persistent_workers=shard_persistent_workers,
        )
    if cls is GreedyPolicy:
        return GreedyPolicy()
    return cls(injector=injector, retry=retry)
