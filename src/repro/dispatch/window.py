"""Rolling-horizon request accumulation.

Immediate dispatch answers each request the instant it arrives — the
paper's Section VI behavior. Batched dispatch instead collects the
requests arriving within a short window (Simonetto et al. use 10-30 s)
and matches the whole batch at once, trading a bounded extra wait for a
globally better assignment. :class:`BatchWindow` is the accumulator: the
simulator adds requests as they arrive and flushes on each periodic
``BATCH_DISPATCH`` event.

The window length only *shifts* when a request is answered; the service
guarantee is untouched because deadlines are anchored to the original
request time, so every quote computed at flush time already absorbs the
queueing delay.
"""

from __future__ import annotations

from repro.core.request import TripRequest


class BatchWindow:
    """Accumulates requests until the next batch-dispatch flush.

    Parameters
    ----------
    window_s:
        Window length in seconds. ``0`` is the degenerate immediate
        window (callers typically bypass the accumulator entirely then);
        negative values are rejected.
    """

    __slots__ = ("window_s", "_pending", "num_flushes")

    def __init__(self, window_s: float):
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self.window_s = window_s
        self._pending: list[TripRequest] = []
        #: Number of flushes performed (including empty ones).
        self.num_flushes = 0

    def add(self, request: TripRequest) -> None:
        """Queue a request for the next flush (arrival order preserved)."""
        self._pending.append(request)

    def flush(self) -> list[TripRequest]:
        """Drain and return the pending batch in arrival order."""
        batch = self._pending
        self._pending = []
        self.num_flushes += 1
        return batch

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __repr__(self) -> str:
        return (
            f"BatchWindow(window_s={self.window_s}, "
            f"pending={len(self._pending)})"
        )
