"""Rolling-horizon request accumulation.

Immediate dispatch answers each request the instant it arrives — the
paper's Section VI behavior. Batched dispatch instead collects the
requests arriving within a short window (Simonetto et al. use 10-30 s)
and matches the whole batch at once, trading a bounded extra wait for a
globally better assignment. :class:`BatchWindow` is the accumulator: the
simulator adds requests as they arrive, each periodic ``BATCH_DISPATCH``
event *flushes* the pending batch into the staged quote → solve → commit
pipeline, and — with carry-over batching enabled — requests that lose a
flush's assignment :meth:`re-enter <carry>` the window for the next one.

The window length only *shifts* when a request is answered; the service
guarantee is untouched because deadlines are anchored to the original
request time, so every quote computed at flush time already absorbs the
queueing delay. The same anchoring bounds carry-over: a carried request
keeps its original ``pickup_deadline``, so it can only ride along while
its remaining wait budget covers the next flush's commit instant
(:mod:`repro.dispatch.policies` enforces the bound; the existing
rejection path fires once the budget runs out).

With the adaptive controller (:mod:`repro.dispatch.adaptive`) the
window *length* is retuned per flush; the accumulator itself is
length-agnostic — ``window_s`` mirrors the controller's latest value
for introspection only.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.request import TripRequest


class BatchWindow:
    """Accumulates requests until the next batch-dispatch flush.

    Parameters
    ----------
    window_s:
        Window length in seconds. ``0`` is the degenerate immediate
        window (callers typically bypass the accumulator entirely then);
        negative values are rejected. Under adaptive tuning this mirrors
        the controller's most recent window length.
    """

    __slots__ = ("window_s", "_pending", "num_flushes", "num_carried")

    def __init__(self, window_s: float):
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self.window_s = window_s
        self._pending: list[TripRequest] = []
        #: Number of flushes performed (including empty ones).
        self.num_flushes = 0
        #: Number of carry-over re-entries accepted (carry events, not
        #: unique requests).
        self.num_carried = 0

    def add(self, request: TripRequest) -> None:
        """Queue a request for the next flush (arrival order preserved)."""
        self._pending.append(request)

    def carry(self, requests: Iterable[TripRequest]) -> None:
        """Re-admit requests that lost a flush's assignment.

        Carried requests are *prepended*: they arrived before anything
        currently pending (a commit always lands before the next flush,
        so at most one carried cohort is in flight), which keeps every
        flushed batch in global arrival (request-id) order — the
        ordering all deterministic tie-breaks are defined over.
        """
        carried = list(requests)
        self._pending[:0] = carried
        self.num_carried += len(carried)

    def flush(self) -> list[TripRequest]:
        """Drain and return the pending batch in arrival order."""
        batch = self._pending
        self._pending = []
        self.num_flushes += 1
        return batch

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __repr__(self) -> str:
        return (
            f"BatchWindow(window_s={self.window_s}, "
            f"pending={len(self._pending)})"
        )
