"""Batched dispatch: a staged quote -> solve -> commit pipeline.

The layer between the request stream and the vehicle agents. Immediate
dispatch (the paper's Section VI) is the degenerate case of a zero-length
window under the ``greedy`` policy; with a positive ``batch_window_s``
the simulator accumulates requests in a :class:`BatchWindow` and runs
each flush through an explicit three-stage pipeline:

* **quote** — a :class:`QuoteService` builds the batch's per-vehicle
  :class:`CostMatrix` columns (:func:`plan_columns` ->
  :func:`quote_column` -> :func:`assemble_matrix`), either synchronously
  or on a worker pool while the simulator keeps executing stop events
  (async quoting; see :mod:`repro.dispatch.quoting`). Every schedule
  mutation bumps the owning agent's ``schedule_epoch``, so quotes that
  went stale between quote and commit are detected and re-quoted
  deterministically at collect time.
* **solve** — a pluggable :class:`DispatchPolicy` consumes the completed
  :class:`QuoteSet`:

  * :class:`GreedyPolicy` — paper-equivalent sequential cheapest-quote
    (quotes inline; no matrix);
  * :class:`LapPolicy` — one optimal request x vehicle linear assignment
    (pure-numpy Hungarian solver, :func:`solve_assignment`);
  * :class:`IterativePolicy` — repeated assignment rounds re-quoting
    unassigned requests against updated schedules;
  * :class:`ShardedPolicy` — ``lap`` with the global solve federated over
    grid-region shards (:mod:`repro.dispatch.sharding`): concurrent
    per-shard Hungarian solves plus deterministic boundary
    reconciliation; ``shards=1`` is bit-identical to ``lap``.

* **commit** — winning quotes are adopted by their vehicles; the
  simulator schedules fresh stop events for the winners. With
  carry-over batching enabled, requests that lose the flush but still
  have wait budget left re-enter the next window
  (:class:`CarriedRequest`) instead of being settled in-batch.

The flush cadence itself is owned by a window controller
(:mod:`repro.dispatch.adaptive`): fixed (the configured
``batch_window_s``, bit-identical to the pre-controller scheduling) or
adaptive (per-flush retuning from the observed arrival intensity,
clamped to ``[window_min_s, window_max_s]``, with ``quote_overlap_s``
scaled proportionally).

Cost matrices are built per vehicle, so a vehicle quoting many requests
computes its decision point once and reuses its shortest-path locality
across the batch. With ``quote_workers=0`` the pipeline defers all
quoting to the solve instant and is bit-identical to the pre-pipeline
synchronous order.
"""

from repro.dispatch.adaptive import (
    AdaptiveWindowController,
    FixedWindowController,
    make_window_controller,
)

from repro.dispatch.costs import (
    ColumnPlan,
    ColumnQuotes,
    CostMatrix,
    assemble_matrix,
    build_cost_matrix,
    plan_columns,
    quote_column,
)
from repro.dispatch.dispatcher import BatchDispatcher
from repro.dispatch.policies import (
    BatchResult,
    CarriedRequest,
    DispatchPolicy,
    GreedyPolicy,
    IterativePolicy,
    LapPolicy,
    POLICY_REGISTRY,
    ShardedPolicy,
    make_policy,
)
from repro.dispatch.quoting import (
    QUOTE_BACKENDS,
    PendingQuotes,
    QuoteService,
    QuoteSet,
)
from repro.dispatch.sharding import (
    SHARD_BACKENDS,
    BoundaryReconciler,
    ShardExecutor,
    ShardPartitioner,
    ShardPlan,
    WorkerPool,
    solve_sharded,
)
from repro.dispatch.solver import assignment_cost, solve_assignment
from repro.dispatch.window import BatchWindow

__all__ = [
    "AdaptiveWindowController",
    "BatchDispatcher",
    "BatchResult",
    "BatchWindow",
    "BoundaryReconciler",
    "CarriedRequest",
    "ColumnPlan",
    "ColumnQuotes",
    "CostMatrix",
    "DispatchPolicy",
    "FixedWindowController",
    "GreedyPolicy",
    "IterativePolicy",
    "LapPolicy",
    "POLICY_REGISTRY",
    "PendingQuotes",
    "QUOTE_BACKENDS",
    "QuoteService",
    "QuoteSet",
    "SHARD_BACKENDS",
    "ShardExecutor",
    "ShardPartitioner",
    "ShardPlan",
    "ShardedPolicy",
    "WorkerPool",
    "assemble_matrix",
    "assignment_cost",
    "build_cost_matrix",
    "make_policy",
    "make_window_controller",
    "plan_columns",
    "quote_column",
    "solve_sharded",
    "solve_assignment",
]
