"""Batched dispatch: rolling-horizon windows + global assignment.

The layer between the request stream and the vehicle agents. Immediate
dispatch (the paper's Section VI) is the degenerate case of a zero-length
window under the ``greedy`` policy; with a positive ``batch_window_s``
the simulator accumulates requests in a :class:`BatchWindow`, and on each
periodic ``BATCH_DISPATCH`` event a :class:`BatchDispatcher` matches the
whole batch through a pluggable :class:`DispatchPolicy`:

* :class:`GreedyPolicy` — paper-equivalent sequential cheapest-quote;
* :class:`LapPolicy` — one optimal request x vehicle linear assignment
  (pure-numpy Hungarian solver, :func:`solve_assignment`);
* :class:`IterativePolicy` — repeated assignment rounds re-quoting
  unassigned requests against updated schedules;
* :class:`ShardedPolicy` — ``lap`` with the global solve federated over
  grid-region shards (:mod:`repro.dispatch.sharding`): concurrent
  per-shard Hungarian solves plus deterministic boundary
  reconciliation; ``shards=1`` is bit-identical to ``lap``.

Cost matrices are built per vehicle (:func:`build_cost_matrix`), so a
vehicle quoting many requests computes its decision point once and reuses
its shortest-path locality across the batch.
"""

from repro.dispatch.costs import CostMatrix, build_cost_matrix
from repro.dispatch.dispatcher import BatchDispatcher
from repro.dispatch.policies import (
    BatchResult,
    DispatchPolicy,
    GreedyPolicy,
    IterativePolicy,
    LapPolicy,
    POLICY_REGISTRY,
    ShardedPolicy,
    make_policy,
)
from repro.dispatch.sharding import (
    SHARD_BACKENDS,
    BoundaryReconciler,
    ShardExecutor,
    ShardPartitioner,
    ShardPlan,
    solve_sharded,
)
from repro.dispatch.solver import assignment_cost, solve_assignment
from repro.dispatch.window import BatchWindow

__all__ = [
    "BatchDispatcher",
    "BatchResult",
    "BatchWindow",
    "BoundaryReconciler",
    "CostMatrix",
    "DispatchPolicy",
    "GreedyPolicy",
    "IterativePolicy",
    "LapPolicy",
    "POLICY_REGISTRY",
    "SHARD_BACKENDS",
    "ShardExecutor",
    "ShardPartitioner",
    "ShardPlan",
    "ShardedPolicy",
    "assignment_cost",
    "build_cost_matrix",
    "make_policy",
    "solve_sharded",
    "solve_assignment",
]
