"""Batched dispatch: rolling-horizon windows + global assignment.

The layer between the request stream and the vehicle agents. Immediate
dispatch (the paper's Section VI) is the degenerate case of a zero-length
window under the ``greedy`` policy; with a positive ``batch_window_s``
the simulator accumulates requests in a :class:`BatchWindow`, and on each
periodic ``BATCH_DISPATCH`` event a :class:`BatchDispatcher` matches the
whole batch through a pluggable :class:`DispatchPolicy`:

* :class:`GreedyPolicy` — paper-equivalent sequential cheapest-quote;
* :class:`LapPolicy` — one optimal request x vehicle linear assignment
  (pure-numpy Hungarian solver, :func:`solve_assignment`);
* :class:`IterativePolicy` — repeated assignment rounds re-quoting
  unassigned requests against updated schedules.

Cost matrices are built per vehicle (:func:`build_cost_matrix`), so a
vehicle quoting many requests computes its decision point once and reuses
its shortest-path locality across the batch.
"""

from repro.dispatch.costs import CostMatrix, build_cost_matrix
from repro.dispatch.dispatcher import BatchDispatcher
from repro.dispatch.policies import (
    BatchResult,
    DispatchPolicy,
    GreedyPolicy,
    IterativePolicy,
    LapPolicy,
    POLICY_REGISTRY,
    make_policy,
)
from repro.dispatch.solver import assignment_cost, solve_assignment
from repro.dispatch.window import BatchWindow

__all__ = [
    "BatchDispatcher",
    "BatchResult",
    "BatchWindow",
    "CostMatrix",
    "DispatchPolicy",
    "GreedyPolicy",
    "IterativePolicy",
    "LapPolicy",
    "POLICY_REGISTRY",
    "assignment_cost",
    "build_cost_matrix",
    "make_policy",
    "solve_assignment",
]
