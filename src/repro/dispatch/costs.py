"""Batch cost-matrix construction.

For a batch of ``m`` requests, the builder fans quote computation out
over the union of per-request candidate sets (grid-index filtered, same
as immediate dispatch) and assembles the request x vehicle matrix the
assignment policies solve over.

Quoting is organized *per vehicle*, not per request: one
:meth:`~repro.core.matching.VehicleAgent.quote_batch` call per candidate
vehicle quotes every request that reached it, so the vehicle's decision
point is computed once and the whole candidate set fans out through the
engine's batched ``distance_many`` plane (one bounded sweep per vehicle
on the Dijkstra engine instead of ``k`` point-to-point searches). A
vehicle quoting ``k`` requests therefore does the per-vehicle setup once
instead of ``k`` times.

Solver keys are snapped to the same ``1e-9`` tie tolerance
:meth:`~repro.core.matching.Dispatcher.submit` uses, so batched and
immediate dispatch agree on near-ties that land in the same snap bucket
(see :data:`KEY_EPSILON`).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

import numpy as np

from repro.core.matching import Dispatcher, Quote, VehicleAgent
from repro.core.request import TripRequest

#: Immediate dispatch (:meth:`Dispatcher.submit`) treats assignment keys
#: within ``1e-9`` as equal and breaks the tie toward the lowest vehicle
#: id. Solver keys are therefore snapped to this grid before the linear
#: assignment runs: equality after snapping resolves to the lowest
#: column index (columns are ordered by vehicle id), reproducing the
#: immediate tie-break instead of letting sub-nanosecond float noise pick
#: the winner. Snapping is monotone, so a gap wider than the grid is
#: never inverted; near-ties straddling a grid boundary can still
#: compare unequal — the divergence is reduced, not eliminated.
KEY_EPSILON = 1e-9


def snap_key(key: float) -> float:
    """Quantize an assignment key to the :data:`KEY_EPSILON` grid."""
    return round(key / KEY_EPSILON) * KEY_EPSILON


@dataclass(slots=True)
class CostMatrix:
    """The quotes of one batch, matrix-shaped for an assignment solver.

    ``keys[i, j]`` is the assignment objective for giving request ``i``
    to vehicle ``j`` (the quote cost under the ``"total"`` objective, the
    incremental cost under ``"delta"``), ``np.inf`` where the vehicle is
    not a candidate or returned no valid schedule. ``quotes`` holds the
    committable :class:`~repro.core.matching.Quote` per feasible cell,
    and ``timings`` the ``(active_trips, seconds)`` ART sample per quoted
    cell (``None`` where the vehicle was never asked).
    """

    requests: list[TripRequest]
    agents: list[VehicleAgent]
    keys: np.ndarray
    quotes: list[list[Quote | None]]
    timings: list[list[tuple[int, float] | None]]
    candidate_counts: list[int]

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.requests), len(self.agents))

    def row_timings(self, row: int) -> list[tuple[int, float]]:
        """ART samples of one request's quotes (quoted cells only)."""
        return [t for t in self.timings[row] if t is not None]


def build_cost_matrix(
    dispatcher: Dispatcher, requests: list[TripRequest], now: float
) -> CostMatrix:
    """Quote every (request, candidate vehicle) pair of a batch.

    Candidate filtering reuses :meth:`Dispatcher.candidates` per request;
    the matrix columns are the union of all candidate sets, ordered by
    vehicle id so cost ties resolve to the lowest vehicle id, like
    immediate dispatch. Keys are snapped to the :data:`KEY_EPSILON` grid
    so costs within :meth:`Dispatcher.submit`'s 1e-9 tie tolerance
    almost always compare equal to the solver too (``quotes`` keep the
    exact costs — snapping only affects who wins, never the reported
    cost).
    """
    candidate_sets = [dispatcher.candidates(r) for r in requests]
    agents_by_id: dict[int, VehicleAgent] = {}
    rows_by_id: dict[int, list[int]] = {}
    for row, cands in enumerate(candidate_sets):
        for agent in cands:
            vid = agent.vehicle.vehicle_id
            agents_by_id.setdefault(vid, agent)
            rows_by_id.setdefault(vid, []).append(row)
    ordered_ids = sorted(agents_by_id)
    agents = [agents_by_id[vid] for vid in ordered_ids]

    m, n = len(requests), len(agents)
    keys = np.full((m, n), np.inf)
    quotes: list[list[Quote | None]] = [[None] * n for _ in range(m)]
    timings: list[list[tuple[int, float] | None]] = [
        [None] * n for _ in range(m)
    ]

    for col, vid in enumerate(ordered_ids):
        agent = agents[col]
        rows = rows_by_id[vid]
        active = agent.num_active_trips
        plan_cost = (
            agent.current_plan_cost() if dispatcher.objective == "delta" else 0.0
        )
        t0 = _time.perf_counter()
        agent_quotes = agent.quote_batch([requests[i] for i in rows], now)
        per_quote = (_time.perf_counter() - t0) / len(rows)
        for row, quote in zip(rows, agent_quotes):
            timings[row][col] = (active, per_quote)
            if quote is None:
                continue
            quotes[row][col] = quote
            keys[row, col] = snap_key(quote.cost - plan_cost)

    return CostMatrix(
        requests=list(requests),
        agents=agents,
        keys=keys,
        quotes=quotes,
        timings=timings,
        candidate_counts=[len(c) for c in candidate_sets],
    )
