"""Batch cost-matrix construction.

For a batch of ``m`` requests, the builder fans quote computation out
over the union of per-request candidate sets (grid-index filtered, same
as immediate dispatch) and assembles the request x vehicle matrix the
assignment policies solve over.

Quoting is organized *per vehicle*, not per request: one
:meth:`~repro.core.matching.VehicleAgent.quote_batch` call per candidate
vehicle quotes every request that reached it, so the vehicle's decision
point is computed once and the engine's shortest-path caches are hit with
maximal locality (all of a vehicle's quotes fan out from the same decision
vertex). A vehicle quoting ``k`` requests therefore does the per-vehicle
setup once instead of ``k`` times.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

import numpy as np

from repro.core.matching import Dispatcher, Quote, VehicleAgent
from repro.core.request import TripRequest


@dataclass(slots=True)
class CostMatrix:
    """The quotes of one batch, matrix-shaped for an assignment solver.

    ``keys[i, j]`` is the assignment objective for giving request ``i``
    to vehicle ``j`` (the quote cost under the ``"total"`` objective, the
    incremental cost under ``"delta"``), ``np.inf`` where the vehicle is
    not a candidate or returned no valid schedule. ``quotes`` holds the
    committable :class:`~repro.core.matching.Quote` per feasible cell,
    and ``timings`` the ``(active_trips, seconds)`` ART sample per quoted
    cell (``None`` where the vehicle was never asked).
    """

    requests: list[TripRequest]
    agents: list[VehicleAgent]
    keys: np.ndarray
    quotes: list[list[Quote | None]]
    timings: list[list[tuple[int, float] | None]]
    candidate_counts: list[int]

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.requests), len(self.agents))

    def row_timings(self, row: int) -> list[tuple[int, float]]:
        """ART samples of one request's quotes (quoted cells only)."""
        return [t for t in self.timings[row] if t is not None]


def build_cost_matrix(
    dispatcher: Dispatcher, requests: list[TripRequest], now: float
) -> CostMatrix:
    """Quote every (request, candidate vehicle) pair of a batch.

    Candidate filtering reuses :meth:`Dispatcher.candidates` per request;
    the matrix columns are the union of all candidate sets, ordered by
    vehicle id so exact-cost ties resolve to the lowest vehicle id, like
    immediate dispatch. (Near-ties are the one divergence: the solver
    compares floats exactly, while :meth:`Dispatcher.submit` treats costs
    within 1e-9 as equal.)
    """
    candidate_sets = [dispatcher.candidates(r) for r in requests]
    agents_by_id: dict[int, VehicleAgent] = {}
    rows_by_id: dict[int, list[int]] = {}
    for row, cands in enumerate(candidate_sets):
        for agent in cands:
            vid = agent.vehicle.vehicle_id
            agents_by_id.setdefault(vid, agent)
            rows_by_id.setdefault(vid, []).append(row)
    ordered_ids = sorted(agents_by_id)
    agents = [agents_by_id[vid] for vid in ordered_ids]

    m, n = len(requests), len(agents)
    keys = np.full((m, n), np.inf)
    quotes: list[list[Quote | None]] = [[None] * n for _ in range(m)]
    timings: list[list[tuple[int, float] | None]] = [
        [None] * n for _ in range(m)
    ]

    for col, vid in enumerate(ordered_ids):
        agent = agents[col]
        rows = rows_by_id[vid]
        active = agent.num_active_trips
        plan_cost = (
            agent.current_plan_cost() if dispatcher.objective == "delta" else 0.0
        )
        t0 = _time.perf_counter()
        agent_quotes = agent.quote_batch([requests[i] for i in rows], now)
        per_quote = (_time.perf_counter() - t0) / len(rows)
        for row, quote in zip(rows, agent_quotes):
            timings[row][col] = (active, per_quote)
            if quote is None:
                continue
            quotes[row][col] = quote
            keys[row, col] = quote.cost - plan_cost

    return CostMatrix(
        requests=list(requests),
        agents=agents,
        keys=keys,
        quotes=quotes,
        timings=timings,
        candidate_counts=[len(c) for c in candidate_sets],
    )
