"""Batch cost-matrix construction.

For a batch of ``m`` requests, the builder fans quote computation out
over the union of per-request candidate sets (grid-index filtered, same
as immediate dispatch) and assembles the request x vehicle matrix the
assignment policies solve over.

Quoting is organized *per vehicle*, not per request: one
:meth:`~repro.core.matching.VehicleAgent.quote_batch` call per candidate
vehicle quotes every request that reached it, so the vehicle's decision
point is computed once and the whole candidate set fans out through the
engine's batched ``distance_many`` plane (one bounded sweep per vehicle
on the Dijkstra engine instead of ``k`` point-to-point searches). A
vehicle quoting ``k`` requests therefore does the per-vehicle setup once
instead of ``k`` times.

Solver keys are snapped to the same ``1e-9`` tie tolerance
:meth:`~repro.core.matching.Dispatcher.submit` uses, so batched and
immediate dispatch agree on near-ties that land in the same snap bucket
(see :data:`KEY_EPSILON`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.matching import Dispatcher, Quote, VehicleAgent
from repro.core.request import TripRequest
from repro.obs.trace import clock

#: Immediate dispatch (:meth:`Dispatcher.submit`) treats assignment keys
#: within ``1e-9`` as equal and breaks the tie toward the lowest vehicle
#: id. Solver keys are therefore snapped to this grid before the linear
#: assignment runs: equality after snapping resolves to the lowest
#: column index (columns are ordered by vehicle id), reproducing the
#: immediate tie-break instead of letting sub-nanosecond float noise pick
#: the winner. Snapping is monotone, so a gap wider than the grid is
#: never inverted; near-ties straddling a grid boundary can still
#: compare unequal — the divergence is reduced, not eliminated.
KEY_EPSILON = 1e-9


def snap_key(key: float) -> float:
    """Quantize an assignment key to the :data:`KEY_EPSILON` grid."""
    return round(key / KEY_EPSILON) * KEY_EPSILON


@dataclass(slots=True)
class CostMatrix:
    """The quotes of one batch, matrix-shaped for an assignment solver.

    ``keys[i, j]`` is the assignment objective for giving request ``i``
    to vehicle ``j`` (the quote cost under the ``"total"`` objective, the
    incremental cost under ``"delta"``), ``np.inf`` where the vehicle is
    not a candidate or returned no valid schedule. ``quotes`` holds the
    committable :class:`~repro.core.matching.Quote` per feasible cell,
    and ``timings`` the ``(active_trips, seconds)`` ART sample per quoted
    cell (``None`` where the vehicle was never asked).
    """

    requests: list[TripRequest]
    agents: list[VehicleAgent]
    keys: np.ndarray
    quotes: list[list[Quote | None]]
    timings: list[list[tuple[int, float] | None]]
    candidate_counts: list[int]

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.requests), len(self.agents))

    def row_timings(self, row: int) -> list[tuple[int, float]]:
        """ART samples of one request's quotes (quoted cells only)."""
        return [t for t in self.timings[row] if t is not None]


@dataclass(slots=True)
class ColumnPlan:
    """The column layout of one batch's cost matrix, before quoting.

    One plan per flush: the union of the per-request candidate sets,
    ordered by vehicle id (so cost ties resolve to the lowest vehicle
    id, like immediate dispatch), with the rows each vehicle must quote.
    The quote stage — synchronous (:func:`build_cost_matrix`) or
    asynchronous (:class:`~repro.dispatch.quoting.QuoteService`) — fills
    one :class:`ColumnQuotes` per agent and hands both back to
    :func:`assemble_matrix`.
    """

    requests: list[TripRequest]
    agents: list[VehicleAgent]
    rows_by_col: list[list[int]]
    candidate_counts: list[int]

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.requests), len(self.agents))


@dataclass(slots=True)
class ColumnQuotes:
    """One vehicle's quoted column: quotes aligned with the plan's rows
    for that column, the vehicle's active-trip count when quoting began
    (the ART bucket key), the per-quote seconds, and the plan-cost
    baseline under the ``"delta"`` objective (0 under ``"total"``)."""

    quotes: list[Quote | None]
    active_trips: int
    per_quote_seconds: float
    plan_cost: float
    #: True when the column could not be quoted at all (the hardened
    #: quote stage exhausted its retry budget): the matrix keeps the
    #: column all-infeasible and writes no timing samples, so a failure
    #: never pollutes the adaptive-throttle ART buckets.
    failed: bool = False


def failed_column(num_rows: int) -> ColumnQuotes:
    """The all-infeasible placeholder for an unquotable column."""
    return ColumnQuotes(
        quotes=[None] * num_rows,
        active_trips=0,
        per_quote_seconds=0.0,
        plan_cost=0.0,
        failed=True,
    )


def plan_columns(
    dispatcher: Dispatcher, requests: list[TripRequest]
) -> ColumnPlan:
    """Candidate-filter a batch into a column plan (no quoting yet)."""
    candidate_sets = [dispatcher.candidates(r) for r in requests]
    agents_by_id: dict[int, VehicleAgent] = {}
    rows_by_id: dict[int, list[int]] = {}
    for row, cands in enumerate(candidate_sets):
        for agent in cands:
            vid = agent.vehicle.vehicle_id
            agents_by_id.setdefault(vid, agent)
            rows_by_id.setdefault(vid, []).append(row)
    ordered_ids = sorted(agents_by_id)
    return ColumnPlan(
        requests=list(requests),
        agents=[agents_by_id[vid] for vid in ordered_ids],
        rows_by_col=[rows_by_id[vid] for vid in ordered_ids],
        candidate_counts=[len(c) for c in candidate_sets],
    )


def quote_column(
    agent: VehicleAgent,
    requests: list[TripRequest],
    now: float,
    objective: str,
    decision: tuple[int, float] | None = None,
) -> ColumnQuotes:
    """Quote one vehicle against its slice of the batch.

    With ``decision`` (a pre-resolved ``(vertex, time)`` pair) the quote
    goes through :meth:`~repro.core.matching.VehicleAgent.quote_batch_at`
    — the async pipeline's form, where decision points were resolved on
    the simulator thread; without it, through ``quote_batch`` exactly as
    the synchronous path always has.
    """
    active = agent.num_active_trips
    plan_cost = agent.current_plan_cost() if objective == "delta" else 0.0
    t0 = clock()
    if decision is None:
        quotes = agent.quote_batch(requests, now)
    else:
        quotes = agent.quote_batch_at(requests, decision[0], decision[1])
    per_quote = (clock() - t0) / len(requests)
    return ColumnQuotes(
        quotes=quotes,
        active_trips=active,
        per_quote_seconds=per_quote,
        plan_cost=plan_cost,
    )


def assemble_matrix(
    plan: ColumnPlan, columns: list[ColumnQuotes]
) -> CostMatrix:
    """Fold quoted columns (aligned with ``plan.agents``) into the
    request x vehicle :class:`CostMatrix` the assignment policies solve
    over, snapping keys to the :data:`KEY_EPSILON` grid."""
    m, n = plan.shape
    # Explicitly C-contiguous float64: the zero-copy shard fan-out
    # (repro.dispatch.sharding.shm) publishes row-sliced views of this
    # matrix straight into a shared-memory arena, so the key layout must
    # stay arena-allocatable — a dtype or order change here would force
    # a copy back into every flush.
    keys = np.full((m, n), np.inf, dtype=np.float64, order="C")
    quotes: list[list[Quote | None]] = [[None] * n for _ in range(m)]
    timings: list[list[tuple[int, float] | None]] = [
        [None] * n for _ in range(m)
    ]
    for col, quoted in enumerate(columns):
        if quoted.failed:
            continue
        rows = plan.rows_by_col[col]
        sample = (quoted.active_trips, quoted.per_quote_seconds)
        for row, quote in zip(rows, quoted.quotes):
            timings[row][col] = sample
            if quote is None:
                continue
            quotes[row][col] = quote
            keys[row, col] = snap_key(quote.cost - quoted.plan_cost)
    return CostMatrix(
        requests=plan.requests,
        agents=plan.agents,
        keys=keys,
        quotes=quotes,
        timings=timings,
        candidate_counts=plan.candidate_counts,
    )


def build_cost_matrix(
    dispatcher: Dispatcher, requests: list[TripRequest], now: float
) -> CostMatrix:
    """Quote every (request, candidate vehicle) pair of a batch.

    Candidate filtering reuses :meth:`Dispatcher.candidates` per request;
    the matrix columns are the union of all candidate sets, ordered by
    vehicle id so cost ties resolve to the lowest vehicle id, like
    immediate dispatch. Keys are snapped to the :data:`KEY_EPSILON` grid
    so costs within :meth:`Dispatcher.submit`'s 1e-9 tie tolerance
    almost always compare equal to the solver too (``quotes`` keep the
    exact costs — snapping only affects who wins, never the reported
    cost).

    This is the synchronous composition of the three column stages
    (:func:`plan_columns` -> :func:`quote_column` per vehicle ->
    :func:`assemble_matrix`); the async pipeline runs the same stages
    with the middle one fanned out to a worker pool.
    """
    plan = plan_columns(dispatcher, requests)
    columns = [
        quote_column(
            agent,
            [requests[i] for i in plan.rows_by_col[col]],
            now,
            dispatcher.objective,
        )
        for col, agent in enumerate(plan.agents)
    ]
    return assemble_matrix(plan, columns)
