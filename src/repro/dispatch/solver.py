"""Pure-numpy linear assignment for batched dispatch.

The ``lap``/``iterative`` policies need a minimum-cost one-to-one
matching between a batch of requests (rows) and candidate vehicles
(columns) where many pairs are infeasible (no valid augmented schedule —
``np.inf`` in the cost matrix). No new dependencies: this is the classic
O(n^3) Hungarian algorithm in its shortest-augmenting-path (potentials)
form, the same algorithm behind ``scipy.optimize.linear_sum_assignment``.

Infeasibility is handled by the standard "big-M" reduction: infeasible
cells are replaced by a constant larger than any possible finite
assignment-cost difference, so the solver first *maximizes the number of
feasible pairs* and only then minimizes total cost among them; pairs that
still land on a big-M cell are dropped from the result. Callers that
require *every* row matched (rather than as many as feasibility allows)
pass ``require_assignment=True`` and get a typed
:class:`~repro.exceptions.AssignmentInfeasibleError` naming the
unassignable rows instead of a silently partial pairing.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AssignmentInfeasibleError


def _hungarian_rect(cost: np.ndarray) -> np.ndarray:
    """Optimal assignment of an all-finite cost matrix with ``m <= n``.

    The shortest-augmenting-path algorithm runs one augmentation per
    *row* and keeps columns unpadded, so a wide rectangular matrix costs
    O(m n^2) — no degenerate all-equal dummy rows, which matters a lot
    for the sharded solve where per-shard blocks are short and wide.

    Returns ``p`` of length ``n + 1`` where ``p[j]`` (1-based) is the row
    assigned to column ``j`` (0 = unassigned); index 0 is the
    algorithm's sentinel column.
    """
    m, n = cost.shape
    u = np.zeros(m + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=np.int64)
    way = np.zeros(n + 1, dtype=np.int64)
    cols = np.arange(1, n + 1)
    for i in range(1, m + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, np.inf)
        used = np.zeros(n + 1, dtype=bool)
        # m <= n guarantees a free column is always reachable.
        while True:
            used[j0] = True
            i0 = p[j0]
            free = cols[~used[1:]]
            reduced = cost[i0 - 1, free - 1] - u[i0] - v[free]
            better = reduced < minv[free]
            improved = free[better]
            minv[improved] = reduced[better]
            way[improved] = j0
            j1 = free[np.argmin(minv[free])]
            delta = minv[j1]
            u[p[used]] += delta
            v[used] -= delta
            minv[~used] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Augment along the alternating path back to the sentinel.
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    return p


def solve_assignment(costs, *, require_assignment: bool = False) -> list[tuple[int, int]]:
    """Minimum-cost maximum-cardinality assignment with infeasible cells.

    Parameters
    ----------
    costs:
        ``(m, n)`` array-like; ``costs[i, j]`` is the cost of giving row
        (request) ``i`` to column (vehicle) ``j``, ``np.inf`` (or NaN)
        where the pair is infeasible. Rectangular matrices are fine:
        with more rows than columns at most ``n`` rows are matched, a
        single row degenerates to an argmin over its finite cells, and
        an all-infeasible matrix yields no pairs at all.
    require_assignment:
        When true, demand that *every* row is matched: if infeasibility
        (or a row/column shortage) leaves any row unpaired, raise
        :class:`~repro.exceptions.AssignmentInfeasibleError` carrying
        the unassigned row indices instead of returning the partial
        pairing.

    Returns
    -------
    Sorted ``(row, column)`` pairs — at most one per row and per column,
    covering as many rows as feasibility allows, with minimum total cost
    among all such maximum matchings.
    """
    matrix = np.asarray(costs, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("cost matrix must be 2-dimensional")
    m, n = matrix.shape
    if m == 0 or n == 0:
        pairs: list[tuple[int, int]] = []
    else:
        feasible = np.isfinite(matrix)
        if not feasible.any():
            pairs = []
        else:
            # The rectangular algorithm needs rows <= columns; a tall
            # matrix is solved transposed and the pairs swapped back.
            transposed = m > n
            work = matrix.T if transposed else matrix
            mask = feasible.T if transposed else feasible
            finite = work[mask]
            # Big enough that one extra infeasible cell always costs more
            # than any rearrangement of finite cells can save.
            big = 2.0 * float(np.abs(finite).sum()) + 1.0
            p = _hungarian_rect(np.where(mask, work, big))
            pairs = [
                (int(p[j] - 1), j - 1)
                for j in range(1, work.shape[1] + 1)
                if p[j] > 0 and mask[p[j] - 1, j - 1]
            ]
            if transposed:
                pairs = [(j, i) for i, j in pairs]
            pairs.sort()
    if require_assignment and len(pairs) < m:
        matched = {i for i, _ in pairs}
        raise AssignmentInfeasibleError(
            [i for i in range(m) if i not in matched]
        )
    return pairs


def assignment_cost(costs, pairs) -> float:
    """Total cost of an assignment returned by :func:`solve_assignment`.

    Costing a pair the matrix marks infeasible raises a typed
    :class:`~repro.exceptions.AssignmentInfeasibleError` — a non-finite
    total is always a caller bug, never a meaningful objective value.
    """
    matrix = np.asarray(costs, dtype=float)
    bad = [i for i, j in pairs if not np.isfinite(matrix[i, j])]
    if bad:
        raise AssignmentInfeasibleError(
            bad, "assignment pairs land on infeasible cell(s) in row(s) "
            + ", ".join(str(r) for r in bad)
        )
    return float(sum(matrix[i, j] for i, j in pairs))
