"""Pure-numpy linear assignment for batched dispatch.

The ``lap``/``iterative`` policies need a minimum-cost one-to-one
matching between a batch of requests (rows) and candidate vehicles
(columns) where many pairs are infeasible (no valid augmented schedule —
``np.inf`` in the cost matrix). No new dependencies: this is the classic
O(n^3) Hungarian algorithm in its shortest-augmenting-path (potentials)
form, the same algorithm behind ``scipy.optimize.linear_sum_assignment``.

Infeasibility is handled by the standard "big-M" reduction: infeasible
cells are replaced by a constant larger than any possible finite
assignment-cost difference, so the solver first *maximizes the number of
feasible pairs* and only then minimizes total cost among them; pairs that
still land on a big-M cell are dropped from the result. Callers that
require *every* row matched (rather than as many as feasibility allows)
pass ``require_assignment=True`` and get a typed
:class:`~repro.exceptions.AssignmentInfeasibleError` naming the
unassignable rows instead of a silently partial pairing.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AssignmentInfeasibleError


#: Column count below which :func:`_hungarian_rect` runs its pure-Python
#: inner loop instead of the vectorized one. Each augmentation step costs
#: ~10 numpy dispatches in the vectorized form — tens of microseconds
#: regardless of width — while a plain Python scan is ~0.15us per column.
#: Narrow problems (the boundary reconciler's second-stage solve, small
#: per-shard blocks, the lap policy's per-flush matrices) therefore solve
#: several times faster in Python; wide ones stay vectorized. Both loops
#: perform the identical element-wise float operations in the identical
#: order, so the crossover is pure tuning: results are bit-identical on
#: either side of it.
_SMALL_COLS = 120


def _hungarian_rect_small(cost: np.ndarray) -> np.ndarray:
    """Pure-Python twin of :func:`_hungarian_rect` for narrow matrices.

    Same shortest-augmenting-path algorithm, same arithmetic, same
    first-lowest-index tie-breaking — only the per-step execution differs
    (scalar loops instead of numpy fancy indexing). Kept bit-identical so
    the :data:`_SMALL_COLS` dispatch can never change an assignment.
    """
    m, n = cost.shape
    rows = cost.tolist()
    u = [0.0] * (m + 1)
    v = [0.0] * (n + 1)
    p = [0] * (n + 1)
    way = [0] * (n + 1)
    inf = float("inf")
    for i in range(1, m + 1):
        p[0] = i
        j0 = 0
        minv = [inf] * (n + 1)
        used = [False] * (n + 1)
        # ``minv`` subtractions are fused into the next step's scan (the
        # scan visits every free column anyway, so deferring the single
        # pending delta performs the identical float ops in the identical
        # per-element order), and u/v updates walk the used-column list
        # instead of all n columns — each element still receives exactly
        # one ``+= delta`` / ``-= delta`` per step, and the updates are
        # element-wise independent, so iteration order cannot change a
        # single bit.
        used_cols: list[int] = []
        pending = 0.0
        while True:
            used[j0] = True
            used_cols.append(j0)
            i0 = p[j0]
            row = rows[i0 - 1]
            ui = u[i0]
            best = inf
            j1 = 0
            if pending:
                for j in range(1, n + 1):
                    if used[j]:
                        continue
                    mj = minv[j] - pending
                    reduced = (row[j - 1] - ui) - v[j]
                    if reduced < mj:
                        mj = reduced
                        way[j] = j0
                    minv[j] = mj
                    if mj < best:
                        best = mj
                        j1 = j
            else:
                for j in range(1, n + 1):
                    if used[j]:
                        continue
                    reduced = (row[j - 1] - ui) - v[j]
                    if reduced < minv[j]:
                        minv[j] = reduced
                        way[j] = j0
                    if minv[j] < best:
                        best = minv[j]
                        j1 = j
            delta = best
            for j in used_cols:
                u[p[j]] += delta
                v[j] -= delta
            pending = delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    return np.asarray(p, dtype=np.int64)


def _hungarian_rect(cost: np.ndarray) -> np.ndarray:
    """Optimal assignment of an all-finite cost matrix with ``m <= n``.

    The shortest-augmenting-path algorithm runs one augmentation per
    *row* and keeps columns unpadded, so a wide rectangular matrix costs
    O(m n^2) — no degenerate all-equal dummy rows, which matters a lot
    for the sharded solve where per-shard blocks are short and wide.

    Returns ``p`` of length ``n + 1`` where ``p[j]`` (1-based) is the row
    assigned to column ``j`` (0 = unassigned); index 0 is the
    algorithm's sentinel column.
    """
    m, n = cost.shape
    if n <= _SMALL_COLS:
        return _hungarian_rect_small(cost)
    u = np.zeros(m + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=np.int64)
    way = np.zeros(n + 1, dtype=np.int64)
    cols = np.arange(1, n + 1)
    for i in range(1, m + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, np.inf)
        used = np.zeros(n + 1, dtype=bool)
        # m <= n guarantees a free column is always reachable.
        while True:
            used[j0] = True
            i0 = p[j0]
            free = cols[~used[1:]]
            reduced = cost[i0 - 1, free - 1] - u[i0] - v[free]
            better = reduced < minv[free]
            improved = free[better]
            minv[improved] = reduced[better]
            way[improved] = j0
            j1 = free[np.argmin(minv[free])]
            delta = minv[j1]
            u[p[used]] += delta
            v[used] -= delta
            minv[~used] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Augment along the alternating path back to the sentinel.
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    return p


def solve_assignment(costs, *, require_assignment: bool = False) -> list[tuple[int, int]]:
    """Minimum-cost maximum-cardinality assignment with infeasible cells.

    Parameters
    ----------
    costs:
        ``(m, n)`` array-like; ``costs[i, j]`` is the cost of giving row
        (request) ``i`` to column (vehicle) ``j``, ``np.inf`` (or NaN)
        where the pair is infeasible. Rectangular matrices are fine:
        with more rows than columns at most ``n`` rows are matched, a
        single row degenerates to an argmin over its finite cells, and
        an all-infeasible matrix yields no pairs at all.
    require_assignment:
        When true, demand that *every* row is matched: if infeasibility
        (or a row/column shortage) leaves any row unpaired, raise
        :class:`~repro.exceptions.AssignmentInfeasibleError` carrying
        the unassigned row indices instead of returning the partial
        pairing.

    Returns
    -------
    Sorted ``(row, column)`` pairs — at most one per row and per column,
    covering as many rows as feasibility allows, with minimum total cost
    among all such maximum matchings.
    """
    matrix = np.asarray(costs, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("cost matrix must be 2-dimensional")
    m, n = matrix.shape
    if m == 0 or n == 0:
        pairs: list[tuple[int, int]] = []
    else:
        feasible = np.isfinite(matrix)
        if not feasible.any():
            pairs = []
        else:
            # The rectangular algorithm needs rows <= columns; a tall
            # matrix is solved transposed and the pairs swapped back.
            transposed = m > n
            work = matrix.T if transposed else matrix
            mask = feasible.T if transposed else feasible
            finite = work[mask]
            # Big enough that one extra infeasible cell always costs more
            # than any rearrangement of finite cells can save.
            big = 2.0 * float(np.abs(finite).sum()) + 1.0
            p = _hungarian_rect(np.where(mask, work, big))
            pairs = [
                (int(p[j] - 1), j - 1)
                for j in range(1, work.shape[1] + 1)
                if p[j] > 0 and mask[p[j] - 1, j - 1]
            ]
            if transposed:
                pairs = [(j, i) for i, j in pairs]
            pairs.sort()
    if require_assignment and len(pairs) < m:
        matched = {i for i, _ in pairs}
        raise AssignmentInfeasibleError(
            [i for i in range(m) if i not in matched]
        )
    return pairs


def assignment_cost(costs, pairs) -> float:
    """Total cost of an assignment returned by :func:`solve_assignment`.

    Costing a pair the matrix marks infeasible raises a typed
    :class:`~repro.exceptions.AssignmentInfeasibleError` — a non-finite
    total is always a caller bug, never a meaningful objective value.
    """
    matrix = np.asarray(costs, dtype=float)
    bad = [i for i, j in pairs if not np.isfinite(matrix[i, j])]
    if bad:
        raise AssignmentInfeasibleError(
            bad, "assignment pairs land on infeasible cell(s) in row(s) "
            + ", ".join(str(r) for r in bad)
        )
    return float(sum(matrix[i, j] for i, j in pairs))
