"""Pure-numpy linear assignment for batched dispatch.

The ``lap``/``iterative`` policies need a minimum-cost one-to-one
matching between a batch of requests (rows) and candidate vehicles
(columns) where many pairs are infeasible (no valid augmented schedule —
``np.inf`` in the cost matrix). No new dependencies: this is the classic
O(n^3) Hungarian algorithm in its shortest-augmenting-path (potentials)
form, the same algorithm behind ``scipy.optimize.linear_sum_assignment``.

Infeasibility is handled by the standard "big-M" reduction: infeasible
cells are replaced by a constant larger than any possible finite
assignment-cost difference, so the solver first *maximizes the number of
feasible pairs* and only then minimizes total cost among them; pairs that
still land on a big-M cell are dropped from the result.
"""

from __future__ import annotations

import numpy as np


def _hungarian_square(cost: np.ndarray) -> np.ndarray:
    """Optimal assignment of a square all-finite cost matrix.

    Returns ``p`` of length ``n + 1`` where ``p[j]`` (1-based) is the row
    assigned to column ``j``; index 0 is the algorithm's sentinel column.
    """
    n = cost.shape[0]
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=np.int64)
    way = np.zeros(n + 1, dtype=np.int64)
    cols = np.arange(1, n + 1)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, np.inf)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            free = cols[~used[1:]]
            reduced = cost[i0 - 1, free - 1] - u[i0] - v[free]
            better = reduced < minv[free]
            improved = free[better]
            minv[improved] = reduced[better]
            way[improved] = j0
            j1 = free[np.argmin(minv[free])]
            delta = minv[j1]
            u[p[used]] += delta
            v[used] -= delta
            minv[~used] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Augment along the alternating path back to the sentinel.
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    return p


def solve_assignment(costs) -> list[tuple[int, int]]:
    """Minimum-cost maximum-cardinality assignment with infeasible cells.

    Parameters
    ----------
    costs:
        ``(m, n)`` array-like; ``costs[i, j]`` is the cost of giving row
        (request) ``i`` to column (vehicle) ``j``, ``np.inf`` (or NaN)
        where the pair is infeasible. Rectangular matrices are fine.

    Returns
    -------
    Sorted ``(row, column)`` pairs — at most one per row and per column,
    covering as many rows as feasibility allows, with minimum total cost
    among all such maximum matchings.
    """
    matrix = np.asarray(costs, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("cost matrix must be 2-dimensional")
    m, n = matrix.shape
    if m == 0 or n == 0:
        return []
    feasible = np.isfinite(matrix)
    if not feasible.any():
        return []
    finite = matrix[feasible]
    # Big enough that one extra infeasible cell always costs more than
    # any rearrangement of finite cells can save.
    big = 2.0 * float(np.abs(finite).sum()) + 1.0
    k = max(m, n)
    square = np.zeros((k, k))
    square[:m, :n] = np.where(feasible, matrix, big)
    p = _hungarian_square(square)
    pairs = [
        (int(p[j] - 1), j - 1)
        for j in range(1, k + 1)
        if p[j] - 1 < m and j - 1 < n and feasible[p[j] - 1, j - 1]
    ]
    pairs.sort()
    return pairs


def assignment_cost(costs, pairs) -> float:
    """Total cost of an assignment returned by :func:`solve_assignment`."""
    matrix = np.asarray(costs, dtype=float)
    return float(sum(matrix[i, j] for i, j in pairs))
