"""Sharded parallel dispatch: region-partitioned batch solves.

At city scale a single flush's request x vehicle linear assignment is
the dispatch bottleneck — the Hungarian solve is O(n^3) and single-core.
This subsystem federates it over spatial partitions (after Simonetto et
al.'s per-region linear assignment and Vakayil et al.'s large-scale
iterative decomposition):

1. :class:`ShardPartitioner` groups the batch's requests by their pickup
   :class:`~repro.spatial.grid_index.GridIndex` cell and balances cells
   across ``num_shards`` shards; each shard's candidate vehicles are the
   finite columns of its rows (optionally halo-limited by
   ``boundary_cells``);
2. the per-shard key submatrices are solved concurrently through a
   :class:`ShardExecutor` (``serial`` / ``thread`` / ``process``
   backends) — only numpy arrays cross the worker boundary, quoting
   stays in the parent on the batched ``quote_batch`` plane;
3. :class:`BoundaryReconciler` resolves vehicles claimed by several
   shards with one deterministic second-stage assignment over the
   conflict set, so no request is double-assigned and no feasible
   boundary match is silently dropped.

``shards=1`` (any backend) short-circuits to a single global solve and
is bit-identical to the unsharded ``lap`` policy; splitting into ``k``
shards cuts solve work roughly ``k^2``-fold before parallelism even
starts (O(n^3) on n/k-sized blocks).

The process backend can additionally run **zero-copy**
(:mod:`repro.dispatch.sharding.shm`): shard matrices are published into
a double-buffered, generation-stamped ``multiprocessing.shared_memory``
arena and workers solve numpy *views* of the shared pages, optionally
on a :class:`PersistentWorkerGroup` whose processes (and cached arena
attachments) live across flushes instead of per-flush pickled
submissions. Determinism contract 11 pins the zero-copy path
bit-identical to the pickled one on every backend and worker count.

The subsystem is wired through ``SimulationConfig`` (``num_shards``,
``shard_backend``, ``shard_boundary_cells``, ``shard_zero_copy``,
``shard_persistent_workers``), the ``sharded`` dispatch policy, and the
``sharded_dispatch`` benchmark (``BENCH_shard.json``).
"""

from repro.dispatch.sharding.executor import (
    SHARD_BACKENDS,
    ShardExecutor,
    WorkerPool,
    solve_one_shard,
)
from repro.dispatch.sharding.partitioner import Shard, ShardPartitioner, ShardPlan
from repro.dispatch.sharding.reconciler import BoundaryReconciler, ReconcileOutcome
from repro.dispatch.sharding.shm import (
    ArenaTicket,
    PersistentWorkerGroup,
    SharedMatrixArena,
    active_segment_names,
    leaked_segment_files,
)
from repro.dispatch.sharding.solver import ShardedSolveOutcome, solve_sharded

__all__ = [
    "ArenaTicket",
    "BoundaryReconciler",
    "PersistentWorkerGroup",
    "ReconcileOutcome",
    "SHARD_BACKENDS",
    "Shard",
    "ShardExecutor",
    "ShardPartitioner",
    "ShardPlan",
    "SharedMatrixArena",
    "ShardedSolveOutcome",
    "WorkerPool",
    "active_segment_names",
    "leaked_segment_files",
    "solve_one_shard",
    "solve_sharded",
]
