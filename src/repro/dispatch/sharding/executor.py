"""Shard fan-out over ``concurrent.futures`` backends.

Three backends solve the per-shard assignment problems:

* ``serial`` — a plain loop in the calling thread: zero overhead, and
  the reference the parallel backends are tested against (with one
  shard it is bit-identical to today's global solve);
* ``thread`` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (the Hungarian solver releases no GIL, but numpy's vectorized inner
  steps do; useful for overlapping many small shards);
* ``process`` — a shared :class:`~concurrent.futures.ProcessPoolExecutor`
  for true multi-core solves. Only the numeric key submatrix crosses
  the process boundary — quotes, agents and trees stay in the parent —
  which is why the sharded plane splits *quoting* (parent, batched
  ``quote_batch`` sweeps) from *solving* (workers, pure numpy).

Whatever the backend or worker count, results are re-ordered by shard
id before anything downstream sees them, so completion order can never
leak into assignments.

Hardened execution (:mod:`repro.faults`): every shard attempt may carry
an :class:`~repro.faults.InjectedFault` directive drawn parent-side at
submit time; failures — injected or real — are retried under a
:class:`~repro.faults.RetryPolicy` (per-attempt timeout, capped
backoff), a broken pool (real ``BrokenProcessPool`` or an injected
:class:`~repro.faults.SimulatedPoolDeathError`) is transparently
recreated, and a task that exhausts its budget comes back as a
structured :class:`~repro.faults.TaskFailure` instead of killing the
flush — the sharded solver re-solves it serially in the parent.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

import numpy as np

from repro.dispatch.sharding.shm import (
    PersistentWorkerGroup,
    SharedMatrixArena,
    attach_segment,
    ticket_view,
)
from repro.dispatch.solver import solve_assignment
from repro.exceptions import ArenaAttachError, ShardSolveError
from repro.faults import (
    DEFAULT_RETRY,
    NULL_INJECTOR,
    SimulatedPoolDeathError,
    TaskFailure,
    run_with_fault,
)
from repro.obs.trace import NULL_TRACER, clock

#: Legal ``shard_backend`` values (also what ``SimulationConfig`` takes).
SHARD_BACKENDS = ("serial", "thread", "process")


class WorkerPool:
    """A lazily created, reusable ``concurrent.futures`` pool behind a
    backend name.

    The shared substrate of the dispatch subsystem's two fan-out planes:
    :class:`ShardExecutor` (per-shard assignment solves — all three
    backends) and :class:`~repro.dispatch.quoting.QuoteService` (async
    per-vehicle quoting — serial/thread only; agents never cross a
    process boundary). The underlying pool is created on first use and
    reused across flushes: a simulation performs thousands of flushes
    and pool spin-up dwarfs one unit of work.

    The ``serial`` backend runs submissions inline and returns
    already-resolved futures, so callers need no backend-specific code.

    :meth:`close` is idempotent and safe after pool breakage (the pool
    reference is detached before shutdown, so a second close — or the
    ``__del__`` interpreter-shutdown path — finds nothing to do), and
    :meth:`recreate` drops a broken pool so the next submission lazily
    builds a fresh one.
    """

    BACKENDS = SHARD_BACKENDS

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        injector=NULL_INJECTOR,
        persistent_workers: bool = False,
    ):
        if backend not in self.BACKENDS:
            known = ", ".join(self.BACKENDS)
            raise ValueError(f"worker pool backend must be one of: {known}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 or None")
        self.backend = backend
        self.max_workers = max_workers
        self.injector = injector
        #: Process backend only: replace the per-flush
        #: ``ProcessPoolExecutor`` payload pipeline with a
        #: :class:`~repro.dispatch.sharding.shm.PersistentWorkerGroup`
        #: whose workers (and their arena attachments) live across
        #: flushes. Ignored on serial/thread, which have no process
        #: boundary to amortize.
        self.persistent_workers = (
            bool(persistent_workers) and backend == "process"
        )
        self._pool = None
        # In-flight submissions on the real (concurrent) pool — the
        # queue-depth signal the resource monitor samples. Serial and
        # injected-fault submissions resolve before submit() returns,
        # so they never count.
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    def __repr__(self) -> str:
        return (
            f"WorkerPool(backend={self.backend!r}, "
            f"max_workers={self.max_workers})"
        )

    def _get_pool(self):
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            elif self.persistent_workers:
                self._pool = PersistentWorkerGroup(
                    max_workers=self.max_workers
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)``; on the serial backend it
        runs inline before this call returns. ``pool.submit`` faults
        (:mod:`repro.faults`) are drawn here: a ``crash`` loses the
        submission (failed future), a ``pool_death`` additionally kills
        the underlying pool — both surface as exceptions the hardened
        callers retry."""
        fault = self.injector.draw("pool.submit")
        if fault is not None:
            future: Future = Future()
            if fault.kind == "pool_death":
                self.recreate()
                future.set_exception(
                    SimulatedPoolDeathError(fault.site, fault.seq)
                )
            else:
                try:
                    run_with_fault(fault, False, None, lambda: None)
                except BaseException as error:  # noqa: BLE001 - mirrored
                    future.set_exception(error)
            return future
        if self.backend == "serial":
            future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as error:  # noqa: BLE001 - mirrored to caller
                future.set_exception(error)
            return future
        try:
            future = self._get_pool().submit(fn, *args, **kwargs)
        except BrokenExecutor as error:
            # The pool died before this submission (a worker was killed
            # out-of-band). Surface it as a failed future so hardened
            # callers take their normal recreate-and-retry path instead
            # of dying at submit time.
            future = Future()
            future.set_exception(error)
            return future
        with self._inflight_lock:
            self._inflight += 1
        future.add_done_callback(self._submission_done)
        return future

    def submit_all(self, calls) -> list[Future]:
        """Submit ``calls`` (``(fn, args)`` pairs) in order; returns one
        future per call.

        On a persistent process pool the fault-free calls are dispatched
        through :meth:`PersistentWorkerGroup.submit_many` — one queue
        message per worker instead of one per call — which is most of
        the per-flush IPC cost once matrices ride the shared-memory
        arena. Every other backend falls back to :meth:`submit` per
        call. Fault draws (``pool.submit``) happen per call in call
        order either way, so injection sequences are identical to the
        unbatched path; a ``pool_death`` flushes the calls already
        accepted to the dying pool first, exactly as per-call submission
        would have.
        """
        if not (self.backend == "process" and self.persistent_workers):
            return [self.submit(fn, *args) for fn, args in calls]
        futures: list[Future | None] = [None] * len(calls)
        pending: list[tuple[int, tuple]] = []

        def flush_pending() -> None:
            if not pending:
                return
            batch, pending[:] = list(pending), []
            specs = [(fn, args, {}) for _i, (fn, args) in batch]
            try:
                group = self._get_pool()
                dispatched = group.submit_many(specs)
            except BrokenExecutor as error:
                for i, _call in batch:
                    failed: Future = Future()
                    failed.set_exception(error)
                    futures[i] = failed
                return
            with self._inflight_lock:
                self._inflight += len(dispatched)
            for (i, _call), future in zip(batch, dispatched):
                future.add_done_callback(self._submission_done)
                futures[i] = future

        for i, call in enumerate(calls):
            fault = self.injector.draw("pool.submit")
            if fault is None:
                pending.append((i, call))
                continue
            future = Future()
            if fault.kind == "pool_death":
                # Calls accepted so far rode the pool that just died.
                flush_pending()
                self.recreate()
                future.set_exception(
                    SimulatedPoolDeathError(fault.site, fault.seq)
                )
            else:
                try:
                    run_with_fault(fault, False, None, lambda: None)
                except BaseException as error:  # noqa: BLE001 - mirrored
                    future.set_exception(error)
            futures[i] = future
        flush_pending()
        return futures

    def _submission_done(self, _future: Future) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def queue_depth(self) -> int:
        """Submissions currently in flight on the concurrent pool (0 on
        the serial backend, where everything resolves inline)."""
        with self._inflight_lock:
            return self._inflight

    def recreate(self) -> None:
        """Drop the current pool (broken or injected-dead) so the next
        submission lazily builds a fresh one; counted as
        ``pool.recreated`` in the metrics registry."""
        pool, self._pool = self._pool, None
        if pool is not None:
            # A broken executor's shutdown() is safe and returns quickly;
            # wait=False because its workers may already be gone.
            pool.shutdown(wait=False)
        self.injector.record_pool_recreated()

    def close(self) -> None:
        """Shut the pool down (no-op for the serial backend, idempotent
        everywhere — safe to call twice, after breakage, and from
        ``__del__`` at interpreter shutdown)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            # Interpreter teardown can have already reclaimed executor
            # internals; there is nothing useful to do about it here.
            pass


def solve_one_shard(
    shard_id: int, keys: np.ndarray
) -> tuple[int, list[tuple[int, int]], float]:
    """Solve one shard's submatrix; returns ``(shard_id, pairs, secs)``.

    Module-level so the process backend can pickle it; ``secs`` is the
    in-worker solve time (the per-shard sample the metrics report).
    """
    started = clock()
    pairs = solve_assignment(keys)
    return shard_id, pairs, clock() - started


def _solve_shard_task(fault, sleeping, timeout_s, shard_id, keys):
    """One worker-side shard solve, with its fault directive enacted
    in-worker. Module-level and primitives-only so the process backend
    can pickle it (``fault`` is a plain dataclass)."""
    return run_with_fault(
        fault, sleeping, timeout_s, solve_one_shard, shard_id, keys
    )


def _solve_shard_task_shm(fault, sleeping, timeout_s, shard_id, ticket):
    """One worker-side shard solve over a zero-copy arena block.

    Only the :class:`~repro.dispatch.sharding.shm.ArenaTicket` — a few
    ints and a segment name — crossed the process boundary; the keys
    are read as a view of the shared segment (attach-once cached per
    worker). The solver never mutates its input, so the view needs no
    defensive copy. Returns the usual ``(shard_id, pairs, secs)`` plus
    an attach-stats dict the parent folds into telemetry
    (``worker.reuse``, ``shm.attach_s``).
    """
    handle, reused, attach_s = attach_segment(ticket.segment)
    keys = ticket_view(handle, ticket)
    try:
        sid, pairs, secs = run_with_fault(
            fault, sleeping, timeout_s, solve_one_shard, shard_id, keys
        )
    finally:
        del keys
    return sid, pairs, secs, {"reused": reused, "attach_s": attach_s}


def _traced_solve_shard_task(
    fault, sleeping, timeout_s, shard_id, keys, tracer, parent
):
    """In-worker traced shard solve (serial/thread backends — a tracer
    cannot cross the process boundary; see :meth:`ShardExecutor.run`)."""
    t0 = clock()
    result = _solve_shard_task(fault, sleeping, timeout_s, shard_id, keys)
    tracer.emit(
        "shard.solve",
        "solve",
        t0,
        clock(),
        parent=parent,
        shard=shard_id,
        rows=int(keys.shape[0]),
        cols=int(keys.shape[1]),
    )
    return result


class ShardExecutor:
    """Runs per-shard solves on a configurable :class:`WorkerPool`.

    Call :meth:`close` to release the pool early; otherwise it is torn
    down with the executor object. ``injector`` / ``retry`` wire in the
    fault-tolerance layer (:mod:`repro.faults`); the defaults — a
    disabled injector and :data:`~repro.faults.DEFAULT_RETRY` — keep the
    fault-free path bit-identical to the unhardened executor.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        injector=NULL_INJECTOR,
        retry=None,
        zero_copy: bool = False,
        persistent_workers: bool = False,
    ):
        if backend not in SHARD_BACKENDS:
            known = ", ".join(SHARD_BACKENDS)
            raise ValueError(f"shard backend must be one of: {known}")
        self.injector = injector
        self.retry = retry if retry is not None else DEFAULT_RETRY
        #: Zero-copy fan-out (:mod:`repro.dispatch.sharding.shm`): ship
        #: shard matrices through a shared-memory arena instead of the
        #: task pickle. Process backend only — serial/thread workers
        #: already share the parent's address space, so the flags are
        #: accepted (grid-testable) but inert there.
        self.zero_copy = bool(zero_copy) and backend == "process"
        self.pool = WorkerPool(
            backend,
            max_workers=max_workers,
            injector=injector,
            persistent_workers=persistent_workers,
        )
        self._arena: SharedMatrixArena | None = None

    @property
    def backend(self) -> str:
        return self.pool.backend

    @property
    def max_workers(self) -> int | None:
        return self.pool.max_workers

    def __repr__(self) -> str:
        return (
            f"ShardExecutor(backend={self.backend!r}, "
            f"max_workers={self.max_workers})"
        )

    # ------------------------------------------------------------------
    def run(
        self, tasks: list[tuple[int, np.ndarray]], tracer=NULL_TRACER
    ) -> list:
        """Solve every ``(shard_id, keys)`` task; results sorted by
        shard id regardless of completion order.

        Each entry is the shard's ``(shard_id, pairs, secs)`` tuple, or
        a :class:`~repro.faults.TaskFailure` when the task still failed
        after the retry budget (bounded attempts, per-attempt timeout,
        capped backoff; a broken pool is recreated between attempts).
        Callers — :func:`~repro.dispatch.sharding.solver.solve_sharded`
        — re-solve failed shards serially in the parent.

        With an enabled ``tracer``, each shard gets a ``shard.solve``
        span parented to the caller's open span (the policy's ``solve``
        span). Serial/thread backends trace in the worker; the process
        backend cannot carry a tracer across pickling, so its spans are
        synthesized parent-side from the returned in-worker seconds
        (flagged ``synthetic`` — their end stamps share the join
        instant, so only durations, not offsets, are meaningful).
        """
        retry = self.retry
        injector = self.injector
        registry = getattr(injector, "registry", None)
        traced_inline = tracer.enabled and self.backend != "process"
        parent = tracer.current_id() if traced_inline else None
        sleeping = self.backend != "serial"
        timeout_s = retry.timeout_s

        tickets = None
        if self.zero_copy and tasks:
            if self._arena is None:
                self._arena = SharedMatrixArena()
            # One publish per flush: every shard block lands side by
            # side in the current slot, so workers receive tickets —
            # a few ints — where pickled matrices used to travel.
            tickets = self._arena.publish([keys for _sid, keys in tasks])
            if registry is not None:
                registry.counter("shm.bytes_shared").inc(
                    self._arena.last_bytes
                )

        def task_call(sid: int, keys: np.ndarray, ticket) -> tuple:
            fault = injector.draw("shard.solve")
            if ticket is not None:
                return (
                    _solve_shard_task_shm,
                    (fault, sleeping, timeout_s, sid, ticket),
                )
            if traced_inline:
                return (
                    _traced_solve_shard_task,
                    (fault, sleeping, timeout_s, sid, keys, tracer, parent),
                )
            return (
                _solve_shard_task,
                (fault, sleeping, timeout_s, sid, keys),
            )

        def submit(sid: int, keys: np.ndarray, ticket) -> Future:
            fn, args = task_call(sid, keys, ticket)
            return self.pool.submit(fn, *args)

        def ticket_for(index: int):
            return tickets[index] if tickets is not None else None

        # The initial fan-out goes through submit_all so the persistent
        # process pool ships one batch message per worker; retries (the
        # rare path) stay per-task.
        futures = self.pool.submit_all(
            [
                task_call(sid, keys, ticket_for(i))
                for i, (sid, keys) in enumerate(tasks)
            ]
        )
        results: list = []
        for i, ((sid, keys), future) in enumerate(zip(tasks, futures)):
            attempt = 1
            while True:
                try:
                    if sleeping and timeout_s is not None:
                        entry = future.result(timeout=timeout_s)
                    else:
                        entry = future.result()
                    if len(entry) == 4:
                        # Zero-copy task: strip the worker's attach
                        # stats into telemetry before anything
                        # downstream sees the standard 3-tuple.
                        sid_r, pairs, secs, stats = entry
                        if registry is not None:
                            if stats["reused"]:
                                registry.counter("worker.reuse").inc()
                            registry.histogram("shm.attach_s").add(
                                stats["attach_s"]
                            )
                        entry = (sid_r, pairs, secs)
                    results.append(entry)
                    break
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as error:
                    if isinstance(error, ArenaAttachError):
                        # Not retryable through the fan-out: the ticket
                        # (or its segment) is gone, and the parent still
                        # holds the original keys — fail the task so the
                        # sharded solver's serial-rescue rung solves it
                        # here instead.
                        results.append(
                            TaskFailure(
                                site="shard.solve",
                                task_id=sid,
                                attempts=attempt,
                                error=ShardSolveError(sid, attempt, error),
                            )
                        )
                        break
                    if isinstance(error, BrokenExecutor):
                        self.pool.recreate()
                    if attempt >= retry.max_attempts:
                        results.append(
                            TaskFailure(
                                site="shard.solve",
                                task_id=sid,
                                attempts=attempt,
                                error=ShardSolveError(sid, attempt, error),
                            )
                        )
                        break
                    injector.record_retry("shard.solve")
                    attempt += 1
                    backoff = retry.backoff_for(attempt)
                    if sleeping and backoff > 0:
                        time.sleep(backoff)
                    future = submit(sid, keys, ticket_for(i))
        results.sort(
            key=lambda r: r.task_id if isinstance(r, TaskFailure) else r[0]
        )
        if tracer.enabled and self.backend == "process":
            joined = clock()
            for entry in results:
                if isinstance(entry, TaskFailure):
                    continue
                sid, _pairs, secs = entry
                tracer.emit(
                    "shard.solve",
                    "solve",
                    joined - secs,
                    joined,
                    shard=sid,
                    synthetic=True,
                )
        return results

    def close(self) -> None:
        """Shut the worker pool down and release the zero-copy arena's
        shared-memory segments (idempotent; no-op for the serial
        backend with zero-copy off)."""
        self.pool.close()
        arena, self._arena = self._arena, None
        if arena is not None:
            arena.close()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
