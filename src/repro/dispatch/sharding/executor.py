"""Shard fan-out over ``concurrent.futures`` backends.

Three backends solve the per-shard assignment problems:

* ``serial`` — a plain loop in the calling thread: zero overhead, and
  the reference the parallel backends are tested against (with one
  shard it is bit-identical to today's global solve);
* ``thread`` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (the Hungarian solver releases no GIL, but numpy's vectorized inner
  steps do; useful for overlapping many small shards);
* ``process`` — a shared :class:`~concurrent.futures.ProcessPoolExecutor`
  for true multi-core solves. Only the numeric key submatrix crosses
  the process boundary — quotes, agents and trees stay in the parent —
  which is why the sharded plane splits *quoting* (parent, batched
  ``quote_batch`` sweeps) from *solving* (workers, pure numpy).

Whatever the backend or worker count, results are re-ordered by shard
id before anything downstream sees them, so completion order can never
leak into assignments.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.dispatch.solver import solve_assignment
from repro.obs.trace import NULL_TRACER, clock

#: Legal ``shard_backend`` values (also what ``SimulationConfig`` takes).
SHARD_BACKENDS = ("serial", "thread", "process")


class WorkerPool:
    """A lazily created, reusable ``concurrent.futures`` pool behind a
    backend name.

    The shared substrate of the dispatch subsystem's two fan-out planes:
    :class:`ShardExecutor` (per-shard assignment solves — all three
    backends) and :class:`~repro.dispatch.quoting.QuoteService` (async
    per-vehicle quoting — serial/thread only; agents never cross a
    process boundary). The underlying pool is created on first use and
    reused across flushes: a simulation performs thousands of flushes
    and pool spin-up dwarfs one unit of work.

    The ``serial`` backend runs submissions inline and returns
    already-resolved futures, so callers need no backend-specific code.
    """

    BACKENDS = SHARD_BACKENDS

    def __init__(self, backend: str = "serial", max_workers: int | None = None):
        if backend not in self.BACKENDS:
            known = ", ".join(self.BACKENDS)
            raise ValueError(f"worker pool backend must be one of: {known}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 or None")
        self.backend = backend
        self.max_workers = max_workers
        self._pool = None

    def __repr__(self) -> str:
        return (
            f"WorkerPool(backend={self.backend!r}, "
            f"max_workers={self.max_workers})"
        )

    def _get_pool(self):
        if self._pool is None:
            cls = (
                ThreadPoolExecutor
                if self.backend == "thread"
                else ProcessPoolExecutor
            )
            self._pool = cls(max_workers=self.max_workers)
        return self._pool

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)``; on the serial backend it
        runs inline before this call returns."""
        if self.backend == "serial":
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as error:  # noqa: BLE001 - mirrored to caller
                future.set_exception(error)
            return future
        return self._get_pool().submit(fn, *args, **kwargs)

    def close(self) -> None:
        """Shut the pool down (no-op for the serial backend)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass


def solve_one_shard(
    shard_id: int, keys: np.ndarray
) -> tuple[int, list[tuple[int, int]], float]:
    """Solve one shard's submatrix; returns ``(shard_id, pairs, secs)``.

    Module-level so the process backend can pickle it; ``secs`` is the
    in-worker solve time (the per-shard sample the metrics report).
    """
    started = clock()
    pairs = solve_assignment(keys)
    return shard_id, pairs, clock() - started


def _traced_solve_one_shard(shard_id, keys, tracer, parent):
    """In-worker traced shard solve (serial/thread backends — a tracer
    cannot cross the process boundary; see :meth:`ShardExecutor.run`)."""
    t0 = clock()
    result = solve_one_shard(shard_id, keys)
    tracer.emit(
        "shard.solve",
        "solve",
        t0,
        clock(),
        parent=parent,
        shard=shard_id,
        rows=int(keys.shape[0]),
        cols=int(keys.shape[1]),
    )
    return result


class ShardExecutor:
    """Runs per-shard solves on a configurable :class:`WorkerPool`.

    Call :meth:`close` to release the pool early; otherwise it is torn
    down with the executor object.
    """

    def __init__(self, backend: str = "serial", max_workers: int | None = None):
        if backend not in SHARD_BACKENDS:
            known = ", ".join(SHARD_BACKENDS)
            raise ValueError(f"shard backend must be one of: {known}")
        self.pool = WorkerPool(backend, max_workers=max_workers)

    @property
    def backend(self) -> str:
        return self.pool.backend

    @property
    def max_workers(self) -> int | None:
        return self.pool.max_workers

    def __repr__(self) -> str:
        return (
            f"ShardExecutor(backend={self.backend!r}, "
            f"max_workers={self.max_workers})"
        )

    # ------------------------------------------------------------------
    def run(
        self, tasks: list[tuple[int, np.ndarray]], tracer=NULL_TRACER
    ) -> list[tuple[int, list[tuple[int, int]], float]]:
        """Solve every ``(shard_id, keys)`` task; results sorted by
        shard id regardless of completion order.

        With an enabled ``tracer``, each shard gets a ``shard.solve``
        span parented to the caller's open span (the policy's ``solve``
        span). Serial/thread backends trace in the worker; the process
        backend cannot carry a tracer across pickling, so its spans are
        synthesized parent-side from the returned in-worker seconds
        (flagged ``synthetic`` — their end stamps share the join
        instant, so only durations, not offsets, are meaningful).
        """
        if tracer.enabled and self.backend != "process":
            parent = tracer.current_id()
            futures = [
                self.pool.submit(
                    _traced_solve_one_shard, sid, keys, tracer, parent
                )
                for sid, keys in tasks
            ]
        else:
            futures = [
                self.pool.submit(solve_one_shard, sid, keys)
                for sid, keys in tasks
            ]
        results = [f.result() for f in futures]
        results.sort(key=lambda r: r[0])
        if tracer.enabled and self.backend == "process":
            joined = clock()
            for sid, _pairs, secs in results:
                tracer.emit(
                    "shard.solve",
                    "solve",
                    joined - secs,
                    joined,
                    shard=sid,
                    synthetic=True,
                )
        return results

    def close(self) -> None:
        """Shut the worker pool down (no-op for the serial backend)."""
        self.pool.close()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
