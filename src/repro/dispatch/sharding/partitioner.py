"""Spatial partitioning of one batch's cost matrix into shards.

The :class:`ShardPartitioner` splits the request rows of a
:class:`~repro.dispatch.costs.CostMatrix` into ``num_shards`` spatial
shards using the :class:`~repro.spatial.grid_index.GridIndex` cell of
each request's pickup: occupied cells are ordered along a serpentine
row-major curve and cut into contiguous runs of roughly equal request
count, so every shard is one coherent region of the city rather than a
scatter of cells (contiguity is what keeps each shard's candidate
vehicle set — and therefore its cost matrix — narrow).

Each shard's candidate *columns* are the vehicles that quoted a finite
key for at least one of the shard's rows; with ``boundary_cells`` set,
columns are additionally restricted to vehicles whose last reported grid
cell lies within that many cells (Chebyshev distance) of the shard's
territory — a halo that bounds per-shard matrix width at the price of
pushing out-of-halo matches into the policy's sequential cleanup.
Vehicles the grid has never seen are conservatively eligible everywhere.

The same vehicle may be a candidate column of several shards; resolving
the resulting double-assignments is the
:class:`~repro.dispatch.sharding.reconciler.BoundaryReconciler`'s job.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True, slots=True)
class Shard:
    """One shard's slice of the batch: global row/column indices.

    ``rows`` and ``cols`` are ascending indices into the batch cost
    matrix, so ``keys[np.ix_(rows, cols)]`` is the shard's submatrix and
    local solver pairs map back through plain indexing.
    """

    shard_id: int
    rows: tuple[int, ...]
    cols: tuple[int, ...]
    #: Grid cells owned by this shard (empty for the fallback shard).
    cells: frozenset = frozenset()


@dataclass(slots=True)
class ShardPlan:
    """The partition of one flush.

    ``fallback_reason`` is set when spatial sharding was impossible
    (single shard requested, no grid index, or no coordinates) and the
    plan degenerated to one global shard.
    """

    shards: list[Shard] = field(default_factory=list)
    num_shards_requested: int = 1
    fallback_reason: str | None = None

    @property
    def num_shards(self) -> int:
        return len(self.shards)


class ShardPartitioner:
    """Groups a batch's rows and candidate columns by grid region.

    Parameters
    ----------
    num_shards:
        Target shard count. The plan may contain fewer (never more)
        shards when the batch occupies fewer cells than shards.
    boundary_cells:
        Optional halo width in grid cells for candidate-column
        filtering; ``None`` (the default) keeps every feasible column,
        trading larger shard matrices for zero lost matches before
        reconciliation.
    """

    def __init__(self, num_shards: int = 1, boundary_cells: int | None = None):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if boundary_cells is not None and boundary_cells < 0:
            raise ValueError("boundary_cells must be >= 0 or None")
        self.num_shards = num_shards
        self.boundary_cells = boundary_cells

    def __repr__(self) -> str:
        return (
            f"ShardPartitioner(num_shards={self.num_shards}, "
            f"boundary_cells={self.boundary_cells})"
        )

    # ------------------------------------------------------------------
    def plan(self, matrix, grid_index=None, coords=None) -> ShardPlan:
        """Partition one :class:`~repro.dispatch.costs.CostMatrix`.

        ``grid_index`` is the live vehicle grid (supplies the cell
        geometry and the vehicles' last reported cells); ``coords`` the
        road graph's vertex coordinates. Either missing forces the
        single-shard fallback, which is bit-identical to a global solve.
        """
        m, n = matrix.shape
        all_rows = tuple(range(m))
        all_cols = tuple(range(n))
        if self.num_shards == 1:
            return ShardPlan(
                shards=[Shard(0, all_rows, all_cols)],
                num_shards_requested=self.num_shards,
            )
        reason = None
        if grid_index is None:
            reason = "no grid index"
        elif coords is None:
            reason = "graph has no coordinates"
        elif m == 0:
            reason = "empty batch"
        if reason is not None:
            return ShardPlan(
                shards=[Shard(0, all_rows, all_cols)],
                num_shards_requested=self.num_shards,
                fallback_reason=reason,
            )

        rows_by_cell: dict[tuple[int, int], list[int]] = defaultdict(list)
        for row, request in enumerate(matrix.requests):
            x, y = coords[request.origin]
            rows_by_cell[grid_index.cell_of(float(x), float(y))].append(row)

        cell_groups = self._balance_cells(rows_by_cell)
        finite = np.isfinite(matrix.keys)
        shards: list[Shard] = []
        for cells in cell_groups:
            rows = sorted(r for cell in cells for r in rows_by_cell[cell])
            cols = self._columns_for(rows, cells, finite, matrix, grid_index)
            shards.append(
                Shard(len(shards), tuple(rows), cols, frozenset(cells))
            )
        return ShardPlan(shards=shards, num_shards_requested=self.num_shards)

    # ------------------------------------------------------------------
    def _balance_cells(
        self, rows_by_cell: dict[tuple[int, int], list[int]]
    ) -> list[list[tuple[int, int]]]:
        """Split the occupied cells into spatially contiguous groups of
        roughly equal request count.

        Cells are ordered along a serpentine row-major curve (even rows
        left-to-right, odd rows right-to-left — consecutive cells are
        always grid neighbors) and cut into ``num_shards`` contiguous
        runs, closing each run once it reaches its fair share of the
        remaining requests. Contiguity is what makes sharding pay:
        a shard's candidate vehicles then cluster around one region
        instead of the whole city, so its cost matrix is narrow as well
        as short. Deterministic for a fixed request set.
        """
        k = min(self.num_shards, len(rows_by_cell))
        ordered = sorted(
            rows_by_cell,
            key=lambda cell: (
                cell[0],
                cell[1] if cell[0] % 2 == 0 else -cell[1],
            ),
        )
        total = sum(len(rows) for rows in rows_by_cell.values())
        groups: list[list[tuple[int, int]]] = []
        current: list[tuple[int, int]] = []
        load = 0
        remaining = total
        for i, cell in enumerate(ordered):
            current.append(cell)
            load += len(rows_by_cell[cell])
            remaining -= len(rows_by_cell[cell])
            shards_left = k - len(groups)
            cells_left = len(ordered) - i - 1
            if shards_left <= 1:
                continue
            # Close the run once it holds its fair share of what was
            # left to place — but never so late that the remaining
            # shards can't get one cell each (must_close), and never so
            # early that they couldn't (the cells_left guard), so the
            # plan always has exactly min(num_shards, occupied cells)
            # non-empty shards.
            must_close = cells_left == shards_left - 1
            want_close = load >= (load + remaining) / shards_left
            if must_close or (want_close and cells_left >= shards_left - 1):
                groups.append(current)
                current, load = [], 0
        if current:
            groups.append(current)
        return groups

    def _columns_for(
        self, rows, cells, finite: np.ndarray, matrix, grid_index
    ) -> tuple[int, ...]:
        """Candidate columns of one shard: vehicles with a finite key for
        any shard row, optionally halo-filtered by reported cell."""
        if not rows:
            return ()
        feasible = np.nonzero(finite[rows].any(axis=0))[0]
        if self.boundary_cells is None:
            return tuple(int(c) for c in feasible)
        halo: set[tuple[int, int]] = set()
        k = self.boundary_cells
        for row, col in cells:
            halo.update(
                grid_index.cells_in_region(row - k, col - k, row + k, col + k)
            )
        cols = []
        for col in feasible:
            where = grid_index.cell_location(
                matrix.agents[col].vehicle.vehicle_id
            )
            # Unreported vehicles are eligible everywhere: the halo is a
            # perf bound, never a correctness filter.
            if where is None or where in halo:
                cols.append(int(col))
        return tuple(cols)
