"""Zero-copy shard fan-out: shared-memory matrices + persistent workers.

The process shard backend's bottleneck is serialization: every flush
re-pickles each shard's key submatrix into the executor's call pipe and
pickles the result back. This module removes both copies:

* :class:`SharedMatrixArena` places one flush's shard blocks side by
  side in a ``multiprocessing.shared_memory`` segment and hands out
  :class:`ArenaTicket` descriptors — a few plain ints and a segment
  name — instead of the matrices themselves. Workers map the segment
  once and solve directly on a numpy *view* of the shared pages. The
  arena is double-buffered (two segment slots alternate flush by
  flush), so a straggler worker from flush *N* can still read its block
  while flush *N+1* publishes, and every publish is generation-stamped
  so a genuinely stale ticket is detected (typed
  :class:`~repro.exceptions.ArenaAttachError`) rather than silently
  solving yesterday's matrix.
* :class:`PersistentWorkerGroup` keeps worker processes alive across
  flushes behind the same ``submit() -> Future`` surface as
  ``concurrent.futures`` pools, with a small task protocol (attach /
  call / batch / detach / shutdown) over a pair of queues; a flush's
  shard solves travel as one batch message per worker. Per-worker arena
  attachments are cached module-side, so after the first flush a worker
  re-enters the solve without a single ``mmap`` or pickle of matrix
  data (counted as ``worker.reuse``).

Lifecycle is the hard part of shared memory, so it is explicit here:
segment names carry a ``repro_shm_<pid>_`` prefix, every live segment
is tracked in a module registry (:func:`active_segment_names`,
:func:`leaked_segment_files`), ``close()`` both closes *and* unlinks
(idempotently — safe after breakage, from ``__del__`` and from an
``atexit`` sweep that backstops KeyboardInterrupt-style teardown), and
worker attachments ride the parent's fork-shared ``resource_tracker``
registration (see :func:`attach_segment` for why a dying worker can
never unlink a segment the parent still owns).
"""

from __future__ import annotations

import atexit
import itertools
import os
import queue
import threading
import weakref
from concurrent.futures import BrokenExecutor, Future
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.exceptions import ArenaAttachError, FaultInjectedError
from repro.obs.trace import clock

#: Every arena segment name starts with this (plus the creating
#: process's pid), which is what lets leak checks — the
#: ``assert_no_leaked_segments`` fixture, the CI ``shm-smoke`` post-step
#: — scan ``/dev/shm`` for repo-owned segments without false positives.
SEGMENT_PREFIX = "repro_shm_"

#: First header word of every published segment; an attach that does not
#: find it is mapping something that was never an arena segment.
_MAGIC = 0x5245_5052_4F53_484D  # "REPROSHM"

#: Segment layout: ``[magic, generation]`` int64 header, then the
#: flush's float64 blocks back to back (8-byte aligned by construction).
_HEADER_BYTES = 16

_SEQ = itertools.count()

# Parent-side truth of which segments this process currently owns.
_ACTIVE_LOCK = threading.Lock()
_ACTIVE_SEGMENTS: set[str] = set()

# All live arenas, for the atexit backstop sweep (a KeyboardInterrupt
# that unwinds past every ``finally`` still must not orphan /dev/shm).
_ARENAS: "weakref.WeakSet[SharedMatrixArena]" = weakref.WeakSet()


def active_segment_names() -> tuple[str, ...]:
    """Names of the shared-memory segments this process currently owns
    (sorted). Empty once every arena is closed — the leak invariant the
    test suite's ``assert_no_leaked_segments`` fixture pins."""
    with _ACTIVE_LOCK:
        return tuple(sorted(_ACTIVE_SEGMENTS))


def leaked_segment_files(prefix: str = SEGMENT_PREFIX) -> tuple[str, ...]:
    """Repo-prefixed segment files visible in ``/dev/shm`` (sorted).

    On platforms without a ``/dev/shm`` listing this returns the
    parent-side registry instead, so callers get the strictest check
    the platform supports.
    """
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return tuple(n for n in active_segment_names() if n.startswith(prefix))
    return tuple(sorted(n for n in names if n.startswith(prefix)))


def _track(name: str) -> None:
    with _ACTIVE_LOCK:
        _ACTIVE_SEGMENTS.add(name)


def _untrack(name: str) -> None:
    with _ACTIVE_LOCK:
        _ACTIVE_SEGMENTS.discard(name)


def _release_segment(segment: shared_memory.SharedMemory) -> None:
    """Close *and* unlink one owned segment, tolerating every repeat /
    already-gone / buffer-pinned state teardown paths can reach."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - an exported view is alive
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    _untrack(segment.name)


@dataclass(frozen=True, slots=True)
class ArenaTicket:
    """One shard block's address inside a published arena segment.

    Primitives only, so it rides the task pipe for the price of a few
    ints where the matrix itself used to be pickled.
    """

    segment: str
    generation: int
    index: int
    offset: int
    rows: int
    cols: int

    @property
    def nbytes(self) -> int:
        return self.rows * self.cols * 8


class SharedMatrixArena:
    """Double-buffered shared-memory home for one flush's shard blocks.

    :meth:`publish` copies the flush's key submatrices into the current
    slot's segment (creating or growing it as needed), stamps the
    segment with a fresh generation, and returns one
    :class:`ArenaTicket` per block. Slots alternate per publish: a
    ticket stays readable for exactly one further flush — long enough
    for any straggling retry of the flush that minted it — and a reuse
    beyond that fails the generation check with a typed
    :class:`~repro.exceptions.ArenaAttachError` instead of reading
    overwritten bytes.

    ``close()`` is idempotent and unlinks both slots; it also runs from
    ``__del__``, context-manager exit, and the module's ``atexit``
    sweep, so normal teardown, crashes and interrupt-style unwinds all
    release the segments.
    """

    def __init__(self, slots: int = 2):
        if slots < 2:
            raise ValueError("arena needs >= 2 slots to double-buffer")
        self._segments: list[shared_memory.SharedMemory | None] = (
            [None] * slots
        )
        self._turn = 0
        self._generation = 0
        #: Payload bytes shared by the most recent :meth:`publish` (the
        #: ``shm.bytes_shared`` telemetry sample).
        self.last_bytes = 0
        _ARENAS.add(self)

    @property
    def generation(self) -> int:
        return self._generation

    def segment_names(self) -> tuple[str, ...]:
        return tuple(
            seg.name for seg in self._segments if seg is not None
        )

    def publish(self, blocks: list[np.ndarray]) -> list[ArenaTicket]:
        """Copy ``blocks`` into the next slot; returns their tickets."""
        self._generation += 1
        generation = self._generation
        blocks = [
            np.ascontiguousarray(block, dtype=np.float64)
            for block in blocks
        ]
        payload = sum(block.nbytes for block in blocks)
        needed = _HEADER_BYTES + payload
        slot = self._turn
        self._turn = (self._turn + 1) % len(self._segments)
        segment = self._segments[slot]
        if segment is None or segment.size < needed:
            if segment is not None:
                _release_segment(segment)
            name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(_SEQ)}"
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(needed, _HEADER_BYTES + 8)
            )
            _track(segment.name)
            self._segments[slot] = segment
        header = np.ndarray((2,), dtype=np.int64, buffer=segment.buf)
        header[0] = _MAGIC
        header[1] = generation
        del header
        tickets: list[ArenaTicket] = []
        offset = _HEADER_BYTES
        for index, block in enumerate(blocks):
            rows, cols = block.shape
            if block.nbytes:
                view = np.ndarray(
                    (rows, cols),
                    dtype=np.float64,
                    buffer=segment.buf,
                    offset=offset,
                )
                view[...] = block
                del view
            tickets.append(
                ArenaTicket(
                    segment=segment.name,
                    generation=generation,
                    index=index,
                    offset=offset,
                    rows=rows,
                    cols=cols,
                )
            )
            offset += block.nbytes
        self.last_bytes = payload
        return tickets

    def close(self) -> None:
        """Close and unlink every slot (idempotent; safe mid-breakage,
        from ``__del__`` and at interpreter exit)."""
        segments, self._segments = (
            self._segments,
            [None] * len(self._segments),
        )
        for segment in segments:
            if segment is not None:
                _release_segment(segment)

    def __enter__(self) -> "SharedMatrixArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC/interpreter-exit path
        try:
            self.close()
        except Exception:
            pass


@atexit.register
def _close_arenas_at_exit() -> None:  # pragma: no cover - exit path
    for arena in list(_ARENAS):
        try:
            arena.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Worker side: attach cache + ticket views
# ----------------------------------------------------------------------

#: Per-process attachment cache: segment name -> mapped handle. In a
#: worker this is what makes flush 2..N zero-copy *and* zero-mmap; in
#: the parent it only serves tests that read a published block back.
_ATTACHMENTS: dict[str, shared_memory.SharedMemory] = {}

#: Attachments kept mapped at once; the arena cycles two slots (plus
#: the occasional regrown segment), so a tiny cache is already a hit
#: on every steady-state flush.
_ATTACH_CACHE_LIMIT = 8


def attach_segment(name: str) -> tuple[shared_memory.SharedMemory, bool, float]:
    """Map ``name`` (cached); returns ``(handle, reused, attach_seconds)``.

    A missing segment — never published, or already unlinked by the
    owner — raises :class:`~repro.exceptions.ArenaAttachError`.

    On CPython < 3.13 attaching registers the segment with the
    ``resource_tracker`` as if this process owned it (bpo-39959). That
    is deliberately left alone here: multiprocessing children share the
    parent's tracker, where registration is name-deduplicated — so the
    worker's extra register is a no-op and the owner's ``unlink()``
    still unregisters cleanly, whereas a worker-side ``unregister``
    would clobber the parent's own registration.
    """
    started = clock()
    handle = _ATTACHMENTS.get(name)
    if handle is not None:
        return handle, True, clock() - started
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as error:
        raise ArenaAttachError(
            f"arena segment {name!r} is not attachable: unlinked by its "
            "owner or never published"
        ) from error
    while len(_ATTACHMENTS) >= _ATTACH_CACHE_LIMIT:
        _, stale = _ATTACHMENTS.popitem()
        try:
            stale.close()
        except BufferError:  # pragma: no cover - view still alive
            pass
    _ATTACHMENTS[name] = handle
    return handle, False, clock() - started


def detach_segments() -> None:
    """Drop and close every cached attachment (worker teardown)."""
    while _ATTACHMENTS:
        _, handle = _ATTACHMENTS.popitem()
        try:
            handle.close()
        except BufferError:  # pragma: no cover - view still alive
            pass


def ticket_view(
    handle: shared_memory.SharedMemory, ticket: ArenaTicket
) -> np.ndarray:
    """The ticket's block as a zero-copy view of the mapped segment.

    Validates the segment header before exposing any bytes: wrong magic
    (not an arena segment), a stale generation (the slot was republished
    since the ticket was minted) and an out-of-range block all raise
    :class:`~repro.exceptions.ArenaAttachError` — the executor turns
    that into a parent-side serial rescue, never a wrong answer.
    """
    if handle.size < _HEADER_BYTES:
        raise ArenaAttachError(
            f"segment {ticket.segment!r} is too small to carry an arena "
            "header"
        )
    header = np.ndarray((2,), dtype=np.int64, buffer=handle.buf)
    magic, generation = int(header[0]), int(header[1])
    del header
    if magic != _MAGIC:
        raise ArenaAttachError(
            f"segment {ticket.segment!r} carries no arena header "
            "(not published by a SharedMatrixArena)"
        )
    if generation != ticket.generation:
        raise ArenaAttachError(
            f"stale arena ticket for segment {ticket.segment!r}: ticket "
            f"generation {ticket.generation}, segment generation "
            f"{generation}"
        )
    if ticket.offset + ticket.nbytes > handle.size:
        raise ArenaAttachError(
            f"arena ticket block [{ticket.offset}, "
            f"{ticket.offset + ticket.nbytes}) overruns segment "
            f"{ticket.segment!r} ({handle.size} bytes)"
        )
    return np.ndarray(
        (ticket.rows, ticket.cols),
        dtype=np.float64,
        buffer=handle.buf,
        offset=ticket.offset,
    )


# ----------------------------------------------------------------------
# Persistent workers
# ----------------------------------------------------------------------


def _describe_error(error: BaseException) -> tuple[str, object]:
    """Collapse a worker-side exception to a picklable ``(kind,
    payload)`` pair — typed exceptions with required constructor args do
    not round-trip pickle, and a worker must never die on a reply."""
    if isinstance(error, ArenaAttachError):
        return "attach", str(error)
    if isinstance(error, FaultInjectedError):
        return "fault", (error.site, error.seq)
    return "error", f"{type(error).__name__}: {error}"


def _rebuild_error(kind: str, payload) -> BaseException:
    if kind == "attach":
        return ArenaAttachError(payload)
    if kind == "fault":
        site, seq = payload
        return FaultInjectedError(site, int(seq))
    return RuntimeError(f"persistent worker task failed: {payload}")


def _worker_main(tasks, results) -> None:
    """One persistent worker's loop over the task protocol (attach /
    call / batch / detach / shutdown)."""
    while True:
        try:
            message = tasks.get()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        op = message[0]
        if op == "shutdown":
            break
        if op == "detach":
            detach_segments()
            continue
        if op == "attach":
            # Pre-warm: map the named segment so the flush's first solve
            # task already reuses it. Failures are deliberate no-ops —
            # the solve task re-attaches and reports properly.
            try:
                attach_segment(message[1])
            except Exception:
                pass
            continue
        if op == "batch":
            # One flush's worth of calls in a single message; replies
            # travel back as one message too, so a k-shard flush costs
            # one queue round trip per worker instead of 2k.
            replies = []
            for task_id, fn, args, kwargs in message[1]:
                try:
                    replies.append((task_id, "ok", fn(*args, **kwargs)))
                except BaseException as error:  # noqa: BLE001 - shipped
                    replies.append((task_id, "err", _describe_error(error)))
            try:
                results.put(("batch", replies))
            except (EOFError, OSError):  # pragma: no cover - parent gone
                break
            continue
        _op, task_id, fn, args, kwargs = message
        try:
            reply = (task_id, "ok", fn(*args, **kwargs))
        except BaseException as error:  # noqa: BLE001 - shipped to parent
            reply = (task_id, "err", _describe_error(error))
        try:
            results.put(reply)
        except (EOFError, OSError):  # pragma: no cover - parent gone
            break
    detach_segments()


class PersistentWorkerGroup:
    """Long-lived worker processes behind a futures-compatible surface.

    Drop-in for the executor slot of :class:`~repro.dispatch.sharding.
    executor.WorkerPool`: ``submit(fn, *args) -> Future`` plus an
    idempotent ``shutdown(wait=...)``. Unlike a per-flush
    ``ProcessPoolExecutor`` submission, the workers — and their cached
    arena attachments — survive across flushes, so steady state ships a
    ticket-sized message per shard instead of a pickled matrix.

    A collector thread drains the result queue and resolves futures by
    task id. If any worker process dies while work is pending, every
    pending future fails with :class:`concurrent.futures.BrokenExecutor`
    and the group marks itself broken — exactly the contract hardened
    callers already handle by recreating the pool and retrying.
    """

    def __init__(self, max_workers: int | None = None):
        workers = max_workers if max_workers else (os.cpu_count() or 1)
        context = get_context()
        self._tasks = context.Queue()
        self._results = context.Queue()
        self._futures: dict[int, Future] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._broken = False
        self._closed = False
        self._procs = [
            context.Process(
                target=_worker_main,
                args=(self._tasks, self._results),
                daemon=True,
                name=f"repro-shard-worker-{i}",
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        self._collector = threading.Thread(
            target=self._collect, daemon=True, name="repro-shard-collector"
        )
        self._collector.start()

    @property
    def num_workers(self) -> int:
        return len(self._procs)

    def alive_workers(self) -> int:
        return sum(1 for proc in self._procs if proc.is_alive())

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Queue ``fn(*args, **kwargs)`` on any live worker. Raises
        :class:`~concurrent.futures.BrokenExecutor` once the group is
        closed or broken (callers recreate and retry)."""
        with self._lock:
            if self._closed or self._broken:
                raise BrokenExecutor(
                    "persistent worker group is closed or broken"
                )
            task_id = next(self._seq)
            future: Future = Future()
            self._futures[task_id] = future
        self._tasks.put(("call", task_id, fn, args, kwargs))
        return future

    def submit_many(self, calls) -> list[Future]:
        """Queue ``calls`` (``(fn, args, kwargs)`` tuples) as one batch
        message per worker-sized chunk; returns one future per call in
        order.

        Functionally identical to ``submit`` in a loop — same task ids,
        same error mapping, same broken-group behavior — but a flush of
        ``k`` shard solves crosses the queues in ``min(k, workers)``
        messages each way instead of ``k``, which is most of the
        remaining per-flush IPC cost once the matrices themselves ride
        the shared-memory arena.
        """
        if not calls:
            return []
        with self._lock:
            if self._closed or self._broken:
                raise BrokenExecutor(
                    "persistent worker group is closed or broken"
                )
            entries = []
            futures: list[Future] = []
            for fn, args, kwargs in calls:
                task_id = next(self._seq)
                future: Future = Future()
                self._futures[task_id] = future
                entries.append((task_id, fn, args, kwargs))
                futures.append(future)
        shares = min(len(self._procs), len(entries)) or 1
        base, extra = divmod(len(entries), shares)
        start = 0
        for share in range(shares):
            size = base + (1 if share < extra else 0)
            self._tasks.put(("batch", entries[start : start + size]))
            start += size
        return futures

    def broadcast(self, op: str, *payload) -> None:
        """Best-effort protocol broadcast (``attach`` / ``detach``): one
        message per worker on the shared queue. The queue does not pin
        messages to workers, so this is a warm-path hint, never a
        correctness dependency."""
        if op not in ("attach", "detach"):
            raise ValueError(f"cannot broadcast {op!r}")
        for _ in self._procs:
            self._tasks.put((op, *payload))

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        while True:
            try:
                message = self._results.get(timeout=0.1)
            except (queue.Empty, OSError, EOFError):
                message = None
                with self._lock:
                    closed = self._closed
                    pending = bool(self._futures)
                if pending and not any(
                    proc.is_alive() for proc in self._procs
                ):
                    self._mark_broken(
                        BrokenExecutor("persistent worker process died")
                    )
                    continue
                if closed and not pending:
                    return
                continue
            if message is None:  # shutdown sentinel
                return
            replies = message[1] if message[0] == "batch" else (message,)
            for task_id, status, payload in replies:
                with self._lock:
                    future = self._futures.pop(task_id, None)
                if future is None:
                    continue
                if status == "ok":
                    future.set_result(payload)
                else:
                    future.set_exception(_rebuild_error(*payload))

    def _mark_broken(self, error: BaseException) -> None:
        with self._lock:
            self._broken = True
            pending = list(self._futures.values())
            self._futures.clear()
        for future in pending:
            if not future.done():
                future.set_exception(error)

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers and the collector (idempotent; pending
        futures fail with ``BrokenExecutor`` rather than hanging)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._procs:
            try:
                self._tasks.put(("shutdown",))
            except (OSError, ValueError):  # pragma: no cover - queue gone
                break
        if wait:
            for proc in self._procs:
                proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._mark_broken(
            BrokenExecutor("persistent worker group shut down")
        )
        try:
            self._results.put(None)
        except (OSError, ValueError):  # pragma: no cover - queue gone
            pass
        self._collector.join(timeout=5.0)
        for q in (self._tasks, self._results):
            q.close()
            q.cancel_join_thread()

    def __enter__(self) -> "PersistentWorkerGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)

    def __del__(self):  # pragma: no cover - GC/interpreter-exit path
        try:
            self.shutdown(wait=False)
        except Exception:
            pass
