"""The sharded solve: partition plan -> fan-out -> reconcile.

:func:`solve_sharded` is the numeric heart of the sharding subsystem —
it takes one batch's key matrix and a :class:`~repro.dispatch.sharding.
partitioner.ShardPlan`, solves every shard's submatrix through a
:class:`~repro.dispatch.sharding.executor.ShardExecutor`, and merges the
per-shard proposals through the
:class:`~repro.dispatch.sharding.reconciler.BoundaryReconciler`.

It deliberately knows nothing about quotes, agents or commits: callers
(the ``sharded`` dispatch policy, the ``sharded_dispatch`` benchmark)
hand it plain numpy keys and get plain index pairs back, which is what
lets the process backend ship work to other cores.

A single-shard plan short-circuits the reconciler and returns the
shard's pairs untouched, making ``shards=1`` *bit-identical* to a
global :func:`~repro.dispatch.solver.solve_assignment` call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dispatch.sharding.executor import ShardExecutor, solve_one_shard
from repro.dispatch.sharding.partitioner import ShardPlan
from repro.dispatch.sharding.reconciler import BoundaryReconciler
from repro.faults import TaskFailure
from repro.obs.trace import NULL_TRACER


@dataclass(slots=True)
class ShardedSolveOutcome:
    """One flush's sharded solve: final pairs plus per-shard telemetry."""

    pairs: list[tuple[int, int]] = field(default_factory=list)
    #: Requests per solved shard (the partition balance signal).
    shard_sizes: list[int] = field(default_factory=list)
    #: In-worker solve seconds per shard.
    shard_seconds: list[float] = field(default_factory=list)
    #: Vehicles claimed by more than one shard this flush.
    boundary_conflicts: int = 0
    num_shards: int = 0
    #: Why spatial sharding degenerated to one global shard (``None``
    #: when the plan sharded as requested) — surfaced into the batch
    #: metrics so a silently-global "sharded" run is visible.
    fallback_reason: str | None = None
    #: Shards whose fan-out task exhausted its retry budget and were
    #: re-solved serially in the parent (degradation-ladder rung 2).
    serial_rescues: int = 0


def solve_sharded(
    keys: np.ndarray,
    plan: ShardPlan,
    executor: ShardExecutor,
    reconciler: BoundaryReconciler | None = None,
    tracer=NULL_TRACER,
) -> ShardedSolveOutcome:
    """Solve one batch's ``keys`` according to ``plan``.

    Returns global ``(row, col)`` pairs — at most one per row and per
    column, sorted — plus the per-shard sizes/solve times and the number
    of boundary conflicts the reconciler had to resolve. ``tracer``
    (a :class:`repro.obs.Tracer`) adds per-shard ``shard.solve`` spans;
    the default is a no-op.

    A shard whose fan-out task still fails after the executor's retry
    budget comes back as a :class:`~repro.faults.TaskFailure`; it is
    re-solved serially right here in the parent (a shard solve is a pure
    numpy computation — the parent can always do it itself), counted in
    ``serial_rescues``. The final pairs are therefore identical to a
    fault-free run's, whatever the fan-out failures.
    """
    tasks = [
        (
            shard.shard_id,
            keys[np.ix_(shard.rows, shard.cols)]
            if shard.rows and shard.cols
            else np.empty((len(shard.rows), len(shard.cols))),
        )
        for shard in plan.shards
    ]
    results = executor.run(tasks, tracer=tracer)

    keys_by_id = dict(tasks)
    rescues = 0
    for i, entry in enumerate(results):
        if isinstance(entry, TaskFailure):
            results[i] = solve_one_shard(entry.task_id, keys_by_id[entry.task_id])
            rescues += 1

    shards_by_id = {shard.shard_id: shard for shard in plan.shards}
    proposals: list[list[tuple[int, int]]] = []
    sizes: list[int] = []
    seconds: list[float] = []
    for shard_id, local_pairs, secs in results:
        shard = shards_by_id[shard_id]
        proposals.append(
            [(shard.rows[i], shard.cols[j]) for i, j in local_pairs]
        )
        sizes.append(len(shard.rows))
        seconds.append(secs)

    if len(plan.shards) == 1:
        # Bit-identical to the global solve: nothing to reconcile.
        pairs = proposals[0] if proposals else []
        conflicts = 0
    else:
        outcome = (reconciler or BoundaryReconciler()).reconcile(
            keys, proposals
        )
        pairs = outcome.pairs
        conflicts = outcome.boundary_conflicts
    return ShardedSolveOutcome(
        pairs=pairs,
        shard_sizes=sizes,
        shard_seconds=seconds,
        boundary_conflicts=conflicts,
        num_shards=len(plan.shards),
        fallback_reason=plan.fallback_reason,
        serial_rescues=rescues,
    )
