"""Second-stage assignment over shard-boundary conflicts.

Per-shard solves are independent, so a vehicle that is a candidate
column of two shards (it straddles their boundary) can win a request in
each — a double-assignment no single vehicle can honor. The
:class:`BoundaryReconciler` resolves these deterministically:

1. every proposal whose vehicle was claimed by exactly one shard is
   accepted as-is;
2. the *conflict set* — all requests whose proposed vehicle was claimed
   more than once — is re-solved as one small linear assignment against
   every not-yet-accepted column of the global key matrix.

Stage 2 uses the same Hungarian solver as the shards, so the outcome is
deterministic and maximum-cardinality: a request that loses a contested
vehicle immediately falls back to its best remaining alternative rather
than being dropped, and no feasible boundary match is silently lost
(requests stage 2 still cannot place flow into the policy's sequential
cleanup, exactly like global-solve losers).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.dispatch.solver import solve_assignment


@dataclass(slots=True)
class ReconcileOutcome:
    """Conflict-free pairs plus what reconciliation had to do.

    ``boundary_conflicts`` counts the vehicles claimed by more than one
    shard; ``conflict_rows`` the requests that went through the
    second-stage solve.
    """

    pairs: list[tuple[int, int]] = field(default_factory=list)
    boundary_conflicts: int = 0
    conflict_rows: tuple[int, ...] = ()


class BoundaryReconciler:
    """Merges per-shard assignment proposals into one valid matching."""

    def reconcile(
        self, keys: np.ndarray, proposals: list[list[tuple[int, int]]]
    ) -> ReconcileOutcome:
        """Resolve ``proposals`` (one ``(row, col)`` list per shard, in
        shard-id order, global indices) against the batch's ``keys``.

        Rows are owned by exactly one shard each, so conflicts are
        always *column* collisions across shards.
        """
        claims: dict[int, list[int]] = defaultdict(list)
        for shard_pairs in proposals:
            for row, col in shard_pairs:
                claims[col].append(row)

        accepted = [
            (rows[0], col) for col, rows in claims.items() if len(rows) == 1
        ]
        conflicted = {col: rows for col, rows in claims.items() if len(rows) > 1}
        if not conflicted:
            accepted.sort()
            return ReconcileOutcome(pairs=accepted)

        conflict_rows = sorted(
            row for rows in conflicted.values() for row in rows
        )
        taken = {col for _, col in accepted}
        # Only not-yet-taken columns some conflict row can actually use:
        # an infeasible column can never be matched, so dropping it here
        # keeps the second-stage matrix as small as the conflict itself.
        usable = np.isfinite(keys[conflict_rows]).any(axis=0)
        free_cols = [
            int(c) for c in np.nonzero(usable)[0] if int(c) not in taken
        ]
        if not free_cols:
            accepted.sort()
            return ReconcileOutcome(
                pairs=accepted,
                boundary_conflicts=len(conflicted),
                conflict_rows=tuple(conflict_rows),
            )
        sub = keys[np.ix_(conflict_rows, free_cols)]
        for i, j in solve_assignment(sub):
            accepted.append((conflict_rows[i], free_cols[j]))
        accepted.sort()
        return ReconcileOutcome(
            pairs=accepted,
            boundary_conflicts=len(conflicted),
            conflict_rows=tuple(conflict_rows),
        )
