"""The batch dispatcher: one flush at a time instead of one request.

:class:`BatchDispatcher` generalises the per-request
:class:`~repro.core.matching.Dispatcher` to whole windows: the simulator
hands it the batch a :class:`~repro.dispatch.window.BatchWindow`
accumulated — together with the staged pipeline's completed quote stage,
when one ran — and the configured
:class:`~repro.dispatch.policies.DispatchPolicy` solves and commits
(re-quoting itself in later rounds and whenever no quote stage was
handed in). Candidate filtering, quoting and commit semantics are the
underlying dispatcher's — this layer only changes *when* and *together
with whom* requests are matched, which is why a zero-length window under
the ``greedy`` policy reduces exactly to immediate dispatch. With
carry-over enabled it also decides *whether now at all*: losing requests
that can still make the next flush's commit come back in
:attr:`~repro.dispatch.policies.BatchResult.carried` instead of settling
here.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.matching import Dispatcher
from repro.core.request import TripRequest
from repro.dispatch.policies import BatchResult, DispatchPolicy
from repro.dispatch.quoting import QuoteSet


class BatchDispatcher:
    """Matches request batches to vehicles via a pluggable policy."""

    def __init__(self, dispatcher: Dispatcher, policy: DispatchPolicy):
        self.dispatcher = dispatcher
        self.policy = policy

    def make_request(
        self,
        origin: int,
        destination: int,
        request_time: float,
        max_wait: float,
        detour_epsilon: float,
    ) -> TripRequest | None:
        """Stamp a raw trip spec (delegates to the wrapped dispatcher, so
        request ids stay globally sequential)."""
        return self.dispatcher.make_request(
            origin, destination, request_time, max_wait, detour_epsilon
        )

    def dispatch(
        self,
        requests: Sequence[TripRequest],
        now: float,
        quote_set: QuoteSet | None = None,
        carry_deadline: float | None = None,
        fault_deadline: float | None = None,
    ) -> BatchResult:
        """Assign one batch at ``now``; winning quotes are committed.

        ``quote_set`` hands the policy a completed quote stage for this
        exact batch (the staged pipeline's round-1 material); ``None``
        means the policy quotes synchronously, as before the pipeline.
        ``carry_deadline`` (the next flush's commit instant) enables
        carry-over batching: unassigned requests that can still make it
        come back in :attr:`BatchResult.carried` for re-entry into the
        window instead of being settled in-batch. ``fault_deadline``
        arms the fault-carry rung of the degradation ladder (see
        :meth:`~repro.dispatch.policies.DispatchPolicy.assign`).
        """
        return self.policy.assign(
            self.dispatcher,
            list(requests),
            now,
            quote_set=quote_set,
            carry_deadline=carry_deadline,
            fault_deadline=fault_deadline,
        )

    def __repr__(self) -> str:
        return f"BatchDispatcher(policy={self.policy!r})"
