"""The batch dispatcher: one flush at a time instead of one request.

:class:`BatchDispatcher` generalises the per-request
:class:`~repro.core.matching.Dispatcher` to whole windows: the simulator
hands it the batch a :class:`~repro.dispatch.window.BatchWindow`
accumulated, and the configured :class:`~repro.dispatch.policies.DispatchPolicy`
quotes, solves and commits. Candidate filtering, quoting and commit
semantics are the underlying dispatcher's — this layer only changes *when*
and *together with whom* requests are matched, which is why a zero-length
window under the ``greedy`` policy reduces exactly to immediate dispatch.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.matching import Dispatcher
from repro.core.request import TripRequest
from repro.dispatch.policies import BatchResult, DispatchPolicy
from repro.dispatch.quoting import QuoteSet


class BatchDispatcher:
    """Matches request batches to vehicles via a pluggable policy."""

    def __init__(self, dispatcher: Dispatcher, policy: DispatchPolicy):
        self.dispatcher = dispatcher
        self.policy = policy

    def make_request(
        self,
        origin: int,
        destination: int,
        request_time: float,
        max_wait: float,
        detour_epsilon: float,
    ) -> TripRequest | None:
        """Stamp a raw trip spec (delegates to the wrapped dispatcher, so
        request ids stay globally sequential)."""
        return self.dispatcher.make_request(
            origin, destination, request_time, max_wait, detour_epsilon
        )

    def dispatch(
        self,
        requests: Sequence[TripRequest],
        now: float,
        quote_set: QuoteSet | None = None,
    ) -> BatchResult:
        """Assign one batch at ``now``; winning quotes are committed.

        ``quote_set`` hands the policy a completed quote stage for this
        exact batch (the staged pipeline's round-1 material); ``None``
        means the policy quotes synchronously, as before the pipeline.
        """
        return self.policy.assign(
            self.dispatcher, list(requests), now, quote_set=quote_set
        )

    def __repr__(self) -> str:
        return f"BatchDispatcher(policy={self.policy!r})"
