"""Request-to-vehicle matching: agents and the dispatcher.

On each incoming request the dispatcher (Section VI): (1) filters
candidate vehicles through the grid index — "servers that are farther
than ``w`` from the pickup location are unable to respond"; (2) asks each
candidate for a *quote* — the cost of its best valid augmented schedule;
(3) assigns the request to the cheapest quote and commits only that
vehicle ("the simulator trips the request with each vehicle and then
chooses the vehicle returning the minimum time").

Two agent families exist:

* :class:`KineticAgent` — owns a live
  :class:`~repro.core.kinetic.tree.KineticTree`; quoting is a trial
  insertion, committing adopts the trial;
* :class:`RescheduleAgent` — owns plain (onboard, pending, committed)
  state and re-solves from scratch with a
  :class:`~repro.algorithms.base.SchedulingAlgorithm` (brute force,
  branch & bound, MIP, insertion) — the paper's baseline behavior.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from repro.constants import SPEED_MPS
from repro.obs.trace import NULL_TRACER, clock
from repro.core.kinetic.tree import EPSILON as TREE_EPSILON
from repro.core.kinetic.tree import KineticTree, KineticTrial
from repro.core.problem import ScheduleResult, SchedulingProblem
from repro.core.request import TripRequest
from repro.core.stop import Stop
from repro.core.vehicle import Vehicle
from repro.exceptions import DisconnectedError, SimulationError
from repro.roadnet.engine import fan_out_distances


@dataclass(frozen=True, slots=True)
class Quote:
    """One vehicle's offer for a request."""

    agent: "VehicleAgent" = field(compare=False)
    request: TripRequest = field(compare=False)
    cost: float
    decision_vertex: int
    decision_time: float
    payload: object = field(compare=False, default=None)


@dataclass(slots=True)
class AssignmentResult:
    """Outcome of dispatching one request.

    ``quote_timings`` holds ``(active_trips, seconds)`` per candidate —
    the raw material for the paper's ART buckets; ``elapsed`` is this
    request's contribution to ACRT.
    """

    request: TripRequest
    winner: "VehicleAgent | None"
    cost: float
    elapsed: float
    num_candidates: int
    quote_timings: list[tuple[int, float]]

    @property
    def assigned(self) -> bool:
        return self.winner is not None


class VehicleAgent(abc.ABC):
    """Scheduling brain of one vehicle."""

    def __init__(self, vehicle: Vehicle, engine):
        self.vehicle = vehicle
        self.engine = engine
        #: Staleness epoch: bumped on every schedule mutation (commit,
        #: stop arrival). A quote captured together with the epoch it was
        #: computed under can be re-validated at commit time — any bump in
        #: between means the quote's payload references schedule state
        #: that no longer exists (see :mod:`repro.dispatch.quoting`).
        self.schedule_epoch = 0

    # -- scheduling ----------------------------------------------------
    @abc.abstractmethod
    def quote(self, request: TripRequest, now: float) -> Quote | None:
        """Best augmented-schedule cost for ``request``, without mutating
        any committed state. ``None`` = cannot serve."""

    def quote_batch(
        self, requests: Sequence[TripRequest], now: float
    ) -> list["Quote | None"]:
        """Quote several requests from one decision point (batched
        dispatch). The concrete agent families resolve the decision
        point once and delegate to :meth:`quote_batch_at`; the fallback
        just quotes sequentially."""
        return [self.quote(request, now) for request in requests]

    def quote_batch_at(
        self, requests: Sequence[TripRequest], vertex: int, t: float
    ) -> list["Quote | None"]:
        """Quote several requests from a pre-resolved decision point.

        The split from :meth:`quote_batch` exists for the async quoting
        pipeline (:mod:`repro.dispatch.quoting`): the simulator resolves
        every candidate's decision point on the main thread
        (decision-point resolution mutates the vehicle's lazy cruise
        waypoints), then fans the pure scheduling work — which only
        reads the agent's committed schedule and the engine — out to
        worker threads. Subclasses override to compute the per-vehicle
        setup (path prefixes, batched fan-outs) once instead of per
        request; the fallback just quotes sequentially.
        """
        return [self._quote_at(request, vertex, t) for request in requests]

    def _quote_at(
        self, request: TripRequest, vertex: int, t: float
    ) -> Quote | None:
        """One quote from a pre-resolved decision point.

        Hook for the concrete agent families; the fallback lets agents
        that only implement :meth:`quote` (scripted test agents) still
        satisfy the batched planes by quoting at the decision time."""
        return self.quote(request, t)

    @abc.abstractmethod
    def commit(self, quote: Quote) -> None:
        """Adopt a previously returned quote (the request is won).
        Implementations must bump :attr:`schedule_epoch`."""

    @abc.abstractmethod
    def next_stop(self) -> tuple[float, tuple[Stop, ...]] | None:
        """Arrival time and stop(s) of the next committed visit."""

    @abc.abstractmethod
    def arrive_next(self) -> list[tuple[float, Stop]]:
        """Execute the next committed visit, updating rider state;
        returns the ``(arrival, stop)`` pairs serviced (several for a
        hotspot group node)."""

    # -- state ---------------------------------------------------------
    @property
    @abc.abstractmethod
    def num_active_trips(self) -> int:
        """Accepted, unfinished trips (the ART bucket key)."""

    @property
    @abc.abstractmethod
    def load(self) -> int:
        """Riders currently in the vehicle."""

    @property
    def is_idle(self) -> bool:
        return self.num_active_trips == 0

    def current_plan_cost(self) -> float:
        """Remaining cost of the committed schedule; used by the
        ``"delta"`` assignment objective. Subclasses override."""
        return 0.0

    # -- movement ------------------------------------------------------
    def build_route(
        self,
        decision_vertex: int,
        decision_time: float,
        stops: Sequence[Stop],
    ) -> list[tuple[float, int]]:
        """Timestamped vertex waypoints along shortest paths through the
        committed stops, for :meth:`Vehicle.set_route`."""
        waypoints: list[tuple[float, int]] = [(decision_time, decision_vertex)]
        t = decision_time
        loc = decision_vertex
        for stop in stops:
            path = self.engine.path(loc, stop.vertex)
            for u, v in zip(path, path[1:]):
                t += self.engine.graph.edge_weight(u, v)
                waypoints.append((t, v))
            loc = stop.vertex
        return waypoints


class KineticAgent(VehicleAgent):
    """Vehicle driven by a live kinetic tree."""

    def __init__(
        self,
        vehicle: Vehicle,
        engine,
        mode: str = "slack",
        hotspot_theta: float | None = None,
        eager_invalidation: bool = False,
        start_time: float | None = None,
        expansion_budget: int | None = None,
        schedule_cap: int | None = None,
    ):
        super().__init__(vehicle, engine)
        # Root the tree exactly where/when the vehicle starts.
        first_time, start_vertex = vehicle.waypoints[0]
        if start_time is None:
            start_time = first_time
        self.tree = KineticTree(
            engine,
            start_vertex,
            start_time,
            capacity=vehicle.capacity,
            mode=mode,
            hotspot_theta=hotspot_theta,
            eager_invalidation=eager_invalidation,
            expansion_budget=expansion_budget,
            schedule_cap=schedule_cap,
        )

    def _quote_at(
        self, request: TripRequest, vertex: int, t: float
    ) -> Quote | None:
        trial = self.tree.try_insert(request, vertex, t)
        if trial is None:
            return None
        return Quote(
            agent=self,
            request=request,
            cost=trial.best_cost,
            decision_vertex=vertex,
            decision_time=t,
            payload=trial,
        )

    def quote(self, request: TripRequest, now: float) -> Quote | None:
        vertex, t = self.vehicle.decision_point(now, self.engine.graph)
        return self._quote_at(request, vertex, t)

    def quote_batch(
        self, requests: Sequence[TripRequest], now: float
    ) -> list[Quote | None]:
        vertex, t = self.vehicle.decision_point(now, self.engine.graph)
        return self.quote_batch_at(requests, vertex, t)

    def quote_batch_at(
        self, requests: Sequence[TripRequest], vertex: int, t: float
    ) -> list[Quote | None]:
        """Trial-insert every request from one shared decision point.

        The whole batch's pickup fan-out goes through one cutoff-aware
        :func:`~repro.roadnet.engine.fan_out_distances` call, which
        (a) pre-warms the engine's row/pair caches (where it has any)
        for the trial insertions that follow, and (b) screens out
        requests whose pickup is provably unreachable in time: any
        schedule visits the pickup no earlier than
        ``t + d(vertex, origin)`` (triangle inequality), so
        ``t + d > deadline + EPSILON`` means every placement would fail
        the exact same :class:`KineticTree` check and ``try_insert``
        would return ``None`` anyway.
        """
        reach = fan_out_distances(
            self.engine, vertex, [request.origin for request in requests]
        )
        quotes: list[Quote | None] = []
        for request, leg in zip(requests, reach):
            if t + float(leg) > request.pickup_deadline + TREE_EPSILON:
                quotes.append(None)
            else:
                quotes.append(self._quote_at(request, vertex, t))
        return quotes

    def commit(self, quote: Quote) -> None:
        trial: KineticTrial = quote.payload
        self.tree.commit(trial)
        self.schedule_epoch += 1
        stops: list[Stop] = []
        for node in self.tree.committed:
            stops.extend(node.stops)
        self.vehicle.set_route(
            self.build_route(quote.decision_vertex, quote.decision_time, stops)
        )

    def next_stop(self) -> tuple[float, tuple[Stop, ...]] | None:
        if not self.tree.committed:
            return None
        node = self.tree.committed[0]
        return node.last_arrival, node.stops

    def arrive_next(self) -> list[tuple[float, Stop]]:
        node = self.tree.advance()
        self.schedule_epoch += 1
        return list(zip(node.arrivals, node.stops))

    @property
    def num_active_trips(self) -> int:
        return self.tree.num_active_trips

    @property
    def load(self) -> int:
        return self.tree.load

    def current_plan_cost(self) -> float:
        """Remaining cost of the committed schedule (0 when idle)."""
        if not self.tree.committed:
            return 0.0
        return self.tree.committed[-1].last_arrival - self.tree.root_time


class RescheduleAgent(VehicleAgent):
    """Vehicle that re-solves its schedule from scratch per request."""

    def __init__(self, vehicle: Vehicle, engine, algorithm):
        super().__init__(vehicle, engine)
        self.algorithm = algorithm
        self.onboard: dict[TripRequest, float] = {}
        self.pending: list[TripRequest] = []
        self.committed_stops: list[Stop] = []
        self.committed_arrivals: list[float] = []

    def _problem(
        self, request: TripRequest | None, vertex: int, t: float
    ) -> SchedulingProblem:
        return SchedulingProblem(
            start_vertex=vertex,
            start_time=t,
            onboard=dict(self.onboard),
            pending=tuple(self.pending),
            new_request=request,
            capacity=self.vehicle.capacity,
        )

    def _quote_at(
        self, request: TripRequest, vertex: int, t: float
    ) -> Quote | None:
        result = self.algorithm.solve(self._problem(request, vertex, t))
        if result is None:
            return None
        return Quote(
            agent=self,
            request=request,
            cost=result.cost,
            decision_vertex=vertex,
            decision_time=t,
            payload=result,
        )

    def quote(self, request: TripRequest, now: float) -> Quote | None:
        vertex, t = self.vehicle.decision_point(now, self.engine.graph)
        return self._quote_at(request, vertex, t)

    def quote_batch(
        self, requests: Sequence[TripRequest], now: float
    ) -> list[Quote | None]:
        vertex, t = self.vehicle.decision_point(now, self.engine.graph)
        return self.quote_batch_at(requests, vertex, t)

    def quote_batch_at(
        self, requests: Sequence[TripRequest], vertex: int, t: float
    ) -> list[Quote | None]:
        """Re-solve once per request from one shared decision point; the
        (onboard, pending) base problem is identical across the batch.
        On engines advertising ``batch_prefetch`` (Dijkstra's row/pair
        caches), one ``distance_many`` fan-out to every pickup pre-warms
        them for the per-request solves; cacheless engines skip the
        prefetch — its result would be discarded work."""
        if getattr(self.engine, "batch_prefetch", False):
            self.engine.distance_many(
                vertex, [request.origin for request in requests]
            )
        return [self._quote_at(request, vertex, t) for request in requests]

    def commit(self, quote: Quote) -> None:
        result: ScheduleResult = quote.payload
        self.schedule_epoch += 1
        self.pending.append(quote.request)
        self.committed_stops = list(result.stops)
        self.committed_arrivals = list(result.arrivals)
        self.vehicle.set_route(
            self.build_route(
                quote.decision_vertex, quote.decision_time, self.committed_stops
            )
        )

    def next_stop(self) -> tuple[float, tuple[Stop, ...]] | None:
        if not self.committed_stops:
            return None
        return self.committed_arrivals[0], (self.committed_stops[0],)

    def arrive_next(self) -> list[tuple[float, Stop]]:
        if not self.committed_stops:
            raise SimulationError("no committed stop to arrive at")
        self.schedule_epoch += 1
        stop = self.committed_stops.pop(0)
        arrival = self.committed_arrivals.pop(0)
        if stop.is_pickup:
            self.pending = [
                r for r in self.pending if r.request_id != stop.request_id
            ]
            self.onboard[stop.request] = arrival
        else:
            for request in list(self.onboard):
                if request.request_id == stop.request_id:
                    del self.onboard[request]
        return [(arrival, stop)]

    @property
    def num_active_trips(self) -> int:
        return len(self.onboard) + len(self.pending)

    @property
    def load(self) -> int:
        return len(self.onboard)

    def current_plan_cost(self) -> float:
        """Remaining cost of the committed schedule (0 when idle)."""
        if not self.committed_arrivals:
            return 0.0
        # Arrivals are absolute; the plan started when the last commit was
        # made, so remaining cost is last arrival minus the first stop's
        # departure baseline — approximate with span to first arrival.
        return self.committed_arrivals[-1] - self.committed_arrivals[0]


class Dispatcher:
    """Matches each incoming request to the cheapest feasible vehicle."""

    #: Assignment objectives: the paper's — total cost of the augmented
    #: unfinished schedule — and the incremental variant used as an
    #: ablation (extra cost over the vehicle's current plan).
    OBJECTIVES = ("total", "delta")

    def __init__(
        self,
        engine,
        agents: Sequence[VehicleAgent],
        grid_index=None,
        staleness_seconds: float = 60.0,
        objective: str = "total",
    ):
        if objective not in self.OBJECTIVES:
            raise ValueError(f"objective must be one of {self.OBJECTIVES}")
        self.engine = engine
        self.agents = list(agents)
        self.grid_index = grid_index
        self.staleness_seconds = staleness_seconds
        self.objective = objective
        #: The run's span collector (repro.obs); the simulator swaps in
        #: its own. Write-only: no matching decision ever reads it.
        self.tracer = NULL_TRACER
        self._next_request_id = 0

    # ------------------------------------------------------------------
    def make_request(
        self,
        origin: int,
        destination: int,
        request_time: float,
        max_wait: float,
        detour_epsilon: float,
    ) -> TripRequest | None:
        """Stamp a raw trip spec into a :class:`TripRequest` (computing
        ``d(s, e)``); ``None`` for degenerate/unreachable specs."""
        if origin == destination:
            return None
        try:
            direct = self.engine.distance(origin, destination)
        except DisconnectedError:
            return None
        request = TripRequest(
            request_id=self._next_request_id,
            origin=origin,
            destination=destination,
            request_time=request_time,
            max_wait=max_wait,
            detour_epsilon=detour_epsilon,
            direct_cost=direct,
        )
        self._next_request_id += 1
        return request

    def candidates(self, request: TripRequest) -> list[VehicleAgent]:
        """Conservative candidate set via the grid index.

        Straight-line distance lower-bounds network distance, so a disc
        of radius ``(w + staleness) * speed`` around the pickup covers
        every vehicle that could possibly arrive in time.
        """
        if self.grid_index is None or self.engine.graph.coords is None:
            return self.agents
        x, y = self.engine.graph.coords[request.origin]
        radius = (request.max_wait + self.staleness_seconds) * SPEED_MPS
        ids = set(self.grid_index.query_radius(float(x), float(y), radius))
        return [a for a in self.agents if a.vehicle.vehicle_id in ids]

    def submit(self, request: TripRequest, now: float) -> AssignmentResult:
        """Quote all candidates, assign the cheapest, commit the winner."""
        # The stopwatches stay even when untraced: elapsed feeds ACRT
        # and the per-quote stamps feed the ART buckets either way. The
        # tracer just gets the same stamps as a finished span.
        started = clock()
        quote_timings: list[tuple[int, float]] = []
        best: Quote | None = None
        best_key = float("inf")
        candidates = self.candidates(request)
        for agent in candidates:
            active = agent.num_active_trips
            t0 = clock()
            quote = agent.quote(request, now)
            quote_timings.append((active, clock() - t0))
            if quote is None:
                continue
            key = quote.cost
            if self.objective == "delta":
                key = quote.cost - agent.current_plan_cost()
            if (
                best is None
                or key < best_key - 1e-9
                or (
                    abs(key - best_key) <= 1e-9
                    and agent.vehicle.vehicle_id < best.agent.vehicle.vehicle_id
                )
            ):
                best = quote
                best_key = key
        if best is not None:
            best.agent.commit(best)
        elapsed = clock() - started
        self.tracer.emit(
            "submit",
            "dispatch",
            started,
            started + elapsed,
            request=request.request_id,
            candidates=len(candidates),
            assigned=best is not None,
        )
        return AssignmentResult(
            request=request,
            winner=best.agent if best is not None else None,
            cost=best.cost if best is not None else float("inf"),
            elapsed=elapsed,
            num_candidates=len(candidates),
            quote_timings=quote_timings,
        )
