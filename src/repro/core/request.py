"""Trip requests (Definition 1 of the paper).

A trip ``tr = <s, e, w, eps>`` has a source ``s``, destination ``e``,
maximal waiting time ``w`` and service constraint ``eps`` bounding the
on-road pickup-to-dropoff cost by ``(1 + eps) * d(s, e)``.

All costs are travel-time seconds (the paper's constant 14 m/s makes
time and distance interchangeable). ``direct_cost`` — the shortest-path
cost ``d(s, e)`` — is computed once when the request enters the system
and carried on the request, since every constraint check needs it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ScheduleError


@dataclass(frozen=True, slots=True)
class TripRequest:
    """An accepted-for-evaluation trip request.

    Attributes
    ----------
    request_id:
        Unique, monotonically increasing id (also the tie-breaker in
        deterministic orderings).
    origin, destination:
        Road-network vertices ``s`` and ``e``.
    request_time:
        Simulation time (seconds) at which the request was made. The
        vehicle's location at this instant is the paper's ``r_i``.
    max_wait:
        ``w`` — the rider must be picked up by ``request_time + max_wait``.
    detour_epsilon:
        ``eps`` — the on-road pickup-to-dropoff cost may be at most
        ``(1 + eps) * direct_cost``.
    direct_cost:
        Shortest-path cost ``d(s, e)`` in seconds.
    """

    request_id: int
    origin: int
    destination: int
    request_time: float
    max_wait: float
    detour_epsilon: float
    direct_cost: float

    def __post_init__(self):
        if self.origin == self.destination:
            raise ScheduleError(
                f"request {self.request_id}: origin equals destination "
                f"({self.origin})"
            )
        if self.max_wait < 0:
            raise ScheduleError(f"request {self.request_id}: negative max_wait")
        if self.detour_epsilon < 0:
            raise ScheduleError(f"request {self.request_id}: negative epsilon")
        if self.direct_cost <= 0:
            raise ScheduleError(
                f"request {self.request_id}: non-positive direct cost"
            )

    @property
    def pickup_deadline(self) -> float:
        """Latest pickup time: ``request_time + w`` (absolute seconds)."""
        return self.request_time + self.max_wait

    @property
    def max_ride_cost(self) -> float:
        """Maximum allowed on-road pickup-to-dropoff cost
        ``(1 + eps) * d(s, e)``."""
        return (1.0 + self.detour_epsilon) * self.direct_cost

    @property
    def latest_dropoff_bound(self) -> float:
        """Worst-case absolute dropoff time, ``pickup_deadline +
        max_ride_cost``. This is the latest-arrival time used by the
        slack filter for the dropoff of a not-yet-picked-up trip (see
        DESIGN.md: it makes the filter safe — never over-pruning)."""
        return self.pickup_deadline + self.max_ride_cost

    def __repr__(self) -> str:
        return (
            f"TripRequest(id={self.request_id}, {self.origin}->{self.destination}, "
            f"t={self.request_time:.0f}, w={self.max_wait:.0f}, "
            f"eps={self.detour_epsilon:.2f})"
        )
