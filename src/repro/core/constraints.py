"""Service-guarantee constraint configuration.

The paper studies a *unified* waiting time ``w`` and service constraint
``eps`` chosen by the provider (Tables I and II sweep five settings:
5 min / 10 % ... 25 min / 50 %), while noting the algorithms generalize to
per-request constraints — which this library supports by stamping each
:class:`~repro.core.request.TripRequest` with its own values at creation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ConstraintConfig:
    """Provider-wide service guarantee: waiting time and detour tolerance."""

    max_wait_seconds: float
    detour_epsilon: float

    def __post_init__(self):
        if self.max_wait_seconds <= 0:
            raise ValueError("max_wait_seconds must be positive")
        if self.detour_epsilon < 0:
            raise ValueError("detour_epsilon must be non-negative")

    @staticmethod
    def from_minutes(wait_minutes: float, detour_percent: float) -> "ConstraintConfig":
        """Build from the paper's table notation, e.g. ``(10, 20)`` for
        "10 min / 20 %"."""
        return ConstraintConfig(wait_minutes * 60.0, detour_percent / 100.0)

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``"10 min / 20%"``."""
        return (
            f"{self.max_wait_seconds / 60:.0f} min / "
            f"{self.detour_epsilon * 100:.0f}%"
        )


#: The five constraint settings of Tables I and II; the default (10 min /
#: 20 %) is the bolded middle setting.
PAPER_CONSTRAINT_SWEEP = (
    ConstraintConfig.from_minutes(5, 10),
    ConstraintConfig.from_minutes(10, 20),
    ConstraintConfig.from_minutes(15, 30),
    ConstraintConfig.from_minutes(20, 40),
    ConstraintConfig.from_minutes(25, 50),
)

DEFAULT_CONSTRAINTS = PAPER_CONSTRAINT_SWEEP[1]
