"""Core ridesharing model: requests, schedules, vehicles, matching, and
the kinetic tree."""

from repro.core.constraints import (
    DEFAULT_CONSTRAINTS,
    PAPER_CONSTRAINT_SWEEP,
    ConstraintConfig,
)
from repro.core.kinetic import KineticTree, KineticTrial, TreeNode
from repro.core.matching import (
    AssignmentResult,
    Dispatcher,
    KineticAgent,
    Quote,
    RescheduleAgent,
    VehicleAgent,
)
from repro.core.problem import ScheduleResult, SchedulingProblem
from repro.core.request import TripRequest
from repro.core.schedule import ScheduleEvaluation, check_structure, evaluate_schedule
from repro.core.stop import Stop, StopKind, dropoff, pickup
from repro.core.vehicle import Vehicle

__all__ = [
    "ConstraintConfig",
    "PAPER_CONSTRAINT_SWEEP",
    "DEFAULT_CONSTRAINTS",
    "TripRequest",
    "Stop",
    "StopKind",
    "pickup",
    "dropoff",
    "ScheduleEvaluation",
    "evaluate_schedule",
    "check_structure",
    "SchedulingProblem",
    "ScheduleResult",
    "Vehicle",
    "KineticTree",
    "KineticTrial",
    "TreeNode",
    "Dispatcher",
    "VehicleAgent",
    "KineticAgent",
    "RescheduleAgent",
    "Quote",
    "AssignmentResult",
]
