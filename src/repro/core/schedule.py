"""Valid trip schedules (Definition 2) and their exact evaluation.

A schedule here is the *unfinished* suffix the paper reasons about: the
sequence of pickup/dropoff stops a vehicle will visit from its current
location onward, moving along shortest paths between consecutive stops.
:func:`evaluate_schedule` is the single source of truth for validity —
every algorithm (brute force, branch & bound, MIP reconstruction, kinetic
tree) either calls it or is property-tested against it.

Validity (Definition 2):

1. *point order* — a trip's pickup precedes its dropoff; onboard trips
   appear only as dropoffs;
2. *waiting time* — pickup arrival <= ``request_time + w``;
3. *service constraint* — on-road cost between a trip's pickup and
   dropoff <= ``(1 + eps) * d(s, e)``; for onboard trips the cost already
   driven since their actual pickup counts.

Plus the seat-capacity constraint of the experiments (Tables I and II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.stop import Stop
from repro.exceptions import ScheduleError


@dataclass(frozen=True, slots=True)
class ScheduleEvaluation:
    """Outcome of a successful schedule evaluation.

    ``cost`` is the paper's objective: total on-road cost of the
    unfinished schedule from the vehicle's location through the last stop.
    """

    stops: tuple[Stop, ...]
    arrivals: tuple[float, ...]
    cost: float

    @property
    def completion_time(self) -> float:
        """Absolute time the last stop is reached."""
        return self.arrivals[-1] if self.arrivals else 0.0


def check_structure(
    stops: Sequence[Stop], onboard_ids: frozenset[int] | set[int]
) -> None:
    """Raise :class:`ScheduleError` unless the stop sequence is
    structurally sound (point-order condition and no duplicates)."""
    seen_pickup: set[int] = set()
    seen_dropoff: set[int] = set()
    for stop in stops:
        rid = stop.request_id
        if stop.is_pickup:
            if rid in onboard_ids:
                raise ScheduleError(f"request {rid} is onboard but scheduled for pickup")
            if rid in seen_pickup:
                raise ScheduleError(f"request {rid} picked up twice")
            seen_pickup.add(rid)
        else:
            if rid in seen_dropoff:
                raise ScheduleError(f"request {rid} dropped off twice")
            if rid not in seen_pickup and rid not in onboard_ids:
                raise ScheduleError(
                    f"request {rid} dropped off before being picked up"
                )
            seen_dropoff.add(rid)
    missing = seen_pickup - seen_dropoff
    if missing:
        raise ScheduleError(f"requests picked up but never dropped off: {missing}")


def evaluate_schedule(
    engine,
    start_vertex: int,
    start_time: float,
    stops: Sequence[Stop],
    onboard_pickup_times: Mapping[int, float],
    capacity: int | None = None,
    initial_load: int | None = None,
) -> ScheduleEvaluation | None:
    """Exact validity check and costing of a stop sequence.

    Parameters
    ----------
    engine:
        A :class:`~repro.roadnet.engine.ShortestPathEngine`.
    start_vertex, start_time:
        The vehicle's decision point ``(l, t)``.
    stops:
        Proposed unfinished schedule. Structural validity is assumed
        (call :func:`check_structure` for untrusted input).
    onboard_pickup_times:
        ``request_id -> actual pickup time`` for passengers already in
        the vehicle; their ride budget is measured from these times.
    capacity:
        Seat capacity, or ``None`` for unlimited (Fig. 9(c) "unlim").
    initial_load:
        Passengers currently in the vehicle; defaults to
        ``len(onboard_pickup_times)``.

    Returns
    -------
    The evaluation, or ``None`` when any waiting-time, service or
    capacity constraint is violated (the common, non-exceptional case
    during search).
    """
    time = start_time
    location = start_vertex
    load = len(onboard_pickup_times) if initial_load is None else initial_load
    pickup_times = dict(onboard_pickup_times)
    arrivals: list[float] = []

    for stop in stops:
        time += engine.distance(location, stop.vertex)
        location = stop.vertex
        request = stop.request
        if stop.is_pickup:
            if time > request.pickup_deadline:
                return None
            load += 1
            if capacity is not None and load > capacity:
                return None
            pickup_times[request.request_id] = time
        else:
            picked_at = pickup_times.get(request.request_id)
            if picked_at is None:
                raise ScheduleError(
                    f"request {request.request_id} dropped off before pickup"
                )
            if time - picked_at > request.max_ride_cost + _EPS:
                return None
            load -= 1
        arrivals.append(time)

    return ScheduleEvaluation(
        stops=tuple(stops), arrivals=tuple(arrivals), cost=time - start_time
    )


#: Absolute tolerance for floating-point constraint comparisons. Costs are
#: sums of tens of edge weights in seconds; 1e-6 s of slack is far below
#: any meaningful travel time and absorbs accumulation error.
_EPS = 1e-6


def schedule_cost(engine, start_vertex: int, stops: Sequence[Stop]) -> float:
    """On-road cost of visiting ``stops`` in order from ``start_vertex``
    (no validity checking)."""
    total = 0.0
    location = start_vertex
    for stop in stops:
        total += engine.distance(location, stop.vertex)
        location = stop.vertex
    return total
