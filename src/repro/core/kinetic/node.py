"""Kinetic tree nodes.

A node holds one stop — or, with hotspot clustering, an ordered *group*
of stops within pairwise θ that are visited consecutively (Section V).
Each node caches the arrival time at each of its stops computed when its
tree was last committed; arrivals of uncommitted branches drift as the
vehicle moves and are recomputed live during insertion (the paper: "the
∆ values are quiescent to server movement").
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.core.stop import Stop


def stop_latest_arrival(stop: Stop, onboard_pickup_times: Mapping[int, float]) -> float:
    """Absolute latest-arrival time (LAT) of a stop, for the slack filter.

    * pickup — ``request_time + w`` (the waiting-time constraint);
    * dropoff of an onboard rider — ``actual pickup + (1+eps) d(s,e)``;
    * dropoff of a not-yet-picked-up rider — ``pickup deadline +
      (1+eps) d(s,e)``, the worst-case bound that makes the filter safe
      (never over-pruning; see the module docstring of
      :mod:`repro.core.kinetic.tree`).
    """
    request = stop.request
    if stop.is_pickup:
        return request.pickup_deadline
    picked_at = onboard_pickup_times.get(request.request_id)
    if picked_at is not None:
        return picked_at + request.max_ride_cost
    return request.latest_dropoff_bound


class TreeNode:
    """One visit in the prefix tree: a stop, or a hotspot group of stops.

    Attributes
    ----------
    stops:
        Ordered stops visited consecutively at this node (singleton
        except under hotspot clustering).
    arrivals:
        Stored arrival time per stop, valid as of the last commit.
    children:
        Continuations; a leaf terminates one complete valid schedule.
    delta:
        The slack aggregate ``∆ = min(own slack, max over children ∆)``
        (Theorem 1), refreshed only on commit.
    """

    __slots__ = ("stops", "arrivals", "children", "delta", "internal_cost")

    def __init__(
        self,
        stops: Sequence[Stop],
        arrivals: Sequence[float],
        children: list["TreeNode"] | None = None,
        internal_cost: float | None = None,
    ):
        if len(stops) != len(arrivals) or not stops:
            raise ValueError("stops and arrivals must be equal-length and non-empty")
        self.stops: tuple[Stop, ...] = tuple(stops)
        self.arrivals: list[float] = list(arrivals)
        self.children: list[TreeNode] = children if children is not None else []
        self.delta: float = float("inf")
        if internal_cost is None:
            internal_cost = arrivals[-1] - arrivals[0] if len(arrivals) > 1 else 0.0
        self.internal_cost = internal_cost

    # ------------------------------------------------------------------
    @property
    def first_vertex(self) -> int:
        """Vertex of the first stop in the group."""
        return self.stops[0].vertex

    @property
    def last_vertex(self) -> int:
        """Vertex of the last stop in the group (where continuations start)."""
        return self.stops[-1].vertex

    @property
    def last_arrival(self) -> float:
        """Stored arrival at the last stop of the group."""
        return self.arrivals[-1]

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_group(self) -> bool:
        """Whether this node is a hotspot group (more than one stop)."""
        return len(self.stops) > 1

    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator["TreeNode"]:
        """This node and all descendants, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def count_nodes(self) -> int:
        """Number of nodes in this subtree."""
        return sum(1 for _ in self.iter_nodes())

    def count_leaves(self) -> int:
        """Number of complete schedules below (or through) this node."""
        return sum(1 for node in self.iter_nodes() if node.is_leaf)

    def __repr__(self) -> str:
        label = "+".join(repr(s) for s in self.stops)
        return f"TreeNode({label}, children={len(self.children)})"
