"""The kinetic tree (Section IV-V of the paper).

A kinetic tree materializes *all* valid trip schedules of one vehicle as
a prefix tree rooted at the vehicle's current location. Handling a new
request is an incremental tree transformation instead of rescheduling
from scratch — the paper's core contribution.

Variants (all in :class:`~repro.core.kinetic.tree.KineticTree`):

* ``mode="basic"`` — exact insertion with per-node revalidation;
* ``mode="slack"`` — adds the min-max slack filter (Theorem 1) that
  rejects hopeless subtrees in O(1) before descending;
* ``hotspot_theta=θ`` — hotspot clustering (Section V): stops within θ
  of an existing tree node merge into that node's group instead of
  multiplying permutations, with the additive ``2(m+1)θ`` cost bound of
  Theorem 2.
"""

from repro.core.kinetic.node import TreeNode, stop_latest_arrival
from repro.core.kinetic.tree import KineticTree, KineticTrial, render_tree

__all__ = [
    "TreeNode",
    "KineticTree",
    "KineticTrial",
    "stop_latest_arrival",
    "render_tree",
]
