"""The kinetic tree of all valid trip schedules (Sections IV and V).

The tree's root tracks the vehicle's current location; every root-to-leaf
path is one complete valid schedule over the vehicle's active trips, and
the vehicle executes the cheapest one. A new request is handled by
*insertion*: every feasible interleaving of the new pickup/dropoff into
every materialized schedule is built copy-on-write (the paper's
``insertNodes``/``copyNodes``, Algorithm 1), producing a **trial** the
dispatcher can compare across vehicles and commit only on the winner
("Only the chosen tree needs to have its ∆ updated").

Exactness and the slack filter
------------------------------
Feasibility of every constructed node is re-checked *exactly* (waiting
time, service constraint relative to the pickup arrival on the same path,
seat capacity), so the tree never materializes an invalid schedule.

The ``mode="slack"`` fast filter (Theorem 1) additionally rejects a
subtree in O(1) when the arrival delay imposed on it exceeds its stored
aggregate ``∆ = min(own slack, max over children ∆)``. Slacks derive from
per-stop absolute latest-arrival times (LAT, see
:func:`~repro.core.kinetic.node.stop_latest_arrival`); for the dropoff of
a not-yet-picked-up trip the LAT is the *worst-case* bound
``pickup_deadline + (1+eps) d(s,e)``. This choice makes the filter safe:

* a pickup's slack and an already-picked-up dropoff's slack are exact;
* a pending dropoff's slack is an upper bound on any true tolerance
  (its pickup may still arrive later than assumed), and on any path its
  own pickup — whose slack *is* exact — also sits below the insertion
  edge whenever delaying the dropoff could matter without delaying the
  pickup equally.

Hence ``delay > ∆`` implies every schedule in the subtree is truly
broken (never over-prunes), while anything the filter admits wrongly is
caught by the exact per-node checks. Basic and slack modes therefore
return identical results — a property test enforces this.

Batched distance plane
----------------------
Every decision point fans its distance queries out through
``engine.distance_many`` — one call covering the new stop plus each
child's first vertex — and evaluates the waiting-time/service deadlines
and the ∆ slack filter as float64 array operations whose elementwise
expressions replicate the scalar checks bit-for-bit. Schedules, arrival
times and expansion counts are therefore identical to the scalar path;
only the number of engine round-trips shrinks (which is what lets the
Dijkstra engine answer a whole fan-out with one bounded sweep).

Hotspot clustering (``hotspot_theta``)
--------------------------------------
When inserting a stop that is within θ (network distance) of every stop
in an existing node's group, the stop *merges* into that group (visited
consecutively, insertion order) instead of spawning new permutations,
and alternative placements are shed (Section V: "a server may decide to
shed the load by only maintaining a subset of the schedules"). Theorem 2
bounds the optimality loss by ``2(m+1)θ`` for a group of ``m`` stops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Iterator, Sequence

import numpy as np

from repro.core.kinetic.node import TreeNode, stop_latest_arrival
from repro.core.request import TripRequest
from repro.core.stop import Stop, dropoff, pickup
from repro.exceptions import DisconnectedError, ScheduleError
from repro.roadnet.engine import fan_out_distances

#: Floating-point tolerance for constraint comparisons (seconds); matches
#: repro.core.schedule._EPS so the tree and the reference validator agree.
EPSILON = 1e-6

_MODES = ("basic", "slack")


@dataclass(frozen=True, slots=True)
class KineticTrial:
    """A tentative augmented tree for one (vehicle, request) pair.

    Holds everything needed to either discard the attempt (the common
    case — another vehicle won) or commit it in O(1) plus one ∆ sweep.
    """

    request: TripRequest | None
    decision_vertex: int
    decision_time: float
    children: list[TreeNode] = field(compare=False)
    best_cost: float = 0.0
    best_nodes: tuple[TreeNode, ...] = field(default=(), compare=False)
    expansions: int = 0


class KineticTree:
    """All valid schedules of one vehicle, maintained kinetically.

    Parameters
    ----------
    engine:
        Shortest-path engine (:class:`~repro.roadnet.engine.ShortestPathEngine`).
    start_vertex, start_time:
        Initial vehicle position ``(l, t)``.
    capacity:
        Seat capacity; ``None`` = unlimited (Fig. 9(c)).
    mode:
        ``"basic"`` or ``"slack"`` (min-max filtering, Theorem 1).
    hotspot_theta:
        Merge radius θ in seconds of travel (Section V), or ``None`` to
        disable hotspot clustering.
    eager_invalidation:
        When True, stale branches are pruned on every advance (the
        paper's *eager* option); otherwise pruning happens implicitly on
        the next insertion (*lazy*, the default).
    """

    def __init__(
        self,
        engine,
        start_vertex: int,
        start_time: float = 0.0,
        capacity: int | None = None,
        mode: str = "slack",
        hotspot_theta: float | None = None,
        eager_invalidation: bool = False,
        expansion_budget: int | None = None,
        schedule_cap: int | None = None,
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if hotspot_theta is not None and hotspot_theta < 0:
            raise ValueError("hotspot_theta must be non-negative")
        if expansion_budget is not None and expansion_budget < 1:
            raise ValueError("expansion_budget must be >= 1 or None")
        if schedule_cap is not None and schedule_cap < 1:
            raise ValueError("schedule_cap must be >= 1 or None")
        self.engine = engine
        #: Fan-outs at or below this size skip ``distance_many`` for a
        #: scalar loop — engines advertise where per-call batching
        #: overhead outweighs the amortization win (0 = always batch).
        self._scalar_cutoff = getattr(engine, "batch_cutoff", 0)
        self.capacity = capacity
        self.mode = mode
        self.hotspot_theta = hotspot_theta
        self.eager_invalidation = eager_invalidation
        self.expansion_budget = expansion_budget
        #: Section V generalization: "a server may decide to shed the
        #: load by only maintaining a subset of the schedules". When set,
        #: every successful insertion keeps only the ``schedule_cap``
        #: cheapest schedules (a beam over complete schedules). Bounded
        #: memory, approximate matching; the committed schedule is always
        #: among the kept ones.
        self.schedule_cap = schedule_cap

        self.root_vertex = start_vertex
        self.root_time = start_time
        self.children: list[TreeNode] = []
        #: request_id -> actual pickup time for riders in the vehicle.
        self.onboard: dict[int, float] = {}
        #: all accepted, unfinished requests by id (onboard + pending).
        self.active_requests: dict[int, TripRequest] = {}
        #: committed path: the node sequence the vehicle is executing.
        self.committed: list[TreeNode] = []
        self._expansions = 0

    @classmethod
    def from_problem(
        cls,
        engine,
        problem,
        mode: str = "slack",
        hotspot_theta: float | None = None,
    ) -> "KineticTree | None":
        """Materialize the full tree of all valid schedules for a
        :class:`~repro.core.problem.SchedulingProblem` snapshot (without
        its ``new_request``).

        Used by the one-shot algorithm adapter and by tests; the live
        simulator grows trees incrementally instead. Returns ``None``
        when the snapshot admits no valid schedule at all.
        """
        tree = cls(
            engine,
            problem.start_vertex,
            problem.start_time,
            capacity=problem.capacity,
            mode=mode,
            hotspot_theta=hotspot_theta,
        )
        tree.onboard = dict(problem.onboard_pickup_times)
        tree.active_requests = {r.request_id: r for r in problem.onboard}
        for request in problem.pending:
            tree.active_requests[request.request_id] = request

        stops: list[Stop] = [dropoff(r) for r in problem.onboard]
        for request in problem.pending:
            stops.append(pickup(request))
            stops.append(dropoff(request))
        if not stops:
            return tree
        children = tree._enumerate(
            stops,
            problem.start_vertex,
            problem.start_time,
            dict(tree.onboard),
            len(tree.onboard),
        )
        if children is None:
            return None
        completion, best_nodes = _best_leaf_path(children)
        tree.children = children
        tree.committed = list(best_nodes)
        tree._recompute_deltas()
        return tree

    def _enumerate(
        self,
        remaining: list[Stop],
        loc: int,
        time: float,
        pickup_arrivals: dict[int, float],
        load: int,
    ) -> list[TreeNode] | None:
        """All valid orderings of ``remaining`` as a prefix tree.

        The fan-out from this decision point is evaluated batched: one
        ``distance_many`` call covers every candidate next stop, and the
        waiting-time / service deadlines are screened as numpy array
        comparisons (bit-identical to the per-stop checks in
        :meth:`_admit`, which stays authoritative for capacity).
        """
        out: list[TreeNode] = []
        arrivals, rejected = self._fan_out(remaining, loc, time, pickup_arrivals)
        for index, stop in enumerate(remaining):
            if rejected[index]:
                continue
            arrival = float(arrivals[index])
            outcome = self._admit(stop, arrival, pickup_arrivals, load)
            if outcome is None:
                continue
            new_load, added = outcome
            rest = remaining[:index] + remaining[index + 1 :]
            if rest:
                sub = self._enumerate(
                    rest, stop.vertex, arrival, pickup_arrivals, new_load
                )
                if sub is not None:
                    out.append(TreeNode((stop,), (arrival,), sub))
            else:
                out.append(TreeNode((stop,), (arrival,)))
            if added:
                del pickup_arrivals[stop.request_id]
        return out or None

    def _fan_out(
        self,
        stops: Sequence[Stop],
        loc: int,
        time: float,
        pickup_arrivals: dict[int, float],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched arrival times and deadline screen for candidate stops.

        Returns ``(arrivals, rejected)``: arrival times from one
        ``distance_many`` fan-out, and a boolean mask of stops that are
        certainly inadmissible — a dropoff whose pickup is unplaced, or a
        deadline violation. The deadline comparisons are elementwise
        float64 replicas of :meth:`_admit`'s expressions, so the mask
        never disagrees with the exact check it short-circuits.
        """
        k = len(stops)
        arrivals = np.full(k, inf, dtype=np.float64)
        baseline = np.zeros(k, dtype=np.float64)
        bound = np.zeros(k, dtype=np.float64)
        rejected = np.zeros(k, dtype=bool)
        eligible: list[int] = []
        vertices: list[int] = []
        for i, stop in enumerate(stops):
            if stop.is_pickup:
                # _admit: arrival > pickup_deadline + EPSILON
                bound[i] = stop.request.pickup_deadline + EPSILON
            else:
                picked = pickup_arrivals.get(stop.request_id)
                if picked is None:
                    # Unplaced pickup: inadmissible before any distance is
                    # spent on it (the scalar path never queried these).
                    rejected[i] = True
                    continue
                # _admit: arrival - picked > max_ride_cost + EPSILON
                baseline[i] = picked
                bound[i] = stop.request.max_ride_cost + EPSILON
            eligible.append(i)
            vertices.append(stop.vertex)
        if vertices:
            dists = fan_out_distances(self.engine, loc, vertices)
            arrivals[eligible] = time + np.asarray(dists, dtype=np.float64)
        rejected |= (arrivals - baseline) > bound
        return arrivals, rejected

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_active_trips(self) -> int:
        """Trips accepted but not completed."""
        return len(self.active_requests)

    @property
    def load(self) -> int:
        """Riders currently in the vehicle."""
        return len(self.onboard)

    def size(self) -> int:
        """Total node count (the paper's memory-cost measure)."""
        return sum(child.count_nodes() for child in self.children)

    def num_schedules(self) -> int:
        """Number of materialized valid schedules (leaves)."""
        return sum(child.count_leaves() for child in self.children)

    def all_schedules(self) -> Iterator[tuple[tuple[Stop, ...], tuple[float, ...]]]:
        """Yield ``(stops, arrivals)`` for every materialized schedule."""

        def walk(node: TreeNode, stops: list[Stop], arrivals: list[float]):
            stops = stops + list(node.stops)
            arrivals = arrivals + list(node.arrivals)
            if node.is_leaf:
                yield tuple(stops), tuple(arrivals)
            for child in node.children:
                yield from walk(child, stops, arrivals)

        for child in self.children:
            yield from walk(child, [], [])

    def best_schedule(self) -> tuple[float, tuple[Stop, ...]] | None:
        """Cost and stop sequence of the committed schedule, or ``None``
        when the vehicle has no commitments."""
        if not self.committed:
            return None
        stops: list[Stop] = []
        for node in self.committed:
            stops.extend(node.stops)
        cost = self.committed[-1].last_arrival - self.root_time
        return cost, tuple(stops)

    # ------------------------------------------------------------------
    # Insertion (Algorithm 1)
    # ------------------------------------------------------------------
    def try_insert(
        self, request: TripRequest, decision_vertex: int, decision_time: float
    ) -> KineticTrial | None:
        """Build the augmented tree for ``request`` from the given
        decision point, without modifying this tree.

        Returns ``None`` when no valid augmented schedule exists (the
        vehicle cannot serve the request).
        """
        if request.request_id in self.active_requests:
            raise ScheduleError(f"request {request.request_id} already assigned")
        self._expansions = 0
        remaining = (pickup(request), dropoff(request))
        pickup_arrivals = dict(self.onboard)
        children = self._build(
            self.children,
            decision_vertex,
            decision_time,
            pickup_arrivals,
            len(self.onboard),
            remaining,
        )
        if children is None:
            return None
        if self.schedule_cap is not None:
            children = _keep_best_schedules(children, self.schedule_cap)
        completion, best_nodes = _best_leaf_path(children)
        return KineticTrial(
            request=request,
            decision_vertex=decision_vertex,
            decision_time=decision_time,
            children=children,
            best_cost=completion - decision_time,
            best_nodes=tuple(best_nodes),
            expansions=self._expansions,
        )

    def reroot(self, decision_vertex: int, decision_time: float) -> KineticTrial | None:
        """Rebuild the tree from a new decision point without a new
        request (used by eager invalidation and by tests). Returns a
        trial whose commit moves the root."""
        self._expansions = 0
        if not self.children:
            return KineticTrial(
                request=None,
                decision_vertex=decision_vertex,
                decision_time=decision_time,
                children=[],
            )
        children = self._build(
            self.children,
            decision_vertex,
            decision_time,
            dict(self.onboard),
            len(self.onboard),
            (),
        )
        if children is None:
            return None
        completion, best_nodes = _best_leaf_path(children)
        return KineticTrial(
            request=None,
            decision_vertex=decision_vertex,
            decision_time=decision_time,
            children=children,
            best_cost=completion - decision_time,
            best_nodes=tuple(best_nodes),
            expansions=self._expansions,
        )

    def commit(self, trial: KineticTrial) -> None:
        """Adopt a trial produced by :meth:`try_insert` / :meth:`reroot`."""
        if trial.request is not None:
            self.active_requests[trial.request.request_id] = trial.request
        self.root_vertex = trial.decision_vertex
        self.root_time = trial.decision_time
        self.children = trial.children
        self.committed = list(trial.best_nodes)
        self._recompute_deltas()

    # ------------------------------------------------------------------
    # Movement (Lemma 1)
    # ------------------------------------------------------------------
    def advance(self) -> TreeNode:
        """The vehicle reached the next committed node: move the root
        there, apply pickups/dropoffs, and prune every schedule not
        sharing the executed prefix (Lemma 1)."""
        if not self.committed:
            raise ScheduleError("no committed schedule to advance along")
        node = self.committed.pop(0)
        if node not in self.children:
            raise ScheduleError("committed node is not a child of the root")
        for stop, arrival in zip(node.stops, node.arrivals):
            rid = stop.request_id
            if stop.is_pickup:
                self.onboard[rid] = arrival
            else:
                self.onboard.pop(rid, None)
                self.active_requests.pop(rid, None)
        self.root_vertex = node.last_vertex
        self.root_time = node.last_arrival
        self.children = node.children
        if self.eager_invalidation:
            self.prune_stale(self.root_vertex, self.root_time)
        return node

    def prune_stale(self, vertex: int, time: float) -> int:
        """Eagerly drop branches invalidated by vehicle movement,
        refreshing stored arrivals and ∆ along the way. Returns the
        number of subtrees removed."""
        removed = self._prune_in_place(
            self.children, vertex, time, dict(self.onboard), len(self.onboard)
        )
        if removed:
            self._recompute_deltas()
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build(
        self,
        old_children: Sequence[TreeNode],
        loc: int,
        time: float,
        pickup_arrivals: dict[int, float],
        load: int,
        remaining: tuple[Stop, ...],
    ) -> list[TreeNode] | None:
        """All valid continuations from prefix-end ``(loc, time)``.

        ``old_children`` are the existing subtree options;
        ``remaining`` the new request's stops still to place, in order.
        Returns fresh nodes (copy-on-write), or ``None`` when no valid
        completion exists.
        """
        if (
            self.expansion_budget is not None
            and self._expansions > self.expansion_budget
        ):
            from repro.exceptions import TreeBudgetExceeded

            raise TreeBudgetExceeded(
                f"insertion exceeded {self.expansion_budget} node expansions"
            )
        # Futility cutoff (Lemma 2 generalized): time only grows below, so
        # if the next new stop's latest arrival has passed, stop here.
        if remaining:
            nxt = remaining[0]
            if nxt.is_pickup:
                if time > nxt.request.pickup_deadline + EPSILON:
                    return None
            else:
                picked = pickup_arrivals.get(nxt.request_id)
                if (
                    picked is not None
                    and time > picked + nxt.request.max_ride_cost + EPSILON
                ):
                    return None

        out: list[TreeNode] = []

        if remaining and self.hotspot_theta is not None:
            for child in old_children:
                merged = self._try_merge(
                    child, loc, time, pickup_arrivals, load, remaining
                )
                if merged is not None:
                    # Shed load (Section V): the merged placement stands in
                    # for all near-duplicate permutations at this level.
                    return [merged]

        # Wide fan-outs go through one batched distance_many call covering
        # every distance this decision point needs — the new stop (option
        # A) plus each child's first vertex (option B's first leg,
        # doubling as the slack-filter input) — with the ∆ slack filter
        # (Theorem 1(b)) evaluated as one float64 array comparison whose
        # elementwise expression replicates the scalar filter in
        # _advance_old. Narrow fan-outs (at or below the engine's
        # batch_cutoff) keep the original lazy scalar path: there the
        # per-call batching overhead costs more than it amortizes, and
        # both paths produce bit-identical values anyway.
        offset = 1 if remaining else 0
        if offset + len(old_children) > self._scalar_cutoff:
            targets = [remaining[0].vertex] if remaining else []
            targets.extend(child.first_vertex for child in old_children)
            legs = self.engine.distance_many(loc, targets)

            if remaining:
                placed = self._place_new(
                    old_children,
                    loc,
                    time,
                    pickup_arrivals,
                    load,
                    remaining,
                    float(legs[0]),
                )
                if placed is not None:
                    out.append(placed)

            slack_rejected = None
            if self.mode == "slack" and old_children:
                n = len(old_children)
                internal = np.fromiter(
                    (c.internal_cost for c in old_children), np.float64, count=n
                )
                last = np.fromiter(
                    (c.last_arrival for c in old_children), np.float64, count=n
                )
                delta = np.fromiter(
                    (c.delta for c in old_children), np.float64, count=n
                )
                new_last = time + legs[offset:] + internal
                slack_rejected = (new_last - last) > (delta + EPSILON)

            for i, child in enumerate(old_children):
                advanced = self._advance_old(
                    child,
                    loc,
                    time,
                    pickup_arrivals,
                    load,
                    remaining,
                    float(legs[offset + i]),
                    bool(slack_rejected[i]) if slack_rejected is not None else None,
                )
                if advanced is not None:
                    out.append(advanced)
            return out or None

        if remaining:
            placed = self._place_new(
                old_children, loc, time, pickup_arrivals, load, remaining
            )
            if placed is not None:
                out.append(placed)

        for child in old_children:
            advanced = self._advance_old(
                child, loc, time, pickup_arrivals, load, remaining
            )
            if advanced is not None:
                out.append(advanced)

        return out or None

    def _place_new(
        self,
        old_children: Sequence[TreeNode],
        loc: int,
        time: float,
        pickup_arrivals: dict[int, float],
        load: int,
        remaining: tuple[Stop, ...],
        first_leg: float | None = None,
    ) -> TreeNode | None:
        """Option A: visit the next new stop right now.

        ``first_leg`` is ``d(loc, remaining[0].vertex)`` when the caller
        already fetched it in its batched fan-out.
        """
        self._expansions += 1
        stop = remaining[0]
        rest = remaining[1:]
        if first_leg is None:
            try:
                first_leg = self.engine.distance(loc, stop.vertex)
            except DisconnectedError:
                return None  # matches the batched path's inf -> reject
        arrival = time + first_leg
        outcome = self._admit(stop, arrival, pickup_arrivals, load)
        if outcome is None:
            return None
        new_load, added = outcome
        try:
            if not old_children and not rest:
                return TreeNode((stop,), (arrival,))
            sub = self._build(
                old_children, stop.vertex, arrival, pickup_arrivals, new_load, rest
            )
            if sub is None:
                return None
            return TreeNode((stop,), (arrival,), sub)
        finally:
            if added:
                del pickup_arrivals[stop.request_id]

    def _advance_old(
        self,
        child: TreeNode,
        loc: int,
        time: float,
        pickup_arrivals: dict[int, float],
        load: int,
        remaining: tuple[Stop, ...],
        first_leg: float | None = None,
        slack_rejected: bool | None = None,
    ) -> TreeNode | None:
        """Option B: continue with an existing child node.

        ``first_leg`` is ``d(loc, child.first_vertex)`` from the caller's
        batched fan-out; ``slack_rejected`` is the vectorized Theorem 1(b)
        verdict for this child (``None`` = evaluate here). The expansion
        is counted before the slack filter fires, matching the scalar
        path's accounting.
        """
        self._expansions += 1
        if slack_rejected is None and self.mode == "slack":
            # Theorem 1(b): O(1) rejection when the delay pushed onto the
            # subtree exceeds its most lenient route's slack.
            if first_leg is None:
                try:
                    first_leg = self.engine.distance(loc, child.first_vertex)
                except DisconnectedError:
                    return None  # matches the batched path's inf -> reject
            new_last = time + first_leg + child.internal_cost
            if new_last - child.last_arrival > child.delta + EPSILON:
                return None
        elif slack_rejected:
            return None
        walked = self._walk_group(
            child.stops, loc, time, pickup_arrivals, load, first_leg=first_leg
        )
        if walked is None:
            return None
        arrivals, new_load, added = walked
        try:
            last_vertex = child.last_vertex
            last_time = arrivals[-1]
            if child.is_leaf and not remaining:
                return TreeNode(child.stops, arrivals, internal_cost=child.internal_cost)
            sub = self._build(
                child.children, last_vertex, last_time, pickup_arrivals, new_load, remaining
            )
            if sub is None:
                return None
            return TreeNode(child.stops, arrivals, sub, internal_cost=child.internal_cost)
        finally:
            for rid in added:
                del pickup_arrivals[rid]

    def _try_merge(
        self,
        child: TreeNode,
        loc: int,
        time: float,
        pickup_arrivals: dict[int, float],
        load: int,
        remaining: tuple[Stop, ...],
    ) -> TreeNode | None:
        """Hotspot merge: absorb the next new stop into ``child``'s group
        when it lies within θ of every stop already in the group.

        The θ screen runs as one batched fan-out from the new stop to the
        whole group (the network is undirected, so ``d(stop, existing)``
        is ``d(existing, stop)``) and one vectorized comparison.
        """
        stop = remaining[0]
        theta = self.hotspot_theta
        spans = fan_out_distances(
            self.engine, stop.vertex, [existing.vertex for existing in child.stops]
        )
        if any(span > theta for span in spans):
            return None
        self._expansions += 1
        stops = child.stops + (stop,)
        walked = self._walk_group(stops, loc, time, pickup_arrivals, load)
        if walked is None:
            return None
        arrivals, new_load, added = walked
        try:
            rest = remaining[1:]
            if child.is_leaf and not rest:
                return TreeNode(stops, arrivals)
            sub = self._build(
                child.children, stop.vertex, arrivals[-1], pickup_arrivals, new_load, rest
            )
            if sub is None:
                return None
            return TreeNode(stops, arrivals, sub)
        finally:
            for rid in added:
                del pickup_arrivals[rid]

    def _walk_group(
        self,
        stops: tuple[Stop, ...],
        loc: int,
        time: float,
        pickup_arrivals: dict[int, float],
        load: int,
        first_leg: float | None = None,
    ) -> tuple[list[float], int, list[int]] | None:
        """Visit a node's stops consecutively, validating each exactly.

        ``first_leg`` is ``d(loc, stops[0].vertex)`` when the caller
        already fetched it batched. On success returns ``(arrivals, load
        after, pickups added)`` with ``pickup_arrivals`` updated (caller
        must undo the additions on backtrack); on any violation undoes
        its own additions and returns ``None``.
        """
        arrivals: list[float] = []
        added: list[int] = []
        t = time
        prev = loc
        pending_leg = first_leg
        for stop in stops:
            if pending_leg is not None:
                t += pending_leg
                pending_leg = None
            else:
                try:
                    t += self.engine.distance(prev, stop.vertex)
                except DisconnectedError:
                    # Same outcome as a batched inf leg: the group is
                    # unreachable, hence invalid.
                    for rid in added:
                        del pickup_arrivals[rid]
                    return None
            prev = stop.vertex
            outcome = self._admit(stop, t, pickup_arrivals, load)
            if outcome is None:
                for rid in added:
                    del pickup_arrivals[rid]
                return None
            load, did_add = outcome
            if did_add:
                added.append(stop.request_id)
            arrivals.append(t)
        return arrivals, load, added

    def _admit(
        self,
        stop: Stop,
        arrival: float,
        pickup_arrivals: dict[int, float],
        load: int,
    ) -> tuple[int, bool] | None:
        """Exact single-stop feasibility: waiting time, service constraint
        and capacity. Returns ``(new load, pickup recorded?)`` or ``None``."""
        request = stop.request
        if stop.is_pickup:
            if arrival > request.pickup_deadline + EPSILON:
                return None
            if self.capacity is not None and load + 1 > self.capacity:
                return None
            pickup_arrivals[request.request_id] = arrival
            return load + 1, True
        picked = pickup_arrivals.get(request.request_id)
        if picked is None:
            return None
        if arrival - picked > request.max_ride_cost + EPSILON:
            return None
        return load - 1, False

    def _prune_in_place(
        self,
        children: list[TreeNode],
        loc: int,
        time: float,
        pickup_arrivals: dict[int, float],
        load: int,
    ) -> int:
        """Eager invalidation: refresh arrivals from the live position,
        drop violated subtrees, and refresh ∆ post-order. First legs to
        every child are fetched in one batched fan-out."""
        removed = 0
        keep: list[TreeNode] = []
        legs = (
            fan_out_distances(self.engine, loc, [c.first_vertex for c in children])
            if children
            else None
        )
        for i, child in enumerate(children):
            walked = self._walk_group(
                child.stops,
                loc,
                time,
                pickup_arrivals,
                load,
                first_leg=float(legs[i]),
            )
            if walked is None:
                removed += child.count_nodes()
                continue
            arrivals, new_load, added = walked
            was_leaf = child.is_leaf
            removed += self._prune_in_place(
                child.children, child.last_vertex, arrivals[-1], pickup_arrivals, new_load
            )
            for rid in added:
                del pickup_arrivals[rid]
            if not was_leaf and not child.children:
                # Every completion below died -> this prefix carries no
                # schedule anymore.
                removed += 1
                continue
            child.arrivals = arrivals
            keep.append(child)
        children[:] = keep
        return removed

    # ------------------------------------------------------------------
    # ∆ maintenance
    # ------------------------------------------------------------------
    def _recompute_deltas(self) -> None:
        """One post-order sweep refreshing ∆ on the committed tree."""
        self._refresh_deltas(self.children)

    def _refresh_deltas(self, children: Sequence[TreeNode]) -> None:
        for child in children:
            self._delta_of(child)

    def _delta_of(self, node: TreeNode) -> float:
        own = min(
            stop_latest_arrival(stop, self.onboard) - arrival
            for stop, arrival in zip(node.stops, node.arrivals)
        )
        if node.children:
            best_child = max(self._delta_of(c) for c in node.children)
            node.delta = min(own, best_child)
        else:
            node.delta = own
        return node.delta

    # ------------------------------------------------------------------
    # Debug / test support
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert every materialized schedule is valid per the reference
        validator (:func:`repro.core.schedule.evaluate_schedule`). Raises
        :class:`ScheduleError` on any violation. Test/debug helper."""
        from repro.core.schedule import evaluate_schedule

        for stops, arrivals in self.all_schedules():
            evaluation = evaluate_schedule(
                self.engine,
                self.root_vertex,
                self.root_time,
                stops,
                dict(self.onboard),
                capacity=self.capacity,
                initial_load=len(self.onboard),
            )
            if evaluation is None:
                raise ScheduleError(f"invalid schedule materialized: {stops}")
            for stored, recomputed in zip(arrivals, evaluation.arrivals):
                if abs(stored - recomputed) > 1e-5:
                    raise ScheduleError(
                        f"stored arrival {stored} != recomputed {recomputed} "
                        f"in {stops}"
                    )

    def __repr__(self) -> str:
        return (
            f"KineticTree(vertex={self.root_vertex}, t={self.root_time:.0f}, "
            f"trips={self.num_active_trips}, nodes={self.size()}, "
            f"schedules={self.num_schedules()}, mode={self.mode!r})"
        )


def _keep_best_schedules(
    children: list[TreeNode], cap: int
) -> list[TreeNode]:
    """Prune the forest to the ``cap`` cheapest complete schedules.

    Collects every leaf's completion time, marks the node-paths of the
    ``cap`` best, and drops all branches not on a kept path. Node objects
    are reused (they are freshly built by the caller).
    """
    leaves: list[tuple[float, tuple[TreeNode, ...]]] = []

    def collect(node: TreeNode, path: tuple[TreeNode, ...]) -> None:
        path = path + (node,)
        if node.is_leaf:
            leaves.append((node.last_arrival, path))
            return
        for child in node.children:
            collect(child, path)

    for child in children:
        collect(child, ())
    if len(leaves) <= cap:
        return children
    leaves.sort(key=lambda item: item[0])
    keep: set[int] = set()
    for _, path in leaves[:cap]:
        for node in path:
            keep.add(id(node))

    def rebuild(nodes: list[TreeNode]) -> list[TreeNode]:
        kept = [n for n in nodes if id(n) in keep]
        for node in kept:
            node.children = rebuild(node.children)
        return kept

    return rebuild(children)


def render_tree(tree: "KineticTree") -> str:
    """Human-readable dump of a kinetic tree (debugging aid).

    One line per node: stops, stored arrivals, and ∆; committed-path
    nodes are marked with ``*`` (the paper's "darkened path").
    """
    committed = {id(node) for node in tree.committed}
    lines = [
        f"root @v{tree.root_vertex} t={tree.root_time:.1f} "
        f"(trips={tree.num_active_trips}, onboard={sorted(tree.onboard)})"
    ]

    def walk(node: TreeNode, depth: int) -> None:
        marker = "*" if id(node) in committed else " "
        stops = "+".join(repr(s) for s in node.stops)
        arrivals = ",".join(f"{a:.0f}" for a in node.arrivals)
        delta = "inf" if node.delta == float("inf") else f"{node.delta:.0f}"
        lines.append(f"{'  ' * depth}{marker} {stops} t=[{arrivals}] Δ={delta}")
        for child in node.children:
            walk(child, depth + 1)

    for child in tree.children:
        walk(child, 1)
    return "\n".join(lines)


def _best_leaf_path(children: Sequence[TreeNode]) -> tuple[float, list[TreeNode]]:
    """Minimum completion time over all leaves, with its node path."""
    best_time = float("inf")
    best_path: list[TreeNode] = []
    for child in children:
        if child.is_leaf:
            t, path = child.last_arrival, [child]
        else:
            t, sub = _best_leaf_path(child.children)
            path = [child] + sub
        if t < best_time:
            best_time, best_path = t, path
    return best_time, best_path
