"""Schedule stops: the pickup and dropoff points of trip requests."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.request import TripRequest


class StopKind(enum.Enum):
    """Whether a stop picks a rider up or drops them off."""

    PICKUP = "pickup"
    DROPOFF = "dropoff"


@dataclass(frozen=True, slots=True)
class Stop:
    """One scheduled visit: the pickup (``s_i``) or dropoff (``e_i``) of a
    trip request. Identity is ``(request_id, kind)`` so stops can be used
    in sets and as dict keys regardless of request object identity."""

    request: TripRequest = field(compare=False)
    kind: StopKind = field(compare=False)
    key: tuple[int, StopKind] = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "key", (self.request.request_id, self.kind))

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Stop):
            return NotImplemented
        return self.key == other.key

    @property
    def vertex(self) -> int:
        """The road-network vertex this stop visits."""
        if self.kind is StopKind.PICKUP:
            return self.request.origin
        return self.request.destination

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def is_pickup(self) -> bool:
        return self.kind is StopKind.PICKUP

    @property
    def is_dropoff(self) -> bool:
        return self.kind is StopKind.DROPOFF

    def __repr__(self) -> str:
        tag = "P" if self.is_pickup else "D"
        return f"{tag}{self.request.request_id}@{self.vertex}"


def pickup(request: TripRequest) -> Stop:
    """The pickup stop of ``request``."""
    return Stop(request, StopKind.PICKUP)


def dropoff(request: TripRequest) -> Stop:
    """The dropoff stop of ``request``."""
    return Stop(request, StopKind.DROPOFF)
