"""The single-vehicle rescheduling problem all matchers solve.

When request ``tr_{m+1}`` arrives, a vehicle must reschedule
``N = {x_{i+1}, ..., x_{3m}, r_{m+1}, s_{m+1}, e_{m+1}}`` — the dropoffs
of onboard passengers, both stops of accepted-but-not-picked-up trips,
and both stops of the new request — starting from its current location
(Section II of the paper). :class:`SchedulingProblem` captures exactly
that state; each algorithm in :mod:`repro.algorithms` maps a problem to
the minimum-cost valid augmented schedule (or ``None``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.request import TripRequest
from repro.core.schedule import ScheduleEvaluation, evaluate_schedule
from repro.core.stop import Stop, dropoff, pickup


@dataclass(frozen=True, slots=True)
class SchedulingProblem:
    """State of one vehicle at a scheduling decision point.

    Attributes
    ----------
    start_vertex, start_time:
        The vehicle's decision point ``(l, t)`` — for a moving vehicle,
        the next vertex it will reach and the time it reaches it.
    onboard:
        ``request -> actual pickup time`` for riders in the vehicle.
    pending:
        Accepted trips whose riders are not yet picked up.
    new_request:
        The incoming trip to insert, or ``None`` to (re)schedule only the
        existing commitments.
    capacity:
        Seat capacity; ``None`` means unlimited.
    """

    start_vertex: int
    start_time: float
    onboard: Mapping[TripRequest, float]
    pending: tuple[TripRequest, ...]
    new_request: TripRequest | None
    capacity: int | None

    @property
    def onboard_pickup_times(self) -> dict[int, float]:
        """``request_id -> pickup time`` map for schedule evaluation."""
        return {r.request_id: t for r, t in self.onboard.items()}

    @property
    def stops_to_schedule(self) -> tuple[Stop, ...]:
        """Every stop the augmented schedule must visit."""
        stops: list[Stop] = [dropoff(r) for r in self.onboard]
        for request in self.pending:
            stops.append(pickup(request))
            stops.append(dropoff(request))
        if self.new_request is not None:
            stops.append(pickup(self.new_request))
            stops.append(dropoff(self.new_request))
        return tuple(stops)

    @property
    def num_active_trips(self) -> int:
        """Active trips excluding the new request (the paper's "current
        request size" used to bucket ART)."""
        return len(self.onboard) + len(self.pending)

    def evaluate(self, engine, stops) -> ScheduleEvaluation | None:
        """Exact validity/cost evaluation of a candidate stop order."""
        return evaluate_schedule(
            engine,
            self.start_vertex,
            self.start_time,
            stops,
            self.onboard_pickup_times,
            capacity=self.capacity,
            initial_load=len(self.onboard),
        )


@dataclass(frozen=True, slots=True)
class ScheduleResult:
    """A matcher's answer: the best augmented schedule found.

    ``cost`` is the paper's objective — the total on-road cost of the new
    unfinished schedule. ``expansions`` counts search-tree node expansions
    (permutations tried, B&B nodes popped, MIP simplex-free equivalent) so
    tests and benches can compare search effort across algorithms.
    """

    stops: tuple[Stop, ...]
    arrivals: tuple[float, ...]
    cost: float
    expansions: int = 0
    metadata: dict = field(default_factory=dict, compare=False)

    @property
    def is_empty(self) -> bool:
        return not self.stops
