"""Vehicle kinematics.

A vehicle (the paper's *server*) is always either **busy** — following
the shortest-path route of its committed schedule — or **idle**, cruising
the road network ("follows the current road segment (at intersections,
the next segment to follow is chosen randomly)", Section VI).

Movement is represented as timestamped vertex waypoints. Idle cruising is
materialized lazily: waypoints are appended only when some component asks
where the vehicle is, so idle vehicles cost nothing between requests.

Matching happens at vertices: a vehicle mid-edge cannot reroute before
the next intersection, so its *decision point* is the next waypoint at or
after the request time — the ``(l, t)`` every scheduling algorithm
starts from.
"""

from __future__ import annotations

import random

from repro.exceptions import SimulationError

#: Compact the waypoint history once this many entries have been passed.
_COMPACT_THRESHOLD = 512


class Vehicle:
    """Kinematic state of one server."""

    __slots__ = (
        "vehicle_id",
        "capacity",
        "waypoints",
        "_index",
        "busy",
        "plan_version",
        "_rng",
        "_prev_vertex",
    )

    def __init__(
        self,
        vehicle_id: int,
        start_vertex: int,
        start_time: float = 0.0,
        capacity: int | None = 4,
        seed: int | None = None,
    ):
        self.vehicle_id = vehicle_id
        self.capacity = capacity
        self.waypoints: list[tuple[float, int]] = [(start_time, start_vertex)]
        self._index = 0
        self.busy = False
        #: Monotone counter invalidating in-flight stop events on re-plan.
        self.plan_version = 0
        self._rng = random.Random(vehicle_id * 2654435761 if seed is None else seed)
        self._prev_vertex: int | None = None

    # ------------------------------------------------------------------
    # Route management
    # ------------------------------------------------------------------
    def set_route(self, waypoints: list[tuple[float, int]]) -> None:
        """Commit a new driving plan (timestamped vertices, increasing)."""
        if not waypoints:
            raise SimulationError("a route needs at least one waypoint")
        for (t1, _), (t2, _) in zip(waypoints, waypoints[1:]):
            if t2 < t1:
                raise SimulationError("route waypoints must be time-ordered")
        self.waypoints = list(waypoints)
        self._index = 0
        self.busy = True
        self.plan_version += 1

    def set_idle(self, vertex: int, time: float) -> None:
        """Enter cruise mode from the given position."""
        self.waypoints = [(time, vertex)]
        self._index = 0
        self.busy = False
        self._prev_vertex = None
        self.plan_version += 1

    # ------------------------------------------------------------------
    # Position queries
    # ------------------------------------------------------------------
    def decision_point(self, now: float, graph) -> tuple[int, float]:
        """The next vertex the vehicle can re-plan from at/after ``now``:
        ``(vertex, arrival time)``. For idle vehicles, extends the random
        cruise lazily."""
        if not self.busy:
            self._extend_cruise(now, graph)
        self._advance(now)
        return self._decision_at(self._index, now)

    def peek_decision_point(self, now: float, graph) -> tuple[int, float]:
        """:meth:`decision_point` without advancing the waypoint cursor.

        For resolving a decision point at a *future* simulated time (the
        async quote stage quotes for the upcoming commit instant while
        the simulation clock is still inside the overlap window):
        ``_advance`` is forward-only and compacts passed waypoints, so
        the plain ``decision_point`` would leave the cursor past every
        position query issued between now and that future time. Idle
        cruise is still extended (append-only and deterministic — it
        never perturbs earlier positions).
        """
        if not self.busy:
            self._extend_cruise(now, graph)
        return self._decision_at(self._scan_index(now), now)

    def _decision_at(self, index: int, now: float) -> tuple[int, float]:
        """Decision point at a cursor position: the waypoint itself, or
        — past the final waypoint (busy vehicle that finished its leg,
        or exactly-at-vertex) — waiting at that vertex until ``now``."""
        time, vertex = self.waypoints[index]
        if time < now:
            return vertex, now
        return vertex, time

    def position_at(self, now: float, graph) -> tuple[float, float]:
        """Approximate planar coordinates at ``now`` (for the grid index).

        Interpolates linearly between the waypoints bracketing ``now``;
        coordinates are exact at vertices, approximate mid-edge — the
        index only needs a conservative location.
        """
        if graph.coords is None:
            raise SimulationError("position_at requires graph coordinates")
        if not self.busy:
            self._extend_cruise(now, graph)
        self._advance(now)
        t_next, v_next = self.waypoints[self._index]
        if t_next <= now or self._index == 0:
            x, y = graph.coords[v_next]
            return float(x), float(y)
        t_prev, v_prev = self.waypoints[self._index - 1]
        span = t_next - t_prev
        frac = 0.0 if span <= 0 else (now - t_prev) / span
        x0, y0 = graph.coords[v_prev]
        x1, y1 = graph.coords[v_next]
        return float(x0 + frac * (x1 - x0)), float(y0 + frac * (y1 - y0))

    def current_vertex(self, now: float, graph) -> int:
        """The last vertex passed at or before ``now``."""
        if not self.busy:
            self._extend_cruise(now, graph)
        self._advance(now)
        time, vertex = self.waypoints[self._index]
        if time > now and self._index > 0:
            return self.waypoints[self._index - 1][1]
        return vertex

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _scan_index(self, now: float) -> int:
        """Cursor position of the first waypoint at/after ``now``
        (scanning forward from the current cursor; no mutation)."""
        waypoints = self.waypoints
        index = self._index
        last = len(waypoints) - 1
        while index < last and waypoints[index][0] < now:
            index += 1
        return index

    def _advance(self, now: float) -> None:
        """Move the waypoint cursor to the first waypoint at/after ``now``."""
        index = self._scan_index(now)
        self._index = index
        if index > _COMPACT_THRESHOLD:
            del self.waypoints[: index - 1]
            self._index = 1

    def _extend_cruise(self, until: float, graph) -> None:
        """Append random-walk waypoints until coverage of ``until``.

        Follows the paper's idle behavior: keep driving, choosing the
        next road segment uniformly at random at each intersection
        (avoiding an immediate U-turn where possible).
        """
        time, vertex = self.waypoints[-1]
        while time < until:
            neighbors = graph.neighbors(vertex)
            if len(neighbors) == 0:
                # Isolated vertex: park.
                self.waypoints.append((until, vertex))
                return
            weights = graph.neighbor_weights(vertex)
            choices = [
                pos
                for pos in range(len(neighbors))
                if int(neighbors[pos]) != self._prev_vertex
            ] or list(range(len(neighbors)))
            pos = choices[self._rng.randrange(len(choices))]
            self._prev_vertex = vertex
            vertex = int(neighbors[pos])
            time += float(weights[pos])
            self.waypoints.append((time, vertex))

    def __repr__(self) -> str:
        state = "busy" if self.busy else "idle"
        return f"Vehicle(id={self.vehicle_id}, {state})"
