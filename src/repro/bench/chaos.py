"""Chaos benchmark (``BENCH_chaos.json``): service under injected faults.

Runs one workload through the hardened flush pipeline at increasing
mixed-fault intensities — quote-task crashes and delays, shard-solve
crashes, worker-pool deaths — on the thread and process shard backends,
plus a serial determinism pair at the headline intensity. The document
the numbers make: the degradation ladder (retry → fault-carry → serial
shard rescue → one-flush greedy downgrade) turns faults into bounded
service-rate loss instead of crashes or lost requests.

Per cell the document records service rate, assignment-latency p50/p99,
the full fault-tolerance counter block (injections, retries, pool
recreations, failed quote columns, serial shard rescues, degraded
flushes, fault-rescued carries) and an ``accounting_ok`` bit — every
request assigned or rejected, none silently lost. ``benchmarks/
test_chaos.py`` gates the headline claims: the 5%-fault service rate
stays within 10% of fault-free on both backends, accounting holds in
every cell, and the serial 5% cell reruns bit-identically
(determinism contract 10).

Run from the shell::

    PYTHONPATH=src python -m repro.bench.chaos            # full run
    PYTHONPATH=src python -m repro.bench.chaos --fast     # CI smoke
    PYTHONPATH=src python -m repro.bench.chaos --out path/to.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.trend import attach_series
from repro.roadnet.engine import make_engine
from repro.roadnet.generators import grid_city
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload

#: Default output file name, written to the current working directory
#: (the repo root under both the CI smoke step and the benchmark suite).
DEFAULT_OUT = "BENCH_chaos.json"

#: Fault intensities benchmarked, as the per-opportunity crash rate.
FAULT_RATES = (0.0, 0.01, 0.05, 0.10)

#: The intensity the service-rate gate is applied at.
GATE_RATE = 0.05


def mixed_fault_spec(rate: float, deadline_s: float = 2.0) -> str | None:
    """The benchmark's mixed fault plan at crash intensity ``rate``.

    Crashes at ``rate`` on the quote and shard sites, virtual delays at
    half that rate, and pool deaths at a fifth of it — pool death is the
    most expensive fault (a whole executor is torn down), so real
    deployments see proportionally fewer of them. One deterministic
    one-shot delay just over the flush deadline rides along so every
    faulted cell exercises (and demonstrates recovery from) the greedy
    downgrade rung of the ladder — at realistic rates the retry rung
    absorbs everything before a deadline would trip on its own.
    """
    if rate <= 0.0:
        return None
    return (
        # First in the plan: earlier clauses win ties, and a rate clause
        # firing at the same opportunity would otherwise shadow (and
        # consume) the one-shot.
        f"quote.task:delay:@3:{deadline_s * 1.25:g},"
        f"quote.task:crash:{rate:g},"
        f"quote.task:delay:{rate / 2:g}:0.25,"
        f"shard.solve:crash:{rate:g},"
        f"pool.submit:pool_death:{rate / 5:g}"
    )


def _deterministic_state(report) -> dict:
    """Everything a run produces except wall-clock timings."""
    return {
        "num_requests": report.num_requests,
        "num_assigned": report.num_assigned,
        "num_rejected": report.num_rejected,
        "total_cost": report.total_assignment_cost,
        "faults_injected": report.summary()["faults_injected"],
        "service_log": {
            rid: (
                entry.get("vehicle"),
                entry.get("assigned_cost"),
                entry.get("assigned_at"),
                entry.get("pickup"),
                entry.get("dropoff"),
            )
            for rid, entry in report.service_log.items()
        },
    }


def _cell(report) -> dict:
    latency = report.registry.histogram("assign.latency_s")
    summary = report.summary()
    return {
        "service_rate": report.service_rate,
        "requests": report.num_requests,
        "assigned": report.num_assigned,
        "rejected": report.num_rejected,
        "accounting_ok": (
            report.num_assigned + report.num_rejected == report.num_requests
        ),
        "assign_latency_s_p50": round(latency.quantile(0.50) or 0.0, 4),
        "assign_latency_s_p99": round(latency.quantile(0.99) or 0.0, 4),
        "faults_injected": summary["faults_injected"],
        "retries": summary["retries"],
        "pool_recreations": summary["pool_recreations"],
        "quote_columns_failed": summary["quote_columns_failed"],
        "shard_serial_rescues": summary["shard_serial_rescues"],
        "flushes_degraded": summary["flushes_degraded"],
        "fault_rescued_carries": summary["fault_rescued_carries"],
        "guarantee_violations": len(report.verify_service_guarantees()),
    }


def run_chaos_bench(
    out_path: str | None = DEFAULT_OUT,
    grid_side: int = 14,
    num_vehicles: int = 8,
    num_trips: int = 150,
    duration_s: float = 1500.0,
    batch_window_s: float = 5.0,
    backends: tuple[str, ...] = ("thread", "process"),
    fault_rates: tuple[float, ...] = FAULT_RATES,
    flush_deadline_s: float = 2.0,
    engine_kind: str = "matrix",
    seed: int = 17,
    fault_seed: int = 23,
) -> dict:
    """Benchmark the hardened pipeline across fault intensities and
    backends; return (and optionally write) the result document."""
    city = grid_city(grid_side, grid_side, seed=seed)
    trips = ShanghaiLikeWorkload(city, seed=seed, min_trip_meters=600.0).generate(
        num_trips=num_trips, duration_seconds=duration_s
    )

    def run_cell(backend: str, rate: float):
        # Fresh engine per cell: no run may inherit another's warm
        # caches, and the engine fault wrapper must start from clean.
        engine = make_engine(city, engine_kind)
        config = SimulationConfig(
            num_vehicles=num_vehicles,
            algorithm="kinetic",
            engine_kind=engine_kind,
            dispatch_policy="sharded",
            num_shards=2,
            shard_backend=backend,
            batch_window_s=batch_window_s,
            carry_over=True,
            flush_deadline_s=flush_deadline_s,
            fault_spec=mixed_fault_spec(rate, deadline_s=flush_deadline_s),
            fault_seed=fault_seed,
            seed=seed,
        )
        return simulate(engine, config, trips)

    runs: dict[str, dict] = {}
    for backend in backends:
        cells: dict[str, dict] = {}
        for rate in fault_rates:
            cells[f"{rate:g}"] = _cell(run_cell(backend, rate))
        runs[backend] = cells

    # Determinism contract 10 at the headline intensity: a same-plan,
    # same-seed serial rerun must be bit-identical, fault counters
    # included.
    first = run_cell("serial", GATE_RATE)
    second = run_cell("serial", GATE_RATE)
    serial_cell = _cell(first)
    serial_cell["deterministic_rerun"] = (
        _deterministic_state(first) == _deterministic_state(second)
    )
    runs["serial"] = {f"{GATE_RATE:g}": serial_cell}

    result = {
        "benchmark": "chaos",
        "workload": {
            "grid_side": grid_side,
            "num_vertices": city.num_vertices,
            "num_vehicles": num_vehicles,
            "num_trips": len(trips),
            "duration_s": duration_s,
            "batch_window_s": batch_window_s,
            "flush_deadline_s": flush_deadline_s,
            "fault_rates": list(fault_rates),
            "gate_rate": GATE_RATE,
            "backends": list(backends),
            "engine_kind": engine_kind,
            "seed": seed,
            "fault_seed": fault_seed,
        },
        "runs": runs,
    }
    attach_series(result)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


def render(result: dict) -> str:
    """Fixed-width table of one :func:`run_chaos_bench` document."""
    w = result["workload"]
    lines = [
        "== chaos: service under injected faults, by backend and rate ==",
        f"{'backend':8s} | {'rate':>5s} | {'service':>7s} | {'p99_s':>7s} | "
        f"{'faults':>6s} | {'retries':>7s} | {'degr':>4s} | {'resc':>4s} | "
        f"{'acct':>4s}",
        "-" * 72,
    ]
    for backend, cells in result["runs"].items():
        for rate, cell in cells.items():
            lines.append(
                f"{backend:8s} | {rate:>5s} | {cell['service_rate']:>7.3f} | "
                f"{cell['assign_latency_s_p99']:>7.3f} | "
                f"{cell['faults_injected']:>6d} | {cell['retries']:>7d} | "
                f"{cell['flushes_degraded']:>4d} | "
                f"{cell['shard_serial_rescues']:>4d} | "
                f"{'ok' if cell['accounting_ok'] else 'LOST'}"
            )
    serial = result["runs"].get("serial", {}).get(f"{GATE_RATE:g}", {})
    lines.append(
        f"note: {w['num_trips']} trips / {w['num_vehicles']} vehicles, "
        f"window {w['batch_window_s']:g}s, flush deadline "
        f"{w['flush_deadline_s']:g}s; gate at rate {w['gate_rate']:g}; "
        "deterministic serial rerun: "
        f"{'yes' if serial.get('deterministic_rerun') else 'NO'}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.chaos",
        description="Benchmark the fault-hardened flush pipeline.",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"output JSON path (default ./{DEFAULT_OUT})",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: smaller city, fewer trips, two fault rates "
        "(no service floor asserted at this scale — completion, "
        "accounting and the determinism column are the smoke signal)",
    )
    args = parser.parse_args(argv)
    if args.fast:
        result = run_chaos_bench(
            out_path=args.out,
            grid_side=10,
            num_vehicles=6,
            num_trips=60,
            duration_s=600.0,
            fault_rates=(0.0, GATE_RATE),
        )
    else:
        result = run_chaos_bench(out_path=args.out)
    print(render(result))
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
