"""Scalar-vs-batched distance-plane microbenchmark.

Times the two query planes of every shortest-path engine on the
matcher's characteristic *fan-out* workload — many targets radiating
from one decision point, exactly the access pattern of kinetic-tree
insertion and batch cost-matrix quoting — and records the results as
``BENCH_micro.json`` so future PRs have a throughput trajectory to beat.

Scalar and batched timings are measured in the same run on freshly
built engines (so neither plane inherits the other's warm caches), and
the JSON records queries/s for both planes plus the speedup ratio.

Run from the shell::

    PYTHONPATH=src python -m repro.bench.micro            # full run
    PYTHONPATH=src python -m repro.bench.micro --fast     # CI smoke
    PYTHONPATH=src python -m repro.bench.micro --out path/to.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time as _time

import numpy as np

from repro.bench.trend import attach_series
from repro.exceptions import DisconnectedError
from repro.roadnet.engine import ENGINE_KINDS as _ALL_KINDS
from repro.roadnet.engine import make_engine
from repro.roadnet.generators import grid_city

#: Engine kinds benchmarked: every concrete ``make_engine`` kind
#: (``auto`` is an alias, not an engine).
ENGINE_KINDS = tuple(kind for kind in _ALL_KINDS if kind != "auto")

#: Default output file name, written to the current working directory
#: (the repo root under both the CI smoke step and the benchmark suite).
DEFAULT_OUT = "BENCH_micro.json"


def fan_out_workload(
    num_vertices: int,
    num_sources: int,
    fan_out: int,
    seed: int = 3,
) -> list[tuple[int, np.ndarray]]:
    """Decision-point fan-outs: ``num_sources`` sources, each with
    ``fan_out`` random targets (duplicates allowed, like repeated stop
    vertices in real candidate sets)."""
    rng = np.random.default_rng(seed)
    return [
        (
            int(rng.integers(0, num_vertices)),
            rng.integers(0, num_vertices, size=fan_out),
        )
        for _ in range(num_sources)
    ]


def _time_scalar(engine, workload) -> float:
    started = _time.perf_counter()
    for source, targets in workload:
        for target in targets:
            try:
                engine.distance(source, int(target))
            except DisconnectedError:
                pass
    return _time.perf_counter() - started


def _time_batched(engine, workload) -> float:
    started = _time.perf_counter()
    for source, targets in workload:
        engine.distance_many(source, targets)
    return _time.perf_counter() - started


def run_micro(
    out_path: str | None = DEFAULT_OUT,
    grid_side: int = 20,
    num_sources: int = 40,
    fan_out: int = 48,
    seed: int = 3,
    engine_kinds=ENGINE_KINDS,
) -> dict:
    """Benchmark every engine's scalar vs batched plane; return (and
    optionally write) the result document."""
    city = grid_city(grid_side, grid_side, seed=seed)
    workload = fan_out_workload(
        city.num_vertices, num_sources, fan_out, seed=seed
    )
    total_queries = num_sources * fan_out

    engines = {}
    for kind in engine_kinds:
        # Fresh engines per plane: neither measurement may inherit the
        # other's warm caches.
        scalar_seconds = _time_scalar(make_engine(city, kind), workload)
        batched_engine = make_engine(city, kind)
        batched_seconds = _time_batched(batched_engine, workload)
        scalar_qps = total_queries / scalar_seconds if scalar_seconds else 0.0
        batched_qps = total_queries / batched_seconds if batched_seconds else 0.0
        engines[kind] = {
            "scalar_seconds": scalar_seconds,
            "batched_seconds": batched_seconds,
            "scalar_queries_per_sec": scalar_qps,
            "batched_queries_per_sec": batched_qps,
            "speedup": (batched_qps / scalar_qps) if scalar_qps else 0.0,
        }
        # Cache effectiveness of the batched plane, for engines that
        # report any — the Dijkstra engine's SourceRowCache hit/miss
        # counters (row_hits / row_misses / row_hit_rate) are the
        # trajectory to watch: the row cache is what turns consecutive
        # fan-outs from one decision point into dictionary lookups.
        stats = getattr(batched_engine, "stats", None)
        if stats is not None:
            engines[kind]["cache_stats"] = {
                key: value
                for key, value in stats().items()
                if not key.endswith("entries") and not key.endswith("cells")
            }

    result = {
        "benchmark": "distance_plane_fan_out",
        "workload": {
            "grid_side": grid_side,
            "num_vertices": city.num_vertices,
            "num_sources": num_sources,
            "fan_out": fan_out,
            "total_queries": total_queries,
            "seed": seed,
        },
        "engines": engines,
    }
    attach_series(result)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


def render(result: dict) -> str:
    """Fixed-width table of one :func:`run_micro` document."""
    lines = [
        "== micro_batched: scalar vs batched distance plane (queries/s) ==",
        f"{'engine':10s} | {'scalar_qps':>12s} | {'batched_qps':>12s} | "
        f"{'speedup':>7s} | {'row_hit_rate':>12s}",
        "-" * 67,
    ]
    for kind, row in result["engines"].items():
        cache = row.get("cache_stats", {})
        row_rate = (
            f"{cache['row_hit_rate']:.3f}" if "row_hit_rate" in cache else "-"
        )
        lines.append(
            f"{kind:10s} | {row['scalar_queries_per_sec']:>12,.0f} | "
            f"{row['batched_queries_per_sec']:>12,.0f} | "
            f"{row['speedup']:>6.1f}x | {row_rate:>12s}"
        )
    w = result["workload"]
    lines.append(
        f"note: {w['num_sources']} fan-outs x {w['fan_out']} targets on a "
        f"{w['grid_side']}x{w['grid_side']} grid city"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.micro",
        description="Time scalar vs batched distance queries per engine.",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"output JSON path (default ./{DEFAULT_OUT})",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: smaller city and fewer fan-outs",
    )
    args = parser.parse_args(argv)
    if args.fast:
        result = run_micro(
            out_path=args.out, grid_side=12, num_sources=12, fan_out=24
        )
    else:
        result = run_micro(out_path=args.out)
    print(render(result))
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
