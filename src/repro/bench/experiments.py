"""One function per paper table/figure (see DESIGN.md experiment index).

Every function returns an :class:`~repro.bench.harness.ExperimentTable`
whose rows/series mirror the corresponding artifact of the paper. Scaled
absolute times differ (Python vs the authors' C++/Xeon setup); the
*shapes* — algorithm ordering, trends across constraints/fleet/capacity,
which variants fail to finish — are the reproduction targets, recorded
against the paper in EXPERIMENTS.md.
"""

from __future__ import annotations

import time as _time

from repro.bench.harness import (
    BURST_SUITE,
    DEFAULT_EXPANSION_BUDGET,
    DEFAULT_THETA,
    FOUR_SUITE,
    TREE_SUITE,
    ExperimentTable,
    fmt_cell,
    get_context,
)
from repro.core.constraints import PAPER_CONSTRAINT_SWEEP

#: The four algorithms of Fig. 6 / Fig. 8 with their config overrides.
FOUR_ALGOS: list[tuple[str, dict]] = [
    ("kinetic_tree", {"algorithm": "kinetic", "tree_mode": "slack"}),
    ("brute_force", {"algorithm": "brute_force"}),
    ("branch_and_bound", {"algorithm": "branch_and_bound"}),
    ("mip", {"algorithm": "mip"}),
]

#: The tree variants of Fig. 7 / Fig. 9.
TREE_VARIANTS: list[tuple[str, dict]] = [
    ("basic", {"algorithm": "kinetic", "tree_mode": "basic"}),
    ("slack", {"algorithm": "kinetic", "tree_mode": "slack"}),
    (
        "hotspot",
        {
            "algorithm": "kinetic",
            "tree_mode": "slack",
            "hotspot_theta": DEFAULT_THETA,
        },
    ),
]

#: Fleet-size sweeps as multiples of each suite's default (paper Table I:
#: 1k/2k/5k/10k/20k around 10k; Table II: 500/1k/2k/5k/10k around 2k).
FOUR_SERVER_FACTORS = (0.1, 0.2, 0.5, 1.0, 2.0)
TREE_SERVER_FACTORS = (0.25, 0.5, 1.0, 2.5, 5.0)

#: Capacity sweep of Fig. 9(c); ``None`` is the paper's "unlim".
CAPACITY_SWEEP = (3, 4, 5, 6, 7, 8, 12, 16, None)


def _fleet_sizes(base: int, factors) -> list[int]:
    return [max(2, round(base * f)) for f in factors]


# ----------------------------------------------------------------------
# Table I / Table II — parameter grids
# ----------------------------------------------------------------------
def table1() -> ExperimentTable:
    """Paper Table I: parameters of the four-algorithm comparison."""
    ctx = get_context(FOUR_SUITE)
    rows = [
        ["Capacity", "4 (default)", "4"],
        [
            "Constraints",
            "; ".join(c.label for c in PAPER_CONSTRAINT_SWEEP) + " (default 10 min / 20%)",
            "same sweep",
        ],
        [
            "Number of servers",
            "1,000; 2,000; 5,000; 10,000 (default); 20,000",
            "; ".join(
                str(v) for v in _fleet_sizes(ctx.suite.num_vehicles, FOUR_SERVER_FACTORS)
            )
            + f" (default {ctx.suite.num_vehicles})",
        ],
        ["Requests", "432,327 (one Shanghai day)", str(len(ctx.trips))],
        [
            "Road network",
            "122,319 vertices / 188,426 edges",
            f"{ctx.city.num_vertices} vertices / {ctx.city.num_edges} edges",
        ],
    ]
    return ExperimentTable(
        "table1",
        "Parameters for four-algorithm comparison (paper vs scaled)",
        ["parameter", "paper", "this reproduction"],
        rows,
        notes="requests-per-server-hour ratio matches the paper's default cell",
    )


def table2() -> ExperimentTable:
    """Paper Table II: parameters of the tree-variant comparison."""
    ctx = get_context(TREE_SUITE)
    rows = [
        [
            "Capacity",
            "3; 4; 5; 6 (default); 7; 8; 12; 16; unlimited",
            "; ".join("unlim" if c is None else str(c) for c in CAPACITY_SWEEP),
        ],
        [
            "Number of servers",
            "500; 1,000; 2,000 (default); 5,000; 10,000",
            "; ".join(
                str(v) for v in _fleet_sizes(ctx.suite.num_vehicles, TREE_SERVER_FACTORS)
            )
            + f" (default {ctx.suite.num_vehicles})",
        ],
        [
            "Constraints",
            "; ".join(c.label for c in PAPER_CONSTRAINT_SWEEP) + " (default 10 min / 20%)",
            "same sweep",
        ],
        ["Requests", "432,327 (one Shanghai day)", str(len(ctx.trips))],
    ]
    return ExperimentTable(
        "table2",
        "Parameters for tree-algorithm comparison (paper vs scaled)",
        ["parameter", "paper", "this reproduction"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 6 — four-algorithm comparison
# ----------------------------------------------------------------------
def _reports_for(ctx, algos, **extra):
    return {name: ctx.run_cell(**cfg, **extra) for name, cfg in algos}


def fig6a() -> ExperimentTable:
    """Fig. 6(a): ART by number of active requests, four algorithms."""
    ctx = get_context(FOUR_SUITE)
    reports = _reports_for(ctx, FOUR_ALGOS)
    buckets = sorted(
        {
            b
            for r in reports.values()
            if r is not None
            for b in r.art.buckets
        }
    )
    rows = [
        [str(b)] + [fmt_cell(reports[name], "art", b) for name, _ in FOUR_ALGOS]
        for b in buckets
    ]
    return ExperimentTable(
        "fig6a",
        "ART (ms) vs number of active requests",
        ["active_requests"] + [name for name, _ in FOUR_ALGOS],
        rows,
        notes="paper shape: ART grows with active requests; tree lowest",
    )


def fig6b() -> ExperimentTable:
    """Fig. 6(b): ACRT vs constraints, four algorithms."""
    ctx = get_context(FOUR_SUITE)
    rows = []
    for constraints in PAPER_CONSTRAINT_SWEEP:
        reports = _reports_for(ctx, FOUR_ALGOS, constraints=constraints)
        rows.append(
            [constraints.label]
            + [fmt_cell(reports[name], "acrt") for name, _ in FOUR_ALGOS]
        )
    return ExperimentTable(
        "fig6b",
        "ACRT (ms) vs constraints",
        ["constraints"] + [name for name, _ in FOUR_ALGOS],
        rows,
        notes="paper shape: tree fastest; BF ~ B&B; MIP ~20x slower",
    )


def fig6c() -> ExperimentTable:
    """Fig. 6(c): ACRT vs number of servers, four algorithms."""
    ctx = get_context(FOUR_SUITE)
    rows = []
    for fleet in _fleet_sizes(ctx.suite.num_vehicles, FOUR_SERVER_FACTORS):
        reports = _reports_for(ctx, FOUR_ALGOS, num_vehicles=fleet)
        rows.append(
            [str(fleet)]
            + [fmt_cell(reports[name], "acrt") for name, _ in FOUR_ALGOS]
        )
    return ExperimentTable(
        "fig6c",
        "ACRT (ms) vs number of servers",
        ["servers"] + [name for name, _ in FOUR_ALGOS],
        rows,
        notes="paper shape: tree fastest at every fleet size",
    )


# ----------------------------------------------------------------------
# Figure 7 — tree variants
# ----------------------------------------------------------------------
def fig7a() -> ExperimentTable:
    """Fig. 7(a): ART by number of active requests, tree variants."""
    ctx = get_context(TREE_SUITE)
    reports = _reports_for(ctx, TREE_VARIANTS)
    buckets = sorted(
        {b for r in reports.values() if r is not None for b in r.art.buckets}
    )
    rows = [
        [str(b)] + [fmt_cell(reports[name], "art", b) for name, _ in TREE_VARIANTS]
        for b in buckets
    ]
    return ExperimentTable(
        "fig7a",
        "ART (ms) vs number of active requests (tree variants)",
        ["active_requests"] + [name for name, _ in TREE_VARIANTS],
        rows,
    )


def fig7b() -> ExperimentTable:
    """Fig. 7(b): ACRT vs constraints, tree variants."""
    ctx = get_context(TREE_SUITE)
    rows = []
    for constraints in PAPER_CONSTRAINT_SWEEP:
        reports = _reports_for(ctx, TREE_VARIANTS, constraints=constraints)
        rows.append(
            [constraints.label]
            + [fmt_cell(reports[name], "acrt") for name, _ in TREE_VARIANTS]
        )
    return ExperimentTable(
        "fig7b",
        "ACRT (ms) vs constraints (tree variants)",
        ["constraints"] + [name for name, _ in TREE_VARIANTS],
        rows,
        notes="paper shape: slack saves most under tight constraints (up to ~32%)",
    )


def fig7c() -> ExperimentTable:
    """Fig. 7(c): ACRT vs number of servers, tree variants."""
    ctx = get_context(TREE_SUITE)
    rows = []
    for fleet in _fleet_sizes(ctx.suite.num_vehicles, TREE_SERVER_FACTORS):
        reports = _reports_for(ctx, TREE_VARIANTS, num_vehicles=fleet)
        rows.append(
            [str(fleet)]
            + [fmt_cell(reports[name], "acrt") for name, _ in TREE_VARIANTS]
        )
    return ExperimentTable(
        "fig7c",
        "ACRT (ms) vs number of servers (tree variants)",
        ["servers"] + [name for name, _ in TREE_VARIANTS],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 8 — ART at four active requests, four algorithms
# ----------------------------------------------------------------------
def _art_bucket_table(ctx, algos, bucket: int, sweep_name: str, experiment_id: str, title: str):
    # If the scale is too small for the requested bucket to ever occur,
    # fall back to the deepest observed bucket and say so — an empty table
    # reproduces nothing.
    defaults = _reports_for(ctx, algos)
    observed = [
        b for r in defaults.values() if r is not None for b in r.art.buckets
    ]
    effective = min(bucket, max(observed, default=0))
    note_extra = ""
    if effective != bucket:
        note_extra = (
            f"; requested bucket {bucket} unobserved at this scale, "
            f"showing deepest populated bucket {effective} "
            "(set REPRO_SCALE>1 for deeper buckets)"
        )
    bucket = effective
    rows = []
    if sweep_name == "constraints":
        for constraints in PAPER_CONSTRAINT_SWEEP:
            reports = _reports_for(ctx, algos, constraints=constraints)
            rows.append(
                [constraints.label]
                + [fmt_cell(reports[name], "art", bucket) for name, _ in algos]
            )
        first = "constraints"
    else:
        factors = (
            FOUR_SERVER_FACTORS if ctx.suite.name == "four" else TREE_SERVER_FACTORS
        )
        for fleet in _fleet_sizes(ctx.suite.num_vehicles, factors):
            reports = _reports_for(ctx, algos, num_vehicles=fleet)
            rows.append(
                [str(fleet)]
                + [fmt_cell(reports[name], "art", bucket) for name, _ in algos]
            )
        first = "servers"
    return ExperimentTable(
        experiment_id,
        title,
        [first] + [name for name, _ in algos],
        rows,
        notes=(
            f"'-' = no vehicle was quoted while holding exactly {bucket} "
            "active requests in that cell (sparse bucket at this scale)"
            + note_extra
        ),
    )


def fig8a() -> ExperimentTable:
    """Fig. 8(a): ART at 4 active requests vs constraints."""
    return _art_bucket_table(
        get_context(FOUR_SUITE),
        FOUR_ALGOS,
        4,
        "constraints",
        "fig8a",
        "ART (ms) at 4 active requests vs constraints",
    )


def fig8b() -> ExperimentTable:
    """Fig. 8(b): ART at 4 active requests vs number of servers."""
    return _art_bucket_table(
        get_context(FOUR_SUITE),
        FOUR_ALGOS,
        4,
        "servers",
        "fig8b",
        "ART (ms) at 4 active requests vs number of servers",
    )


# ----------------------------------------------------------------------
# Figure 9 — tree scalability
# ----------------------------------------------------------------------
def fig9a() -> ExperimentTable:
    """Fig. 9(a): ART at 6 active requests vs constraints, tree variants."""
    return _art_bucket_table(
        get_context(TREE_SUITE),
        TREE_VARIANTS,
        6,
        "constraints",
        "fig9a",
        "ART (ms) at 6 active requests vs constraints (tree variants)",
    )


def fig9b() -> ExperimentTable:
    """Fig. 9(b): ART at 6 active requests vs servers, tree variants."""
    return _art_bucket_table(
        get_context(TREE_SUITE),
        TREE_VARIANTS,
        6,
        "servers",
        "fig9b",
        "ART (ms) at 6 active requests vs number of servers (tree variants)",
    )


def fig9c() -> ExperimentTable:
    """Fig. 9(c): ACRT vs capacity; only hotspot completes unlimited."""
    ctx = get_context(BURST_SUITE)
    rows = []
    for capacity in CAPACITY_SWEEP:
        reports = _reports_for(
            ctx,
            TREE_VARIANTS,
            capacity=capacity,
            tree_expansion_budget=DEFAULT_EXPANSION_BUDGET,
        )
        label = "unlim" if capacity is None else str(capacity)
        rows.append(
            [label]
            + [fmt_cell(reports[name], "acrt") for name, _ in TREE_VARIANTS]
        )
    return ExperimentTable(
        "fig9c",
        "ACRT (ms) vs capacity (tree variants)",
        ["capacity"] + [name for name, _ in TREE_VARIANTS],
        rows,
        notes="DNF = expansion budget exceeded (paper: 'breaks off' past "
        "capacity 7 for basic/slack; hotspot completes 'unlim')",
    )


# ----------------------------------------------------------------------
# Occupancy statistics (Section VI.B closing numbers)
# ----------------------------------------------------------------------
def occupancy() -> ExperimentTable:
    """Unlimited-capacity occupancy stats vs the paper's 17 / 1.7 / 3.9."""
    ctx = get_context(BURST_SUITE)
    report = ctx.run_cell(
        algorithm="kinetic",
        tree_mode="slack",
        hotspot_theta=DEFAULT_THETA,
        capacity=None,
        tree_expansion_budget=DEFAULT_EXPANSION_BUDGET,
    )
    if report is None:
        rows = [["run", "DNF", "-"]]
    else:
        occ = report.occupancy
        rows = [
            ["max passengers in any server", "17", str(occ.max_passengers)],
            ["mean max occupancy per server", "1.7", f"{occ.mean_max_per_vehicle:.2f}"],
            ["mean of top-20% filled servers", "~3.9", f"{occ.top20_mean:.2f}"],
            ["service rate", "(not reported)", f"{report.service_rate:.3f}"],
        ]
    return ExperimentTable(
        "occupancy",
        "Unlimited-capacity occupancy statistics (hotspot tree)",
        ["statistic", "paper", "this reproduction"],
        rows,
    )


# ----------------------------------------------------------------------
# Supporting microbenchmarks and ablations
# ----------------------------------------------------------------------
def micro_engine() -> ExperimentTable:
    """Shortest-path engine throughput and cache effectiveness."""
    import numpy as np

    from repro.roadnet.contraction import CHEngine
    from repro.roadnet.engine import DijkstraEngine
    from repro.roadnet.generators import grid_city
    from repro.roadnet.hub_labeling import HubLabelEngine
    from repro.roadnet.matrix import MatrixEngine

    city = grid_city(20, 20, seed=3)
    rng = np.random.default_rng(3)
    # Locality-skewed query stream (the paper's rationale for LRU caches).
    hot = rng.integers(0, city.num_vertices, size=50)
    queries = []
    for _ in range(3000):
        if rng.random() < 0.8:
            queries.append((int(rng.choice(hot)), int(rng.choice(hot))))
        else:
            queries.append(
                (int(rng.integers(0, city.num_vertices)), int(rng.integers(0, city.num_vertices)))
            )

    rows = []
    for name, engine in (
        ("matrix", MatrixEngine(city)),
        ("dijkstra+lru", DijkstraEngine(city)),
        ("hub_label", HubLabelEngine(city)),
        ("ch", CHEngine(city)),
    ):
        t0 = _time.perf_counter()
        for s, e in queries:
            engine.distance(s, e)
        elapsed = _time.perf_counter() - t0
        stats = engine.stats() if hasattr(engine, "stats") else {}
        hit_rate = stats.get("distance_hit_rate", "")
        rows.append(
            [
                name,
                f"{len(queries) / elapsed:,.0f}",
                f"{hit_rate:.3f}" if hit_rate != "" else "-",
            ]
        )
    return ExperimentTable(
        "micro_engine",
        "Distance-query throughput (queries/s) and LRU hit rate",
        ["engine", "queries_per_sec", "distance_cache_hit_rate"],
        rows,
        notes="supports Section VI's caching discussion; 20x20 grid city",
    )


def micro_batched() -> ExperimentTable:
    """Scalar vs batched distance plane per engine (perf-regression
    harness). Also writes ``BENCH_micro.json`` to the working directory
    so future PRs have a throughput trajectory to beat."""
    from repro.bench.micro import run_micro

    result = run_micro()
    rows = [
        [
            kind,
            f"{row['scalar_queries_per_sec']:,.0f}",
            f"{row['batched_queries_per_sec']:,.0f}",
            f"{row['speedup']:.1f}x",
        ]
        for kind, row in result["engines"].items()
    ]
    w = result["workload"]
    return ExperimentTable(
        "micro_batched",
        "Scalar vs batched distance plane (queries/s)",
        ["engine", "scalar_qps", "batched_qps", "speedup"],
        rows,
        notes=(
            f"{w['num_sources']} fan-outs x {w['fan_out']} targets on a "
            f"{w['grid_side']}x{w['grid_side']} grid city; "
            "absolute numbers vary per machine — compare the speedup "
            "column across PRs (BENCH_micro.json)"
        ),
    )


def sharded_dispatch() -> ExperimentTable:
    """Sharded per-flush solve: wall time by shard count and backend.

    Also writes ``BENCH_shard.json`` to the working directory so future
    PRs have a sharded-solve trajectory to beat (the companion of
    ``BENCH_micro.json`` for the assignment plane). The headline claims:
    ``shards=1`` (serial) returns exactly the global solve's pairs, and
    per-flush solve time *improves* with shard count on the large
    synthetic flush — the Hungarian solve is O(n^3), so k contiguous
    shards cut the work ~k^2-fold before any parallelism.
    """
    from repro.bench.shard import run_shard_bench

    result = run_shard_bench()
    rows = []
    for backend, cells in result["runs"].items():
        for count, cell in sorted(cells.items(), key=lambda kv: int(kv[0])):
            rows.append(
                [
                    backend,
                    count,
                    f"{cell['per_flush_seconds'] * 1000:.3f}",
                    f"{cell.get('speedup_vs_serial_1', 0.0):.2f}x",
                    str(cell["boundary_conflicts"]),
                    str(cell["pairs_matched"]),
                    "yes" if cell["matches_global"] else "no",
                ]
            )
    w = result["workload"]
    return ExperimentTable(
        "sharded_dispatch",
        "Sharded dispatch: per-flush solve wall time by shard count",
        [
            "backend",
            "shards",
            "solve_ms",
            "speedup",
            "boundary_conflicts",
            "pairs_matched",
            "matches_global",
        ],
        rows,
        notes=(
            f"{w['rows']} requests x {w['cols']} candidate vehicles on a "
            f"{w['grid_side']}x{w['grid_side']} grid city "
            f"(best of {w['repeats']}); matches_global is only expected "
            "at shards=1 (BENCH_shard.json)"
        ),
    )


def pipeline_overlap() -> ExperimentTable:
    """Staged dispatch pipeline: quote/event overlap and determinism.

    Also writes ``BENCH_pipeline.json`` to the working directory so
    future PRs have an async-quoting trajectory to beat. The headline
    claims: the thread-backend quote stage overlaps a meaningful
    fraction of its wall time with event execution, and its assignments
    are identical to the deferred synchronous stage (staleness epochs +
    deterministic re-quotes make worker timing invisible).
    """
    from repro.bench.pipeline import run_pipeline_bench

    result = run_pipeline_bench()
    rows = []
    for label, cell in result["runs"].items():
        # Only the async run carries a determinism contract (async ==
        # deferred); sync and deferred commit at different instants, so
        # comparing them is meaningless — print "-" there.
        if label == "async_thread":
            match = "yes" if cell.get("matches_deferred") else "no"
        else:
            match = "-"
        rows.append(
            [
                label,
                f"{cell['wall_seconds']:.2f}",
                f"{cell['quote_ms_mean']:.3f}",
                f"{cell['overlap_ratio_mean']:.1%}",
                str(cell["staleness_requotes"]),
                str(cell["assigned"]),
                match,
            ]
        )
    w = result["workload"]
    return ExperimentTable(
        "pipeline_overlap",
        "Staged pipeline: quote wall time overlapped with event execution",
        [
            "run",
            "wall_s",
            "quote_ms_mean",
            "overlap_ratio",
            "requotes",
            "assigned",
            "deterministic_match",
        ],
        rows,
        notes=(
            f"{w['num_trips']} trips / {w['num_vehicles']} vehicles on a "
            f"{w['grid_side']}x{w['grid_side']} {w['engine_kind']} city; "
            f"window {w['batch_window_s']:g}s, overlap "
            f"{w['quote_overlap_s']:g}s, {w['quote_workers']} thread "
            "workers (BENCH_pipeline.json)"
        ),
    )


def adaptive_window() -> ExperimentTable:
    """Adaptive batch-window autotuning + carry-over vs fixed windows.

    Also writes ``BENCH_adaptive.json`` to the working directory so
    future PRs have a window-trajectory record to compare against. The
    headline claims: on the bimodal workload the adaptive run answers
    off-peak requests faster than the best fixed window while serving
    at least as much of the rush-hour surge (carry-over keeps losing
    requests alive across flushes), and the whole trajectory is
    deterministic given the seed.
    """
    from repro.bench.adaptive import run_adaptive_bench

    result = run_adaptive_bench()
    rows = []
    for label, cell in result["runs"].items():
        rows.append(
            [
                label,
                f"{cell['offpeak_latency_s']:.2f}",
                f"{cell['offpeak_service_rate']:.3f}",
                f"{cell['peak_latency_s']:.2f}",
                f"{cell['peak_service_rate']:.3f}",
                f"{cell['mean_batch_size']:.2f}",
                str(cell.get("carry_events", 0)),
            ]
        )
    w = result["workload"]
    adaptive = result["runs"]["adaptive"]
    return ExperimentTable(
        "adaptive_window",
        "Adaptive batch window: off-peak latency vs rush-hour service",
        [
            "run",
            "offpeak_latency_s",
            "offpeak_rate",
            "peak_latency_s",
            "peak_rate",
            "mean_batch",
            "carried",
        ],
        rows,
        notes=(
            f"{w['num_trips']} trips ({w['offpeak_trips']} off-peak + "
            f"{w['peak_trips']} peak) on {w['num_vehicles']} vehicles; "
            f"adaptive band [{w['window_min_s']:g}, {w['window_max_s']:g}]s "
            f"visited [{adaptive['window_s_min']:.1f}, "
            f"{adaptive['window_s_max']:.1f}]s; best fixed at peak: "
            f"{result['best_fixed']} (BENCH_adaptive.json)"
        ),
    )


def chaos() -> ExperimentTable:
    """Service rate under injected faults (fault-tolerance subsystem).

    Also writes ``BENCH_chaos.json`` to the working directory so future
    PRs have a degradation trajectory to compare against. The headline
    claims: at a 5% mixed fault rate (quote crashes/delays, shard
    crashes, pool deaths) the degradation ladder holds the service rate
    within 10% of the fault-free run on both the thread and process
    backends, every cell accounts for every request (assigned or
    rejected, none lost), and the serial cell replays bit-identically
    (determinism contract 10).
    """
    from repro.bench.chaos import GATE_RATE, run_chaos_bench

    result = run_chaos_bench()
    rows = []
    for backend, cells in result["runs"].items():
        for rate, cell in cells.items():
            rows.append(
                [
                    backend,
                    rate,
                    f"{cell['service_rate']:.3f}",
                    f"{cell['assign_latency_s_p99']:.3f}",
                    str(cell["faults_injected"]),
                    str(cell["retries"]),
                    str(cell["flushes_degraded"]),
                    "ok" if cell["accounting_ok"] else "LOST",
                ]
            )
    w = result["workload"]
    serial = result["runs"]["serial"][f"{GATE_RATE:g}"]
    return ExperimentTable(
        "chaos",
        "Chaos: service rate and p99 latency under injected faults",
        [
            "backend",
            "fault_rate",
            "service_rate",
            "p99_latency_s",
            "faults",
            "retries",
            "degraded",
            "accounting",
        ],
        rows,
        notes=(
            f"{w['num_trips']} trips / {w['num_vehicles']} vehicles, "
            f"window {w['batch_window_s']:g}s, flush deadline "
            f"{w['flush_deadline_s']:g}s, mixed fault plan; gate at rate "
            f"{w['gate_rate']:g}; deterministic serial rerun: "
            f"{'yes' if serial.get('deterministic_rerun') else 'NO'} "
            "(BENCH_chaos.json)"
        ),
    )


def ablation_objective() -> ExperimentTable:
    """Total-cost vs delta-cost assignment objective (DESIGN.md ablation)."""
    ctx = get_context(TREE_SUITE)
    rows = []
    for objective in ("total", "delta"):
        report = ctx.run_cell(algorithm="kinetic", objective=objective)
        rows.append(
            [
                objective,
                fmt_cell(report, "acrt"),
                fmt_cell(report, "service_rate"),
                f"{report.total_assignment_cost:,.0f}" if report else "DNF",
            ]
        )
    return ExperimentTable(
        "ablation_objective",
        "Assignment objective ablation (kinetic tree)",
        ["objective", "acrt_ms", "service_rate", "total_cost_s"],
        rows,
        notes="'total' is the paper's objective (min augmented-schedule cost)",
    )


def ablation_beam() -> ExperimentTable:
    """Schedule-cap load shedding (Section V generalized): bounded trees
    vs the exact tree, on the burst workload where trees get large."""
    ctx = get_context(BURST_SUITE)
    rows = []
    for cap in (None, 32, 8, 2):
        report = ctx.run_cell(
            algorithm="kinetic",
            capacity=8,
            tree_schedule_cap=cap,
            tree_expansion_budget=DEFAULT_EXPANSION_BUDGET,
        )
        label = "exact" if cap is None else str(cap)
        rows.append(
            [
                label,
                fmt_cell(report, "acrt"),
                fmt_cell(report, "service_rate"),
                f"{report.total_assignment_cost:,.0f}" if report else "DNF",
            ]
        )
    return ExperimentTable(
        "ablation_beam",
        "Schedule-cap (beam) ablation, burst workload, capacity 8",
        ["schedules kept", "acrt_ms", "service_rate", "total_cost_s"],
        rows,
        notes="smaller beams trade matching quality for bounded trees",
    )


def ablation_invalidation() -> ExperimentTable:
    """Eager vs lazy tree invalidation (Section IV options)."""
    ctx = get_context(TREE_SUITE)
    rows = []
    for label, eager in (("lazy", False), ("eager", True)):
        report = ctx.run_cell(algorithm="kinetic", eager_invalidation=eager)
        rows.append(
            [label, fmt_cell(report, "acrt"), fmt_cell(report, "service_rate")]
        )
    return ExperimentTable(
        "ablation_invalidation",
        "Tree invalidation policy ablation (kinetic tree)",
        ["policy", "acrt_ms", "service_rate"],
        rows,
        notes="identical assignments expected; eager trades upkeep for "
        "smaller trees at insertion time",
    )


#: Batched-dispatch policy comparison cells (repro.dispatch). Window of
#: 15 s: long enough that batches form (~2 requests at the tree suite's
#: intensity), short enough that the queueing delay doesn't starve the
#: wait budget.
DISPATCH_WINDOW_S = 15.0
DISPATCH_POLICY_CELLS: list[tuple[str, dict]] = [
    ("greedy_immediate", {"dispatch_policy": "greedy", "batch_window_s": 0.0}),
    (
        "greedy_batched",
        {"dispatch_policy": "greedy", "batch_window_s": DISPATCH_WINDOW_S},
    ),
    ("lap", {"dispatch_policy": "lap", "batch_window_s": DISPATCH_WINDOW_S}),
    (
        "iterative",
        {"dispatch_policy": "iterative", "batch_window_s": DISPATCH_WINDOW_S},
    ),
    (
        "sharded",
        {
            "dispatch_policy": "sharded",
            "batch_window_s": DISPATCH_WINDOW_S,
            "num_shards": 4,
        },
    ),
]


def dispatch_policies() -> ExperimentTable:
    """Batched dispatch subsystem: policy comparison at a fixed window.

    Not a paper artifact — this compares the new :mod:`repro.dispatch`
    assignment policies (greedy / linear assignment / iterative rounds)
    against the paper's immediate per-request dispatch on the tree-suite
    workload.
    """
    ctx = get_context(TREE_SUITE)
    rows = []
    for label, overrides in DISPATCH_POLICY_CELLS:
        report = ctx.run_cell(algorithm="kinetic", **overrides)
        if report is None:
            rows.append([label] + ["DNF"] * 5)
            continue
        rows.append(
            [
                label,
                fmt_cell(report, "service_rate"),
                fmt_cell(report, "acrt"),
                f"{report.batch_sizes.mean:.2f}",
                f"{report.solver_seconds.mean * 1000:.3f}",
                f"{report.total_assignment_cost:,.0f}",
            ]
        )
    return ExperimentTable(
        "dispatch_policies",
        "Batched dispatch: policy comparison "
        f"(window {DISPATCH_WINDOW_S:.0f} s, kinetic tree)",
        [
            "policy",
            "service_rate",
            "acrt_ms",
            "mean_batch_size",
            "solver_ms",
            "total_cost_s",
        ],
        rows,
        notes="greedy_immediate is the paper's per-request dispatch; lap "
        "solves one request x vehicle linear assignment per window",
    )


#: Experiment registry: id -> (function, short description).
ALL_EXPERIMENTS = {
    "table1": (table1, "Table I parameter grid"),
    "table2": (table2, "Table II parameter grid"),
    "fig6a": (fig6a, "ART vs active requests, four algorithms"),
    "fig6b": (fig6b, "ACRT vs constraints, four algorithms"),
    "fig6c": (fig6c, "ACRT vs servers, four algorithms"),
    "fig7a": (fig7a, "ART vs active requests, tree variants"),
    "fig7b": (fig7b, "ACRT vs constraints, tree variants"),
    "fig7c": (fig7c, "ACRT vs servers, tree variants"),
    "fig8a": (fig8a, "ART@4 vs constraints, four algorithms"),
    "fig8b": (fig8b, "ART@4 vs servers, four algorithms"),
    "fig9a": (fig9a, "ART@6 vs constraints, tree variants"),
    "fig9b": (fig9b, "ART@6 vs servers, tree variants"),
    "fig9c": (fig9c, "ACRT vs capacity, tree variants"),
    "occupancy": (occupancy, "Unlimited-capacity occupancy statistics"),
    "micro_engine": (micro_engine, "Engine throughput / cache hit rates"),
    "micro_batched": (micro_batched, "Scalar vs batched distance plane"),
    "sharded_dispatch": (sharded_dispatch, "Sharded per-flush solve scaling"),
    "pipeline_overlap": (pipeline_overlap, "Staged pipeline quote/event overlap"),
    "adaptive_window": (adaptive_window, "Adaptive batch window vs fixed"),
    "chaos": (chaos, "Service under injected faults"),
    "ablation_objective": (ablation_objective, "total vs delta objective"),
    "ablation_invalidation": (ablation_invalidation, "eager vs lazy pruning"),
    "ablation_beam": (ablation_beam, "schedule-cap load shedding"),
    "dispatch_policies": (dispatch_policies, "batched dispatch policy comparison"),
}


def run_experiment(experiment_id: str) -> ExperimentTable:
    """Run one experiment by id."""
    try:
        func, _ = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(ALL_EXPERIMENTS)
        raise ValueError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    return func()
