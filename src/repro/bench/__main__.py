"""Command-line entry point: run paper experiments and print/save tables.

Usage::

    python -m repro.bench                 # every experiment
    python -m repro.bench fig6b fig9c     # selected experiments
    python -m repro.bench --list          # show available ids
    REPRO_SCALE=2 python -m repro.bench   # larger problem sizes
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--save-dir",
        default=None,
        help="also write each table to this directory",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, (_, description) in ALL_EXPERIMENTS.items():
            print(f"{name:22s} {description}")
        return 0

    names = args.experiments or list(ALL_EXPERIMENTS)
    for name in names:
        started = time.perf_counter()
        table = run_experiment(name)
        elapsed = time.perf_counter() - started
        print(table.render())
        print(f"({elapsed:.1f}s)\n")
        if args.save_dir:
            table.save(args.save_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
