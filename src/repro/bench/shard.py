"""Sharded-dispatch solve benchmark (``BENCH_shard.json``).

Builds one large synthetic batch flush — a city, a fleet with reported
grid positions, and a window's worth of requests quoted into a single
cost matrix via the batched ``quote_batch`` plane — then times the
*per-flush assignment solve* under the sharding subsystem
(:mod:`repro.dispatch.sharding`) across shard counts and executor
backends.

Two properties are recorded per run and gated by
``benchmarks/test_sharded_dispatch.py``:

* ``shards=1`` on the serial backend returns exactly the pairs of the
  global :func:`~repro.dispatch.solver.solve_assignment` (bit-identical
  fallback);
* per-flush solve wall time improves with shard count: the Hungarian
  solve is O(n^3), so k balanced shards cut solve work ~k^2-fold before
  any parallelism — the serial backend already shows the win, thread /
  process backends stack concurrency on top.

Run from the shell::

    PYTHONPATH=src python -m repro.bench.shard            # full run
    PYTHONPATH=src python -m repro.bench.shard --fast     # CI smoke
    PYTHONPATH=src python -m repro.bench.shard --out path/to.json
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import time as _time

import numpy as np

from repro.bench.trend import attach_series
from repro.core.matching import Dispatcher
from repro.dispatch.costs import build_cost_matrix
from repro.dispatch.sharding import ShardExecutor, ShardPartitioner, solve_sharded
from repro.dispatch.solver import solve_assignment
from repro.roadnet.engine import make_engine
from repro.roadnet.generators import grid_city
from repro.sim.config import SimulationConfig
from repro.sim.fleet import build_fleet
from repro.sim.workload import ShanghaiLikeWorkload
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid_index import GridIndex

#: Default output file name, written to the current working directory
#: (the repo root under both the CI smoke step and the benchmark suite).
DEFAULT_OUT = "BENCH_shard.json"


def build_flush(
    grid_side: int = 28,
    num_vehicles: int = 200,
    num_requests: int = 180,
    max_wait_s: float = 120.0,
    detour_epsilon: float = 0.2,
    cell_meters: float = 500.0,
    seed: int = 11,
):
    """One synthetic batch flush, matrix already quoted.

    The waiting-time budget is kept tight so grid-index candidate discs
    stay *local* — the regime sharding targets: a request's feasible
    vehicles cluster around its pickup instead of spanning the city.
    Returns ``(matrix, grid_index, coords)``.
    """
    city = grid_city(grid_side, grid_side, seed=seed)
    engine = make_engine(city, "matrix")
    config = SimulationConfig(
        num_vehicles=num_vehicles, algorithm="kinetic", seed=seed
    )
    agents = build_fleet(engine, config, start_time=0.0)
    coords = city.coords
    bounds = BoundingBox(
        float(np.min(coords[:, 0])),
        float(np.min(coords[:, 1])),
        float(np.max(coords[:, 0])),
        float(np.max(coords[:, 1])),
    )
    grid = GridIndex(bounds, cell_meters=cell_meters)
    for agent in agents:
        x, y = agent.vehicle.position_at(0.0, city)
        grid.update(agent.vehicle.vehicle_id, x, y)
    dispatcher = Dispatcher(
        engine, agents, grid_index=grid, staleness_seconds=60.0
    )
    specs = ShanghaiLikeWorkload(
        city, seed=seed, min_trip_meters=1000.0
    ).generate(num_trips=num_requests, duration_seconds=3600.0)
    requests = []
    for spec in specs:
        request = dispatcher.make_request(
            spec.origin, spec.destination, 0.0, max_wait_s, detour_epsilon
        )
        if request is not None:
            requests.append(request)
    matrix = build_cost_matrix(dispatcher, requests, 0.0)
    return matrix, grid, coords


def _time_sharded(keys, plan, backend: str, repeats: int, **executor_kwargs):
    """Best-of-``repeats`` sharded solve; returns (seconds, outcome)."""
    best = float("inf")
    outcome = None
    with ShardExecutor(backend, **executor_kwargs) as executor:
        if backend != "serial":
            # Pool spin-up is amortized across a simulation's thousands
            # of flushes; warm it before timing one.
            executor.run([(0, np.zeros((1, 1)))])
        for _ in range(repeats):
            t0 = _time.perf_counter()
            outcome = solve_sharded(keys, plan, executor)
            best = min(best, _time.perf_counter() - t0)
    return best, outcome


#: The zero-copy vs pickle A/B grid on the process backend
#: (:mod:`repro.dispatch.sharding.shm`): the plain ``process`` rows are
#: the pickle baseline; these modes layer the shared-memory arena, the
#: persistent worker group, and both together. Gated by
#: ``benchmarks/test_shard_scaling.py``.
ZERO_COPY_MODES = {
    "process+zero_copy": {"zero_copy": True},
    "process+persistent": {"persistent_workers": True},
    "process+zero_copy+persistent": {
        "zero_copy": True,
        "persistent_workers": True,
    },
}


def run_shard_bench(
    out_path: str | None = DEFAULT_OUT,
    shard_counts=(1, 2, 4, 8),
    backends=("serial", "thread", "process"),
    repeats: int = 5,
    **flush_kwargs,
) -> dict:
    """Benchmark the sharded solve across shard counts and backends;
    return (and optionally write) the result document."""
    matrix, grid, coords = build_flush(**flush_kwargs)
    keys = matrix.keys
    m, n = matrix.shape

    t0 = _time.perf_counter()
    global_pairs = solve_assignment(keys)
    global_seconds = _time.perf_counter() - t0

    runs: dict[str, dict[str, dict]] = {}
    serial_baseline = None

    def measure(label: str, backend: str, **executor_kwargs):
        runs[label] = {}
        for count in shard_counts:
            plan = ShardPartitioner(count).plan(
                matrix, grid_index=grid, coords=coords
            )
            seconds, outcome = _time_sharded(
                keys, plan, backend, repeats, **executor_kwargs
            )
            runs[label][str(count)] = {
                "per_flush_seconds": seconds,
                "num_shards_solved": outcome.num_shards,
                "shard_sizes": outcome.shard_sizes,
                "boundary_conflicts": outcome.boundary_conflicts,
                "pairs_matched": len(outcome.pairs),
                "matches_global": outcome.pairs == global_pairs,
            }

    for backend in backends:
        measure(backend, backend)
        if backend == "serial":
            serial_baseline = runs["serial"][str(shard_counts[0])][
                "per_flush_seconds"
            ] if shard_counts[0] == 1 else None
    if "process" in backends:
        # Zero-copy vs pickle A/B: same flush, same plans, same process
        # backend — only the matrix transport and worker lifetime vary.
        for label, executor_kwargs in ZERO_COPY_MODES.items():
            measure(label, "process", **executor_kwargs)
    for cells in runs.values():
        for cell in cells.values():
            seconds = cell["per_flush_seconds"]
            if serial_baseline:
                cell["speedup_vs_serial_1"] = (
                    serial_baseline / seconds if seconds else 0.0
                )
            cell["speedup_vs_global"] = (
                global_seconds / seconds if seconds else 0.0
            )

    # The effective flush parameters, derived from build_flush's own
    # signature so the recorded workload can never drift from the one
    # actually built.
    effective = {
        name: flush_kwargs.get(name, parameter.default)
        for name, parameter in inspect.signature(build_flush).parameters.items()
    }
    result = {
        "benchmark": "sharded_dispatch_flush",
        "workload": {
            "rows": m,
            "cols": n,
            "finite_fraction": round(
                float(np.isfinite(keys).mean()) if keys.size else 0.0, 4
            ),
            "repeats": repeats,
            **effective,
        },
        "global_solve": {
            "seconds": global_seconds,
            "pairs_matched": len(global_pairs),
        },
        "runs": runs,
    }
    attach_series(result)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


def render(result: dict) -> str:
    """Fixed-width table of one :func:`run_shard_bench` document."""
    w = result["workload"]
    lines = [
        "== sharded_dispatch: per-flush solve wall time by shard count ==",
        f"{'backend':8s} | {'shards':>6s} | {'solve_ms':>9s} | "
        f"{'speedup':>7s} | {'conflicts':>9s} | {'matched':>7s}",
        "-" * 60,
    ]
    for backend, cells in result["runs"].items():
        for count, cell in sorted(cells.items(), key=lambda kv: int(kv[0])):
            flag = "" if cell["matches_global"] or int(count) > 1 else " !"
            lines.append(
                f"{backend:8s} | {count:>6s} | "
                f"{cell['per_flush_seconds'] * 1000:>9.3f} | "
                f"{cell.get('speedup_vs_serial_1', 0.0):>6.2f}x | "
                f"{cell['boundary_conflicts']:>9d} | "
                f"{cell['pairs_matched']:>7d}{flag}"
            )
    lines.append(
        f"note: {w['rows']} requests x {w['cols']} candidate vehicles "
        f"({w['finite_fraction']:.0%} finite), one flush on a "
        f"{w['grid_side']}x{w['grid_side']} grid city"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.shard",
        description="Time the sharded per-flush assignment solve.",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"output JSON path (default ./{DEFAULT_OUT})",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: smaller flush, serial+thread only",
    )
    args = parser.parse_args(argv)
    if args.fast:
        result = run_shard_bench(
            out_path=args.out,
            shard_counts=(1, 2, 4),
            backends=("serial", "thread"),
            repeats=2,
            grid_side=20,
            num_vehicles=70,
            num_requests=60,
            max_wait_s=90.0,
        )
    else:
        result = run_shard_bench(out_path=args.out)
    print(render(result))
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
