"""Adaptive-batching benchmark (``BENCH_adaptive.json``).

Runs one *bimodal* workload — a long off-peak lull followed by a
rush-hour surge, on a fleet sized for the lull — through fixed batch
windows and through the adaptive controller with carry-over
(:mod:`repro.dispatch.adaptive`). The point the numbers make: a fixed
window is a compromise no single value wins —

* short fixed windows answer off-peak requests quickly but solve
  rush-hour batches too small for global matching (and reject the
  overflow at its first flush);
* long fixed windows batch well at peak but tax every off-peak request
  with queueing latency it didn't need to pay.

The adaptive run tracks the arrival intensity: it sits near
``window_min_s`` during the lull (short request-to-assignment latency)
and opens up to ``window_max_s`` in the surge (peak batches as large as
the longest fixed window's), while carry-over keeps losing requests
alive across flushes instead of rejecting them in-batch — which is
where the peak service-rate edge comes from.

Per run the document records, split at the phase boundary: mean
request-to-assignment latency and service rate off-peak and at peak,
carry-over counts/ages, and the full window-length trajectory
``(flush time, window_s, overlap_s)``. ``benchmarks/
test_adaptive_window.py`` gates the headline claims: adaptive yields
shorter off-peak latency AND no worse peak service rate than the best
fixed window, stays clamped to the band, and reruns bit-identically
(the controller is deterministic given the seed).

Run from the shell::

    PYTHONPATH=src python -m repro.bench.adaptive            # full run
    PYTHONPATH=src python -m repro.bench.adaptive --fast     # CI smoke
    PYTHONPATH=src python -m repro.bench.adaptive --out path/to.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from statistics import mean

from repro.bench.trend import attach_series
from repro.core.constraints import ConstraintConfig
from repro.roadnet.engine import make_engine
from repro.roadnet.generators import grid_city
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload

#: Default output file name, written to the current working directory
#: (the repo root under both the CI smoke step and the benchmark suite).
DEFAULT_OUT = "BENCH_adaptive.json"


def bimodal_trips(
    city,
    seed: int,
    offpeak_s: float,
    peak_s: float,
    offpeak_trips: int,
    peak_trips: int,
    min_trip_meters: float,
):
    """An off-peak lull followed by a rush-hour surge.

    One workload generator (one endpoint RNG stream) emits both phases,
    so the only thing that changes at the boundary is the arrival
    intensity — exactly the signal the controller tunes on. Returns
    ``(trips, split)`` with ``split`` the phase-boundary time.
    """
    workload = ShanghaiLikeWorkload(
        city, seed=seed, min_trip_meters=min_trip_meters
    )
    off = workload.generate(offpeak_trips, offpeak_s, start_seconds=0.0)
    peak = workload.generate(peak_trips, peak_s, start_seconds=offpeak_s)
    trips = sorted(off + peak, key=lambda t: t.request_time)
    return trips, offpeak_s


def latency_percentiles(report) -> dict:
    """Assignment-latency p50/p99 from the run's metrics registry.

    The registry histogram streams samples into log buckets, so the
    quantiles come without storing the latency list — the same numbers
    ``--metrics-out`` exports.
    """
    latency = report.registry.histogram("assign.latency_s")
    return {
        "assign_latency_s_p50": round(latency.quantile(0.50) or 0.0, 4),
        "assign_latency_s_p99": round(latency.quantile(0.99) or 0.0, 4),
    }


def phase_metrics(report, trips, split: float) -> dict:
    """Split one run's request outcomes at the phase boundary."""
    n_off = sum(1 for t in trips if t.request_time < split)
    n_peak = len(trips) - n_off
    lat_off: list[float] = []
    lat_peak: list[float] = []
    assigned_off = assigned_peak = 0
    for entry in report.service_log.values():
        request = entry.get("request")
        assigned_at = entry.get("assigned_at")
        if request is None or assigned_at is None:
            continue
        latency = assigned_at - request.request_time
        if request.request_time < split:
            assigned_off += 1
            lat_off.append(latency)
        else:
            assigned_peak += 1
            lat_peak.append(latency)
    return {
        "offpeak_requests": n_off,
        "peak_requests": n_peak,
        "offpeak_assigned": assigned_off,
        "peak_assigned": assigned_peak,
        "offpeak_service_rate": assigned_off / n_off if n_off else 0.0,
        "peak_service_rate": assigned_peak / n_peak if n_peak else 0.0,
        "offpeak_latency_s": mean(lat_off) if lat_off else 0.0,
        "peak_latency_s": mean(lat_peak) if lat_peak else 0.0,
    }


def _deterministic_state(report) -> dict:
    """Everything a run produces except wall-clock timings."""
    return {
        "num_requests": report.num_requests,
        "num_assigned": report.num_assigned,
        "total_cost": report.total_assignment_cost,
        "window_trajectory": list(report.window_trajectory),
        "service_log": {
            rid: (
                entry.get("vehicle"),
                entry.get("assigned_cost"),
                entry.get("assigned_at"),
                entry.get("pickup"),
                entry.get("dropoff"),
            )
            for rid, entry in report.service_log.items()
        },
    }


def run_adaptive_bench(
    out_path: str | None = DEFAULT_OUT,
    grid_side: int = 28,
    num_vehicles: int = 10,
    offpeak_s: float = 1400.0,
    peak_s: float = 700.0,
    offpeak_trips: int = 40,
    peak_trips: int = 180,
    min_trip_meters: float = 1500.0,
    wait_minutes: float = 6.0,
    fixed_windows: tuple[float, ...] = (5.0, 15.0, 30.0),
    window_min_s: float = 2.0,
    window_max_s: float = 30.0,
    target_batch: float = 6.0,
    engine_kind: str = "matrix",
    seed: int = 13,
) -> dict:
    """Benchmark fixed windows against the adaptive controller on the
    bimodal workload; return (and optionally write) the result document.

    The fleet is sized so the off-peak phase is comfortable and the peak
    oversubscribes it severalfold: service rate at peak then measures
    assignment *quality* under scarcity (batch size + carry-over
    retries), while off-peak latency measures pure window overhead.
    """
    city = grid_city(grid_side, grid_side, seed=seed)
    trips, split = bimodal_trips(
        city,
        seed=seed,
        offpeak_s=offpeak_s,
        peak_s=peak_s,
        offpeak_trips=offpeak_trips,
        peak_trips=peak_trips,
        min_trip_meters=min_trip_meters,
    )
    constraints = ConstraintConfig.from_minutes(wait_minutes, 20.0)

    def run_cell(**overrides):
        # Fresh engine per cell: no run may inherit another's warm caches.
        engine = make_engine(city, engine_kind)
        config = SimulationConfig(
            num_vehicles=num_vehicles,
            algorithm="kinetic",
            constraints=constraints,
            engine_kind=engine_kind,
            dispatch_policy="lap",
            seed=seed,
            **overrides,
        )
        return simulate(engine, config, trips)

    runs: dict[str, dict] = {}
    for window in fixed_windows:
        label = f"fixed_{window:g}"
        report = run_cell(batch_window_s=window)
        cell = phase_metrics(report, trips, split)
        cell.update(latency_percentiles(report))
        cell.update(
            {
                "batch_window_s": window,
                "service_rate": report.service_rate,
                "mean_batch_size": round(report.batch_sizes.mean, 3),
                "guarantee_violations": len(report.verify_service_guarantees()),
            }
        )
        runs[label] = cell

    adaptive_overrides = dict(
        batch_window_s=window_min_s,
        adaptive_window=True,
        window_min_s=window_min_s,
        window_max_s=window_max_s,
        adaptive_target_batch=target_batch,
        carry_over=True,
    )
    report = run_cell(**adaptive_overrides)
    rerun = run_cell(**adaptive_overrides)
    windows = [w for _, w, _ in report.window_trajectory]
    cell = phase_metrics(report, trips, split)
    cell.update(latency_percentiles(report))
    cell.update(
        {
            "window_min_s": window_min_s,
            "window_max_s": window_max_s,
            "service_rate": report.service_rate,
            "mean_batch_size": round(report.batch_sizes.mean, 3),
            "guarantee_violations": len(report.verify_service_guarantees()),
            "carry_events": report.carry_events,
            "carry_age_s_mean": round(report.carry_age_s.mean, 3),
            "max_carries": report.max_carries,
            "window_s_min": min(windows),
            "window_s_max": max(windows),
            "window_trajectory": [
                [round(t, 3), round(w, 4), round(o, 4)]
                for t, w, o in report.window_trajectory
            ],
            # The controller's only non-simulated input is the dormant
            # real-time guard; a same-seed rerun must be bit-identical.
            "deterministic_rerun": (
                _deterministic_state(report) == _deterministic_state(rerun)
            ),
        }
    )
    runs["adaptive"] = cell

    # The fixed window the adaptive run must not lose to: best peak
    # service rate, ties broken toward the shorter (lower-latency) one.
    best_fixed = min(
        (label for label in runs if label.startswith("fixed_")),
        key=lambda label: (
            -runs[label]["peak_service_rate"],
            runs[label]["batch_window_s"],
        ),
    )
    result = {
        "benchmark": "adaptive_window",
        "workload": {
            "grid_side": grid_side,
            "num_vertices": city.num_vertices,
            "num_vehicles": num_vehicles,
            "num_trips": len(trips),
            "offpeak_s": offpeak_s,
            "peak_s": peak_s,
            "offpeak_trips": offpeak_trips,
            "peak_trips": peak_trips,
            "split_s": split,
            "min_trip_meters": min_trip_meters,
            "wait_minutes": wait_minutes,
            "window_min_s": window_min_s,
            "window_max_s": window_max_s,
            "target_batch": target_batch,
            "engine_kind": engine_kind,
            "seed": seed,
        },
        "best_fixed": best_fixed,
        "runs": runs,
    }
    attach_series(result)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


def render(result: dict) -> str:
    """Fixed-width table of one :func:`run_adaptive_bench` document."""
    w = result["workload"]
    lines = [
        "== adaptive_window: fixed windows vs load-driven autotuning ==",
        f"{'run':12s} | {'off_lat_s':>9s} | {'off_rate':>8s} | "
        f"{'peak_lat_s':>10s} | {'peak_rate':>9s} | {'batch':>6s} | "
        f"{'carried':>7s}",
        "-" * 74,
    ]
    for label, cell in result["runs"].items():
        lines.append(
            f"{label:12s} | {cell['offpeak_latency_s']:>9.2f} | "
            f"{cell['offpeak_service_rate']:>8.3f} | "
            f"{cell['peak_latency_s']:>10.2f} | "
            f"{cell['peak_service_rate']:>9.3f} | "
            f"{cell['mean_batch_size']:>6.2f} | "
            f"{cell.get('carry_events', 0):>7d}"
        )
    adaptive = result["runs"]["adaptive"]
    lines.append(
        f"note: {w['num_trips']} trips ({w['offpeak_trips']} off-peak over "
        f"{w['offpeak_s']:g}s + {w['peak_trips']} peak over {w['peak_s']:g}s) "
        f"on {w['num_vehicles']} vehicles; adaptive band "
        f"[{w['window_min_s']:g}, {w['window_max_s']:g}]s visited "
        f"[{adaptive['window_s_min']:.1f}, {adaptive['window_s_max']:.1f}]s; "
        f"best fixed at peak: {result['best_fixed']}; deterministic rerun: "
        f"{'yes' if adaptive['deterministic_rerun'] else 'NO'}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.adaptive",
        description="Benchmark adaptive batch-window autotuning + carry-over.",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"output JSON path (default ./{DEFAULT_OUT})",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: smaller city, fewer trips, two fixed cells "
        "(no latency/service floor asserted at this scale — the "
        "determinism column is the smoke signal)",
    )
    args = parser.parse_args(argv)
    if args.fast:
        result = run_adaptive_bench(
            out_path=args.out,
            grid_side=18,
            num_vehicles=6,
            offpeak_s=900.0,
            peak_s=450.0,
            offpeak_trips=20,
            peak_trips=80,
            fixed_windows=(5.0, 30.0),
        )
    else:
        result = run_adaptive_bench(out_path=args.out)
    print(render(result))
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
