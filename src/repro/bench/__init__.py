"""Experiment harness regenerating every table and figure of the paper.

Each experiment id (``fig6a`` ... ``fig9c``, ``table1``, ``table2``,
``occupancy``, ``micro_engine``, ``micro_batched``, ``ablation_*``) maps
to a function in :mod:`repro.bench.experiments` returning an
:class:`~repro.bench.harness.ExperimentTable`. Problem sizes are scaled
down from the paper's Shanghai deployment (see DESIGN.md) and multiply
back up via the ``REPRO_SCALE`` environment variable.

Run everything from the command line::

    python -m repro.bench            # all experiments
    python -m repro.bench fig6b      # one experiment

:mod:`repro.bench.micro` is the perf-regression harness for the distance
layer: it times every engine's scalar vs batched (``distance_many``)
query plane on fan-out workloads and writes ``BENCH_micro.json`` —
runnable directly with ``python -m repro.bench.micro [--fast]``.
"""

from repro.bench.harness import (
    BURST_SUITE,
    BenchContext,
    ExperimentTable,
    FOUR_SUITE,
    TREE_SUITE,
    SuiteSpec,
    get_context,
    repro_scale,
)
from repro.bench.experiments import ALL_EXPERIMENTS, run_experiment

__all__ = [
    "BenchContext",
    "ExperimentTable",
    "SuiteSpec",
    "FOUR_SUITE",
    "TREE_SUITE",
    "BURST_SUITE",
    "get_context",
    "repro_scale",
    "ALL_EXPERIMENTS",
    "run_experiment",
]
